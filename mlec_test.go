package mlec

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// smallConfig returns a System config small enough for fast tests.
func smallConfig(scheme Scheme) Config {
	topo := DefaultTopology()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12
	return Config{
		Topology:   topo,
		Params:     Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:     scheme,
		ChunkBytes: 512,
		Seed:       3,
	}
}

func TestSystemLifecycle(t *testing.T) {
	s, err := NewSystem(smallConfig(SchemeCD))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*s.ObjectStripeBytes()+100)
	rand.New(rand.NewSource(1)).Read(data)
	if err := s.Write("doc", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}

	// Inject a catastrophic burst into enclosure 0.
	for i := 0; i < 7; i++ {
		s.FailDiskIndex(i)
	}
	rep := s.Report()
	if rep.AffectedLocalStripes == 0 {
		t.Fatal("no damage reported")
	}
	if err := s.Repair(RepairMinimum); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read("doc"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair read: %v", err)
	}
	if tr := s.Traffic(); tr.LocalRead == 0 && tr.CrossRackTotal() == 0 {
		t.Error("repair moved no bytes")
	}
	s.ResetTraffic()
	if s.Traffic().CrossRackTotal() != 0 {
		t.Error("ResetTraffic did not clear meters")
	}
}

func TestSystemDataLoss(t *testing.T) {
	s, err := NewSystem(smallConfig(SchemeCC))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, s.ObjectStripeBytes())
	rand.New(rand.NewSource(2)).Read(data)
	if err := s.Write("doc", data); err != nil {
		t.Fatal(err)
	}
	// Kill pn+1 aligned pools beyond local tolerance.
	dpr := smallConfig(SchemeCC).Topology.DisksPerRack()
	for _, d := range []int{0, 1, 2, dpr, dpr + 1, dpr + 2} {
		s.FailDiskIndex(d)
	}
	if _, err := s.Read("doc"); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
}

func TestFailDiskByID(t *testing.T) {
	s, _ := NewSystem(smallConfig(SchemeCC))
	s.FailDisk(DiskID{Rack: 1, Enclosure: 0, Disk: 5})
	data := make([]byte, s.ObjectStripeBytes())
	if err := s.Write("x", data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("x"); err != nil {
		t.Fatal(err)
	}
}

func TestBurstPDLAPI(t *testing.T) {
	topo := DefaultTopology()
	pdl, lo, hi, err := BurstPDL(topo, DefaultParams(), SchemeCC, 2, 60, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pdl != 0 || lo != 0 {
		t.Errorf("x ≤ pn must give PDL 0, got %g", pdl)
	}
	_ = hi
	if _, _, _, err := BurstPDL(topo, Params{KN: 0}, SchemeCC, 1, 1, 10, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAnalyzeRepairAPI(t *testing.T) {
	costs, err := AnalyzeRepair(DefaultTopology(), DefaultParams(), SchemeCD)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 4 {
		t.Fatalf("%d methods", len(costs))
	}
	if costs[0].Method != RepairAll || costs[3].Method != RepairMinimum {
		t.Error("method order wrong")
	}
	if !(costs[0].CrossRackTrafficBytes > costs[3].CrossRackTrafficBytes) {
		t.Error("R_ALL must move more than R_MIN")
	}
}

func TestAnalyzeBandwidthAPI(t *testing.T) {
	bw, err := AnalyzeBandwidth(DefaultTopology(), DefaultParams(), SchemeDC)
	if err != nil {
		t.Fatal(err)
	}
	if bw.PoolRepairBW < 1.3e9 || bw.PoolRepairBW > 1.4e9 {
		t.Errorf("D/C pool repair BW %g, want ≈1363 MB/s", bw.PoolRepairBW)
	}
}

func TestEstimateDurabilityAPI(t *testing.T) {
	ests, err := EstimateDurability(DefaultTopology(), DefaultParams(), SchemeCD, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 {
		t.Fatalf("%d estimates", len(ests))
	}
	prev := -1.0
	for _, e := range ests {
		if e.Nines < prev {
			t.Errorf("nines decreased at %v", e.Method)
		}
		prev = e.Nines
	}
}

func TestEncodingThroughputAPI(t *testing.T) {
	v, err := EncodingThroughput(DefaultParams(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Error("zero throughput")
	}
}

func TestExperimentRegistryAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments", len(ids))
	}
	if DescribeExperiment("fig8") == "" {
		t.Error("missing description")
	}
	var sb strings.Builder
	if err := RunExperiment("tab2", ExperimentOptions{Quick: true, Seed: 1}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 2") {
		t.Error("tab2 output missing")
	}
}

func TestSystemScrub(t *testing.T) {
	s, _ := NewSystem(smallConfig(SchemeCC))
	data := make([]byte, s.ObjectStripeBytes())
	rand.New(rand.NewSource(5)).Read(data)
	if err := s.Write("doc", data); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.LocalStripesChecked == 0 {
		t.Fatalf("scrub report %+v", rep)
	}
}

func TestSimulateAPI(t *testing.T) {
	topo := DefaultTopology()
	topo.Racks = 6
	topo.EnclosuresPerRack = 1
	topo.DisksPerEnclosure = 12
	stats, err := Simulate(SimulationConfig{
		Topology: topo,
		Params:   Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:   SchemeCD,
		Method:   RepairMinimum,
		AFR:      0.3,
	}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiskFailures == 0 || stats.SimYears != 50 {
		t.Fatalf("stats %+v", stats)
	}
	if _, err := Simulate(SimulationConfig{Topology: topo, Params: Params{KN: 0}}, 1, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSystemRebalance(t *testing.T) {
	s, _ := NewSystem(smallConfig(SchemeCD))
	data := make([]byte, 4*s.ObjectStripeBytes())
	rand.New(rand.NewSource(8)).Read(data)
	if err := s.Write("doc", data); err != nil {
		t.Fatal(err)
	}
	s.FailDiskIndex(0)
	if err := s.Repair(RepairHybrid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Read("doc"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rebalance: %v", err)
	}
	// Clustered layouts reject rebalance.
	cc, _ := NewSystem(smallConfig(SchemeCC))
	if _, err := cc.Rebalance(); err == nil {
		t.Error("rebalance accepted on clustered layout")
	}
}
