package burst

import (
	"math"

	"mlec/internal/mathx"
	"mlec/internal/placement"
)

// MLECEvaluator computes conditional burst PDL for an MLEC layout
// (Figure 5). It is stateless apart from the layout and safe for
// concurrent use.
type MLECEvaluator struct {
	Layout *placement.Layout
}

// NewMLECEvaluator returns an evaluator over the layout.
func NewMLECEvaluator(l *placement.Layout) *MLECEvaluator { return &MLECEvaluator{Layout: l} }

// TotalRacks implements Evaluator.
func (e *MLECEvaluator) TotalRacks() int { return e.Layout.Topo.Racks }

// DisksPerRack implements Evaluator.
func (e *MLECEvaluator) DisksPerRack() int { return e.Layout.Topo.DisksPerRack() }

// lostStripeFraction returns φ: the expected fraction of a local pool's
// stripes that are lost (≥ pl+1 failed chunks) given f simultaneously
// failed disks in the pool. Clustered pools: every stripe spans every
// pool disk, so φ is 0 or 1. Declustered pools: hypergeometric tail.
func (e *MLECEvaluator) lostStripeFraction(f int) float64 {
	pl := e.Layout.Params.PL
	if f <= pl {
		return 0
	}
	if e.Layout.Scheme.Local == placement.Clustered {
		return 1
	}
	return mathx.HypergeomTail(pl+1, f, e.Layout.LocalPoolSize(), e.Layout.Params.LocalWidth())
}

// ConditionalPDL implements Evaluator: the probability that at least one
// network stripe is lost given the burst layout, integrating over the
// pseudorandom stripe placement exactly.
func (e *MLECEvaluator) ConditionalPDL(b *BurstLayout) float64 {
	l := e.Layout
	// Failed-disk count per local pool (global pool ids).
	failsPerPool := make(map[int]int)
	dpr := l.Topo.DisksPerRack()
	for i, rack := range b.Racks {
		for _, d := range b.FailedDisks[i] {
			pool := l.PoolOfDisk(rack*dpr + d)
			failsPerPool[pool]++
		}
	}
	// φ per pool; skip non-catastrophic pools early.
	phis := make(map[int]float64, len(failsPerPool))
	for pool, f := range failsPerPool {
		if phi := e.lostStripeFraction(f); phi > 0 {
			phis[pool] = phi
		}
	}
	pools := sortedKeys(phis)
	if len(phis) <= l.Params.PN {
		return 0 // fewer than pn+1 catastrophic pools: no loss possible
	}

	var expectedLost float64
	if l.Scheme.Network == placement.Clustered {
		// Group catastrophic pools by their network pool; a network
		// stripe in that pool holds one (independently declustered)
		// local stripe from each member, so its loss probability is
		// the Poisson-binomial tail over member φ's at pn+1.
		// Iterating pools in sorted order keeps each network pool's φ
		// slice — and with it the Poisson-binomial recurrence — in a
		// deterministic order.
		byNet := make(map[int][]float64)
		for _, pool := range pools {
			np := l.NetworkPoolOf(pool)
			byNet[np] = append(byNet[np], phis[pool])
		}
		stripesPerNetPool := l.LocalStripesPerPool()
		for _, np := range sortedKeys(byNet) {
			ps := byNet[np]
			if len(ps) <= l.Params.PN {
				continue
			}
			pLoss := poissonBinomialTail(ps, l.Params.PN+1)
			expectedLost += stripesPerNetPool * pLoss
		}
	} else {
		// Network-declustered: a network stripe samples kn+pn distinct
		// racks and one local stripe from a uniform pool within each.
		// P(the member from rack r is lost) = Σ_{pools in r} φ / pools
		// per rack.
		psiByRack := make(map[int]float64)
		ppr := float64(l.LocalPoolsPerRack())
		for _, pool := range pools {
			psiByRack[l.RackOfPool(pool)] += phis[pool] / ppr
		}
		psis := make([]float64, 0, len(psiByRack))
		for _, rack := range sortedKeys(psiByRack) {
			psis = append(psis, psiByRack[rack])
		}
		pLoss := sampledRackLossTail(psis, l.Topo.Racks, l.Params.NetworkWidth(), l.Params.PN+1)
		expectedLost = l.TotalNetworkStripes() * pLoss
	}
	return -math.Expm1(-expectedLost)
}

// sampledRackLossTail returns P(≥ t member losses) for a stripe that
// samples m distinct racks uniformly from totalRacks racks, where a rack
// in psis fails its member with the given probability and all other racks
// never do.
//
// The computation conditions on which affected racks the stripe touches:
// T[j][l] sums, over all j-subsets S of the affected racks, the
// probability of l member losses from S (l capped at t); each subset S is
// touched with probability C(total−a, m−j)/C(total, m).
func sampledRackLossTail(psis []float64, totalRacks, m, t int) float64 {
	a := len(psis)
	if t <= 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	maxJ := a
	if m < maxJ {
		maxJ = m
	}
	// T[j][l]: l in [0, t], T[j][t] absorbs ≥ t.
	T := make([][]float64, maxJ+1)
	for j := range T {
		T[j] = make([]float64, t+1)
	}
	T[0][0] = 1
	for _, psi := range psis {
		for j := maxJ; j >= 1; j-- {
			for lIdx := t; lIdx >= 0; lIdx-- {
				v := 0.0
				// Rack not in subset: T[j][l] keeps its value (handled
				// implicitly by adding contributions into a copy).
				// Rack in subset: comes from T[j-1][l or l-1].
				if lIdx == t {
					v = T[j-1][t]*1 + 0 // already ≥t stays ≥t regardless
					if t >= 1 {
						v = T[j-1][t] + T[j-1][t-1]*psi
					}
				} else {
					v = T[j-1][lIdx] * (1 - psi)
					if lIdx >= 1 {
						v += T[j-1][lIdx-1] * psi
					}
				}
				T[j][lIdx] += v
			}
		}
	}
	logDen := mathx.LogChoose(totalRacks, m)
	p := 0.0
	for j := 0; j <= maxJ; j++ {
		if m-j > totalRacks-a || m-j < 0 {
			continue
		}
		w := math.Exp(mathx.LogChoose(totalRacks-a, m-j) - logDen)
		p += w * T[j][t]
	}
	if p > 1 {
		p = 1
	}
	return p
}
