package burst

import (
	"math"

	"mlec/internal/placement"
)

// LossGivenAlignedCatPools returns P(data loss | the given catastrophic
// pools all belong to ONE network pool of a network-clustered scheme),
// where phis[i] is the fraction of pool i's local stripes that are lost.
// Each network stripe of the pool holds one independently-placed local
// stripe per member, so loss requires ≥ pn+1 of its members to be lost
// simultaneously.
//
// Used by the stage-2 splitting estimator: the probability that a
// (pn+1)-overlap of catastrophic pools actually loses a network stripe —
// 1 for R_ALL-style whole-pool loss (φ=1), the paper's "as low as 0.03%"
// correction when the repairer knows the exact lost chunks (§4.2.3 F#1).
func LossGivenAlignedCatPools(l *placement.Layout, phis []float64) float64 {
	if len(phis) <= l.Params.PN {
		return 0
	}
	pLoss := poissonBinomialTail(phis, l.Params.PN+1)
	expected := l.LocalStripesPerPool() * pLoss
	return -math.Expm1(-expected)
}

// LossGivenScatteredCatPools returns P(data loss | the given catastrophic
// pools sit in DISTINCT racks of a network-declustered scheme), with
// phis[i] the lost-stripe fraction of pool i.
func LossGivenScatteredCatPools(l *placement.Layout, phis []float64) float64 {
	if len(phis) <= l.Params.PN {
		return 0
	}
	ppr := float64(l.LocalPoolsPerRack())
	psis := make([]float64, len(phis))
	for i, phi := range phis {
		psis[i] = phi / ppr
	}
	pLoss := sampledRackLossTail(psis, l.Topo.Racks, l.Params.NetworkWidth(), l.Params.PN+1)
	expected := l.TotalNetworkStripes() * pLoss
	return -math.Expm1(-expected)
}
