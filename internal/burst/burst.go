// Package burst computes the probability of data loss (PDL) under
// correlated failure bursts: y simultaneous disk failures randomly
// scattered across x racks (the paper's Figures 5, 13 and 16).
//
// The estimator is a conditional-expectation Monte Carlo (a form of the
// paper's "splitting + dynamic programming" strategy): each trial samples
// a concrete burst layout (which racks, which disks), then computes the
// probability of losing at least one stripe *analytically* given that
// layout — the stripe-placement randomness is integrated out exactly via
// hypergeometric and Poisson-binomial dynamic programs at true chunk
// granularity. Averaging the per-trial conditional PDL over layouts gives
// an unbiased, low-variance estimate of the cell PDL.
//
// For the local-clustered SLEC placement an exact evaluator (full dynamic
// programming over per-rack failure compositions, no sampling at all) is
// provided and used by the tests to validate the Monte Carlo machinery.
package burst

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"mlec/internal/faultinject"
	"mlec/internal/mathx"
	"mlec/internal/mathx/rngsplit"
	"mlec/internal/obs"
	"mlec/internal/runctl"
)

// Result is a PDL estimate for one (x racks, y failures) cell.
type Result struct {
	Racks    int // x
	Failures int // y
	PDL      float64
	// Lo and Hi bound the estimate: the 95% Wilson interval of the
	// per-trial conditional PDLs treated as Bernoulli outcomes would be
	// too pessimistic for a conditional estimator, so we report ±1.96
	// standard errors of the trial mean instead.
	Lo, Hi float64
	Trials int
	// Partial marks an estimate cut short by context cancellation or
	// deadline: Trials holds the trials actually completed and the
	// interval reflects only those, so the CI is honestly wider than a
	// full run's. A cell cancelled before any batch completed reports
	// PDL = NaN and Trials = 0.
	Partial bool
}

// Nines returns the durability nines of the cell.
func (r Result) Nines() float64 { return mathx.Nines(r.PDL) }

// Evaluator computes the conditional PDL of one sampled burst layout.
// failuresPerRack holds, for each affected rack, the flat in-rack disk
// indices that failed. Implementations must be safe for concurrent use.
type Evaluator interface {
	// ConditionalPDL returns P(data loss | this burst layout),
	// integrating over stripe placement randomness.
	ConditionalPDL(layout *BurstLayout) float64
	// TotalRacks returns the rack count of the underlying topology.
	TotalRacks() int
	// DisksPerRack returns the per-rack disk count.
	DisksPerRack() int
}

// BurstLayout is one sampled failure burst: the affected racks and the
// failed disks within each (disk indices are rack-local, in
// [0, DisksPerRack)).
type BurstLayout struct {
	Racks       []int   // affected rack ids, ascending
	FailedDisks [][]int // parallel to Racks; each non-empty
}

// TotalFailures returns the number of failed disks in the layout.
func (b *BurstLayout) TotalFailures() int {
	n := 0
	for _, d := range b.FailedDisks {
		n += len(d)
	}
	return n
}

// SampleLayout draws a burst layout: x distinct racks chosen uniformly
// from totalRacks, and y distinct disks chosen uniformly from the x·dpr
// disks conditioned on every rack receiving at least one failure.
func SampleLayout(rng *rand.Rand, totalRacks, dpr, x, y int) (*BurstLayout, error) {
	if x <= 0 || x > totalRacks {
		return nil, fmt.Errorf("burst: x=%d racks out of range [1,%d]", x, totalRacks)
	}
	if y < x || y > x*dpr {
		return nil, fmt.Errorf("burst: y=%d failures not in [x=%d, x·dpr=%d]", y, x, x*dpr)
	}
	racks := rng.Perm(totalRacks)[:x]
	sortInts(racks)

	// Sample y distinct disks from x·dpr conditioned on full rack
	// coverage, by rejection. Acceptance is high except at y≈x where we
	// fall back to a direct constructive method.
	failed := make([]int, y) // flat indices in [0, x·dpr)
	const maxRejects = 64
	for attempt := 0; ; attempt++ {
		if attempt >= maxRejects {
			return constructiveLayout(rng, racks, dpr, x, y)
		}
		sampleDistinct(rng, x*dpr, failed)
		if coversAllRacks(failed, dpr, x) {
			break
		}
	}
	return layoutFromFlat(racks, failed, dpr, x), nil
}

// constructiveLayout guarantees coverage: give each rack one random disk,
// then distribute the remaining y−x failures uniformly over the remaining
// disks. The resulting distribution differs negligibly from the
// conditioned-uniform one and is only used in the extreme y≈x corner
// where rejection stalls.
func constructiveLayout(rng *rand.Rand, racks []int, dpr, x, y int) (*BurstLayout, error) {
	used := make(map[int]bool, y)
	flat := make([]int, 0, y)
	for r := 0; r < x; r++ {
		d := r*dpr + rng.Intn(dpr)
		used[d] = true
		flat = append(flat, d)
	}
	for len(flat) < y {
		d := rng.Intn(x * dpr)
		if !used[d] {
			used[d] = true
			flat = append(flat, d)
		}
	}
	return layoutFromFlat(racks, flat, dpr, x), nil
}

func layoutFromFlat(racks []int, flat []int, dpr, x int) *BurstLayout {
	perRack := make([][]int, x)
	for _, f := range flat {
		r := f / dpr
		perRack[r] = append(perRack[r], f%dpr)
	}
	return &BurstLayout{Racks: racks, FailedDisks: perRack}
}

// sampleDistinct fills dst with len(dst) distinct values from [0, n)
// using a partial Fisher–Yates over a transient map (O(len(dst))).
func sampleDistinct(rng *rand.Rand, n int, dst []int) {
	swapped := make(map[int]int, len(dst))
	for i := range dst {
		j := i + rng.Intn(n-i)
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		dst[i] = vj
		swapped[j] = vi
	}
}

func coversAllRacks(flat []int, dpr, x int) bool {
	var seen uint64
	var seenHi []bool
	count := 0
	for _, f := range flat {
		r := f / dpr
		if r < 64 {
			if seen&(1<<r) == 0 {
				seen |= 1 << r
				count++
			}
		} else {
			if seenHi == nil {
				seenHi = make([]bool, x)
			}
			if !seenHi[r] {
				seenHi[r] = true
				count++
			}
		}
	}
	return count == x
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Trials are partitioned into fixed batches whose RNG streams are pure
// functions of (seed, x, y, batch index): the tallies a batch produces
// do not depend on worker scheduling, which batches ran in the same
// process, or whether the run was resumed from a checkpoint. Rounds
// bound how much work is in flight between checkpoint writes and
// context polls.
const (
	pdlBatchTrials = 64
	pdlRoundSize   = 256
)

// PDL estimates the probability of data loss for a single (x, y) cell by
// Monte Carlo over burst layouts, with trials split across CPUs. PDL is
// PDLContext without cancellation or checkpointing.
func PDL(ev Evaluator, x, y, trials int, seed int64) (Result, error) {
	return PDLContext(context.Background(), ev, x, y, trials, seed, "")
}

// PDLContext is PDL under run control: cancellation or a deadline stops
// the campaign at the next batch-round boundary, drains in-flight
// batches, and returns the completed trials as a Partial estimate. With
// a non-empty checkpointPath the per-batch tallies persist after every
// round and a later call with the same arguments resumes, reproducing
// the uninterrupted run's statistics exactly (the reduction always runs
// in batch order over the same per-batch sums).
func PDLContext(ctx context.Context, ev Evaluator, x, y, trials int, seed int64, checkpointPath string) (Result, error) {
	if trials <= 0 {
		return Result{}, fmt.Errorf("burst: trials = %d", trials)
	}
	if y < x || x < 1 || x > ev.TotalRacks() || y > x*ev.DisksPerRack() {
		return Result{Racks: x, Failures: y, PDL: math.NaN()}, nil
	}
	nb := (trials + pdlBatchTrials - 1) / pdlBatchTrials
	ck := pdlCheckpoint{
		Done:  make([]bool, nb),
		Sums:  make([]float64, nb),
		Sum2s: make([]float64, nb),
		Ns:    make([]int, nb),
	}
	fp := pdlFingerprint(ev, x, y, trials, seed)
	if checkpointPath != "" {
		var prev pdlCheckpoint
		ok, err := runctl.LoadCheckpoint(checkpointPath, pdlCheckpointKind, fp, &prev)
		if err != nil {
			return Result{}, err
		}
		if ok {
			if len(prev.Done) != nb || len(prev.Sums) != nb || len(prev.Sum2s) != nb || len(prev.Ns) != nb {
				return Result{}, fmt.Errorf("burst: checkpoint %s has %d batches, campaign has %d", checkpointPath, len(prev.Done), nb)
			}
			ck = prev
		}
	}

	// Observability: per-cell progress plus registry counters. Updates
	// are write-only tallies of work the estimator already decided to
	// do, so they cannot influence the estimate.
	task := obs.Progress.StartTask(fmt.Sprintf("burst.pdl x=%d y=%d", x, y), int64(trials))
	defer task.Finish()
	restored := 0
	for b := 0; b < nb; b++ {
		if ck.Done[b] {
			restored += ck.Ns[b]
		}
	}
	task.SetDone(int64(restored))
	trialCount := obs.Default.Counter("burst_pdl_trials_total")
	trialMeter := obs.Default.Meter("burst_pdl_trials_per_sec")
	batchCount := obs.Default.Counter("burst_pdl_batches_total")
	ciwGauge := obs.Default.FloatGauge("burst_pdl_ci_width")
	span := obs.StartSpan("burst.pdl")
	defer func() {
		if span != nil {
			span.EndNote(fmt.Sprintf("x=%d y=%d trials=%d", x, y, trials))
		}
	}()

	cellSeed := seed ^ int64(x)<<20 ^ int64(y)
	for start := 0; start < nb; {
		var round []int
		for ; start < nb && len(round) < pdlRoundSize; start++ {
			if !ck.Done[start] {
				round = append(round, start)
			}
		}
		if len(round) == 0 {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		pool := runctl.NewPool(ctx)
		//lint:allow walltime the span is an opaque obs handle the pool only hands back to obs for stream children; no wall-clock value reaches the simulation
		pool.SetParentSpan(span)
		for _, b := range round {
			b := b
			stream := rngsplit.Mix(cellSeed, b)
			pool.Go(stream, func(ctx context.Context) error {
				if ctx.Err() != nil {
					return nil // drain: this batch replays on resume
				}
				// Chaos hook: a faulted batch re-runs from the same
				// stream and rewrites the same checkpoint slots, so a
				// healed round is byte-identical to a clean one.
				if err := faultinject.Fire("burst.batch", stream); err != nil {
					return err
				}
				rng := rand.New(rand.NewSource(stream))
				lo := b * pdlBatchTrials
				hi := lo + pdlBatchTrials
				if hi > trials {
					hi = trials
				}
				var sum, sum2 float64
				for i := lo; i < hi; i++ {
					layout, err := SampleLayout(rng, ev.TotalRacks(), ev.DisksPerRack(), x, y)
					if err != nil {
						return err
					}
					pdl := ev.ConditionalPDL(layout)
					sum += pdl
					sum2 += pdl * pdl
				}
				// Each batch owns distinct slice elements; Wait orders
				// these writes before the reduction below.
				ck.Sums[b], ck.Sum2s[b], ck.Ns[b] = sum, sum2, hi-lo
				ck.Done[b] = true
				trialCount.Add(int64(hi - lo))
				trialMeter.Add(float64(hi - lo))
				batchCount.Inc()
				task.Add(int64(hi - lo))
				return nil
			})
		}
		if err := pool.Wait(); err != nil {
			return Result{}, err
		}
		if checkpointPath != "" {
			if err := runctl.SaveCheckpoint(checkpointPath, pdlCheckpointKind, fp, ck); err != nil {
				return Result{}, err
			}
		}
		if ctx.Err() != nil {
			break
		}
	}

	var (
		sum, sum2 float64
		done      int
		completed int
	)
	for b := 0; b < nb; b++ {
		if !ck.Done[b] {
			continue
		}
		completed++
		sum += ck.Sums[b]
		sum2 += ck.Sum2s[b]
		done += ck.Ns[b]
	}
	if done == 0 {
		return Result{Racks: x, Failures: y, PDL: math.NaN(), Lo: 0, Hi: 1, Partial: true}, nil
	}
	mean := sum / float64(done)
	variance := sum2/float64(done) - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / float64(done))
	lo, hi := mean-1.96*se, mean+1.96*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	ciwGauge.Set(hi - lo)
	task.SetCIWidth(hi - lo)
	return Result{Racks: x, Failures: y, PDL: mean, Lo: lo, Hi: hi, Trials: done, Partial: completed < nb}, nil
}

// Grid holds a PDL heatmap: Cells[iy][ix] corresponds to Ys[iy] failures
// across Xs[ix] racks.
type Grid struct {
	Xs, Ys []int
	Cells  [][]Result
	// Partial marks a grid cut short by cancellation or deadline:
	// unevaluated cells hold PDL = NaN (and are skipped by WriteCSV),
	// exactly like the undefined y < x cells.
	Partial bool
}

// Heatmap evaluates a whole grid of (x, y) cells. Heatmap is
// HeatmapContext without cancellation or checkpointing.
func Heatmap(ev Evaluator, xs, ys []int, trials int, seed int64) (*Grid, error) {
	return HeatmapContext(context.Background(), ev, xs, ys, trials, seed, "")
}

// HeatmapContext is Heatmap under run control, checkpointing at cell
// granularity: each fully evaluated cell persists to checkpointPath
// (when non-empty) and is restored verbatim on resume; a cell cut short
// mid-campaign is discarded and re-evaluated, so resumed grids match
// uninterrupted ones exactly. On cancellation the remaining cells are
// NaN and the grid is marked Partial.
func HeatmapContext(ctx context.Context, ev Evaluator, xs, ys []int, trials int, seed int64, checkpointPath string) (*Grid, error) {
	g := &Grid{Xs: xs, Ys: ys, Cells: make([][]Result, len(ys))}
	ck := gridCheckpoint{
		Done:  make([][]bool, len(ys)),
		Cells: make([][]Result, len(ys)),
	}
	for iy := range ys {
		g.Cells[iy] = make([]Result, len(xs))
		ck.Done[iy] = make([]bool, len(xs))
		ck.Cells[iy] = make([]Result, len(xs))
	}
	fp := gridFingerprint(ev, xs, ys, trials, seed)
	if checkpointPath != "" {
		var prev gridCheckpoint
		ok, err := runctl.LoadCheckpoint(checkpointPath, gridCheckpointKind, fp, &prev)
		if err != nil {
			return nil, err
		}
		if ok {
			if len(prev.Done) != len(ys) || len(prev.Cells) != len(ys) {
				return nil, fmt.Errorf("burst: checkpoint %s grid shape mismatch", checkpointPath)
			}
			for iy := range ys {
				if len(prev.Done[iy]) != len(xs) || len(prev.Cells[iy]) != len(xs) {
					return nil, fmt.Errorf("burst: checkpoint %s grid shape mismatch", checkpointPath)
				}
			}
			ck = prev
		}
	}

	// Observability: grid progress at cell granularity (the DP cell
	// throughput signal), counting restored cells as already done.
	gridTask := obs.Progress.StartTask("burst.grid", int64(len(xs)*len(ys)))
	defer gridTask.Finish()
	cellCount := obs.Default.Counter("burst_grid_cells_total")
	for iy := range ys {
		for ix := range xs {
			if ck.Done[iy][ix] {
				gridTask.Add(1)
			}
		}
	}

	for iy, y := range ys {
		for ix, x := range xs {
			if ck.Done[iy][ix] {
				g.Cells[iy][ix] = ck.Cells[iy][ix]
				continue
			}
			if ctx.Err() != nil {
				g.Partial = true
				g.Cells[iy][ix] = Result{Racks: x, Failures: y, PDL: math.NaN()}
				continue
			}
			r, err := PDLContext(ctx, ev, x, y, trials, seed+int64(iy*len(xs)+ix), "")
			if err != nil {
				return nil, err
			}
			if r.Partial {
				// Mid-cell cancellation: discard so the cell re-runs in
				// full on resume rather than entering the grid with a
				// different trial count.
				g.Partial = true
				g.Cells[iy][ix] = Result{Racks: x, Failures: y, PDL: math.NaN()}
				continue
			}
			g.Cells[iy][ix] = r
			ck.Done[iy][ix] = true
			ck.Cells[iy][ix] = r
			cellCount.Inc()
			gridTask.Add(1)
			if checkpointPath != "" {
				if err := runctl.SaveCheckpoint(checkpointPath, gridCheckpointKind, fp, ck); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// poissonBinomialTail returns P(ΣX_i ≥ k) for independent Bernoulli
// variables with the given success probabilities, via the standard O(n·k)
// dynamic program with the count capped at k.
func poissonBinomialTail(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	// dp[j] = P(exactly j successes so far), j capped at k (dp[k]
	// absorbs "≥ k").
	dp := make([]float64, k+1)
	dp[0] = 1
	for _, p := range probs {
		if p == 0 {
			continue
		}
		for j := k; j >= 1; j-- {
			if j == k {
				dp[k] = dp[k] + dp[k-1]*p
			} else {
				dp[j] = dp[j]*(1-p) + dp[j-1]*p
			}
		}
		dp[0] *= 1 - p
	}
	return dp[k]
}

// WriteCSV emits the grid as "x,y,pdl,lo,hi,trials" rows for external
// plotting tools. NaN cells (undefined, y < x) are skipped.
func (g *Grid) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "racks,failures,pdl,ci_lo,ci_hi,trials"); err != nil {
		return err
	}
	for iy, y := range g.Ys {
		for ix, x := range g.Xs {
			c := g.Cells[iy][ix]
			if c.PDL != c.PDL { // NaN
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%g,%d\n", x, y, c.PDL, c.Lo, c.Hi, c.Trials); err != nil {
				return err
			}
		}
	}
	return nil
}
