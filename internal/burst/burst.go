// Package burst computes the probability of data loss (PDL) under
// correlated failure bursts: y simultaneous disk failures randomly
// scattered across x racks (the paper's Figures 5, 13 and 16).
//
// The estimator is a conditional-expectation Monte Carlo (a form of the
// paper's "splitting + dynamic programming" strategy): each trial samples
// a concrete burst layout (which racks, which disks), then computes the
// probability of losing at least one stripe *analytically* given that
// layout — the stripe-placement randomness is integrated out exactly via
// hypergeometric and Poisson-binomial dynamic programs at true chunk
// granularity. Averaging the per-trial conditional PDL over layouts gives
// an unbiased, low-variance estimate of the cell PDL.
//
// For the local-clustered SLEC placement an exact evaluator (full dynamic
// programming over per-rack failure compositions, no sampling at all) is
// provided and used by the tests to validate the Monte Carlo machinery.
package burst

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"mlec/internal/mathx"
)

// Result is a PDL estimate for one (x racks, y failures) cell.
type Result struct {
	Racks    int // x
	Failures int // y
	PDL      float64
	// Lo and Hi bound the estimate: the 95% Wilson interval of the
	// per-trial conditional PDLs treated as Bernoulli outcomes would be
	// too pessimistic for a conditional estimator, so we report ±1.96
	// standard errors of the trial mean instead.
	Lo, Hi float64
	Trials int
}

// Nines returns the durability nines of the cell.
func (r Result) Nines() float64 { return mathx.Nines(r.PDL) }

// Evaluator computes the conditional PDL of one sampled burst layout.
// failuresPerRack holds, for each affected rack, the flat in-rack disk
// indices that failed. Implementations must be safe for concurrent use.
type Evaluator interface {
	// ConditionalPDL returns P(data loss | this burst layout),
	// integrating over stripe placement randomness.
	ConditionalPDL(layout *BurstLayout) float64
	// TotalRacks returns the rack count of the underlying topology.
	TotalRacks() int
	// DisksPerRack returns the per-rack disk count.
	DisksPerRack() int
}

// BurstLayout is one sampled failure burst: the affected racks and the
// failed disks within each (disk indices are rack-local, in
// [0, DisksPerRack)).
type BurstLayout struct {
	Racks       []int   // affected rack ids, ascending
	FailedDisks [][]int // parallel to Racks; each non-empty
}

// TotalFailures returns the number of failed disks in the layout.
func (b *BurstLayout) TotalFailures() int {
	n := 0
	for _, d := range b.FailedDisks {
		n += len(d)
	}
	return n
}

// SampleLayout draws a burst layout: x distinct racks chosen uniformly
// from totalRacks, and y distinct disks chosen uniformly from the x·dpr
// disks conditioned on every rack receiving at least one failure.
func SampleLayout(rng *rand.Rand, totalRacks, dpr, x, y int) (*BurstLayout, error) {
	if x <= 0 || x > totalRacks {
		return nil, fmt.Errorf("burst: x=%d racks out of range [1,%d]", x, totalRacks)
	}
	if y < x || y > x*dpr {
		return nil, fmt.Errorf("burst: y=%d failures not in [x=%d, x·dpr=%d]", y, x, x*dpr)
	}
	racks := rng.Perm(totalRacks)[:x]
	sortInts(racks)

	// Sample y distinct disks from x·dpr conditioned on full rack
	// coverage, by rejection. Acceptance is high except at y≈x where we
	// fall back to a direct constructive method.
	failed := make([]int, y) // flat indices in [0, x·dpr)
	const maxRejects = 64
	for attempt := 0; ; attempt++ {
		if attempt >= maxRejects {
			return constructiveLayout(rng, racks, dpr, x, y)
		}
		sampleDistinct(rng, x*dpr, failed)
		if coversAllRacks(failed, dpr, x) {
			break
		}
	}
	return layoutFromFlat(racks, failed, dpr, x), nil
}

// constructiveLayout guarantees coverage: give each rack one random disk,
// then distribute the remaining y−x failures uniformly over the remaining
// disks. The resulting distribution differs negligibly from the
// conditioned-uniform one and is only used in the extreme y≈x corner
// where rejection stalls.
func constructiveLayout(rng *rand.Rand, racks []int, dpr, x, y int) (*BurstLayout, error) {
	used := make(map[int]bool, y)
	flat := make([]int, 0, y)
	for r := 0; r < x; r++ {
		d := r*dpr + rng.Intn(dpr)
		used[d] = true
		flat = append(flat, d)
	}
	for len(flat) < y {
		d := rng.Intn(x * dpr)
		if !used[d] {
			used[d] = true
			flat = append(flat, d)
		}
	}
	return layoutFromFlat(racks, flat, dpr, x), nil
}

func layoutFromFlat(racks []int, flat []int, dpr, x int) *BurstLayout {
	perRack := make([][]int, x)
	for _, f := range flat {
		r := f / dpr
		perRack[r] = append(perRack[r], f%dpr)
	}
	return &BurstLayout{Racks: racks, FailedDisks: perRack}
}

// sampleDistinct fills dst with len(dst) distinct values from [0, n)
// using a partial Fisher–Yates over a transient map (O(len(dst))).
func sampleDistinct(rng *rand.Rand, n int, dst []int) {
	swapped := make(map[int]int, len(dst))
	for i := range dst {
		j := i + rng.Intn(n-i)
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		dst[i] = vj
		swapped[j] = vi
	}
}

func coversAllRacks(flat []int, dpr, x int) bool {
	var seen uint64
	var seenHi []bool
	count := 0
	for _, f := range flat {
		r := f / dpr
		if r < 64 {
			if seen&(1<<r) == 0 {
				seen |= 1 << r
				count++
			}
		} else {
			if seenHi == nil {
				seenHi = make([]bool, x)
			}
			if !seenHi[r] {
				seenHi[r] = true
				count++
			}
		}
	}
	return count == x
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// PDL estimates the probability of data loss for a single (x, y) cell by
// Monte Carlo over burst layouts, with trials split across CPUs.
func PDL(ev Evaluator, x, y, trials int, seed int64) (Result, error) {
	if trials <= 0 {
		return Result{}, fmt.Errorf("burst: trials = %d", trials)
	}
	if y < x || x < 1 || x > ev.TotalRacks() || y > x*ev.DisksPerRack() {
		return Result{Racks: x, Failures: y, PDL: math.NaN()}, nil
	}
	workers := runtime.NumCPU()
	if workers > trials {
		workers = trials
	}
	// Each worker owns a slot; the reduction below runs in worker order
	// after the barrier. Merging under a mutex in completion order would
	// make the float sums depend on goroutine scheduling (float addition
	// is not associative) and break run-to-run reproducibility.
	type partial struct {
		sum, sum2 float64
		n         int
		err       error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := trials / workers
		if w < trials%workers {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(w)*0x9e3779b97f4a7c ^ int64(x)<<20 ^ int64(y)))
			p := &parts[w]
			for i := 0; i < share; i++ {
				layout, err := SampleLayout(rng, ev.TotalRacks(), ev.DisksPerRack(), x, y)
				if err != nil {
					p.err = err
					return
				}
				pdl := ev.ConditionalPDL(layout)
				p.sum += pdl
				p.sum2 += pdl * pdl
				p.n++
			}
		}(w, share)
	}
	wg.Wait()
	var (
		sum, sum2 float64
		done      int
	)
	for w := range parts {
		if parts[w].err != nil {
			return Result{}, parts[w].err
		}
		sum += parts[w].sum
		sum2 += parts[w].sum2
		done += parts[w].n
	}
	mean := sum / float64(done)
	variance := sum2/float64(done) - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / float64(done))
	lo, hi := mean-1.96*se, mean+1.96*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Result{Racks: x, Failures: y, PDL: mean, Lo: lo, Hi: hi, Trials: done}, nil
}

// Grid holds a PDL heatmap: Cells[iy][ix] corresponds to Ys[iy] failures
// across Xs[ix] racks.
type Grid struct {
	Xs, Ys []int
	Cells  [][]Result
}

// Heatmap evaluates a whole grid of (x, y) cells.
func Heatmap(ev Evaluator, xs, ys []int, trials int, seed int64) (*Grid, error) {
	g := &Grid{Xs: xs, Ys: ys, Cells: make([][]Result, len(ys))}
	for iy, y := range ys {
		g.Cells[iy] = make([]Result, len(xs))
		for ix, x := range xs {
			r, err := PDL(ev, x, y, trials, seed+int64(iy*len(xs)+ix))
			if err != nil {
				return nil, err
			}
			g.Cells[iy][ix] = r
		}
	}
	return g, nil
}

// poissonBinomialTail returns P(ΣX_i ≥ k) for independent Bernoulli
// variables with the given success probabilities, via the standard O(n·k)
// dynamic program with the count capped at k.
func poissonBinomialTail(probs []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(probs) {
		return 0
	}
	// dp[j] = P(exactly j successes so far), j capped at k (dp[k]
	// absorbs "≥ k").
	dp := make([]float64, k+1)
	dp[0] = 1
	for _, p := range probs {
		if p == 0 {
			continue
		}
		for j := k; j >= 1; j-- {
			if j == k {
				dp[k] = dp[k] + dp[k-1]*p
			} else {
				dp[j] = dp[j]*(1-p) + dp[j-1]*p
			}
		}
		dp[0] *= 1 - p
	}
	return dp[k]
}

// WriteCSV emits the grid as "x,y,pdl,lo,hi,trials" rows for external
// plotting tools. NaN cells (undefined, y < x) are skipped.
func (g *Grid) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "racks,failures,pdl,ci_lo,ci_hi,trials"); err != nil {
		return err
	}
	for iy, y := range g.Ys {
		for ix, x := range g.Xs {
			c := g.Cells[iy][ix]
			if c.PDL != c.PDL { // NaN
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%g,%g,%g,%d\n", x, y, c.PDL, c.Lo, c.Hi, c.Trials); err != nil {
				return err
			}
		}
	}
	return nil
}
