package burst

import (
	"math"
	"math/rand"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

// bruteForceLRCUnrecoverable enumerates every failure pattern of the
// stripe and sums the probability of the unrecoverable ones according to
// the MR criterion — ground truth for lrcUnrecoverableProb.
func bruteForceLRCUnrecoverable(p placement.LRCParams, slot []float64) float64 {
	n := len(slot)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		prob := 1.0
		var lost []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				prob *= slot[i]
				lost = append(lost, i)
			} else {
				prob *= 1 - slot[i]
			}
		}
		if prob == 0 {
			continue
		}
		if !p.Recoverable(lost, 0) {
			total += prob
		}
	}
	return total
}

func TestLRCUnrecoverableProbBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	configs := []placement.LRCParams{
		{K: 4, L: 2, R: 2},
		{K: 6, L: 2, R: 3},
		{K: 6, L: 3, R: 2},
	}
	for _, p := range configs {
		for trial := 0; trial < 20; trial++ {
			slot := make([]float64, p.Width())
			for i := range slot {
				if rng.Float64() < 0.5 {
					slot[i] = rng.Float64() * 0.6
				}
			}
			got := lrcUnrecoverableProb(p, slot)
			want := bruteForceLRCUnrecoverable(p, slot)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%v slot=%v: got %g want %g", p, slot, got, want)
			}
		}
	}
}

func TestLRCEvaluatorZeroOnNoFailures(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLRCLayout(topo, placement.LRCParams{K: 14, L: 2, R: 4})
	ev := NewLRCEvaluator(l, 5)
	b := &BurstLayout{Racks: []int{0}, FailedDisks: [][]int{{3}}}
	// One failed disk anywhere: no stripe can lose r+1... in fact a
	// single disk failure is always recoverable → PDL 0? A stripe can
	// have at most 1 chunk on the failed disk; 1 failure is always
	// recoverable.
	if got := ev.ConditionalPDL(b); got != 0 {
		t.Errorf("single-disk burst: PDL %g, want 0", got)
	}
}

// TestLRCScatteredSusceptibility reproduces Figure 16's message: LRC-Dp
// loses data under highly scattered bursts (like Net-Dp SLEC), while MLEC
// with comparable throughput tolerates them far better.
func TestLRCScatteredSusceptibility(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLRCLayout(topo, placement.LRCParams{K: 14, L: 2, R: 4})
	ev := NewLRCEvaluator(l, 5)

	// Scattered burst: 60 failures in 60 racks.
	r, err := PDL(ev, 60, 60, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.PDL <= 0 {
		t.Error("LRC-Dp must be exposed to scattered bursts")
	}

	// MLEC D/D — the weakest MLEC scheme — still tolerates the same
	// scattered burst better: one failure per rack cannot create any
	// catastrophic pool (pl = 3).
	ml := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeDD)
	mr, err := PDL(NewMLECEvaluator(ml), 60, 60, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mr.PDL != 0 {
		t.Errorf("MLEC D/D scattered-burst PDL %g, want 0", mr.PDL)
	}
	t.Logf("scattered burst: LRC-Dp PDL=%.3g, MLEC D/D PDL=%.3g", r.PDL, mr.PDL)
}

// TestLRCLocalizedTolerance: bursts confined to few racks touch at most
// that many chunks per stripe; with ≤ r affected racks the per-stripe
// excess cannot exceed r... it can: multiple failures in one group from
// different racks. But a single-rack burst gives each stripe at most one
// failed chunk, so PDL must be 0.
func TestLRCLocalizedTolerance(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLRCLayout(topo, placement.LRCParams{K: 14, L: 2, R: 4})
	ev := NewLRCEvaluator(l, 5)
	r, err := PDL(ev, 1, 120, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.PDL != 0 {
		t.Errorf("single-rack burst: PDL %g, want 0", r.PDL)
	}
}

func TestLRCEvaluatorDeterministicSeed(t *testing.T) {
	topo := topology.Default()
	params := placement.LRCParams{K: 14, L: 2, R: 4}
	run := func() float64 {
		l := placement.MustNewLRCLayout(topo, params)
		ev := NewLRCEvaluator(l, 5)
		r, err := PDL(ev, 30, 60, 100, 9)
		if err != nil {
			t.Fatal(err)
		}
		return r.PDL
	}
	// Note: PDL() splits trials across workers; per-worker RNGs are
	// seeded deterministically, but the evaluator's assignment RNG is
	// shared. Runs are reproducible only with a single worker; here we
	// just require both runs to be within MC noise of each other.
	a, b := run(), run()
	if a == 0 && b == 0 {
		t.Skip("cell has zero PDL; nothing to compare")
	}
	if math.Abs(a-b) > 0.2*(a+b) {
		t.Errorf("two identically-seeded runs diverged: %g vs %g", a, b)
	}
}
