package burst

import (
	"context"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// layoutEvaluator's conditional PDL depends on the sampled layout, so
// any divergence in RNG streams between a resumed and an uninterrupted
// campaign shows up in the mean — unlike a constant evaluator.
type layoutEvaluator struct{ racks, dpr int }

func (h *layoutEvaluator) ConditionalPDL(l *BurstLayout) float64 {
	x := 0
	for i, r := range l.Racks {
		x += (i + 1) * r
	}
	for _, ds := range l.FailedDisks {
		for _, d := range ds {
			x += d
		}
	}
	return float64(x%1000) / 1000
}
func (h *layoutEvaluator) TotalRacks() int   { return h.racks }
func (h *layoutEvaluator) DisksPerRack() int { return h.dpr }

// cancellingEvaluator cancels the campaign's context after a fixed
// number of conditional evaluations, giving tests a deterministic
// "interrupt somewhere in the middle" without timers.
type cancellingEvaluator struct {
	inner  Evaluator
	after  int64
	calls  atomic.Int64
	cancel context.CancelFunc
}

func (c *cancellingEvaluator) ConditionalPDL(l *BurstLayout) float64 {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.ConditionalPDL(l)
}
func (c *cancellingEvaluator) TotalRacks() int   { return c.inner.TotalRacks() }
func (c *cancellingEvaluator) DisksPerRack() int { return c.inner.DisksPerRack() }

func TestPDLCheckpointResumeDeterministic(t *testing.T) {
	ev := &layoutEvaluator{racks: 20, dpr: 30}
	const x, y, trials = 3, 40, 38400 // 600 batches, 3 rounds
	var seed int64 = 99
	path := filepath.Join(t.TempDir(), "pdl.ckpt")

	ref, err := PDL(ev, x, y, trials, seed)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cev := &cancellingEvaluator{inner: ev, after: 1000, cancel: cancel}
	partial, err := PDLContext(ctx, cev, x, y, trials, seed, path)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatal("interrupted run not marked Partial")
	}
	if partial.Trials >= trials {
		t.Fatalf("interrupted run completed all %d trials", partial.Trials)
	}
	if partial.Hi-partial.Lo < ref.Hi-ref.Lo {
		t.Errorf("partial CI [%g,%g] narrower than full run's [%g,%g]",
			partial.Lo, partial.Hi, ref.Lo, ref.Hi)
	}

	resumed, err := PDLContext(context.Background(), ev, x, y, trials, seed, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Errorf("resumed run differs from uninterrupted run:\nresumed: %+v\nref:     %+v", resumed, ref)
	}

	// A checkpoint of a completed campaign replays the final result.
	replayed, err := PDLContext(context.Background(), ev, x, y, trials, seed, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, ref) {
		t.Errorf("replay from completed checkpoint differs: %+v", replayed)
	}
}

func TestPDLCheckpointRejectsOtherCell(t *testing.T) {
	ev := &layoutEvaluator{racks: 20, dpr: 30}
	path := filepath.Join(t.TempDir(), "pdl.ckpt")
	if _, err := PDLContext(context.Background(), ev, 3, 40, 640, 1, path); err != nil {
		t.Fatal(err)
	}
	if _, err := PDLContext(context.Background(), ev, 4, 40, 640, 1, path); err == nil {
		t.Fatal("checkpoint for cell (3,40) accepted by cell (4,40)")
	}
}

func TestHeatmapContextResumeDeterministic(t *testing.T) {
	ev := &layoutEvaluator{racks: 20, dpr: 30}
	xs, ys := []int{2, 3}, []int{20, 30}
	const trials = 640
	var seed int64 = 7
	path := filepath.Join(t.TempDir(), "grid.ckpt")

	ref, err := Heatmap(ev, xs, ys, trials, seed)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cev := &cancellingEvaluator{inner: ev, after: 700, cancel: cancel}
	partial, err := HeatmapContext(ctx, cev, xs, ys, trials, seed, path)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatal("interrupted grid not marked Partial")
	}
	if partial.Cells[0][0] != ref.Cells[0][0] {
		t.Errorf("first cell completed before the cancel should match: %+v vs %+v",
			partial.Cells[0][0], ref.Cells[0][0])
	}

	resumed, err := HeatmapContext(context.Background(), ev, xs, ys, trials, seed, path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Partial {
		t.Error("resumed grid still Partial")
	}
	if !reflect.DeepEqual(resumed.Cells, ref.Cells) {
		t.Errorf("resumed grid differs from uninterrupted grid")
	}
}
