package burst

import (
	"math"
	"math/rand"
	"sync"

	"mlec/internal/placement"
)

// LRCEvaluator computes conditional burst PDL for the LRC-Dp placement of
// Figure 16: every chunk of a (k,l,r) stripe on a uniformly random disk
// of a distinct rack.
//
// Given a burst layout, the evaluator samples a small number of
// rack-to-slot assignments per call and, for each, computes the exact
// probability that the resulting failure pattern is unrecoverable under
// the Maximally Recoverable criterion (placement.LRCParams.Recoverable),
// by convolving the per-group excess distributions with the global-parity
// failure distribution.
type LRCEvaluator struct {
	Layout *placement.LRCLayout
	// Assignments is the number of rack-to-slot assignments averaged
	// per ConditionalPDL call (default 8).
	Assignments int

	mu sync.Mutex
	//mlec:guardedby mu
	rng *rand.Rand
}

// NewLRCEvaluator returns an evaluator with a private deterministic RNG
// for assignment sampling.
func NewLRCEvaluator(l *placement.LRCLayout, seed int64) *LRCEvaluator {
	return &LRCEvaluator{Layout: l, Assignments: 8, rng: rand.New(rand.NewSource(seed))}
}

// TotalRacks implements Evaluator.
func (e *LRCEvaluator) TotalRacks() int { return e.Layout.Topo.Racks }

// DisksPerRack implements Evaluator.
func (e *LRCEvaluator) DisksPerRack() int { return e.Layout.Topo.DisksPerRack() }

// ConditionalPDL implements Evaluator.
func (e *LRCEvaluator) ConditionalPDL(b *BurstLayout) float64 {
	l := e.Layout
	p := l.Params
	width := p.Width()
	dpr := float64(l.Topo.DisksPerRack())

	// Per-rack chunk failure probabilities for the affected racks;
	// unaffected racks contribute 0 and can be skipped except that they
	// dilute the assignment. We sample assignments of width distinct
	// racks out of Topo.Racks and map affected ones to their ψ.
	psiByRack := make(map[int]float64, len(b.Racks))
	for i, rack := range b.Racks {
		psiByRack[rack] = float64(len(b.FailedDisks[i])) / dpr
	}

	assignments := e.Assignments
	if assignments <= 0 {
		assignments = 8
	}
	var sum float64
	slot := make([]float64, width)
	perm := make([]int, l.Topo.Racks)
	for a := 0; a < assignments; a++ {
		e.mu.Lock()
		for i := range perm {
			perm[i] = i
		}
		e.rng.Shuffle(len(perm), func(x, y int) { perm[x], perm[y] = perm[y], perm[x] })
		e.mu.Unlock()
		for s := 0; s < width; s++ {
			slot[s] = psiByRack[perm[s]]
		}
		sum += lrcUnrecoverableProb(p, slot)
	}
	pUnrec := sum / float64(assignments)
	expected := l.TotalStripes() * pUnrec
	return -math.Expm1(-expected)
}

// lrcUnrecoverableProb returns the exact probability that a stripe whose
// slots fail independently with the given probabilities forms an
// unrecoverable pattern: Σ_g max(0, F_g − 1) + GF > r, where F_g counts
// failures among group g's data chunks plus its local parity and GF
// counts failed global parities.
//
// Slot order: [0,k) data, [k,k+l) local parities, [k+l,k+l+r) globals.
func lrcUnrecoverableProb(p placement.LRCParams, slot []float64) float64 {
	groupSize := p.K / p.L
	// excessDist starts as the distribution of GF (values 0..r+1 capped)
	// and gets convolved with each group's excess distribution.
	capN := p.R + 1
	dist := poissonBinomialPMFCapped(slot[p.K+p.L:], capN)
	for g := 0; g < p.L; g++ {
		probs := make([]float64, 0, groupSize+1)
		probs = append(probs, slot[g*groupSize:(g+1)*groupSize]...)
		probs = append(probs, slot[p.K+g])
		fDist := poissonBinomialPMFCapped(probs, capN+1)
		// excess_g = max(0, F_g − 1)
		exDist := make([]float64, capN+1)
		exDist[0] = fDist[0] + fDist[1]
		for f := 2; f < len(fDist); f++ {
			e := f - 1
			if e > capN {
				e = capN
			}
			exDist[e] += fDist[f]
		}
		dist = convolveCapped(dist, exDist, capN)
	}
	return dist[capN] // P(total ≥ r+1) = P(unrecoverable)
}

// poissonBinomialPMFCapped returns the PMF of the number of successes of
// independent Bernoulli trials, with all mass ≥ cap absorbed into
// index cap.
func poissonBinomialPMFCapped(probs []float64, capN int) []float64 {
	dp := make([]float64, capN+1)
	dp[0] = 1
	for _, p := range probs {
		if p == 0 {
			continue
		}
		for j := capN; j >= 1; j-- {
			if j == capN {
				dp[j] = dp[j] + dp[j-1]*p
			} else {
				dp[j] = dp[j]*(1-p) + dp[j-1]*p
			}
		}
		dp[0] *= 1 - p
	}
	return dp
}

// convolveCapped adds two independent capped distributions, capping the
// sum at cap.
func convolveCapped(a, b []float64, capN int) []float64 {
	out := make([]float64, capN+1)
	for i, pa := range a {
		if pa == 0 {
			continue
		}
		for j, pb := range b {
			if pb == 0 {
				continue
			}
			s := i + j
			if s > capN {
				s = capN
			}
			out[s] += pa * pb
		}
	}
	return out
}
