package burst

import (
	"fmt"
	"math"

	"mlec/internal/mathx"
	"mlec/internal/placement"
)

// ExactLocalCpPDL computes the burst PDL of a Local-Cp SLEC placement
// exactly, with no sampling: it counts, via dynamic programming, the
// number of ways to scatter y failures across x racks (each rack ≥ 1
// failure) such that no (k+p)-disk pool accumulates more than p failures,
// and divides by the total number of admissible layouts.
//
// This is the paper's "dynamic programming" evaluation strategy (§3) in
// its purest form, and serves as ground truth for the Monte Carlo
// machinery: the tests check PDL() against ExactLocalCpPDL on identical
// configurations.
func ExactLocalCpPDL(l *placement.SLECLayout, x, y int) (float64, error) {
	if l.Placement != placement.LocalCp {
		return 0, fmt.Errorf("burst: ExactLocalCpPDL requires Loc-Cp, got %v", l.Placement)
	}
	dpr := l.Topo.DisksPerRack()
	if x < 1 || y < x || y > x*dpr {
		return math.NaN(), nil
	}
	w := l.Params.Width()
	p := l.Params.P
	poolsPerRack := dpr / w

	// safe[f] = number of ways to place f failed disks within one rack
	// such that every pool has ≤ p failures: the coefficient of z^f in
	// (Σ_{c=0..p} C(w,c) z^c)^poolsPerRack. Computed in linear space;
	// magnitudes stay far below float64 overflow for f ≤ a few hundred.
	maxF := y
	if maxF > dpr {
		maxF = dpr
	}
	poolPoly := make([]float64, min(p, w)+1)
	for c := range poolPoly {
		poolPoly[c] = mathx.Choose(w, c)
	}
	safe := polyPow(poolPoly, poolsPerRack, maxF)

	// all[f] = C(dpr, f): all ways to place f failures in one rack.
	all := make([]float64, maxF+1)
	for f := range all {
		all[f] = mathx.Choose(dpr, f)
	}

	// Convolve across the x racks, requiring ≥1 failure per rack.
	// totalWays[j] and safeWays[j] after i racks.
	safeAcc := []float64{1}
	allAcc := []float64{1}
	for i := 0; i < x; i++ {
		safeAcc = convolveMin1(safeAcc, safe, y)
		allAcc = convolveMin1(allAcc, all, y)
	}
	if len(allAcc) <= y || allAcc[y] == 0 {
		return math.NaN(), nil
	}
	var safeY float64
	if len(safeAcc) > y {
		safeY = safeAcc[y]
	}
	pdl := 1 - safeY/allAcc[y]
	if pdl < 0 {
		pdl = 0
	}
	return pdl, nil
}

// polyPow raises a polynomial (coefficients) to the n-th power, keeping
// coefficients up to degree maxDeg.
func polyPow(poly []float64, n, maxDeg int) []float64 {
	out := []float64{1}
	base := append([]float64(nil), poly...)
	for n > 0 {
		if n&1 == 1 {
			out = polyMul(out, base, maxDeg)
		}
		n >>= 1
		if n > 0 {
			base = polyMul(base, base, maxDeg)
		}
	}
	return out
}

func polyMul(a, b []float64, maxDeg int) []float64 {
	deg := len(a) + len(b) - 2
	if deg > maxDeg {
		deg = maxDeg
	}
	out := make([]float64, deg+1)
	for i, ai := range a {
		if ai == 0 || i > deg {
			continue
		}
		for j, bj := range b {
			if i+j > deg {
				break
			}
			out[i+j] += ai * bj
		}
	}
	return out
}

// convolveMin1 convolves acc with perRack restricted to per-rack counts
// ≥ 1, keeping degree ≤ maxDeg.
func convolveMin1(acc, perRack []float64, maxDeg int) []float64 {
	deg := len(acc) - 1 + len(perRack) - 1
	if deg > maxDeg {
		deg = maxDeg
	}
	out := make([]float64, deg+1)
	for i, ai := range acc {
		if ai == 0 || i > deg {
			continue
		}
		for f := 1; f < len(perRack) && i+f <= deg; f++ {
			out[i+f] += ai * perRack[f]
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
