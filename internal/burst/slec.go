package burst

import (
	"math"

	"mlec/internal/mathx"
	"mlec/internal/placement"
)

// SLECEvaluator computes conditional burst PDL for the four single-level
// placements of Figure 13.
type SLECEvaluator struct {
	Layout *placement.SLECLayout
}

// NewSLECEvaluator returns an evaluator over the layout.
func NewSLECEvaluator(l *placement.SLECLayout) *SLECEvaluator { return &SLECEvaluator{Layout: l} }

// TotalRacks implements Evaluator.
func (e *SLECEvaluator) TotalRacks() int { return e.Layout.Topo.Racks }

// DisksPerRack implements Evaluator.
func (e *SLECEvaluator) DisksPerRack() int { return e.Layout.Topo.DisksPerRack() }

// ConditionalPDL implements Evaluator.
func (e *SLECEvaluator) ConditionalPDL(b *BurstLayout) float64 {
	switch e.Layout.Placement {
	case placement.LocalCp:
		return e.localCp(b)
	case placement.LocalDp:
		return e.localDp(b)
	case placement.NetworkCp:
		return e.networkCp(b)
	default:
		return e.networkDp(b)
	}
}

// localCp: pools of k+p disks inside enclosures; every stripe spans its
// whole pool, so loss is certain iff some pool has ≥ p+1 failures.
func (e *SLECEvaluator) localCp(b *BurstLayout) float64 {
	l := e.Layout
	w := l.Params.Width()
	dpr := l.Topo.DisksPerRack()
	fails := make(map[int]int)
	for i, rack := range b.Racks {
		for _, d := range b.FailedDisks[i] {
			pool := (rack*dpr + d) / w // enclosure size divisible by w
			if fails[pool]++; fails[pool] > l.Params.P {
				return 1
			}
		}
	}
	return 0
}

// localDp: one declustered pool per enclosure; a pool with f failures
// loses a given stripe with the hypergeometric tail probability.
func (e *SLECEvaluator) localDp(b *BurstLayout) float64 {
	l := e.Layout
	d := l.Topo.DisksPerEnclosure
	dpr := l.Topo.DisksPerRack()
	fails := make(map[int]int)
	for i, rack := range b.Racks {
		for _, dd := range b.FailedDisks[i] {
			fails[(rack*dpr+dd)/d]++
		}
	}
	stripesPerPool := l.StripesPerPool()
	var expected float64
	for _, pool := range sortedKeys(fails) {
		if f := fails[pool]; f > l.Params.P {
			q := mathx.HypergeomTail(l.Params.P+1, f, d, l.Params.Width())
			expected += stripesPerPool * q
		}
	}
	return -math.Expm1(-expected)
}

// networkCp: racks are grouped by k+p; a stripe places one chunk on a
// uniformly random disk of each rack of its group.
func (e *SLECEvaluator) networkCp(b *BurstLayout) float64 {
	l := e.Layout
	w := l.Params.Width()
	dpr := float64(l.Topo.DisksPerRack())
	// Failure probability of a stripe's chunk per rack.
	probsByGroup := make(map[int][]float64)
	for i, rack := range b.Racks {
		g := rack / w
		probsByGroup[g] = append(probsByGroup[g], float64(len(b.FailedDisks[i]))/dpr)
	}
	stripesPerGroup := l.StripesPerPool() // one pool per group
	var expected float64
	for _, g := range sortedKeys(probsByGroup) {
		probs := probsByGroup[g]
		if len(probs) <= l.Params.P {
			continue // too few affected racks in this group
		}
		pLoss := poissonBinomialTail(probs, l.Params.P+1)
		expected += stripesPerGroup * pLoss
	}
	return -math.Expm1(-expected)
}

// networkDp: a stripe samples k+p distinct racks from the whole system
// and one uniformly random disk within each.
func (e *SLECEvaluator) networkDp(b *BurstLayout) float64 {
	l := e.Layout
	dpr := float64(l.Topo.DisksPerRack())
	psis := make([]float64, len(b.Racks))
	for i := range b.Racks {
		psis[i] = float64(len(b.FailedDisks[i])) / dpr
	}
	pLoss := sampledRackLossTail(psis, l.Topo.Racks, l.Params.Width(), l.Params.P+1)
	expected := l.TotalStripes() * pLoss
	return -math.Expm1(-expected)
}
