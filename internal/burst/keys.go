package burst

import "sort"

// sortedKeys returns m's keys in ascending order. The burst evaluators
// fold float expectations over map-keyed tallies; iterating the sorted
// keys instead of the map makes the accumulation order — and the last
// ULP of every PDL estimate — identical run to run.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
