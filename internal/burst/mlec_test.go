package burst

import (
	"math"
	"math/rand"
	"testing"

	"mlec/internal/mathx"
	"mlec/internal/placement"
	"mlec/internal/topology"
)

// smallTopo is a dense test datacenter where burst effects are strong
// enough to measure with modest trial counts: 6 racks × 2 enclosures × 8
// disks; (2+1)/(2+2) MLEC so local pools are 4 (Cp) or 8 (Dp) disks.
func smallTopo() (topology.Config, placement.Params) {
	topo := topology.Default()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 8
	return topo, placement.Params{KN: 2, PN: 1, KL: 2, PL: 2}
}

func mlecPDL(t *testing.T, topo topology.Config, p placement.Params, s placement.Scheme, x, y, trials int) float64 {
	t.Helper()
	l, err := placement.NewLayout(topo, p, s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := PDL(NewMLECEvaluator(l), x, y, trials, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return r.PDL
}

// TestFinding3ZeroLossGuarantees: a network stripe survives any pn rack
// failures, and y ≤ x+(local tolerance budget) failures cannot create
// pn+1 catastrophic pools (§4.1.1 F#3).
func TestFinding3ZeroLossGuarantees(t *testing.T) {
	topo := topology.Default()
	p := placement.DefaultParams()
	for _, s := range placement.AllSchemes {
		// x ≤ pn affected racks → PDL exactly 0, any y.
		for _, x := range []int{1, 2} {
			if got := mlecPDL(t, topo, p, s, x, x*100, 50); got != 0 {
				t.Errorf("%v x=%d: PDL = %g, want 0 (≤ pn racks)", s, x, got)
			}
		}
		// y ≤ x+8 failures in x racks cannot make 3 pools lose 4 disks
		// each (needs ≥ x+9 = (x−3)·1 + 3·4).
		for _, x := range []int{3, 5, 10} {
			if got := mlecPDL(t, topo, p, s, x, x+8, 50); got != 0 {
				t.Errorf("%v x=%d y=%d: PDL = %g, want 0 (F#3 budget)", s, x, x+8, got)
			}
		}
	}
}

// TestFinding1MorefailuresMorePDL: with bursts in ≥ pn+1 racks, PDL grows
// with the failure count (§4.1.1 F#1).
func TestFinding1MoreFailuresMorePDL(t *testing.T) {
	topo, p := smallTopo()
	const trials = 4000
	for _, s := range placement.AllSchemes {
		low := mlecPDL(t, topo, p, s, 2, 8, trials)
		high := mlecPDL(t, topo, p, s, 2, 16, trials) // every disk in 2 racks
		if high < low {
			t.Errorf("%v: PDL(y=16)=%g < PDL(y=8)=%g", s, high, low)
		}
		if high == 0 {
			t.Errorf("%v: saturated burst should lose data", s)
		}
	}
}

// TestFinding2ScatteredIsSafer: fixed y, more racks → lower PDL (F#2).
func TestFinding2ScatteredIsSafer(t *testing.T) {
	topo, p := smallTopo()
	const trials = 6000
	for _, s := range placement.AllSchemes {
		concentrated := mlecPDL(t, topo, p, s, 2, 12, trials)
		scattered := mlecPDL(t, topo, p, s, 6, 12, trials)
		if scattered > concentrated {
			t.Errorf("%v: scattered PDL %g > concentrated %g", s, scattered, concentrated)
		}
	}
}

// TestFinding4WorstAtPnPlus1Racks: PDL peaks when the burst hits exactly
// pn+1 racks (F#4).
func TestFinding4WorstAtPnPlus1Racks(t *testing.T) {
	topo, p := smallTopo() // pn+1 = 2
	const trials = 6000
	for _, s := range placement.AllSchemes {
		peak := mlecPDL(t, topo, p, s, 2, 12, trials)
		for _, x := range []int{3, 4, 6} {
			other := mlecPDL(t, topo, p, s, x, 12, trials)
			if other > peak*1.15 { // small MC slack
				t.Errorf("%v: PDL(x=%d)=%g exceeds peak at pn+1 racks %g", s, x, other, peak)
			}
		}
	}
}

// TestFindings567SchemeOrdering: C/D, D/C and D/D all tolerate localized
// bursts worse than C/C, and D/D is the worst overall (F#5, F#6, F#7).
func TestFindings567SchemeOrdering(t *testing.T) {
	topo, p := smallTopo()
	const trials = 20000
	x, y := 2, 10
	pdl := map[placement.Scheme]float64{}
	for _, s := range placement.AllSchemes {
		pdl[s] = mlecPDL(t, topo, p, s, x, y, trials)
	}
	cc, cd := pdl[placement.SchemeCC], pdl[placement.SchemeCD]
	dc, dd := pdl[placement.SchemeDC], pdl[placement.SchemeDD]
	t.Logf("PDL @(x=%d,y=%d): C/C=%.4g C/D=%.4g D/C=%.4g D/D=%.4g", x, y, cc, cd, dc, dd)
	if cd < cc {
		t.Errorf("F#5: C/D (%g) must be ≥ C/C (%g)", cd, cc)
	}
	if dc < cc {
		t.Errorf("F#6: D/C (%g) must be ≥ C/C (%g)", dc, cc)
	}
	if dd < cc || dd < cd*0.8 || dd < dc*0.8 {
		t.Errorf("F#7: D/D (%g) must be the worst (C/C=%g C/D=%g D/C=%g)", dd, cc, cd, dc)
	}
}

// TestConditionalPDLStripeLevelCrossCheck validates the analytic
// conditional PDL of a C/D layout against a direct stripe-level
// simulation that materializes declustered layouts and counts lost
// network stripes.
func TestConditionalPDLStripeLevelCrossCheck(t *testing.T) {
	topo, p := smallTopo()
	topo.DiskCapacityBytes = 64 * topo.ChunkSizeBytes // 64 chunks/disk
	l, err := placement.NewLayout(topo, p, placement.SchemeCD)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewMLECEvaluator(l)

	rng := rand.New(rand.NewSource(99))
	// Draw layouts until one has a materially nonzero conditional PDL so
	// the cross-check actually discriminates.
	var layout *BurstLayout
	var want float64
	for i := 0; ; i++ {
		var err error
		layout, err = SampleLayout(rng, topo.Racks, topo.DisksPerRack(), 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		want = ev.ConditionalPDL(layout)
		if want > 0.05 && want < 0.9 {
			break
		}
		if i > 200 {
			t.Fatal("no layout with nonzero conditional PDL found")
		}
	}

	// Direct simulation: for each placement sample, decluster each
	// pool's stripes uniformly, mark lost local stripes, pair local
	// stripe s across the aligned pools of each network pool, count
	// network stripes with ≥ pn+1 lost members.
	stripesPerPool := int(l.LocalStripesPerPool()) // 8·64/4 = 128
	w := p.LocalWidth()
	d := l.LocalPoolSize()
	dpr := topo.DisksPerRack()

	failedByPool := map[int]map[int]bool{} // pool → set of in-pool disk idx
	for i, rack := range layout.Racks {
		for _, disk := range layout.FailedDisks[i] {
			global := rack*dpr + disk
			pool := l.PoolOfDisk(global)
			if failedByPool[pool] == nil {
				failedByPool[pool] = map[int]bool{}
			}
			// In-pool index: disks of a Dp pool are the enclosure's.
			failedByPool[pool][global%d] = true
		}
	}

	const placements = 3000
	losses := 0
	for pi := 0; pi < placements; pi++ {
		// lost[pool][s] for affected pools only.
		lostByPool := map[int][]bool{}
		for pool, failed := range failedByPool {
			lost := make([]bool, stripesPerPool)
			for s := 0; s < stripesPerPool; s++ {
				cnt := 0
				for _, dd := range rng.Perm(d)[:w] {
					if failed[dd] {
						cnt++
					}
				}
				if cnt > p.PL {
					lost[s] = true
				}
			}
			lostByPool[pool] = lost
		}
		// Network pools: aligned members.
		members := map[int][]int{}
		for pool := range lostByPool {
			np := l.NetworkPoolOf(pool)
			members[np] = append(members[np], pool)
		}
		lossHere := false
		for _, pools := range members {
			for s := 0; s < stripesPerPool && !lossHere; s++ {
				cnt := 0
				for _, pool := range pools {
					if lostByPool[pool][s] {
						cnt++
					}
				}
				if cnt > p.PN {
					lossHere = true
				}
			}
			if lossHere {
				break
			}
		}
		if lossHere {
			losses++
		}
	}
	got := float64(losses) / placements
	lo, hi := mathx.WilsonInterval(losses, placements)
	t.Logf("analytic %.4f, stripe-level sim %.4f [%.4f, %.4f]", want, got, lo, hi)
	// The analytic value must fall in (a slightly widened) MC interval.
	slack := 0.03
	if want < lo-slack || want > hi+slack {
		t.Errorf("analytic conditional PDL %g outside sim interval [%g,%g]", want, lo, hi)
	}
}

func TestConditionalPDLNoCatastrophicPools(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeDD)
	ev := NewMLECEvaluator(l)
	// 3 failures in one rack cannot exceed pl=3 anywhere.
	b := &BurstLayout{Racks: []int{0}, FailedDisks: [][]int{{0, 1, 2}}}
	if got := ev.ConditionalPDL(b); got != 0 {
		t.Errorf("PDL = %g, want 0", got)
	}
}

func TestCCDeterministicLoss(t *testing.T) {
	// C/C with pn+1 catastrophic pools aligned in one network pool loses
	// data with certainty.
	topo, p := smallTopo()
	l := placement.MustNewLayout(topo, p, placement.SchemeCC)
	ev := NewMLECEvaluator(l)
	// Racks 0 and 1 are in the same rack group (width 3); kill the
	// first pool (disks 0..3) of each with pl+1 = 3 failures.
	b := &BurstLayout{
		Racks:       []int{0, 1},
		FailedDisks: [][]int{{0, 1, 2}, {0, 1, 2}},
	}
	if got := ev.ConditionalPDL(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("aligned catastrophic pools: PDL = %g, want 1", got)
	}
	// Same failures at different positions: no aligned network pool.
	b2 := &BurstLayout{
		Racks:       []int{0, 1},
		FailedDisks: [][]int{{0, 1, 2}, {4, 5, 6}},
	}
	if got := ev.ConditionalPDL(b2); got != 0 {
		t.Errorf("misaligned catastrophic pools: PDL = %g, want 0", got)
	}
}

func TestLostStripeFraction(t *testing.T) {
	topo := topology.Default()
	p := placement.DefaultParams()
	cp := NewMLECEvaluator(placement.MustNewLayout(topo, p, placement.SchemeCC))
	dp := NewMLECEvaluator(placement.MustNewLayout(topo, p, placement.SchemeCD))
	if cp.lostStripeFraction(3) != 0 || dp.lostStripeFraction(3) != 0 {
		t.Error("≤ pl failures must lose nothing")
	}
	if cp.lostStripeFraction(4) != 1 {
		t.Error("Cp pool with pl+1 failures loses everything")
	}
	phi := dp.lostStripeFraction(4)
	if phi < 5.5e-4 || phi > 6.5e-4 {
		t.Errorf("Dp φ(4) = %g, want ≈5.9e-4", phi)
	}
	if dp.lostStripeFraction(8) <= phi {
		t.Error("φ must grow with failure count")
	}
}
