package burst

import (
	"math"
	"math/rand"
	"testing"

	"mlec/internal/topology"
)

func TestSampleLayoutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := 1 + rng.Intn(10)
		y := x + rng.Intn(30)
		b, err := SampleLayout(rng, 60, 960, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Racks) != x || len(b.FailedDisks) != x {
			t.Fatalf("layout has %d racks, want %d", len(b.Racks), x)
		}
		if b.TotalFailures() != y {
			t.Fatalf("layout has %d failures, want %d", b.TotalFailures(), y)
		}
		seenRack := map[int]bool{}
		for i, r := range b.Racks {
			if r < 0 || r >= 60 || seenRack[r] {
				t.Fatalf("bad rack %d", r)
			}
			seenRack[r] = true
			if len(b.FailedDisks[i]) == 0 {
				t.Fatal("rack with zero failures")
			}
			seenDisk := map[int]bool{}
			for _, d := range b.FailedDisks[i] {
				if d < 0 || d >= 960 || seenDisk[d] {
					t.Fatalf("bad disk %d", d)
				}
				seenDisk[d] = true
			}
		}
	}
}

func TestSampleLayoutTightCorner(t *testing.T) {
	// y == x forces exactly one failure per rack; rejection would stall,
	// so the constructive fallback must kick in.
	rng := rand.New(rand.NewSource(2))
	b, err := SampleLayout(rng, 60, 960, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range b.FailedDisks {
		if len(d) != 1 {
			t.Fatalf("rack has %d failures, want 1", len(d))
		}
	}
}

func TestSampleLayoutErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := SampleLayout(rng, 60, 960, 0, 5); err == nil {
		t.Error("x=0 accepted")
	}
	if _, err := SampleLayout(rng, 60, 960, 61, 100); err == nil {
		t.Error("x>racks accepted")
	}
	if _, err := SampleLayout(rng, 60, 960, 5, 4); err == nil {
		t.Error("y<x accepted")
	}
	if _, err := SampleLayout(rng, 2, 3, 2, 7); err == nil {
		t.Error("y>x·dpr accepted")
	}
}

// bruteForceTail enumerates all outcomes of independent Bernoulli trials.
func bruteForceTail(probs []float64, k int) float64 {
	n := len(probs)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p, cnt := 1.0, 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= probs[i]
				cnt++
			} else {
				p *= 1 - probs[i]
			}
		}
		if cnt >= k {
			total += p
		}
	}
	return total
}

func TestPoissonBinomialTailBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		for k := 0; k <= n+1; k++ {
			got := poissonBinomialTail(probs, k)
			want := bruteForceTail(probs, k)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d k=%d got %g want %g", n, k, got, want)
			}
		}
	}
}

func TestPoissonBinomialPMFCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		capN := 1 + rng.Intn(n)
		pmf := poissonBinomialPMFCapped(probs, capN)
		// Sum of PMF must be 1; tail entry must equal the tail.
		sum := 0.0
		for _, v := range pmf {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("PMF sums to %g", sum)
		}
		if got, want := pmf[capN], bruteForceTail(probs, capN); math.Abs(got-want) > 1e-9 {
			t.Fatalf("capped tail %g want %g", got, want)
		}
	}
}

// TestSampledRackLossTailMonteCarlo validates the subset-DP against a
// direct simulation of the stripe-sampling process.
func TestSampledRackLossTailMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const totalRacks, m, threshold = 12, 5, 2
	psis := []float64{0.8, 0.5, 0.3, 0.9}
	got := sampledRackLossTail(psis, totalRacks, m, threshold)

	const trials = 400000
	hits := 0
	for i := 0; i < trials; i++ {
		picked := rng.Perm(totalRacks)[:m]
		losses := 0
		for _, r := range picked {
			if r < len(psis) && rng.Float64() < psis[r] {
				losses++
			}
		}
		if losses >= threshold {
			hits++
		}
	}
	want := float64(hits) / trials
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("DP %g vs MC %g", got, want)
	}
}

func TestSampledRackLossTailEdges(t *testing.T) {
	if got := sampledRackLossTail(nil, 10, 3, 1); got != 0 {
		t.Errorf("no affected racks → %g", got)
	}
	if got := sampledRackLossTail([]float64{0.5}, 10, 3, 0); got != 1 {
		t.Errorf("threshold 0 → %g", got)
	}
	// Single affected rack, threshold 1: P = P(pick it)·ψ = (m/R)·ψ.
	got := sampledRackLossTail([]float64{0.5}, 10, 3, 1)
	if want := 0.3 * 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("single-rack case %g want %g", got, want)
	}
	// All racks certain to fail their member: P(≥m)=1 at threshold m.
	psis := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := sampledRackLossTail(psis, 10, 4, 4); math.Abs(got-1) > 1e-12 {
		t.Errorf("certain case %g", got)
	}
}

func TestPDLInvalidCells(t *testing.T) {
	topo := topology.Default()
	_ = topo
	ev := &fakeEvaluator{racks: 60, dpr: 960, val: 0.5}
	r, err := PDL(ev, 10, 5, 100, 1) // y < x
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r.PDL) {
		t.Errorf("y<x PDL = %g, want NaN", r.PDL)
	}
	if _, err := PDL(ev, 1, 1, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
}

type fakeEvaluator struct {
	racks, dpr int
	val        float64
}

func (f *fakeEvaluator) ConditionalPDL(*BurstLayout) float64 { return f.val }
func (f *fakeEvaluator) TotalRacks() int                     { return f.racks }
func (f *fakeEvaluator) DisksPerRack() int                   { return f.dpr }

func TestPDLAveragesConditionals(t *testing.T) {
	ev := &fakeEvaluator{racks: 60, dpr: 960, val: 0.25}
	r, err := PDL(ev, 3, 30, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.PDL != 0.25 {
		t.Errorf("PDL = %g, want 0.25", r.PDL)
	}
	if r.Trials != 500 {
		t.Errorf("Trials = %d", r.Trials)
	}
	if r.Lo > 0.25 || r.Hi < 0.25 {
		t.Errorf("CI [%g,%g] excludes the mean", r.Lo, r.Hi)
	}
}

func TestHeatmapShape(t *testing.T) {
	ev := &fakeEvaluator{racks: 60, dpr: 960, val: 0.1}
	g, err := Heatmap(ev, []int{1, 3, 5}, []int{5, 10}, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 2 || len(g.Cells[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(g.Cells), len(g.Cells[0]))
	}
	if g.Cells[1][2].Racks != 5 || g.Cells[1][2].Failures != 10 {
		t.Error("cell coordinates wrong")
	}
}

func TestResultNines(t *testing.T) {
	r := Result{PDL: 1e-3}
	if got := r.Nines(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Nines = %g", got)
	}
}
