package burst

import (
	"math"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

func slecPDL(t *testing.T, topo topology.Config, p placement.SLECParams, pl placement.SLECPlacement, x, y, trials int) float64 {
	t.Helper()
	l, err := placement.NewSLECLayout(topo, p, pl)
	if err != nil {
		t.Fatal(err)
	}
	r, err := PDL(NewSLECEvaluator(l), x, y, trials, 777)
	if err != nil {
		t.Fatal(err)
	}
	return r.PDL
}

// smallSLECTopo: 6 racks × 2 × 8 disks with a (2+2) code (width 4
// divides both the enclosure size and the rack count... width 4: 8%4==0,
// 6 racks not divisible by 4 — use (2+1), width 3: 8%3 != 0. Use
// enclosures of 8 with (2+2): Net-Cp needs racks%4==0 → 8 racks.
func smallSLECTopo() (topology.Config, placement.SLECParams) {
	topo := topology.Default()
	topo.Racks = 8
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 8
	return topo, placement.SLECParams{K: 2, P: 2}
}

// TestSLECLocalVsNetworkTolerance encodes §5.1.3: local SLEC is
// susceptible to localized bursts, network SLEC to scattered bursts.
func TestSLECLocalVsNetworkTolerance(t *testing.T) {
	topo, p := smallSLECTopo()
	const trials = 8000

	// Localized burst: 12 failures in 1 rack.
	locCpLocal := slecPDL(t, topo, p, placement.LocalCp, 1, 12, trials)
	netCpLocal := slecPDL(t, topo, p, placement.NetworkCp, 1, 12, trials)
	if netCpLocal != 0 {
		t.Errorf("Net-Cp must have PDL 0 for single-rack bursts (p=2), got %g", netCpLocal)
	}
	if locCpLocal <= netCpLocal {
		t.Errorf("local SLEC (%g) must suffer more than network SLEC (%g) under localized bursts",
			locCpLocal, netCpLocal)
	}

	// Scattered burst: one failure in each of 8 racks.
	locCpScattered := slecPDL(t, topo, p, placement.LocalCp, 8, 8, trials)
	netDpScattered := slecPDL(t, topo, p, placement.NetworkDp, 8, 8, trials)
	if locCpScattered != 0 {
		t.Errorf("Loc-Cp with ≤1 failure per rack cannot lose data, got %g", locCpScattered)
	}
	if netDpScattered <= 0 {
		t.Error("Net-Dp must be exposed to scattered bursts")
	}
}

// TestSLECDpWorseThanCpLocalized: Loc-Dp has larger pools and therefore a
// higher chance of p+1 failures in one pool (Figure 13b vs 13a).
func TestSLECDpWorseThanCpLocalized(t *testing.T) {
	topo, p := smallSLECTopo()
	const trials = 12000
	cp := slecPDL(t, topo, p, placement.LocalCp, 1, 6, trials)
	dp := slecPDL(t, topo, p, placement.LocalDp, 1, 6, trials)
	if dp < cp {
		t.Errorf("Loc-Dp PDL (%g) must be ≥ Loc-Cp (%g) under localized bursts", dp, cp)
	}
}

// TestSLECNetDpWorseThanNetCpScattered: Net-Dp loses data for any p+1
// scattered failures, Net-Cp only within a rack group (Figure 13d vs 13c).
func TestSLECNetDpWorseThanNetCpScattered(t *testing.T) {
	topo, p := smallSLECTopo()
	const trials = 12000
	cp := slecPDL(t, topo, p, placement.NetworkCp, 8, 8, trials)
	dp := slecPDL(t, topo, p, placement.NetworkDp, 8, 8, trials)
	if dp < cp {
		t.Errorf("Net-Dp PDL (%g) must be ≥ Net-Cp (%g) under scattered bursts", dp, cp)
	}
}

// TestLocalCpGuarantee: with y ≤ p total failures, no pool can reach p+1
// failed disks, so Loc-Cp loses nothing. (The paper's stronger-looking
// y=x+p boundary in Figure 13a is only *approximately* zero: our exact DP
// shows ≈1e-8 there at paper scale — a rack holding p+1 failures can put
// them all in one pool — see TestExactLocalCpPaperScale.)
func TestLocalCpGuarantee(t *testing.T) {
	topo, p := smallSLECTopo()
	for _, x := range []int{1, 2} {
		if got := slecPDL(t, topo, p, placement.LocalCp, x, p.P, 300); got != 0 {
			t.Errorf("Loc-Cp x=%d y=%d: PDL %g, want 0", x, p.P, got)
		}
	}
}

// TestNetworkCpGuarantee: bursts confined to ≤ p racks never lose data in
// Net-Cp.
func TestNetworkCpGuarantee(t *testing.T) {
	topo, p := smallSLECTopo()
	for _, x := range []int{1, 2} {
		if got := slecPDL(t, topo, p, placement.NetworkCp, x, x*16, 300); got != 0 {
			t.Errorf("Net-Cp x=%d: PDL %g, want 0", x, got)
		}
	}
}

// TestExactLocalCpMatchesMonteCarlo is the headline validation: the pure
// dynamic-programming evaluator and the Monte Carlo estimator must agree.
func TestExactLocalCpMatchesMonteCarlo(t *testing.T) {
	topo, p := smallSLECTopo()
	l := placement.MustNewSLECLayout(topo, p, placement.LocalCp)
	for _, c := range []struct{ x, y int }{
		{1, 4}, {1, 8}, {2, 8}, {3, 10}, {4, 12}, {8, 16},
	} {
		exact, err := ExactLocalCpPDL(l, c.x, c.y)
		if err != nil {
			t.Fatal(err)
		}
		r, err := PDL(NewSLECEvaluator(l), c.x, c.y, 60000, 31)
		if err != nil {
			t.Fatal(err)
		}
		tol := 0.015 + 0.05*exact
		if math.Abs(exact-r.PDL) > tol {
			t.Errorf("x=%d y=%d: exact %.4f vs MC %.4f (±%.4f)", c.x, c.y, exact, r.PDL, tol)
		}
	}
}

func TestExactLocalCpEdges(t *testing.T) {
	topo, p := smallSLECTopo()
	l := placement.MustNewSLECLayout(topo, p, placement.LocalCp)
	// y < x: undefined cell.
	v, err := ExactLocalCpPDL(l, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(v) {
		t.Errorf("y<x: %g, want NaN", v)
	}
	// y ≤ p in one rack: zero (up to float residue in the DP).
	v, err = ExactLocalCpPDL(l, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-12 {
		t.Errorf("y≤p: %g, want ≈0", v)
	}
	// All disks failed: certain loss.
	v, err = ExactLocalCpPDL(l, 8, 8*16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Errorf("all disks failed: %g, want 1", v)
	}
	// Wrong placement rejected.
	ld := placement.MustNewSLECLayout(topo, p, placement.LocalDp)
	if _, err := ExactLocalCpPDL(ld, 1, 4); err == nil {
		t.Error("ExactLocalCpPDL accepted Loc-Dp")
	}
}

// TestExactLocalCpPaperScale exercises the exact DP on the full 57,600
// disk topology with a (7+3) code.
func TestExactLocalCpPaperScale(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewSLECLayout(topo, placement.SLECParams{K: 7, P: 3}, placement.LocalCp)
	// The paper's y=x+p "zero" boundary (Figure 13a) is approximately —
	// not exactly — zero: one rack can receive p+1 failures that all
	// land in a single 10-disk pool. The exact DP quantifies it.
	v, err := ExactLocalCpPDL(l, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 1e-6 {
		t.Errorf("guarantee cell: %g, want tiny but positive (≈1e-8)", v)
	}
	// A dense single-rack burst has measurable PDL, monotone in y.
	v30, err := ExactLocalCpPDL(l, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	v60, err := ExactLocalCpPDL(l, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !(v60 > v30 && v30 > 0) {
		t.Errorf("monotonicity: PDL(30)=%g PDL(60)=%g", v30, v60)
	}
}
