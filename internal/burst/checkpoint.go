package burst

import "fmt"

// Checkpoint kinds inside the runctl envelope; LoadCheckpoint rejects
// files written by other estimators.
const (
	pdlCheckpointKind  = "burst.pdl"
	gridCheckpointKind = "burst.grid"
)

// pdlCheckpoint holds the per-batch tallies of one (x, y) cell. Each
// batch's sums are pure functions of (seed, x, y, batch index), so the
// reduction over them in batch order is independent of which process —
// original or resumed — computed which batch.
type pdlCheckpoint struct {
	Done  []bool    `json:"done"`
	Sums  []float64 `json:"sums"`
	Sum2s []float64 `json:"sum2s"`
	Ns    []int     `json:"ns"`
}

// gridCheckpoint holds fully evaluated heatmap cells; partially
// evaluated cells are never stored.
type gridCheckpoint struct {
	Done  [][]bool   `json:"done"`
	Cells [][]Result `json:"cells"`
}

// pdlFingerprint binds a cell checkpoint to its campaign. The Evaluator
// is an interface, so only its topology dimensions enter the
// fingerprint — callers changing the erasure-code geometry behind the
// same (racks, disks-per-rack) topology must also change the seed or
// the checkpoint path.
func pdlFingerprint(ev Evaluator, x, y, trials int, seed int64) string {
	return fmt.Sprintf("x=%d|y=%d|trials=%d|seed=%d|racks=%d|dpr=%d",
		x, y, trials, seed, ev.TotalRacks(), ev.DisksPerRack())
}

func gridFingerprint(ev Evaluator, xs, ys []int, trials int, seed int64) string {
	return fmt.Sprintf("xs=%v|ys=%v|trials=%d|seed=%d|racks=%d|dpr=%d",
		xs, ys, trials, seed, ev.TotalRacks(), ev.DisksPerRack())
}
