package lint

import (
	"go/ast"
	"go/types"

	"mlec/internal/lint/cfg"
)

// HotInline flags per-iteration calls in //mlec:hot loops whose callee
// is small enough that inlining is the expected win but whose shape
// defeats the gc inliner: a defer, a closure definition, a recover, a
// go statement, a select, or a non-leaf loop (a loop that itself
// calls). For such a callee the call overhead (argument marshalling,
// frame setup, lost registerization) is comparable to the work done,
// and it is paid once per hot-loop iteration.
//
// What is NOT flagged, and why:
//
//   - Large callees (above inlineNodeBudget AST nodes): the per-call
//     overhead is amortized over the callee's own work — the gf256
//     word kernels are the canonical case, and inlining them would be
//     harmful anyway.
//   - Calls in an early-exit branch (an if/case body ending in return
//     or panic): they run at most once per loop, not per iteration.
//   - //mlec:cold callees: the annotation is the reviewed claim that
//     the call is off the steady-state path (amortized poll points).
//   - Interface-method calls: hotiface owns dynamic dispatch.
//   - Out-of-module callees: their bodies are not loaded, and the
//     stdlib's hot-path helpers (encoding/binary, atomics) are
//     intrinsified or inlined already.
//
// Indirect calls through a function value are flagged too: they cannot
// be inlined at all, which on a hot loop deserves the same scrutiny.
// `mlecvet -compiler` cross-checks every flagged callee against the
// inliner's own `-m` verdicts, so the shape heuristics can never
// silently diverge from the real compiler.
var HotInline = &Analyzer{
	Name: "hotinline",
	Doc:  "flag hot-loop calls to small callees whose shape defeats the inliner",
	Run:  runHotInline,
}

// inlineNodeBudget separates "small helper whose call overhead
// matters" from "kernel that amortizes its own call". The gc inliner
// budget is 80 IR nodes; AST nodes run a little denser, and the point
// here is a coarse size class, not a cost model — the compiler oracle
// is the precise arbiter.
const inlineNodeBudget = 80

// inlineExtraCallCost mirrors the gc inliner's charge for a call inside
// a candidate body. It only gates the callInlinable claim, not the
// blocker findings: a two-call mutex helper (Lock + Unlock) costs
// ~130 IR units and will not inline however small its source is, so
// claiming it to the oracle would be a guaranteed disagreement.
const inlineExtraCallCost = 57

func runHotInline(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncCold(fd) {
				continue
			}
			direct := pass.funcDirectHot(fd)
			var regions []ast.Stmt
			if !direct {
				regions = pass.HotRegions(fd)
				if len(regions) == 0 {
					continue
				}
			}
			for _, site := range hotLoopCalls(pass, fd) {
				if !direct && !inStmts(site.call, regions) {
					continue
				}
				pass.Report(site.call.Pos(), "%s", site.message(pass, fd))
			}
		}
	}
	return nil
}

// inlineSite is one suspicious call in a hot loop.
type inlineSite struct {
	call     *ast.CallExpr
	callee   *types.Func // nil for indirect calls
	indirect bool
	blocker  string
}

func (s *inlineSite) message(pass *Pass, fd *ast.FuncDecl) string {
	if s.indirect {
		return fd.Name.Name + " calls " + types.ExprString(s.call.Fun) +
			" through a function value in a hot loop; an indirect call cannot be inlined — " +
			"devirtualize it (call the function directly) or hoist the dispatch out of the loop"
	}
	return fd.Name.Name + " calls " + s.callee.Name() + " in a hot loop, but its " + s.blocker +
		" defeats the inliner despite its size; restructure the callee (hoist the blocker out) " +
		"or annotate it //mlec:cold with a rationale if the call is off the steady-state path"
}

// hotLoopCalls collects the calls of fd that execute once per
// iteration of some loop: call sites in loop blocks of the CFG,
// excluding early-exit branches.
func hotLoopCalls(pass *Pass, fd *ast.FuncDecl) []inlineSite {
	var sites []inlineSite
	for _, call := range loopCallExprs(fd) {
		if site, verdict := judgeCall(pass, call); verdict == callBad {
			sites = append(sites, site)
		}
	}
	return sites
}

// loopCallExprs returns the CallExprs of fd that lie in loop blocks
// and outside early-exit branches, in source order.
func loopCallExprs(fd *ast.FuncDecl) []*ast.CallExpr {
	g := cfg.Build(fd.Body)
	loops := g.LoopBlocks()

	// Early-exit branches: if/case bodies that end in return or panic
	// run at most once per loop, so their calls are not steady-state.
	exits := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if terminates(n.Body.List) {
				exits[n.Body] = true
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && terminates(els.List) {
				exits[els] = true
			}
		case *ast.CaseClause:
			if terminates(n.Body) {
				exits[n] = true
			}
		case *ast.CommClause:
			if terminates(n.Body) {
				exits[n] = true
			}
		}
		return true
	})
	inExit := func(n ast.Node) bool {
		for e := range exits {
			if n.Pos() >= e.Pos() && n.End() <= e.End() {
				return true
			}
		}
		return false
	}

	var calls []*ast.CallExpr
	seen := make(map[*ast.CallExpr]bool)
	for _, b := range g.Blocks {
		if !loops[b] {
			continue
		}
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if c, ok := n.(*ast.CallExpr); ok && !seen[c] && !inExit(c) {
					seen[c] = true
					calls = append(calls, c)
				}
				return true
			})
		}
	}
	return calls
}

// callVerdict is judgeCall's three-way outcome. The distinction between
// callFine and callInlinable matters only to the compiler oracle:
// callInlinable is a positive claim ("the inliner will take this small
// blocker-free callee") that `mlecvet -compiler` checks against the
// `-m` output, while callFine is a mere absence of findings.
type callVerdict int

const (
	callFine      callVerdict = iota // nothing to say
	callBad                          // flag: indirect, or shape defeats the inliner
	callInlinable                    // small in-module leaf: claim `can inline`
)

// judgeCall decides whether one hot-loop call is worth flagging.
func judgeCall(pass *Pass, call *ast.CallExpr) (inlineSite, callVerdict) {
	// Conversions and builtins are not calls.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return inlineSite{}, callFine
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return inlineSite{}, callFine
		}
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked literal: the inliner handles these.
		return inlineSite{}, callFine
	}

	callee := calleeFunc(pass.Info, call)
	if callee == nil {
		return inlineSite{call: call, indirect: true}, callBad
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return inlineSite{}, callFine // hotiface's domain
		}
	}
	ds, known := pass.Facts.decls[callee]
	if !known || ds.decl.Body == nil {
		return inlineSite{}, callFine // out of module
	}
	if pass.Facts.IsCold(callee) {
		return inlineSite{}, callFine
	}
	if nodeCount(ds.decl.Body) > inlineNodeBudget {
		return inlineSite{}, callFine
	}
	blocker := inlineBlocker(ds.pkg.Info, ds.decl.Body)
	if blocker != "" {
		return inlineSite{call: call, callee: callee, blocker: blocker}, callBad
	}
	if inlineCostEstimate(ds.pkg.Info, ds.decl.Body) > inlineNodeBudget {
		// Blocker-free but call-heavy: the inliner will reject it on
		// cost, so it is neither a finding nor a claim.
		return inlineSite{}, callFine
	}
	return inlineSite{call: call, callee: callee}, callInlinable
}

// inlineCostEstimate approximates the gc inliner's cost for body: one
// unit per AST node plus the flat extra-call charge for every real call
// (conversions and builtins are free or intrinsified).
func inlineCostEstimate(info *types.Info, body *ast.BlockStmt) int {
	cost := nodeCount(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isRealCall(info, c) {
			cost += inlineExtraCallCost
		}
		return true
	})
	return cost
}

// nodeCount sizes a body in AST nodes, the proxy for the inliner's IR
// node budget.
func nodeCount(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(ast.Node) bool {
		n++
		return true
	})
	return n
}

// inlineBlocker returns a description of the first construct in body
// that prevents the gc inliner from inlining the function, or "".
// info must be the types.Info of the package that declares the body.
func inlineBlocker(info *types.Info, body *ast.BlockStmt) string {
	blocker := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if blocker != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			blocker = "defer"
		case *ast.GoStmt:
			blocker = "go statement"
		case *ast.SelectStmt:
			blocker = "select"
		case *ast.FuncLit:
			blocker = "closure"
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "recover" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					blocker = "recover"
				}
			}
		case *ast.ForStmt:
			if loopCalls(info, n.Body) {
				blocker = "non-leaf loop"
			}
		case *ast.RangeStmt:
			if loopCalls(info, n.Body) {
				blocker = "non-leaf loop"
			}
		}
		return true
	})
	return blocker
}

// loopCalls reports whether a loop body performs a real function call
// (conversions and length-safe builtins excluded) — the combination
// (loop + call) that keeps a small function out of the inliner's
// budget and out of leaf-function optimizations.
func loopCalls(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			found = true // a closure inside a loop is a blocker by itself
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && isRealCall(info, c) {
			found = true
			return false
		}
		return true
	})
	return found
}
