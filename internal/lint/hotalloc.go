package lint

import (
	"go/ast"
)

// HotAlloc enforces the core hot-path contract: no steady-state heap
// allocation inside a //mlec:hot function or region. It owns the
// general allocation sources — make, new, slice/map composite
// literals, closures capturing locals, bound method values,
// string<->[]byte conversions, implicit variadic slices and fmt/log
// calls. Appends are hotprealloc's (they have a dedicated remedy) and
// interface boxing is hotiface's, so each site is reported exactly
// once across the family.
//
// The escape engine's two exemptions apply: an allocation on a
// cold path (an if/case body ending in return or panic — error
// formatting, precondition panics) is not a steady-state cost, and an
// allocation bound to a local the engine cannot see escaping is
// plausibly stack-allocated by the compiler and reported by nothing.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid steady-state heap allocations in //mlec:hot functions and regions",
	Run:  runHotAlloc,
}

// hotScope names why a site is in hot scope, for diagnostics.
type hotScope struct {
	fd    *ast.FuncDecl
	label string
}

// eachHotSite walks every declaration of the pass and invokes fn for
// each escape-engine site that lies in hot scope: anywhere in a hot
// function, or inside a //mlec:hot region statement of any function.
// Cold functions are skipped wholesale — the annotation is the
// reviewed opt-out.
func eachHotSite(pass *Pass, fn func(scope hotScope, s AllocSite)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.FuncCold(fd) {
				continue
			}
			if pass.FuncHot(fd) {
				scope := hotScope{fd, pass.HotLabel(fd)}
				for _, s := range pass.FuncAllocSites(fd) {
					fn(scope, s)
				}
				continue
			}
			regions := pass.HotRegions(fd)
			if len(regions) == 0 {
				continue
			}
			scope := hotScope{fd, "inside //mlec:hot region of " + fd.Name.Name}
			for _, s := range pass.FuncAllocSites(fd) {
				for _, r := range regions {
					if s.Node.Pos() >= r.Pos() && s.Node.End() <= r.End() {
						fn(scope, s)
						break
					}
				}
			}
		}
	}
}

func runHotAlloc(pass *Pass) error {
	eachHotSite(pass, func(scope hotScope, s AllocSite) {
		if s.Class != HeapAlloc {
			return
		}
		switch s.kind {
		case akMake, akNew, akLit, akClosure, akMethodValue, akStringConv, akVariadic, akFmt:
		default:
			return
		}
		where := "on the hot path"
		if s.InLoop {
			where = "in a hot loop"
		}
		pass.Report(s.Node.Pos(),
			"%s %s heap-allocates %s (%s); hoist it out, reuse a buffer, or annotate the function //mlec:cold with a rationale",
			scope.fd.Name.Name, where, s.What, scope.label)
	})
	return nil
}
