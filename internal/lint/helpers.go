package lint

import (
	"go/ast"
	"go/types"
)

// isRandRandPtr reports whether t is *math/rand.Rand (or v2's *Rand).
func isRandRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "math/rand" || p == "math/rand/v2"
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsLockCall reports whether the subtree contains a call to a
// method named Lock or RLock — the heuristic for "this body acquires a
// mutex before touching shared state".
func containsLockCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}

// sameSimpleExpr reports structural equality of two side-effect-free
// expressions built from identifiers, selectors, parens and indexing.
// Used to recognize the x != x NaN test.
func sameSimpleExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameSimpleExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameSimpleExpr(a.X, b.X) && sameSimpleExpr(a.Index, b.Index)
	case *ast.ParenExpr:
		return sameSimpleExpr(a.X, b)
	}
	if p, ok := b.(*ast.ParenExpr); ok {
		return sameSimpleExpr(a, p.X)
	}
	return false
}

// receiverName returns the receiver identifier name of a method
// declaration, or "" for functions and anonymous receivers.
func receiverName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// receiverBaseType resolves the named type a method is declared on,
// unwrapping one pointer.
func receiverBaseType(info *types.Info, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isLibraryPackage reports whether the package is library code (not a
// main package); analyzers about API discipline skip binaries.
func isLibraryPackage(pkg *types.Package) bool {
	return pkg.Name() != "main"
}
