package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"mlec/internal/lint/cfg"
)

// FuzzTaintEngine feeds arbitrary parser-valid Go sources through the
// CFG builder, the taint engine and the domain engine. Neither engine
// may panic or diverge, whatever the control-flow shape: the worklists
// must reach their fixed points even on code that does not type-check
// (the fuzzer's inputs carry an empty types.Info, which is also how the
// engines see expressions the checker could not resolve). The corpus is
// seeded from the analyzer fixtures, so every construct an analyzer
// cares about is a mutation starting point.
func FuzzTaintEngine(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "src", "*", "*.go"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no fixture seeds under testdata/src")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("package p\nfunc f() { for { if x { continue }; break } }\n")
	f.Add("package p\nfunc f(n int) int {\n\tgoto L\nL:\n\treturn n\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		facts := &Facts{
			decls:     make(map[*types.Func]*declSite),
			fset:      fset,
			units:     make(unitIndex),
			summaries: make(map[*types.Func]*funcSummary),
			domains:   make(map[*types.Func]*domainSummary),
			mayFail:   make(map[*types.Func]bool),
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg.Build(fd.Body)
			analyzeBody(info, facts, fd.Body, nil, nil, 0)
			domainFlow(info, facts, fd.Body, nil, nil, 0)
		}
	})
}
