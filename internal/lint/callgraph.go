package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// callGraph is the module-wide direct-call graph over every function
// declaration the fact store indexed. It exists to order the eager
// summary computation: summaries are evaluated bottom-up over the
// strongly-connected-component condensation, so by the time a caller is
// summarized every callee outside its own cycle is final, and callees
// inside the cycle converge by fixed-point iteration (see facts.go).
//
// Edges cover direct calls only — a call through a function value or an
// interface method has no compile-time callee and is handled
// conservatively by the dataflow engines. Calls made inside function
// literals are attributed to the enclosing declaration: the closure runs
// with the declaration's summaries in scope, and for ordering purposes
// "may transitively invoke" is the relation that matters.
type callGraph struct {
	// nodes in deterministic declaration order (file name, then offset).
	nodes []*cgNode
	// sccs lists the condensation bottom-up: every callee of a node in
	// sccs[i] lies in some sccs[j] with j ≤ i. Nodes within one SCC call
	// each other (or are singletons).
	sccs [][]*cgNode
}

// cgNode is one function declaration in the call graph.
type cgNode struct {
	fn   *types.Func
	site *declSite
	// callees in first-call order, deduplicated, intra-module only.
	callees []*cgNode

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// buildCallGraph constructs the graph over decls. Iteration order is
// made deterministic by sorting declarations by source position, so the
// SCC list (and therefore summary evaluation order and any diagnostics
// that depend on it) is stable run to run.
func buildCallGraph(decls map[*types.Func]*declSite) *callGraph {
	g := &callGraph{}
	byFn := make(map[*types.Func]*cgNode, len(decls))
	for fn, site := range decls {
		n := &cgNode{fn: fn, site: site, index: -1}
		byFn[fn] = n
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(g.nodes, func(i, j int) bool {
		a := g.nodes[i].site.pkg.Fset.Position(g.nodes[i].site.decl.Pos())
		b := g.nodes[j].site.pkg.Fset.Position(g.nodes[j].site.decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, n := range g.nodes {
		n.collectCallees(byFn)
	}
	g.condense()
	return g
}

// collectCallees walks the declaration body (descending into function
// literals) and records every resolvable intra-module callee once.
func (n *cgNode) collectCallees(byFn map[*types.Func]*cgNode) {
	if n.site.decl.Body == nil {
		return
	}
	seen := make(map[*cgNode]bool)
	info := n.site.pkg.Info
	ast.Inspect(n.site.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		callee, ok := byFn[fn]
		if !ok || seen[callee] {
			return true
		}
		seen[callee] = true
		n.callees = append(n.callees, callee)
		return true
	})
}

// condense runs Tarjan's strongly-connected-components algorithm. A
// property of Tarjan worth relying on: components are emitted in
// reverse topological order of the condensation — callees before
// callers — which is exactly the bottom-up evaluation order the eager
// fact store needs, so the emission order is kept as-is.
func (g *callGraph) condense() {
	t := &tarjan{}
	for _, n := range g.nodes {
		if n.index < 0 {
			t.strongConnect(n)
		}
	}
	g.sccs = t.sccs
}

type tarjan struct {
	counter int
	stack   []*cgNode
	sccs    [][]*cgNode
}

func (t *tarjan) strongConnect(n *cgNode) {
	n.index = t.counter
	n.lowlink = t.counter
	t.counter++
	t.stack = append(t.stack, n)
	n.onStack = true
	for _, m := range n.callees {
		if m.index < 0 {
			t.strongConnect(m)
			if m.lowlink < n.lowlink {
				n.lowlink = m.lowlink
			}
		} else if m.onStack && m.index < n.lowlink {
			n.lowlink = m.index
		}
	}
	if n.lowlink != n.index {
		return
	}
	var scc []*cgNode
	for {
		m := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		m.onStack = false
		scc = append(scc, m)
		if m == n {
			break
		}
	}
	t.sccs = append(t.sccs, scc)
}
