package lint

// HotDefer flags defer statements inside loops of hot scope. A defer
// in a loop cannot be open-coded: each iteration heap-allocates a
// _defer record and chains it, and nothing runs until the function
// returns — so the usual close-per-iteration intent is wrong twice
// over (it leaks until return and it allocates per iteration). The
// remedy is an explicit call at the end of the iteration, or an inner
// function owning the defer.
//
// Loop membership comes from the CFG, so loops written with a
// backward goto are classified too; a defer outside any loop is fine
// and unreported even in hot scope.
var HotDefer = &Analyzer{
	Name: "hotdefer",
	Doc:  "forbid defer statements inside loops on hot paths",
	Run:  runHotDefer,
}

func runHotDefer(pass *Pass) error {
	eachHotSite(pass, func(scope hotScope, s AllocSite) {
		if s.kind != akDefer || !s.InLoop {
			return
		}
		pass.Report(s.Node.Pos(),
			"%s defers inside a hot loop (%s); each iteration allocates a defer record that only runs at return — call directly or wrap the iteration in a function",
			scope.fd.Name.Name, scope.label)
	})
	return nil
}
