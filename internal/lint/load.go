package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("mlec/internal/burst").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// loader links back to the Loader that produced this package, so
	// the fact store can resolve declarations in dependency packages.
	loader *Loader

	// allows maps filename → line → set of analyzer names allowlisted
	// at that line by //lint:allow directives.
	allows map[string]map[int]map[string]bool
	// units maps filename → line → domain declared at that line by
	// //mlec:unit directives (see domain.go).
	units map[string]map[int]Domain
	// hots and colds map filename → line of //mlec:hot and //mlec:cold
	// directives (see hot.go for the attachment and propagation rules).
	hots  map[string]map[int]bool
	colds map[string]map[int]bool
	// guards maps filename → line → guard name declared at that line by
	// //mlec:guardedby directives (see lockstate.go for the attachment
	// rules and the lock-state engine that enforces them).
	guards map[string]map[int]string
	// guardedFields and guardedVars are the resolved //mlec:guardedby
	// annotations of this package: struct field → sibling mutex field,
	// and package-level var → package-level mutex var. Filled by
	// validateGuardDirectives after type-checking.
	guardedFields map[*types.Var]*types.Var
	guardedVars   map[*types.Var]*types.Var
	// Malformed records //lint:allow directives missing the mandatory
	// analyzer name or reason; the driver reports them.
	Malformed []token.Position
	// MalformedUnit records //mlec:unit directives naming no (or an
	// unknown) domain; the driver reports them.
	MalformedUnit []token.Position
	// MalformedHot records //mlec:hot / //mlec:cold directives that
	// attach to nothing: hot must sit on (or directly above) a function
	// declaration or a statement, cold on a function declaration. A
	// dangling annotation is the silent failure mode of an enforcement
	// layer — the author believes a kernel is guarded when nothing is —
	// so it is reported rather than ignored.
	MalformedHot []token.Position
	// MalformedGuard records //mlec:guardedby directives that name no
	// guard, attach to nothing, or name a guard that does not resolve to
	// a sibling mutex field (or package-level mutex var); the driver
	// reports them for the same reason as MalformedHot.
	MalformedGuard []token.Position
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed by a directive on the same line or the line directly above.
func (p *Package) allowed(analyzer string, pos token.Position) bool {
	lines := p.allows[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// A Loader parses and type-checks packages of a single module from
// source, resolving intra-module imports recursively and standard
// library imports through the compiler's source importer. It performs
// the role of go/packages for this dependency-free repository.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
	// IncludeTests adds _test.go files of the package under test (not
	// external _test packages). Off by default: analyzers target
	// library code, and test files freely use conveniences the suite
	// forbids elsewhere.
	IncludeTests bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  modDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns ("./...", "./internal/burst", or
// bare import paths within the module) and returns the matched
// packages, type-checked, in sorted order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.moduleDir, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.moduleDir, strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/..."))
			if err := l.walk(root, dirs); err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			dirs[filepath.Join(l.moduleDir, strings.TrimPrefix(pat, "./"))] = true
		case pat == l.modulePath || strings.HasPrefix(pat, l.modulePath+"/"):
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.modulePath), "/")
			dirs[filepath.Join(l.moduleDir, rel)] = true
		default:
			return nil, fmt.Errorf("lint: unsupported pattern %q (use ./... or ./dir)", pat)
		}
	}
	var out []*Package
	var paths []string
	for dir := range dirs {
		paths = append(paths, dir)
	}
	sort.Strings(paths)
	for _, dir := range paths {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walk collects every directory under root containing non-test Go
// files, skipping testdata, vendored and hidden trees.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// LoadDir parses and type-checks the package in dir (relative paths
// resolve against the working directory). It returns (nil, nil) for
// directories with no non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return nil, err
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path)
}

// loadPath loads an intra-module import path, memoized.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleDir, rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if !fileIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// External test packages (package foo_test) cannot mix with the
	// package under test in one type-check; drop them.
	if l.IncludeTests {
		base := files[0].Name.Name
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == base {
				kept = append(kept, f)
			}
		}
		files = kept
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	pkg.collectAllows()
	pkg.validateHotDirectives()
	pkg.validateGuardDirectives()
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg satisfies the type-checker: module-internal paths load from
// source recursively; everything else is delegated to the standard
// library source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// fileIncluded evaluates the file's build constraints (//go:build or
// legacy // +build lines before the package clause) against the host
// GOOS/GOARCH. Multiple constraint lines are conjoined, matching the
// go tool. Files without constraints are always included.
func fileIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) && !constraint.IsPlusBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue // malformed constraint: leave it to the compiler
		}
		if !expr.Eval(buildTagSatisfied) {
			return false
		}
	}
	return true
}

// buildTagSatisfied answers for the host platform and the gc toolchain;
// release tags (go1.x) are all considered satisfied.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		return rest != ""
	}
	return tag == "unix" && (runtime.GOOS == "linux" || runtime.GOOS == "darwin")
}

// parseAllowDirective parses one comment's text as a //lint:allow
// directive. isDirective reports whether the comment is an allow
// directive at all; ok reports whether it carries both the mandatory
// analyzer name and a reason. The analyzer name is returned only when
// ok.
func parseAllowDirective(text string) (analyzer string, isDirective, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:allow")
	if !found {
		return "", false, false
	}
	fields := strings.Fields(rest)
	// Both the analyzer name and a reason are mandatory; a bare
	// directive is reported, not honored.
	if len(fields) < 2 {
		return "", true, false
	}
	return fields[0], true, true
}

// parseGuardDirective parses one comment's text as a //mlec:guardedby
// directive. isGuard reports whether the comment is a guardedby
// directive at all; ok reports whether it names exactly one guard.
func parseGuardDirective(text string) (guard string, isGuard, ok bool) {
	rest, found := strings.CutPrefix(text, "//mlec:guardedby")
	if !found {
		return "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", true, false
	}
	return fields[0], true, true
}

// collectAllows indexes //lint:allow, //mlec:unit, //mlec:guardedby and
// //mlec:hot / //mlec:cold directives by file and line.
func (p *Package) collectAllows() {
	p.allows = make(map[string]map[int]map[string]bool)
	p.units = make(map[string]map[int]Domain)
	p.hots = make(map[string]map[int]bool)
	p.colds = make(map[string]map[int]bool)
	p.guards = make(map[string]map[int]string)
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if guard, isGuard, ok := parseGuardDirective(c.Text); isGuard {
					pos := p.Fset.Position(c.Pos())
					if !ok {
						p.MalformedGuard = append(p.MalformedGuard, pos)
						continue
					}
					byLine := p.guards[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]string)
						p.guards[pos.Filename] = byLine
					}
					byLine[pos.Line] = guard
					continue
				}
				if kind, isHot := parseHotDirective(c.Text); isHot {
					pos := p.Fset.Position(c.Pos())
					byLine := p.hots
					if kind == "cold" {
						byLine = p.colds
					}
					lines := byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						byLine[pos.Filename] = lines
					}
					lines[pos.Line] = true
					continue
				}
				if d, isUnit, ok := parseUnitDirective(c.Text); isUnit {
					pos := p.Fset.Position(c.Pos())
					if !ok {
						p.MalformedUnit = append(p.MalformedUnit, pos)
						continue
					}
					byLine := p.units[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]Domain)
						p.units[pos.Filename] = byLine
					}
					byLine[pos.Line] = d
					continue
				}
				analyzer, isDirective, ok := parseAllowDirective(c.Text)
				if !isDirective {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if !ok {
					p.Malformed = append(p.Malformed, pos)
					continue
				}
				byLine := p.allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					p.allows[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				set[analyzer] = true
			}
		}
	}
}
