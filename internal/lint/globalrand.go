package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids calls to math/rand's package-level convenience
// functions (rand.Intn, rand.Float64, rand.Seed, …) in library code.
//
// The global source is shared mutable state: any call makes the result
// depend on every other global-source call that ever ran in the
// process, so a simulation that touches it is not replayable from its
// seed. Every sampling site must instead thread an explicitly seeded
// *rand.Rand (constructing one with rand.New/rand.NewSource is fine).
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand global-source calls; thread a seeded *rand.Rand instead",
	Run:  runGlobalRand,
}

// globalRandOK lists the math/rand package-level functions that do not
// touch the global source.
var globalRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runGlobalRand(pass *Pass) error {
	if !isLibraryPackage(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method on *Rand / *Zipf: fine
			}
			if globalRandOK[fn.Name()] {
				return true
			}
			pass.Report(call.Pos(),
				"call to global-source rand.%s makes the simulation unreplayable; thread a seeded *rand.Rand",
				fn.Name())
			return true
		})
	}
	return nil
}
