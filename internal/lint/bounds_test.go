package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// boundsSitesSrc parses and type-checks one source file and returns the
// bounds-engine sites per function name.
func boundsSitesSrc(t *testing.T, src string) map[string][]boundsSite {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "bounds_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type error in test source: %v", err)
	}
	out := make(map[string][]boundsSite)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out[fd.Name.Name] = analyzeBounds(info, fd.Body)
		}
	}
	return out
}

// boundsStrings renders sites as "kind expr verdict" in source order for
// compact comparison.
func boundsStrings(sites []boundsSite) []string {
	var out []string
	for _, s := range sites {
		verdict := "unproven"
		if s.proven {
			verdict = "proven"
		}
		out = append(out, fmt.Sprintf("%s %s %s", s.kind, s.expr, verdict))
	}
	return out
}

// TestBoundsEngine pins the transfer rules case by case. The fixture
// test (testdata/src/hotbce) covers the analyzer policy end to end;
// these cases pin the engine verdicts directly, including sites outside
// loops that the analyzer never reports.
func TestBoundsEngine(t *testing.T) {
	cases := []struct {
		name string
		fn   string
		src  string
		want []string // "kind expr verdict" in source order
	}{
		{
			name: "join meets to the weaker bound",
			fn:   "F",
			src: `package p
func F(s []byte, c bool) byte {
	if c {
		if len(s) < 8 {
			return 0
		}
	} else {
		if len(s) < 4 {
			return 0
		}
	}
	return s[3] + s[7]
}`,
			// Both paths prove len >= 4; only one proves len >= 8.
			want: []string{"index s[3] proven", "index s[7] unproven"},
		},
		{
			name: "reslice advances the minimum length",
			fn:   "F",
			src: `package p
func F(s []byte) byte {
	if len(s) < 10 {
		return 0
	}
	s = s[4:]
	return s[5] + s[6]
}`,
			want: []string{"slice s[4:] proven", "index s[5] proven", "index s[6] unproven"},
		},
		{
			name: "constant window reslice has exact length",
			fn:   "F",
			src: `package p
func F(s []byte) byte {
	if len(s) < 8 {
		return 0
	}
	w := s[2:6]
	return w[3] + w[4]
}`,
			want: []string{"slice s[2:6] proven", "index w[3] proven", "index w[4] unproven"},
		},
		{
			name: "make with constant length",
			fn:   "F",
			src: `package p
func F(n int) byte {
	b := make([]byte, 16)
	c := make([]byte, n)
	_ = c
	return b[15]
}`,
			want: []string{"index b[15] proven"},
		},
		{
			name: "slice copy carries length equality",
			fn:   "F",
			src: `package p
func F(s []byte) byte {
	u := s
	var acc byte
	for i := range s {
		acc ^= u[i]
	}
	return acc
}`,
			want: []string{"index u[i] proven"},
		},
		{
			name: "local slice facts survive calls, address-taken do not",
			fn:   "F",
			src: `package p
func sink(p *[]byte) {}
func use(s []byte)   {}
func F(a, b []byte) byte {
	if len(a) < 8 || len(b) < 8 {
		return 0
	}
	use(a)
	x := a[7]
	sink(&b)
	return x + b[7]
}`,
			want: []string{"index a[7] proven", "index b[7] unproven"},
		},
		{
			name: "switch tag edges refine nothing",
			fn:   "F",
			src: `package p
func F(s []byte) byte {
	switch len(s) {
	case 4:
		return s[0]
	}
	return 0
}`,
			// A tag comparison is not a boolean branch condition; the
			// engine must neither refine from it nor misread the case
			// edge as "condition true".
			want: []string{"index s[0] unproven"},
		},
		{
			name: "successful index is a postcondition",
			fn:   "F",
			src: `package p
func F(s []byte, i int) byte {
	x := s[i]
	y := s[i]
	z := s[0]
	return x + y + z
}`,
			// The first s[i] establishes 0 <= i < len(s) for the second,
			// and len(s) >= 1 for s[0].
			want: []string{"index s[i] unproven", "index s[i] proven", "index s[0] proven"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sites := boundsSitesSrc(t, c.src)[c.fn]
			got := boundsStrings(sites)
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("got %v\nwant %v", got, c.want)
			}
		})
	}
}
