package lint

import "go/ast"

// Lockcheck is the reporting face of the lock-state engine
// (lockstate.go): it re-runs the engine over every declaration with
// the pass's Report wired in, so guarded-field accesses without the
// lock held, double locks, unlocks of unheld mutexes, and locks still
// held (or deferred-released without acquisition) on a return or panic
// edge all surface as findings. Interprocedural composition comes from
// the fact store's lock summaries: calling an unexported helper that
// requires a lock is fine exactly when the lock is held here, and
// calling one that takes a lock internally while already holding it is
// a self-deadlock.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "enforce mutex discipline: //mlec:guardedby access, double-lock, and lock/unlock balance on every return and panic path",
	Run:  runLockcheck,
}

func runLockcheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := newLockEngine(pass.Info, pass.Facts, pass.declFunc(fd), fd, pass.Report)
			e.analyze(fd.Body, nil)
		}
	}
	return nil
}
