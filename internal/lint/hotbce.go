package lint

import (
	"go/ast"
	"strconv"
)

// HotBCE enforces the bounds-check discipline on the //mlec:hot
// kernels: every index or slice expression inside a loop of a hot
// function (or hot region) must be provably in bounds from the length
// facts on the path to it, so the compiler's prove pass eliminates the
// per-iteration check. The engine (bounds.go) mirrors the idioms the
// kernels use — length guards, slice-advance loops, range keys,
// `_ = s[k]` hints, byte-indexed 256-entry tables — and `mlecvet
// -compiler` cross-checks its verdicts against `-d=ssa/check_bce`.
//
// Scope is deliberately the directly annotated hot code, not the
// transitive hot set: propagation reaches simulation drivers whose
// per-event indexing is dominated by event dispatch, where a bounds
// check is noise, not cost. The annotated kernels are exactly the code
// whose per-byte loops make one check per iteration measurable.
// Sites outside loops are likewise ignored: a once-per-call check is
// not a steady-state cost.
var HotBCE = &Analyzer{
	Name: "hotbce",
	Doc:  "require provably eliminable bounds checks in //mlec:hot loops",
	Run:  runHotBCE,
}

// funcDirectHot reports whether fd itself carries the //mlec:hot
// annotation (as opposed to hotness inherited through the call graph).
func (p *Pass) funcDirectHot(fd *ast.FuncDecl) bool {
	return p.Facts.hotIdx.at(p.Fset.Position(fd.Pos())) && !p.FuncCold(fd)
}

// inStmts reports whether n lies within one of the statements.
func inStmts(n ast.Node, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if n.Pos() >= s.Pos() && n.End() <= s.End() {
			return true
		}
	}
	return false
}

func runHotBCE(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.FuncCold(fd) {
				continue
			}
			direct := pass.funcDirectHot(fd)
			var regions []ast.Stmt
			if !direct {
				regions = pass.HotRegions(fd)
				if len(regions) == 0 {
					continue
				}
			}
			for _, site := range analyzeBounds(pass.Info, fd.Body) {
				if site.proven || !site.inLoop {
					continue
				}
				if !direct && !inStmts(site.node, regions) {
					continue
				}
				hint := "guard the loop with an explicit len() comparison or a `_ = " + site.base + "[n-1]` hint, or restructure to slice-advance form"
				if site.need > 0 {
					hint = "establish len(" + site.base + ") >= " + strconv.Itoa(site.need) + " before the loop (length guard or `_ = " + site.base + "[" + strconv.Itoa(site.need-1) + "]` hint), or restructure to slice-advance form"
				}
				verb := "indexes"
				if site.kind == "slice" {
					verb = "slices"
				}
				pass.Report(site.node.Pos(),
					"%s %s %s in a hot loop without a provable bound; %s",
					fd.Name.Name, verb, site.expr, hint)
			}
		}
	}
	return nil
}
