package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc parses and type-checks one source file and returns its
// escape-engine sites per function name.
func checkSrc(t *testing.T, src string) map[string][]AllocSite {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "escape_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type error in test source: %v", err)
	}
	out := make(map[string][]AllocSite)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out[fd.Name.Name] = escapeSites(info, fset, fd.Body)
		}
	}
	return out
}

// siteStrings renders sites as "class|what|loop" for compact
// comparison; dispatch and defer bookkeeping sites are included so the
// tests pin the full contract.
func siteStrings(sites []AllocSite) []string {
	var out []string
	for _, s := range sites {
		loop := "-"
		if s.InLoop {
			loop = "loop"
		}
		out = append(out, fmt.Sprintf("%s|%s|%s", s.Class, s.What, loop))
	}
	return out
}

// TestEscapeEngine pins the classification contract case by case:
// every expected site must appear (substring match on what), with the
// expected class and loop bit, and no unexpected allocation verdicts.
func TestEscapeEngine(t *testing.T) {
	cases := []struct {
		name string
		fn   string
		src  string
		want []string // "class|what-substring|loop-or--"
	}{
		{
			name: "sanitized append after explicit-cap make",
			fn:   "F",
			src: `package p
func F(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`,
			// The make itself escapes by return; the appends are free.
			want: []string{"heap|make|-", "alloc-free|append within proven capacity|loop"},
		},
		{
			name: "two-arg make is no capacity plan",
			fn:   "F",
			src: `package p
func F(xs []int) []int {
	out := make([]int, 0)
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}`,
			want: []string{"heap|make|-", "heap|append without a capacity proof|loop"},
		},
		{
			name: "warm buffer reuse via [:0]",
			fn:   "F",
			src: `package p
func F(buf, xs []int) []int {
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	return buf
}`,
			want: []string{"alloc-free|append within proven capacity|loop"},
		},
		{
			name: "plan does not transfer to another slice",
			fn:   "F",
			src: `package p
func F(xs []int) []int {
	planned := make([]int, 0, 8)
	_ = planned
	var other []int
	for _, x := range xs {
		other = append(other, x)
	}
	return other
}`,
			want: []string{"stack-plausible|make|-", "heap|append without a capacity proof|loop"},
		},
		{
			name: "plan after the append does not dominate",
			fn:   "F",
			src: `package p
func F(x int) []int {
	var s []int
	s = append(s, x)
	s = make([]int, 0, 8)
	return s
}`,
			want: []string{"heap|append without a capacity proof|-", "heap|make|-"},
		},
		{
			name: "cold path exempts error formatting",
			fn:   "F",
			src: `package p
import "fmt"
func F(xs []int) (int, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty")
	}
	return xs[0], nil
}`,
			want: []string{"cold-path|fmt.Errorf|-"},
		},
		{
			name: "non-escaping make is stack-plausible",
			fn:   "F",
			src: `package p
func F() int {
	tmp := make([]int, 8)
	total := 0
	for i := range tmp {
		total += i
	}
	return total
}`,
			want: []string{"stack-plausible|make|-"},
		},
		{
			name: "escape by return upgrades to heap",
			fn:   "F",
			src: `package p
func F(n int) []byte {
	buf := make([]byte, n)
	return buf
}`,
			want: []string{"heap|make|-"},
		},
		{
			name: "capture-free literal is not a closure allocation",
			fn:   "F",
			src: `package p
func F() func(int) int {
	f := func(x int) int { return x * 2 }
	return f
}`,
			want: nil,
		},
		{
			name: "capturing literal allocates",
			fn:   "F",
			src: `package p
func F(n int) func() int {
	i := 0
	f := func() int { i++; return i + n }
	return f
}`,
			want: []string{"heap|closure capturing locals|-"},
		},
		{
			name: "boxing an int allocates, boxing a pointer does not",
			fn:   "F",
			src: `package p
func F(x int, p *int) (any, any) {
	var a any = x
	var b any = p
	return a, b
}`,
			want: []string{"heap|interface boxing of int|-"},
		},
		{
			name: "defer and dispatch inside a goto loop carry the loop bit",
			fn:   "F",
			src: `package p
type s interface{ Step() int }
func F(v s, n int) int {
	total := 0
	i := 0
again:
	defer func() {}()
	total += v.Step()
	i++
	if i < n {
		goto again
	}
	return total
}`,
			want: []string{"alloc-free|defer|loop", "alloc-free|interface method call Step|loop"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sites := checkSrc(t, c.src)[c.fn]
			got := siteStrings(sites)
			if len(got) != len(c.want) {
				t.Fatalf("got %d sites %v, want %d %v", len(got), got, len(c.want), c.want)
			}
			for i, w := range c.want {
				parts := strings.SplitN(w, "|", 3)
				gparts := strings.SplitN(got[i], "|", 3)
				if gparts[0] != parts[0] || !strings.Contains(gparts[1], parts[1]) || gparts[2] != parts[2] {
					t.Errorf("site %d = %q, want match %q", i, got[i], w)
				}
			}
		})
	}
}

// TestAllocatesSummary checks the fact-store fold over the hotalloc
// fixture: a function whose only allocation is stack-plausible is not
// "allocating", one that builds and returns a map is, and the verdict
// propagates to its direct caller.
func TestAllocatesSummary(t *testing.T) {
	l := newFixtureLoader(t)
	pkg := loadFixture(t, l, "hotalloc")
	facts := NewFacts([]*Package{pkg})
	lookup := func(name string) *types.Func {
		fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
		if fn == nil {
			t.Fatalf("function %s not found in fixture", name)
		}
		return fn
	}
	for name, want := range map[string]bool{
		"helper":     true,  // builds and returns a map
		"Driver":     true,  // allocates via helper
		"StackLocal": false, // only a stack-plausible scratch slice
	} {
		alloc, known := facts.Allocates(lookup(name))
		if !known {
			t.Fatalf("%s: summary unknown", name)
		}
		if alloc != want {
			t.Errorf("Allocates(%s) = %v, want %v", name, alloc, want)
		}
	}
	if _, known := facts.Allocates(nil); known {
		t.Error("Allocates(nil) claims knowledge")
	}
}
