package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Cancel is the probflow analyzer for catastrophic cancellation in
// probability arithmetic. In the durability regime this repository
// reproduces, probabilities span fifteen orders of magnitude below 1,
// and two float64 idioms silently destroy them:
//
//   - 1 − exp(x): when exp(x) is within 1e-16 of 1 the subtraction
//     returns exactly 0 (or keeps one digit); −math.Expm1(x) returns
//     the full 53 bits. The engine's ViaExp provenance bit tracks exp
//     results through assignments and helpers, so q := math.Exp(lq);
//     … ; 1−q is caught, not just the inline form.
//   - log(1±x): for |x| ≪ 1 the addition rounds to 1 before the log
//     sees it; math.Log1p(±x) keeps the digits.
//   - p − q for two linear-domain probabilities: when they are close
//     (the interesting case — e.g. a tail minus its next term) the
//     difference keeps only the digits in which they differ. Track
//     complements or work in log space.
//
// The third form is reported only when the domain engine proves both
// operands are probabilities; intervals, hours and counts subtract
// freely.
var Cancel = &Analyzer{
	Name: "cancel",
	Doc:  "flag 1-exp(x), log(1±x), and prob−prob subtractions that cancel catastrophically; suggest Expm1/Log1p/complements",
	Run:  runCancel,
}

func runCancel(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCancelBody(pass, pass.FuncDomains(fd), fd.Body)
		}
	}
	return nil
}

func checkCancelBody(pass *Pass, doms *FuncDomains, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCancelBody(pass, pass.FuncLitDomains(n), n.Body)
			return false
		case *ast.BinaryExpr:
			checkCancelSub(pass, doms, n)
		case *ast.CallExpr:
			checkCancelLog(pass, n)
		}
		return true
	})
}

// checkCancelSub handles the subtraction forms.
func checkCancelSub(pass *Pass, doms *FuncDomains, e *ast.BinaryExpr) {
	if e.Op != token.SUB {
		return
	}
	x, y := doms.Of(e.X), doms.Of(e.Y)
	// 1 − x where x came through math.Exp: the subtraction undoes the
	// log-domain rescue. −Expm1 computes 1−e^v exactly for every sign
	// of v, so the suggestion is unconditional.
	if isUntypedOne(pass, e.X) && y.ViaExp {
		pass.Report(e.OpPos,
			"1 - exp(x) cancels catastrophically when exp(x) is near 1; use -math.Expm1(x)")
		return
	}
	// p − q on two linear probabilities.
	if x.D == DomProb && y.D == DomProb &&
		!isConstExpr(pass, e.X) && !isConstExpr(pass, e.Y) {
		pass.Report(e.OpPos,
			"subtracting two probabilities cancels when they are close; track the complement or work in log domain")
	}
}

// checkCancelLog handles math.Log(1±x) → math.Log1p(±x).
func checkCancelLog(pass *Pass, call *ast.CallExpr) {
	if calleeName(pass.Info, call) != "math.Log" || len(call.Args) != 1 {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch arg.Op {
	case token.ADD:
		if isUntypedOne(pass, arg.X) && !isConstExpr(pass, arg.Y) {
			pass.Report(call.Pos(), "log(1 + x) loses x's digits for small x; use math.Log1p(x)")
		} else if isUntypedOne(pass, arg.Y) && !isConstExpr(pass, arg.X) {
			pass.Report(call.Pos(), "log(x + 1) loses x's digits for small x; use math.Log1p(x)")
		}
	case token.SUB:
		if isUntypedOne(pass, arg.X) && !isConstExpr(pass, arg.Y) {
			pass.Report(call.Pos(), "log(1 - x) loses x's digits for small x; use math.Log1p(-x)")
		}
	}
}

// isUntypedOne reports whether e is the constant 1 (any float or
// integer spelling).
func isUntypedOne(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 1
}

// isConstExpr reports whether e is a compile-time constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}
