// This fixture stands in for mlec/internal/obs: the one module package
// walltime sanctions as a wall-clock sink. The analyzer keys on the
// callee's package *name*, which is exactly what lets this fixture
// (directory obsfake, package obs) exercise the exemption.
package obs

import "time"

// Histogram mimics the write-only metric cell of the real obs package:
// simulation code observes into it and never reads it back.
type Histogram struct{ sum float64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.sum += v }

// RecordWall mimics a package-level sink function.
func RecordWall(d time.Duration) { _ = d }
