// Package guarddirective exercises the //mlec:guardedby anchoring
// rules: a well-formed annotation must feed the lock-state engine
// (proven by the expectation on Touch below), while a guard naming no
// sibling mutex, a bare directive, and directives anchored to nothing
// are all recorded as malformed.
package guarddirective

import "sync"

type Good struct {
	mu sync.Mutex
	//mlec:guardedby mu
	n int
}

// Touch proves the valid annotation resolved.
func (g *Good) Touch() {
	g.n++ // want `n is written without holding g.mu`
}

type Bad struct {
	mu sync.Mutex
	//mlec:guardedby missing
	n int
}

//mlec:guardedby
type Dangling struct{ n int }

//mlec:guardedby nothing
var floating int

//mlec:guardedby mu
func NotAField() {}
