// Package hotiface exercises the hotiface analyzer: interface boxing
// of non-pointer-shaped values anywhere in hot scope, and dynamic
// dispatch (interface methods, function values) inside hot loops.
package hotiface

// BoxInt boxes a bare int into an interface word.
//
//mlec:hot
func BoxInt(x int) any {
	var v any = x // want `interface boxing of int`
	return v
}

// BoxPtr stores a pointer-shaped value: rides the data word, free.
//
//mlec:hot
func BoxPtr(p *int) any {
	var v any = p
	return v
}

type pair struct{ a, b int }

func consume(v any) { _ = v }

// PassArg boxes a struct into an interface-typed parameter.
//
//mlec:hot
func PassArg(s pair) {
	consume(s) // want `interface boxing of`
}

// ColdBox boxes only on the early-exit path.
//
//mlec:hot
func ColdBox(x int, bad bool) any {
	if bad {
		var v any = x
		return v
	}
	return nil
}

type stepper interface{ Step() int }

// Drain dispatches through the interface every iteration: the
// per-iteration cost hotiface exists to surface.
//
//mlec:hot
func Drain(s stepper, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += s.Step() // want `interface method call Step in a hot loop`
	}
	return total
}

// One dispatches once, outside any loop: unreported.
//
//mlec:hot
func One(s stepper) int {
	return s.Step()
}

// Apply calls through a function value per iteration.
//
//mlec:hot
func Apply(f func(int) int, xs []int) int {
	total := 0
	for _, x := range xs {
		total += f(x) // want `indirect call through function value in a hot loop`
	}
	return total
}

// NotHot dispatches in a loop without any annotation: out of scope.
func NotHot(s stepper, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += s.Step()
	}
	return total
}
