// Package copylock exercises the lock-copy analyzer: by-value copies
// of structs that transitively contain a sync or sync/atomic
// primitive, at declaration sites and flow sites.
package copylock

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

type Plain struct{ n int }

// ByValueParam copies the lock state on every call.
func ByValueParam(g Guarded) int { // want `function takes lock-bearing Guarded by value`
	return g.n
}

// PointerParam is the idiom.
func PointerParam(g *Guarded) int { return g.n }

// Get copies the receiver — and with it the mutex — on every call.
func (g Guarded) Get() int { // want `method receives lock-bearing Guarded by value`
	return g.n
}

// PlainValue is fine: nothing lock-bearing inside.
func PlainValue(p Plain) int { return p.n }

// CopyAssign forks live lock state into tmp.
func CopyAssign(g *Guarded) {
	tmp := *g // want `assignment copies lock-bearing Guarded by value`
	_ = tmp
}

// FreshValue is fine: a composite literal has no lock state to fork.
func FreshValue() *Guarded {
	g := Guarded{}
	return &g
}

type Holder struct{ g Guarded }

// Snapshot returns stored lock state by value.
func (h *Holder) Snapshot() Guarded {
	return h.g // want `return copies lock-bearing Guarded by value`
}

// Sum copies each element — mutex included — into the range value.
func Sum(gs []Guarded) int {
	t := 0
	for _, g := range gs { // want `range value copies lock-bearing Guarded each iteration`
		t += g.n
	}
	return t
}

// SumIdx is the blessed pattern: index, don't copy.
func SumIdx(gs []Guarded) int {
	t := 0
	for i := range gs {
		t += gs[i].n
	}
	return t
}

// Consume hands a stored element to a by-value parameter.
func Consume(gs []Guarded) {
	ByValueParam(gs[0]) // want `call passes lock-bearing Guarded by value`
}

type Tracker struct{ wg sync.WaitGroup }

// CopyTracker copies a WaitGroup's counter out of storage.
func CopyTracker(t *Tracker) Tracker {
	return *t // want `return copies lock-bearing Tracker by value`
}

type Stat struct{ v atomic.Int64 }

// TakeStat copies an atomic value, losing its address identity.
func TakeStat(s Stat) {} // want `function takes lock-bearing Stat by value`
