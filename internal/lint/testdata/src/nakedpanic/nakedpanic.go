// Fixture for the nakedpanic analyzer.
package fixnakedpanic

import "errors"

// Parse is exported and panics directly: flagged.
func Parse(s string) int {
	if s == "" {
		panic("empty input") // want `panic reachable from exported API`
	}
	return len(s)
}

// Helper reaches check through the call graph, so check's panic is
// flagged even though check is unexported.
func Helper(n int) {
	check(n)
}

func check(n int) {
	if n < 0 {
		panic("negative") // want `panic reachable from exported API`
	}
}

// MustParse panics by documented contract: exempt.
func MustParse(s string) int {
	if s == "" {
		panic("empty input")
	}
	return len(s)
}

// orphan is unreachable from any exported entry point: exempt.
func orphan() {
	panic("dead code")
}

// Validate returns an error instead of panicking: the steered-to idiom.
func Validate(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// Kernel carries a reviewed invariant directive: suppressed.
func Kernel(xs []byte) byte {
	if len(xs) == 0 {
		//lint:allow nakedpanic fixture invariant; mirrors a bounds check
		panic("empty slice")
	}
	return xs[0]
}
