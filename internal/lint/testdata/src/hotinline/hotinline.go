// Package hotinline exercises the hotinline analyzer: per-iteration
// calls in //mlec:hot loops to small callees whose shape defeats the
// inliner are findings; amortized, cold, large, or cleanly inlinable
// callees are not.
package hotinline

import "sync"

var mu sync.Mutex

// lockedBump is small enough to inline, but the defer blocks it.
func lockedBump(n *int) {
	mu.Lock()
	defer mu.Unlock()
	*n++
}

// plainBump is the same size with no blocker: inlinable, no finding.
func plainBump(n *int) {
	mu.Lock()
	*n++
	mu.Unlock()
}

// sumAll is small but contains a non-leaf loop (a loop that calls).
func sumAll(xs []int, f func(int) int) int {
	total := 0
	for _, x := range xs {
		total += f(x)
	}
	return total
}

// leafSum loops without calling: the loop alone is not flagged (a
// small leaf loop still amortizes its call overhead over the data).
func leafSum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// bigKernel is over the size budget: its call overhead is amortized
// over its own work, so the internal calls are nobody's business.
func bigKernel(src, dst []byte) {
	for len(src) >= 8 && len(dst) >= 8 {
		dst[0], dst[1], dst[2], dst[3] = src[0], src[1], src[2], src[3]
		dst[4], dst[5], dst[6], dst[7] = src[4], src[5], src[6], src[7]
		helperA(dst)
		helperB(dst)
		src, dst = src[8:], dst[8:]
	}
	for len(src) > 0 && len(dst) > 0 {
		dst[0] = src[0]
		helperA(dst)
		helperB(dst)
		src, dst = src[1:], dst[1:]
	}
}

func helperA(b []byte) {
	if len(b) > 0 {
		b[0] ^= 1
	}
}

func helperB(b []byte) {
	if len(b) > 0 {
		b[0] ^= 2
	}
}

// coldNote is the reviewed opt-out: amortized poll-point work.
//
//mlec:cold amortized poll-point rendering
func coldNote(n *int) {
	mu.Lock()
	defer mu.Unlock()
	*n = 0
}

// Driver exercises every judgment in one hot loop.
//
//mlec:hot
func Driver(xs []int, counters []int, visit func(int) int) int {
	total := 0
	for i := range xs {
		lockedBump(&total) // want `lockedBump in a hot loop, but its defer defeats the inliner`
		plainBump(&total)
		total += sumAll(xs, visit) // want `sumAll in a hot loop, but its non-leaf loop defeats the inliner`
		total += leafSum(xs)
		total += visit(i) // want `calls visit through a function value in a hot loop`
		if total > 1<<30 {
			lockedBump(&total) // early-exit branch: at most once per loop
			return total
		}
		coldNote(&total)
	}
	return total
}

// KernelCaller calls the big kernel per iteration: size exempts it.
//
//mlec:hot
func KernelCaller(shards [][]byte, out []byte) {
	for _, s := range shards {
		bigKernel(s, out)
	}
}

// RegionHost is not hot; only the annotated statement is swept.
func RegionHost(xs []int) int {
	total := 0
	for range xs {
		lockedBump(&total) // outside the region: not swept
	}
	//mlec:hot region: the second pass is the steady-state one
	for range xs {
		lockedBump(&total) // want `lockedBump in a hot loop, but its defer defeats the inliner`
	}
	return total
}

// AllowedCall suppresses a true finding with a reviewed directive.
//
//mlec:hot
func AllowedCall(xs []int) int {
	total := 0
	for range xs {
		//lint:allow hotinline the lock must be held per item; inlining is not the fix
		lockedBump(&total)
	}
	return total
}
