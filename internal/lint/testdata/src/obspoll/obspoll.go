// This fixture exercises the ctxpoll obs exemption. It declares
// package obs — the analyzer skips packages by that name because obs
// loops are observers running on wall-clock schedules with their own
// quit channels, not simulation work the engines' contexts govern.
// Both functions would be reported in any other package; here neither
// line carries a want comment because no diagnostic may fire.
package obs

import (
	"context"
	"math/rand"
)

// RenderLoop accepts a context it never consults around a rand-drawing
// loop. Outside obs this is the canonical ctxpoll finding.
func RenderLoop(ctx context.Context, trials int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += rng.Float64()
	}
	return sum
}

// Sample ranges with an ignored context; same shape, range form.
func Sample(ctx context.Context, values []float64, rng *rand.Rand) float64 {
	sum := 0.0
	for range values {
		sum += rng.Float64()
	}
	return sum
}
