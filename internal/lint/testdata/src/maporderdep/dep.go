// Package maporderdep is the cross-package half of the maporder
// fixture: its exported Keys leaks map-iteration order through its
// result, and the fact store must carry that summary into importing
// packages under analysis.
package maporderdep

// Keys returns the keys of m in map-iteration order.
func Keys(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
