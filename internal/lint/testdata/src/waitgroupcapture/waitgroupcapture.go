// Fixture for the waitgroupcapture analyzer.
package fixwaitgroupcapture

import "sync"

// CaptureLoop references the for-loop variable inside the goroutine:
// flagged.
func CaptureLoop() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i // want `references loop variable "i"`
		}()
	}
	wg.Wait()
}

// CaptureRange is the range-loop variant.
func CaptureRange(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = x // want `references loop variable "x"`
		}()
	}
	wg.Wait()
}

// SharedSum accumulates into a pre-loop variable without a lock:
// flagged.
func SharedSum(xs []float64) float64 {
	var wg sync.WaitGroup
	sum := 0.0
	for i := 0; i < len(xs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum += xs[i] // want `writes shared accumulator "sum"`
		}(i)
	}
	wg.Wait()
	return sum
}

// PerSlot writes distinct slice elements: the blessed pattern, exempt.
func PerSlot(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i := 0; i < len(xs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	return out
}

// MutexSum holds a lock around the shared write: exempt.
func MutexSum(xs []float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	sum := 0.0
	for i := 0; i < len(xs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			sum += xs[i]
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return sum
}

// ParamPass passes the loop variable as a goroutine parameter: exempt.
func ParamPass() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

// AddInGoroutine moves the Add inside the spawned body: the spawner
// may already be blocked in Wait when it runs (Add-after-Wait race).
func AddInGoroutine() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1) // want `wg.Add inside the spawned goroutine races a concurrent Wait`
		defer wg.Done()
		wg.Done()
	}()
	wg.Wait()
}

// OwnWaitGroup declares the WaitGroup inside the goroutine: private,
// exempt.
func OwnWaitGroup() {
	done := make(chan struct{})
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
		}()
		inner.Wait()
		close(done)
	}()
	<-done
}
