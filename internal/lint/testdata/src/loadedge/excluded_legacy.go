// +build neverenabledtag

package loadedge

// ExcludedLegacy checks the pre-go1.17 constraint syntax; like
// excluded.go it fails type-checking if ever included.
func ExcludedLegacy() int { return alsoUndefined }
