// Package loadedge exercises loader edge cases: build-constrained
// sibling files and //lint:allow directive placement.
package loadedge

// Included marks the unconditionally built file.
func Included() int { return 1 }

//lint:allow maporder fixture: directive with analyzer and reason
var allowedHere = 0

//lint:allow maporder
var malformedMissingReason = 0
