//lint:allow walltime fixture: directive on the very first line of a file
package loadedge

// FirstLine anchors the first-line-directive test.
func FirstLine() int { return 2 }
