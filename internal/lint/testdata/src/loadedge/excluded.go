//go:build neverenabledtag

package loadedge

// Excluded references an undefined identifier on purpose: if the loader
// fails to honor the //go:build constraint above, type-checking this
// package errors out and the loader test fails loudly.
func Excluded() int { return definitelyUndefined }
