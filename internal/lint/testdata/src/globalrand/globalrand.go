// Fixture for the globalrand analyzer.
package fixglobalrand

import "math/rand"

// Bad draws from the shared global source: flagged.
func Bad() int {
	return rand.Intn(6) // want `global-source rand\.Intn`
}

// BadFloat likewise.
func BadFloat() float64 {
	return rand.Float64() // want `global-source rand\.Float64`
}

// Good threads an explicitly seeded generator; rand.New and
// rand.NewSource are constructors, not global-source draws.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
