// Fixture for the sharedrng analyzer: positive cases marked with
// `// want` comments, negative cases left bare.
package fixsharedrng

import (
	"math/rand"
	"sync"
)

// Guarded pairs a mutex with an RNG, declaring the RNG shared.
type Guarded struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// Draw locks before touching the RNG: fine.
func (g *Guarded) Draw() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rng.Float64()
}

// Leak touches the RNG without the lock: flagged.
func (g *Guarded) Leak() float64 {
	return g.rng.Float64() // want `touches mutex-guarded RNG field`
}

// Unguarded has no mutex, so its RNG is treated as confined.
type Unguarded struct {
	rng *rand.Rand
}

func (u *Unguarded) Draw() float64 { return u.rng.Float64() }

// Workers demonstrates the goroutine-capture rule.
func Workers(seed int64) {
	var wg sync.WaitGroup
	shared := rand.New(rand.NewSource(seed))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = shared.Intn(10) // want `goroutine captures shared \*rand\.Rand`
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := rand.New(rand.NewSource(seed ^ int64(w)))
			_ = private.Intn(10)
		}(w)
	}
	wg.Wait()
}
