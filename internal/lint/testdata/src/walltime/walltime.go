// This fixture exercises the walltime analyzer. It declares package
// syssim — the analyzer restricts itself to the simulation packages by
// package name, which is exactly what lets a fixture opt in.
package syssim

import (
	"fmt"
	"os"
	"time"

	obs "mlec/internal/lint/testdata/src/obsfake"
)

type runStats struct {
	elapsedHours float64
	startedAt    time.Time
	samples      []float64
}

// StoreStart writes a wall-clock reading into simulation state.
func (s *runStats) StoreStart() {
	s.startedAt = time.Now() // want `wall-clock reading stored into simulation state`
}

// Accumulate folds host elapsed time into a statistic.
func (s *runStats) Accumulate(start time.Time) {
	s.elapsedHours += time.Since(start).Hours() // want `accumulated into simulation statistics`
}

// Elapsed returns a wall-clock-derived duration from simulation code.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `wall-clock reading returned from simulation code`
}

// record stands in for any module-internal callee.
func record(d time.Duration) {}

// HandOff passes a wall-clock reading into module code.
func HandOff(start time.Time) {
	record(time.Since(start)) // want `wall-clock reading passed into`
}

// Progress is the legal pattern: wall time may drive stderr progress
// lines and deadline checks as long as it never lands in state.
func Progress(start time.Time, done, total int) {
	fmt.Fprintf(os.Stderr, "%d/%d after %v\n", done, total, time.Since(start))
	if time.Since(start) > time.Minute {
		fmt.Fprintln(os.Stderr, "slow run")
	}
}

// ObserveWall is the sanctioned sink: wall-clock durations may flow
// into any package named obs (write-only observability cells that
// simulation code never reads back), so neither call is reported even
// though both arguments are wall-clock tainted and both callees are
// module-internal.
func ObserveWall(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
	obs.RecordWall(time.Since(start))
}

// StampAllowed is a reviewed suppression: the stamp annotates a report
// header, not a statistic.
func (s *runStats) StampAllowed() {
	//lint:allow walltime report header stamp, not simulation state
	s.startedAt = time.Now()
}
