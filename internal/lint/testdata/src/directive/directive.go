// Fixture for //lint:allow directive handling: a directive without the
// mandatory reason must be reported as malformed and must NOT suppress
// the finding it precedes.
package fixdirective

func Bad(a, b float64) bool {
	//lint:allow floateq
	return a == b // want `between computed floats`
}
