// Package maporder exercises the maporder dataflow analyzer: data
// derived from map iteration must be sorted before it reaches an
// accumulator, an output call, or an exported return.
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"

	"mlec/internal/lint/testdata/src/maporderdep"
)

// KeysUnsorted leaks map order through an exported return.
func KeysUnsorted(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks // want `returns data in map-iteration order`
}

// KeysSorted re-establishes a canonical order before returning.
func KeysSorted(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// keysLocal is unexported: map order staying inside the package is the
// caller's problem, reported where it reaches a sink.
func keysLocal(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// SumFloats folds floats in map order: addition is not associative, so
// the sum (and the value returned from it) differs run to run.
func SumFloats(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation in map-iteration order`
	}
	return sum // want `returns data in map-iteration order`
}

// CountInts is exact and commutative: integer accumulation cannot
// observe iteration order, so neither line is flagged.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// JoinKeys concatenates strings in map order.
func JoinKeys(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string built in map-iteration order`
	}
	return s // want `returns data in map-iteration order`
}

// PrintUnsorted emits keys in nondeterministic order.
func PrintUnsorted(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `reaches printed output`
	}
}

// PrintSorted collects, sorts, then prints: the sort sanitizes.
func PrintSorted(m map[string]int) {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Println(k)
	}
}

// PrintAllowed is a reviewed suppression site.
func PrintAllowed(m map[string]int) {
	for k := range m {
		//lint:allow maporder debug dump where ordering is irrelevant
		fmt.Println(k)
	}
}

// MarshalUnsorted persists map-ordered values as JSON.
func MarshalUnsorted(m map[int]string) {
	var vals []string
	for _, v := range m {
		vals = append(vals, v)
	}
	_, _ = json.Marshal(vals) // want `reaches JSON output`
}

// PrintDepKeys inherits the order taint of maporderdep.Keys through its
// cross-package fact summary.
func PrintDepKeys(m map[int]int) {
	for _, k := range maporderdep.Keys(m) {
		fmt.Println(k) // want `reaches printed output`
	}
}
