// Package atomicmix exercises the atomic-consistency analyzer: a field
// must pick one regime — sync/atomic calls, plain access under a
// mutex, or an atomic type — and never mix them.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type Hits struct {
	n     int64
	clean atomic.Int64
}

// Inc uses the atomic regime for n.
func (h *Hits) Inc() {
	atomic.AddInt64(&h.n, 1)
}

// Racy reads the same field plainly: the read can tear past the
// atomic writer.
func (h *Hits) Racy() int64 {
	return h.n // want `n is accessed with sync/atomic elsewhere but read/written plainly here`
}

// Reset writes it plainly.
func (h *Hits) Reset() {
	h.n = 0 // want `n is accessed with sync/atomic elsewhere but read/written plainly here`
}

// CleanUse is single-regime: the atomic type synchronizes every access.
func (h *Hits) CleanUse() int64 {
	return h.clean.Load()
}

type Mixed struct {
	mu sync.Mutex
	//mlec:guardedby mu
	v int64
	//mlec:guardedby mu
	a atomic.Int64 // want `a has a sync/atomic type and a //mlec:guardedby annotation`
}

// Bump contradicts v's mutex claim with an atomic access.
func (m *Mixed) Bump() {
	atomic.AddInt64(&m.v, 1) // want `v is //mlec:guardedby-annotated but accessed via sync/atomic here`
}

var total int64

// IncTotal uses the atomic regime for the package-level counter.
func IncTotal() { atomic.AddInt64(&total, 1) }

// ReadTotal reads it plainly.
func ReadTotal() int64 {
	return total // want `total is accessed with sync/atomic elsewhere but read/written plainly here`
}
