// Package ctxpoll exercises the ctxpoll analyzer: a context-accepting
// function whose loops draw random numbers or step a simulation engine
// must consult the context somewhere.
package ctxpoll

import (
	"context"
	"math/rand"

	"mlec/internal/sim"
)

// NoPoll accepts a context and then ignores it around a trial loop.
func NoPoll(ctx context.Context, trials int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ { // want `never consults its context`
		sum += rng.Float64()
	}
	return sum
}

// Polls checks ctx.Err periodically: the canonical engine pattern.
func Polls(ctx context.Context, trials int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		if i%1024 == 0 && ctx.Err() != nil {
			return sum
		}
		sum += rng.Float64()
	}
	return sum
}

// Delegates hands ctx to a callee, transferring the polling obligation.
func Delegates(ctx context.Context, trials int, rng *rand.Rand) float64 {
	total := 0.0
	for i := 0; i < trials; i++ {
		total += onceWith(ctx, rng)
	}
	return total
}

func onceWith(ctx context.Context, rng *rand.Rand) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return rng.Float64()
}

// NoCtx takes no context, so there is nothing to poll.
func NoCtx(trials int, rng *rand.Rand) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += rng.Float64()
	}
	return sum
}

// SetupOnly loops without randomness or engine stepping: not a work
// loop, so the unused context is fine.
func SetupOnly(ctx context.Context, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// StepsEngine drives an event loop without ever consulting ctx.
func StepsEngine(ctx context.Context, eng *sim.Engine) {
	for eng.Step() { // want `never consults its context`
	}
}

// Closure literals with their own context parameter are analyzed as
// functions in their own right.
func SpawnsWorker(rng *rand.Rand) func(context.Context) float64 {
	return func(ctx context.Context) float64 {
		sum := 0.0
		for i := 0; i < 10; i++ { // want `never consults its context`
			sum += rng.Float64()
		}
		return sum
	}
}

// Allowed is a reviewed suppression: the loop is tightly bounded.
func Allowed(ctx context.Context, rng *rand.Rand) float64 {
	sum := 0.0
	//lint:allow ctxpoll loop bounded to 8 draws, cancellation latency negligible
	for i := 0; i < 8; i++ {
		sum += rng.Float64()
	}
	return sum
}
