// Package hotprealloc exercises the hotprealloc analyzer: appends in
// hot scope need a capacity plan — an explicit-capacity make or a
// [:0] warm-buffer reuse, with the result flowing back into the same
// slice. Cold-path appends and non-hot functions are exempt.
package hotprealloc

import "errors"

// Grows appends into a nil slice every iteration: the reallocation
// cascade the analyzer exists to catch.
//
//mlec:hot
func Grows(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) // want `appends in a hot loop without a capacity plan`
		}
	}
	return out
}

// Planned carries the author's capacity plan: appends are alloc-free
// after warmup.
//
//mlec:hot
func Planned(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Reuse resets a caller-owned buffer with the [:0] idiom, keeping the
// warm capacity.
//
//mlec:hot
func Reuse(buf, xs []int) []int {
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	return buf
}

// Abandoned has a plan for out but appends into a different slice:
// the plan does not transfer.
//
//mlec:hot
func Abandoned(xs []int) []int {
	out := make([]int, 0, len(xs))
	_ = out
	var other []int
	for _, x := range xs {
		other = append(other, x) // want `appends in a hot loop without a capacity plan`
	}
	return other
}

// SingleAppend grows outside any loop: still a steady-state cost on a
// hot path, reported with the non-loop wording.
//
//mlec:hot
func SingleAppend(xs []int, x int) []int {
	return append(xs, x) // want `appends on the hot path without a capacity plan`
}

// ColdAppend only appends on the early-exit error path.
//
//mlec:hot
func ColdAppend(xs []int, bad bool) ([]int, error) {
	if bad {
		annotated := append(xs, -1)
		return annotated, errors.New("bad input")
	}
	return xs, nil
}

// NotHot appends without annotation: out of scope.
func NotHot(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
