// Package hotalloc exercises the hotalloc analyzer: steady-state heap
// allocations inside //mlec:hot functions and regions are findings;
// cold-path, stack-plausible and //mlec:cold-shielded allocations are
// not.
package hotalloc

import "fmt"

var sink []*int

// Kernel is annotated hot; its escaping make and its fmt call are
// steady-state allocations.
//
//mlec:hot
func Kernel(src []byte) []byte {
	buf := make([]byte, len(src)) // want `heap-allocates make`
	copy(buf, src)
	tag := fmt.Sprintf("%d", len(src)) // want `heap-allocates fmt.Sprintf`
	_ = tag
	return buf
}

// StackLocal allocates a scratch slice that never escapes: plausibly
// stack-allocated, so not a finding.
//
//mlec:hot
func StackLocal() int {
	tmp := make([]int, 8)
	total := 0
	for i := range tmp {
		total += i
	}
	return total
}

// ColdError formats an error only on the early-exit path; the cold
// classification exempts it.
//
//mlec:hot
func ColdError(xs []int) (int, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input")
	}
	return xs[0], nil
}

// Driver is hot and calls helper, so hotness propagates and helper's
// own allocation is flagged at its site.
//
//mlec:hot
func Driver(xs []int) int {
	return len(helper(xs))
}

func helper(xs []int) map[int]bool {
	seen := map[int]bool{} // want `heap-allocates map literal`
	for _, x := range xs {
		seen[x] = true
	}
	return seen
}

// WithColdCallee calls a function behind an //mlec:cold barrier:
// hotness must not flow into it.
//
//mlec:hot
func WithColdCallee(xs []int) int {
	_ = renderDebug(xs)
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// renderDebug runs off the steady-state path by design.
//
//mlec:cold debug rendering is amortized by the caller
func renderDebug(xs []int) string {
	return fmt.Sprintf("%v", xs)
}

// SetupThenLoop allocates freely in setup; only the annotated region
// is hot scope.
func SetupThenLoop(xs []int) int {
	scratch := make([]int, len(xs))
	copy(scratch, xs)
	total := 0
	//mlec:hot
	for _, x := range scratch {
		total += x
		box := new(int) // want `heap-allocates new`
		sink = append(sink, box)
	}
	return total
}

// Closure captures locals and escapes by return: a real closure
// allocation. StaticFunc's literal captures nothing and is free.
//
//mlec:hot
func Closure(xs []int) func() int {
	i := 0
	next := func() int { // want `heap-allocates closure capturing locals`
		i++
		return xs[i-1]
	}
	return next
}

//mlec:hot
func StaticFunc() func(int) int {
	f := func(x int) int { return x * 2 }
	return f
}

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// MethodValue binds a receiver into a method value: a closure
// allocation.
//
//mlec:hot
func MethodValue(c *counter) func() {
	return c.inc // want `heap-allocates bound method value`
}

// Stringify copies the byte slice into a string.
//
//mlec:hot
func Stringify(b []byte) string {
	return string(b) // want `heap-allocates string conversion`
}

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Variadic boxes its arguments into an implicit slice.
//
//mlec:hot
func Variadic(a, b int) int {
	return sum(a, b) // want `heap-allocates variadic argument slice`
}

// Allowed carries a reviewed suppression: the directive swallows the
// finding.
//
//mlec:hot
func Allowed() []byte {
	//lint:allow hotalloc scratch buffer, measured harmless at this call rate
	return make([]byte, 64)
}

// NotHot allocates without any annotation in scope: silence.
func NotHot(n int) []int {
	return make([]int, n)
}
