// Fixture for //mlec:unit directive handling: an annotation naming no
// (or an unknown) domain must be recorded as malformed, and a valid one
// must seed the domain engine so the probmix finding below fires.
package unitdirective

//mlec:unit
var orphan = 0.25

//mlec:unit furlongs
var bogus = 1.5

//mlec:unit rate
var arrivals = 3.5e-6

func mixes(pdl float64) float64 {
	return arrivals + pdl // want `mixes rate and prob`
}
