// Package lockcheck exercises the lock-state engine: //mlec:guardedby
// access checks, double-lock, unlock balance on return and panic
// edges, deferred unlocks, and interprocedural requires / acquires /
// releases summaries.
package lockcheck

import "sync"

type Counter struct {
	mu sync.Mutex
	//mlec:guardedby mu
	n int
}

// Good holds the lock with the canonical defer idiom.
func (c *Counter) Good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// DirectUnlock holds the lock with a paired direct unlock.
func (c *Counter) DirectUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Bad touches guarded state with no lock from an exported method.
func (c *Counter) Bad() {
	c.n++ // want `n is written without holding c.mu`
}

func (c *Counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `double Lock of c.mu on this path`
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

func (c *Counter) EarlyReturn(cond bool) {
	c.mu.Lock()
	if cond {
		return // want `c.mu is still held when the function exits here`
	}
	c.mu.Unlock()
}

func (c *Counter) PanicPath(bad bool) {
	c.mu.Lock()
	if bad {
		panic("bad") // want `c.mu is still held when the function exits here`
	}
	c.mu.Unlock()
}

// DeferredPanic is clean: the deferred unlock covers the panic edge.
func (c *Counter) DeferredPanic(bad bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bad {
		panic("bad")
	}
	c.n++
}

// CondDefer is clean: the deferring path returns before the merge and
// the other path unlocks directly.
func (c *Counter) CondDefer(cond bool) {
	c.mu.Lock()
	if cond {
		defer c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// CondDeferBad registers the unlock on only one path into the final
// merge, so the fall-off-the-end exit can still hold the lock.
func (c *Counter) CondDeferBad(cond bool) {
	c.mu.Lock()
	if cond {
		defer c.mu.Unlock()
	}
} // want `c.mu is still held when the function exits here`

func (c *Counter) UnheldUnlock() {
	c.mu.Unlock() // want `Unlock of c.mu which is not held on this path`
}

// bump is an unexported helper: the unheld guarded access becomes a
// requires fact pushed onto callers instead of a finding here.
func (c *Counter) bump() {
	c.n++
}

// Caller satisfies bump's requirement.
func (c *Counter) Caller() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// BadCaller does not.
func (c *Counter) BadCaller() {
	c.bump() // want `calling bump requires holding c.mu`
}

// lockAndGet is an acquire helper by naming convention: it returns
// with the lock held, recorded in its acquires summary.
func (c *Counter) lockAndGet() int {
	c.mu.Lock()
	return c.n
}

// release is an unlock helper: releasing a lock it never took is
// recorded in its releases summary.
func (c *Counter) release() {
	c.mu.Unlock()
}

// UseHelpers is clean: the helper summaries balance the pair.
func (c *Counter) UseHelpers() {
	v := c.lockAndGet()
	c.n = v
	c.release()
}

// Deadlock calls a method whose summary says it takes c.mu internally.
func (c *Counter) Deadlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Good() // want `calling Good, which locks c.mu internally, while already holding it`
}

// Spawn leaks guarded access into a goroutine: inside the goroutine
// there is no caller left to satisfy a requires fact, so strict mode
// reports it.
func (c *Counter) Spawn(done chan struct{}) {
	go func() {
		c.n++ // want `n is written inside a goroutine without holding c.mu`
		close(done)
	}()
	<-done
}

// NewCounter is the construct-then-publish idiom: a locally born value
// has no concurrent readers yet.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

type Stats struct {
	rw sync.RWMutex
	//mlec:guardedby rw
	total float64
}

// Read is clean: a read lock suffices for reading.
func (s *Stats) Read() float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.total
}

// WriteUnderRead writes with only the read lock held.
func (s *Stats) WriteUnderRead(v float64) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.total = v // want `total is written without holding s.rw`
}

func (s *Stats) LockWhileRead() {
	s.rw.RLock()
	s.rw.Lock() // want `Lock of s.rw while its read lock is held on this path`
	s.rw.Unlock()
	s.rw.RUnlock()
}

var stateMu sync.Mutex

//mlec:guardedby stateMu
var registry = map[string]int{}

// Register is clean: package-level guard held.
func Register(k string) {
	stateMu.Lock()
	defer stateMu.Unlock()
	registry[k] = 1
}

func BadRegister(k string) {
	registry[k] = 1 // want `registry is written without holding stateMu`
}
