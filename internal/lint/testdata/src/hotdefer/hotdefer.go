// Package hotdefer exercises the hotdefer analyzer: defer statements
// inside loops of hot scope, including loops formed by a backward
// goto that AST-level for/range ancestry cannot see.
package hotdefer

import "sync"

// LockPerItem defers an unlock per iteration: allocates a defer
// record every pass and holds every lock until return.
//
//mlec:hot
func LockPerItem(mu *sync.Mutex, xs []int) int {
	total := 0
	for _, x := range xs {
		mu.Lock()
		defer mu.Unlock() // want `defers inside a hot loop`
		total += x
	}
	return total
}

// DeferOnce is the normal pattern: one defer, outside any loop.
//
//mlec:hot
func DeferOnce(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}

func cleanup(int) {}

// GotoLoop hides its loop behind a backward goto; the CFG-based loop
// classification must still see the cycle.
//
//mlec:hot
func GotoLoop(n int) {
	i := 0
again:
	defer cleanup(i) // want `defers inside a hot loop`
	i++
	if i < n {
		goto again
	}
}

// NotHot defers in a loop without any annotation: out of scope.
func NotHot(mu *sync.Mutex, xs []int) {
	for range xs {
		mu.Lock()
		defer mu.Unlock()
	}
}
