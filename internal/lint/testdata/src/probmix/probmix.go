// Package probmix is the fixture for the probmix analyzer: every line
// with a want comment must be reported, every line without one is a
// negative test.
package probmix

import "math"

// mixDirect adds a log-domain value to a linear probability: the
// classic probflow bug, caught by the math.Log source.
func mixDirect(pdl float64) float64 {
	logP := math.Log(pdl)
	return logP + pdl // want `mixes logprob and prob`
}

// mixThroughHelper shows the interprocedural summary at work: logOf's
// result is log-domain even though the mix happens in the caller.
func logOf(p float64) float64 {
	return math.Log(p)
}

func mixThroughHelper(pdl float64) float64 {
	v := logOf(pdl)
	return v + pdl // want `mixes logprob and prob`
}

// compareRateProb compares values from different scales.
func compareRateProb(ratePerHour, pdl float64) bool {
	return ratePerHour > pdl // want `compares rate and prob`
}

// mixCountProb adds a count to a probability.
func mixCountProb(pdl float64, disks int) float64 {
	return float64(disks) + pdl // want `mixes count and prob`
}

// floorLog is a log-domain floor; the annotation overrides the name
// heuristic (which would see nothing in "floorValue").
//
//mlec:unit logprob
var floorValue = -700.0

func mixAnnotated(p float64) float64 {
	return floorValue + p // want `mixes logprob and prob`
}

// result exercises declared-field checking.
type result struct {
	AnnualPDL float64
	//mlec:unit rate
	Arrival float64
}

func fillBad(pdl float64) result {
	r := result{AnnualPDL: pdl}
	r.Arrival = 0
	return result{
		AnnualPDL: pdl,
		Arrival:   pdl, // want `field Arrival \(declared rate\) initialized with a prob value`
	}
}

// assignMismatch stores a probability into a declared rate variable.
func assignMismatch(pdl float64) float64 {
	var lossRate float64
	lossRate = pdl // want `assigns a prob value to lossRate \(declared rate\)`
	return lossRate
}

// returnMismatch returns a linear probability from a function whose
// name declares log domain.
func logTailBound(pdl float64) float64 {
	return pdl * pdl // want `logTailBound \(declared logprob\) returns a prob value`
}

// --- negatives ---

// composeOK multiplies probabilities and scales rates: the domain
// algebra allows every line.
func composeOK(pdl, lambdaPerHour float64, pools int) float64 {
	loss := pdl * pdl                      // prob · prob
	rate := lambdaPerHour * float64(pools) // rate · count
	thinned := rate * loss                 // rate · prob
	return thinned * 8760                  // constants carry no domain
}

// productFromLogs stays in log domain until the final exp.
func productFromLogs(lp, lq float64) float64 {
	joint := lp + lq // log + log is a product
	return math.Exp(joint)
}

// sameDomainOK adds and compares within one domain.
func sameDomainOK(pHi, pLo float64) bool {
	return pHi+pLo > pLo
}

// unknownOK mixes unclassified values freely.
func unknownOK(hours, window float64) float64 {
	return hours + window
}
