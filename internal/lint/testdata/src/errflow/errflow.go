// Package errflow is the fixture for the errflow analyzer: discarded
// errors from module functions the summaries prove can actually fail.
package errflow

import "errors"

// step fails on odd inputs.
func step(n int) (int, error) {
	if n%2 == 1 {
		return 0, errors.New("odd")
	}
	return n / 2, nil
}

// validate fails on negative inputs.
func validate(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// wrap propagates step's error through a variable: conservatively
// fallible.
func wrap(n int) error {
	_, err := step(n)
	return err
}

// relay tail-calls validate: fallible through the summary chain.
func relay(n int) error {
	return validate(n)
}

// alwaysNil can never fail.
func alwaysNil() error {
	return nil
}

// nilRelay tail-calls an infallible function: still infallible.
func nilRelay() error {
	return alwaysNil()
}

// evenOK and oddOK are mutually recursive and return only nil: the SCC
// fixed point proves the cycle infallible.
func evenOK(n int) error {
	if n == 0 {
		return nil
	}
	return oddOK(n - 1)
}

func oddOK(n int) error {
	if n == 0 {
		return nil
	}
	return evenOK(n - 1)
}

func positives(n int) int {
	v, _ := step(n) // want `blank identifier discards the error of step`
	step(n)         // want `statement discards the error of step`
	go relay(n)     // want `goroutine discards the error of relay`
	defer wrap(n)   // want `defer discards the error of wrap`
	return v
}

func negatives(n int) int {
	v, err := step(n)
	if err != nil {
		return 0
	}
	alwaysNil()
	nilRelay()
	evenOK(n)
	_ = oddOK(n)
	return v
}
