// Package hotbce exercises the hotbce analyzer: indexing in //mlec:hot
// loops must be provable from length facts on every path. Proven sites
// and sites outside loops are negative cases; each unproven loop site
// is a finding with a suggested remedy.
package hotbce

// SliceAdvance is the blessed kernel shape: constant indexes below the
// guard width, then advance. Everything proves.
//
//mlec:hot
func SliceAdvance(src, dst []byte) {
	for len(src) >= 4 && len(dst) >= 4 {
		dst[0] = src[0]
		dst[1] = src[1]
		dst[2] = src[2]
		dst[3] = src[3]
		src, dst = src[4:], dst[4:]
	}
	for len(src) > 0 && len(dst) > 0 {
		dst[0] = src[0]
		src, dst = src[1:], dst[1:]
	}
}

// IndexedNoGuard is the anti-pattern: the compiler keeps a check per
// access because nothing bounds i+1 against len(s).
//
//mlec:hot
func IndexedNoGuard(s []byte) byte {
	var acc byte
	for i := 0; i+2 <= len(s); i += 2 {
		acc ^= s[i]   // want `indexes s\[i\] in a hot loop without a provable bound`
		acc ^= s[i+1] // want `indexes s\[i \+ 1\] in a hot loop without a provable bound`
	}
	return acc
}

// RangeIndex proves through the range key relation.
//
//mlec:hot
func RangeIndex(s []byte) byte {
	var acc byte
	for i := range s {
		acc ^= s[i]
	}
	return acc
}

// EqualLens proves indexing one slice with the other's range key after
// an early-return length guard.
//
//mlec:hot
func EqualLens(row, data []byte) byte {
	if len(row) != len(data) {
		return 0
	}
	var acc byte
	for i := range row {
		acc ^= data[i]
	}
	return acc
}

// OrGuard proves through the false edge of a disjunction: past the
// guard both operands are false.
//
//mlec:hot
func OrGuard(rem [][]byte) []byte {
	for len(rem) >= 1 {
		if len(rem) < 2 || rem[0] == nil {
			return nil
		}
		out := rem[1]
		rem = rem[2:]
		if out != nil {
			return out
		}
	}
	return nil
}

// UnrelatedLens indexes data with a key ranged over row without any
// length relation between them: unprovable.
//
//mlec:hot
func UnrelatedLens(row, data []byte) byte {
	var acc byte
	for i := range row {
		acc ^= data[i] // want `indexes data\[i\] in a hot loop without a provable bound`
	}
	return acc
}

// ByteTable proves via the byte-index rule: a byte cannot exceed a
// 256-entry table.
//
//mlec:hot
func ByteTable(tab *[256]byte, src []byte) byte {
	var acc byte
	for len(src) > 0 {
		acc ^= tab[src[0]]
		src = src[1:]
	}
	return acc
}

// HintBeforeLoop proves constant window indexing from a `_ = s[k]`
// hint placed before the loop: the postcondition len(src) >= 8
// survives every iteration because nothing reassigns src.
//
//mlec:hot
func HintBeforeLoop(src []byte, rounds int) byte {
	var acc byte
	_ = src[7]
	for ; rounds > 0; rounds-- {
		acc ^= src[0] ^ src[3] ^ src[7]
	}
	return acc
}

// UnguardedSliceExpr reslices past an unknown length inside the loop.
//
//mlec:hot
func UnguardedSliceExpr(s []byte) int {
	n := 0
	for n < 10 {
		s = s[8:] // want `slices s\[8:\] in a hot loop without a provable bound`
		n++
	}
	return n
}

type queue struct {
	items []int
}

func (q *queue) drop() {
	if len(q.items) > 0 {
		q.items = q.items[1:]
	}
}

// FieldPeek proves a field-path fact: the loop condition re-establishes
// len(q.items) >= 1 on every iteration, and nothing invalidates it
// before the read.
//
//mlec:hot
func FieldPeek(q *queue) int {
	total := 0
	for len(q.items) > 0 {
		total += q.items[0]
		q.drop()
	}
	return total
}

// FieldPeekAfterCall reads the field after a method call that may have
// shrunk it: the call kills the fact, so the read is unprovable.
//
//mlec:hot
func FieldPeekAfterCall(q *queue) int {
	total := 0
	for len(q.items) > 0 {
		q.drop()
		total += q.items[0] // want `indexes q\.items\[0\] in a hot loop without a provable bound`
	}
	return total
}

// OncePerCall indexes outside any loop: a single check is not a
// steady-state cost, so no finding regardless of provability.
//
//mlec:hot
func OncePerCall(s []byte) byte {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// RegionHost is not hot itself; only the annotated loop is swept.
func RegionHost(xs, ys []int) int {
	total := xs[len(xs)-1] // outside the region: not swept
	//mlec:hot region: the reduction loop
	for i := range xs {
		total += ys[i] // want `indexes ys\[i\] in a hot loop without a provable bound`
	}
	return total
}

// transitiveHelper is hot only by propagation from Caller; hotbce
// sweeps directly annotated code only, so its unproven indexing is
// not a finding.
func transitiveHelper(xs []int) int {
	total := 0
	for i := 0; i < 4; i++ {
		total += xs[i]
	}
	return total
}

//mlec:hot
func Caller(xs []int) int {
	return transitiveHelper(xs)
}

// Allowed suppresses a true finding with a reviewed directive.
//
//mlec:hot
func Allowed(s []byte, n int) byte {
	var acc byte
	for i := 0; i < n; i++ {
		//lint:allow hotbce n is validated against len(s) by every caller
		acc ^= s[i]
	}
	return acc
}
