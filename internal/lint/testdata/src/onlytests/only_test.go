package onlytests

import "testing"

// TestNothing exists so this directory holds only _test.go files: the
// loader must report it as "no package" (nil, nil), not an error.
func TestNothing(t *testing.T) {}
