// Package goleak exercises the goroutine-lifecycle analyzer: every go
// statement needs a provable join or cancel path — WaitGroup Add/Done
// pairing, a channel/context receive, or a channel join.
package goleak

import (
	"context"
	"sync"
)

// Pooled is the fan-out idiom: Add before the go, Done inside.
func Pooled(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// NestedDone keeps Done inside a deferred closure (the runctl.Pool
// shape); the pairing must still be seen.
func NestedDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
	}()
	wg.Wait()
}

// AddInside pairs correctly for the spawn itself but re-Adds from
// inside the goroutine — the spawner may already be in Wait.
func AddInside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1) // want `wg.Add inside the spawned goroutine races a concurrent Wait`
		defer wg.Done()
		wg.Done()
	}()
	wg.Wait()
}

// Watch listens for cancellation: the goroutine can be told to stop.
func Watch(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Join sends its result to a channel the spawner receives from.
func Join() int {
	res := make(chan int)
	go func() {
		res <- 42
	}()
	return <-res
}

// worker blocks on its context: a cancel path one call down.
func worker(ctx context.Context) {
	<-ctx.Done()
}

// SpawnWorker is clean through the named callee's body.
func SpawnWorker(ctx context.Context) {
	go worker(ctx)
}

// Leak has no discipline at all: nobody can wait for it or stop it.
func Leak() {
	go func() { // want `goroutine has no provable join or cancel path`
		println("hi")
	}()
}

// loopForever never listens for anything.
func loopForever() {
	for {
		_ = 1
	}
}

// SpawnLoop leaks through a named callee.
func SpawnLoop() {
	go loopForever() // want `goroutine has no provable join or cancel path`
}
