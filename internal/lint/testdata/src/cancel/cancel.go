// Package cancel is the fixture for the cancel analyzer: catastrophic
// cancellation in probability arithmetic.
package cancel

import "math"

// survivalDirect computes 1 - exp(x) inline.
func survivalDirect(logSurvive float64) float64 {
	return 1 - math.Exp(logSurvive) // want `use -math.Expm1`
}

// survivalThroughVar shows the ViaExp provenance bit surviving an
// assignment: the exp and the subtraction are on different lines.
func survivalThroughVar(logSurvive float64) float64 {
	q := math.Exp(logSurvive)
	return 1 - q // want `use -math.Expm1`
}

// logOnePlus rounds x away before the log sees it.
func logOnePlus(x float64) float64 {
	return math.Log(1 + x) // want `use math.Log1p\(x\)`
}

// logOnePlusSwapped is the commuted spelling.
func logOnePlusSwapped(x float64) float64 {
	return math.Log(x + 1) // want `use math.Log1p\(x\)`
}

// logOneMinus needs the negated argument.
func logOneMinus(p float64) float64 {
	return math.Log(1 - p) // want `use math.Log1p\(-x\)`
}

// tailGap subtracts two close probabilities.
func tailGap(pHi, pLo float64) float64 {
	return pHi - pLo // want `subtracting two probabilities`
}

// --- negatives ---

// survivalGood is the rewrite the analyzer suggests.
func survivalGood(logSurvive float64) float64 {
	return -math.Expm1(logSurvive)
}

// logGood keeps the digits.
func logGood(p float64) float64 {
	return math.Log1p(-p)
}

// intervalOK subtracts values with no probability domain.
func intervalOK(hours, window float64) float64 {
	return hours - window
}

// complementOK is exact for p well below 1 and is not reported: only
// exp-provenance proves the operand can be within an ulp of 1.
func complementOK(p float64) float64 {
	return 1 - p
}

// shiftOK has no unit constant.
func shiftOK(x float64) float64 {
	return math.Log(2 + x)
}

// constOK folds at compile time.
func constOK() float64 {
	return 1 - 0.5
}
