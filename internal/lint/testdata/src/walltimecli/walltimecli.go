// Package walltimecli shows the walltime analyzer's package
// restriction: identical wall-clock stores are legal outside the
// simulation packages (CLI progress timers, report stamps), so nothing
// here is flagged.
package walltimecli

import "time"

type progress struct {
	startedAt time.Time
	elapsedS  float64
}

// Start stores a wall-clock reading — fine in CLI code.
func (p *progress) Start() {
	p.startedAt = time.Now()
}

// Lap accumulates host time — fine in CLI code.
func (p *progress) Lap() {
	p.elapsedS += time.Since(p.startedAt).Seconds()
}
