// Package hotdirective exercises the //mlec:hot and //mlec:cold
// anchoring rules: hot anchors function declarations and statements,
// cold anchors only function declarations, and anything else is
// recorded as a malformed directive — the annotation the author
// thought was enforcing something must never silently do nothing.
package hotdirective

//mlec:hot
type config struct{ n int } // malformed: hot on a type declaration

// Kernel is validly hot; its helper becomes hot by propagation, so
// the helper's allocation is the finding proving the chain works.
//
//mlec:hot
func Kernel(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total * grow(len(xs))
}

func grow(n int) int {
	pad := make([]int, n) // want `heap-allocates make`
	return len(pad)
}

// Region holds a cold directive on a statement: cold is a
// declaration-level barrier, so this one is malformed.
func Region(xs []int) int {
	total := 0
	//mlec:cold
	for _, x := range xs { // malformed: cold anchors only declarations
		total += x
	}
	return total
}

// render is validly cold.
//
//mlec:cold formatting runs off the steady-state path
func render(xs []int) int {
	_ = config{}
	return len(make([]byte, 16))
}

var _ = render

//mlec:hot
// malformed: dangling directive anchored to no declaration or statement
