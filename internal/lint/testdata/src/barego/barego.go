// Fixture for the barego analyzer: bare go statements in library code
// must be reported; suppressed and indirect forms must not.
package barego

import "sync"

func fanOutBare(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `bare go statement`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func namedWorker() {}

func launchNamed() {
	go namedWorker() // want `bare go statement`
}

func nested() {
	f := func() {
		go namedWorker() // want `bare go statement`
	}
	f()
}

func allowed() {
	//lint:allow barego bounded helper goroutine joined immediately below
	go namedWorker()
}

// deferredCall is a negative case: calling a function value is not a go
// statement.
func deferredCall() {
	defer namedWorker()
	namedWorker()
}
