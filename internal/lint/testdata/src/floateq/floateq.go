// Fixture for the floateq analyzer.
package fixfloateq

// Computed compares two computed floats: flagged.
func Computed(a, b float64) bool {
	return a == b // want `between computed floats`
}

// NotEqual is the same hazard spelled with !=.
func NotEqual(a, b float64) bool {
	return a != b // want `between computed floats`
}

// Sentinel compares against a constant: exact, exempt.
func Sentinel(p float64) bool {
	return p == 0
}

// NaNTest is the x != x idiom: exempt.
func NaNTest(x float64) bool {
	return x != x
}

// Ints are exact: exempt.
func Ints(a, b int) bool {
	return a == b
}

// Allowed carries a reviewed directive: suppressed.
func Allowed(a, b float64) bool {
	//lint:allow floateq fixture pretends these are integer-valued table entries
	return a == b
}
