package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlec/internal/lint/cfg"
)

// This file is the probflow dataflow engine: a forward analysis over
// each function's CFG tracking the numeric Domain (domain.go) of every
// variable and expression. It parallels the taint engine (taint.go) but
// with arithmetic-aware transfer rules: math.Log moves a probability
// into log space, math.Exp moves it back (setting the ViaExp provenance
// bit the cancel analyzer keys on), multiplication composes
// probabilities but addition across domains poisons the result to
// DomMixed. The probmix and cancel analyzers read the recorded
// per-expression values.

// domStore maps variables to their current domain value. Entries whose
// value carries no information are removed.
type domStore map[types.Object]DomVal

func (s domStore) clone() domStore {
	out := make(domStore, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges other into s at a control-flow merge, reporting
// whether s changed. Conflicting concrete domains meet at DomMixed, a
// stable top, so the worklist iteration terminates.
func (s domStore) joinInto(other domStore) bool {
	changed := false
	for k, v := range other {
		old := s[k]
		nv := old.join(v)
		if nv != old {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

func (s domStore) set(obj types.Object, v DomVal) {
	if obj == nil {
		return
	}
	if v.isNone() {
		delete(s, obj)
		return
	}
	s[obj] = v
}

func (s domStore) weakSet(obj types.Object, v DomVal) {
	if obj == nil || v.isNone() {
		return
	}
	s[obj] = s[obj].join(v)
}

// FuncDomains is the result of running the domain engine over one
// function body: the domain of every expression at its evaluation
// point, plus the joined domain of each result slot (used by the fact
// store to build cross-package summaries).
type FuncDomains struct {
	exprs   map[ast.Expr]DomVal
	results []DomVal
}

// Of returns the domain value of an expression node.
func (fd *FuncDomains) Of(e ast.Expr) DomVal { return fd.exprs[e] }

// domainFlow runs the forward domain analysis over a function body to a
// fixed point, mirroring analyzeBody in taint.go. params seeds the
// parameter objects from their annotations/names; resultObjs names the
// result objects for bare returns.
func domainFlow(info *types.Info, facts *Facts, body *ast.BlockStmt,
	params map[types.Object]DomVal, resultObjs []types.Object, nresults int) *FuncDomains {

	g := cfg.Build(body)
	fd := &FuncDomains{
		exprs:   make(map[ast.Expr]DomVal),
		results: make([]DomVal, nresults),
	}
	tr := &domTransfer{info: info, facts: facts, fd: fd, resultObjs: resultObjs}

	in := make([]domStore, len(g.Blocks))
	for i := range in {
		in[i] = domStore{}
	}
	for obj, v := range params {
		in[g.Entry.Index].set(obj, v)
	}

	// Worklist fixed point, seeded with every block: blocks generate
	// domain facts on their own (a := math.Log(p) is a source). The
	// lattice is finite (flat domains with a Mixed top over a fixed
	// variable population), so this terminates.
	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false

		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			tr.node(out, n)
		}
		for _, succ := range blk.Succs {
			if in[succ.Index].joinInto(out) && !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Final pass with stable block-entry states records per-expression
	// domains.
	for _, blk := range g.Blocks {
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			tr.node(out, n)
		}
	}
	return fd
}

// domTransfer implements the domain transfer functions.
type domTransfer struct {
	info       *types.Info
	facts      *Facts
	fd         *FuncDomains
	resultObjs []types.Object
}

func (t *domTransfer) node(s domStore, n ast.Node) {
	switch n := n.(type) {
	case ast.Expr:
		t.eval(s, n)
	case *ast.AssignStmt:
		t.assign(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v DomVal
					if i < len(vs.Values) {
						v = t.eval(s, vs.Values[i])
					}
					obj := t.info.Defs[name]
					if v.isNone() {
						v = t.seed(obj)
					}
					s.set(obj, v)
				}
			}
		}
	case *ast.ExprStmt:
		t.eval(s, n.X)
	case *ast.IncDecStmt:
		t.eval(s, n.X)
	case *ast.SendStmt:
		v := t.eval(s, n.Value)
		t.eval(s, n.Chan)
		s.weakSet(rootObj(t.info, n.Chan), v)
	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			for i, obj := range t.resultObjs {
				if obj != nil && i < len(t.fd.results) {
					t.fd.results[i] = t.fd.results[i].join(s[obj])
				}
			}
			return
		}
		if len(n.Results) == 1 && len(t.fd.results) > 1 {
			// return f() returning multiple values: per-slot domains
			// from the callee's summary when available.
			if call, ok := n.Results[0].(*ast.CallExpr); ok {
				t.eval(s, call)
				if sum := t.calleeDomains(call); sum != nil {
					for i := range t.fd.results {
						if i < len(sum.results) {
							t.fd.results[i] = t.fd.results[i].join(sum.results[i])
						}
					}
					return
				}
			} else {
				t.eval(s, n.Results[0])
			}
			return
		}
		for i, e := range n.Results {
			v := t.eval(s, e)
			if i < len(t.fd.results) {
				t.fd.results[i] = t.fd.results[i].join(v)
			}
		}
	case *ast.RangeStmt:
		v := t.eval(s, n.X)
		// Ranging a container yields elements of the container's
		// domain; the key is a count.
		if n.Key != nil {
			t.assignDomTo(s, n.Key, DomVal{D: DomCount}, n.Tok == token.DEFINE)
		}
		if n.Value != nil {
			t.assignDomTo(s, n.Value, v, n.Tok == token.DEFINE)
		}
	case *ast.GoStmt:
		t.eval(s, n.Call)
	case *ast.DeferStmt:
		t.eval(s, n.Call)
	case ast.Stmt:
		// No top-level expressions (the CFG lifts conditions out).
	}
}

func (t *domTransfer) assign(s domStore, a *ast.AssignStmt) {
	if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
		if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
			// x, y := f(): per-slot domains from the callee summary.
			var sum *domainSummary
			if call, ok := a.Rhs[0].(*ast.CallExpr); ok {
				sum = t.calleeDomains(call)
			}
			t.eval(s, a.Rhs[0])
			for i, l := range a.Lhs {
				var v DomVal
				if sum != nil && i < len(sum.results) {
					v = sum.results[i]
				}
				t.assignDomTo(s, l, v, a.Tok == token.DEFINE)
			}
			return
		}
		for i, l := range a.Lhs {
			var v DomVal
			if i < len(a.Rhs) {
				v = t.eval(s, a.Rhs[i])
			}
			t.assignDomTo(s, l, v, a.Tok == token.DEFINE)
		}
		return
	}
	// Compound assignment: x op= e keeps x in its domain family the way
	// the binary operator would.
	v := t.eval(s, a.Rhs[0])
	old := t.eval(s, a.Lhs[0])
	var op token.Token
	switch a.Tok {
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.SUB_ASSIGN:
		op = token.SUB
	case token.MUL_ASSIGN:
		op = token.MUL
	case token.QUO_ASSIGN:
		op = token.QUO
	default:
		return
	}
	nv := binaryDomain(op, old, v)
	if obj := rootObj(t.info, a.Lhs[0]); obj != nil {
		if _, isIdent := ast.Unparen(a.Lhs[0]).(*ast.Ident); isIdent {
			s.set(obj, nv)
		} else {
			s.weakSet(obj, nv)
		}
	}
}

// assignDomTo writes v into an assignable expression. A defined or
// plainly-assigned identifier whose right-hand side carried no domain
// falls back to its declared seed (annotation, then name heuristic).
func (t *domTransfer) assignDomTo(s domStore, lhs ast.Expr, v DomVal, define bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := t.info.Defs[l]
		if !define {
			if u := t.info.Uses[l]; u != nil {
				obj = u
			}
		}
		if v.isNone() {
			v = t.seed(obj)
		}
		s.set(obj, v)
	case *ast.IndexExpr:
		t.eval(s, l.Index)
		s.weakSet(rootObj(t.info, l.X), v)
	case *ast.SelectorExpr, *ast.StarExpr:
		s.weakSet(rootObj(t.info, lhs), v)
	case *ast.ParenExpr:
		t.assignDomTo(s, l.X, v, define)
	}
}

// seed returns an object's declared domain (see seedObject).
func (t *domTransfer) seed(obj types.Object) DomVal {
	if t.facts == nil || obj == nil {
		return DomVal{}
	}
	return seedObject(t.facts.units, t.facts.fset, obj)
}

// eval computes the domain of an expression and records it.
func (t *domTransfer) eval(s domStore, e ast.Expr) DomVal {
	v := t.evalInner(s, e)
	if tv, ok := t.info.Types[e]; ok {
		if tv.Value != nil {
			// Constants carry no domain: 1, 0.5 and friends are
			// compatible with every scale.
			v = DomVal{}
		} else if isIntegerType(tv.Type) {
			// Every integer-typed value is a count (exact arithmetic);
			// an explicit annotation on the variable may refine it, so
			// only override values with no information.
			if v.isNone() {
				v = DomVal{D: DomCount}
			}
		}
	}
	if !v.isNone() {
		t.fd.exprs[e] = t.fd.exprs[e].join(v)
	}
	return v
}

func (t *domTransfer) evalInner(s domStore, e ast.Expr) DomVal {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.info.ObjectOf(e); obj != nil {
			if v, ok := s[obj]; ok {
				return v
			}
			// Package-level variables and constants are not in the
			// flow store; fall back to their declared seed.
			if _, isVar := obj.(*types.Var); isVar {
				return t.seed(obj)
			}
		}
	case *ast.ParenExpr:
		return t.eval(s, e.X)
	case *ast.UnaryExpr:
		// Negation keeps the scale (-log p is still log-domain; -p is
		// still probability-scaled), as do &x and <-ch.
		return t.eval(s, e.X)
	case *ast.StarExpr:
		return t.eval(s, e.X)
	case *ast.BinaryExpr:
		x := t.eval(s, e.X)
		y := t.eval(s, e.Y)
		return binaryDomain(e.Op, x, y)
	case *ast.IndexExpr:
		t.eval(s, e.Index)
		return t.eval(s, e.X)
	case *ast.SliceExpr:
		v := t.eval(s, e.X)
		if e.Low != nil {
			t.eval(s, e.Low)
		}
		if e.High != nil {
			t.eval(s, e.High)
		}
		if e.Max != nil {
			t.eval(s, e.Max)
		}
		return v
	case *ast.SelectorExpr:
		// Field reads are seeded from the field's own declaration
		// (annotation or name): s1.CatRatePerPoolHour is a rate
		// wherever the struct travels.
		if sel, ok := t.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			t.eval(s, e.X)
			return t.seed(sel.Obj())
		}
		return DomVal{}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t.eval(s, kv.Value)
				continue
			}
			t.eval(s, el)
		}
		// A composite value has no scalar domain of its own; element
		// reads re-seed from field declarations.
		return DomVal{}
	case *ast.TypeAssertExpr:
		return t.eval(s, e.X)
	case *ast.CallExpr:
		return t.call(s, e)
	case *ast.FuncLit:
		return DomVal{}
	}
	return DomVal{}
}

// binaryDomain applies the operator-aware domain algebra. The rules
// encode the measurement semantics the repository's formulas rely on;
// anything not listed is DomNone (no claim) or DomMixed when an operand
// already is.
func binaryDomain(op token.Token, x, y DomVal) DomVal {
	if x.D == DomMixed || y.D == DomMixed {
		return DomVal{D: DomMixed}
	}
	viaExp := x.ViaExp || y.ViaExp
	switch op {
	case token.ADD, token.SUB:
		if x.D == DomNone || y.D == DomNone {
			return DomVal{}
		}
		if x.D == y.D {
			// p±p is probability-scaled, log+log is a log-domain
			// product, rate+rate aggregates, count±count is exact.
			return DomVal{D: x.D, ViaExp: viaExp}
		}
		// Cross-domain addition is the probmix bug; the value itself
		// is poisoned.
		return DomVal{D: DomMixed}
	case token.MUL:
		return DomVal{D: mulDomain(x.D, y.D), ViaExp: viaExp}
	case token.QUO:
		return DomVal{D: quoDomain(x.D, y.D), ViaExp: viaExp}
	}
	// Comparisons, %, bit operations: no scalar domain.
	return DomVal{}
}

// mulDomain is the (commutative) multiplication table.
func mulDomain(a, b Domain) Domain {
	if b < a {
		a, b = b, a
	}
	switch {
	case a == DomProb && b == DomProb:
		return DomProb // independent events compose
	case a == DomCount && b == DomCount:
		return DomCount
	case a == DomLogProb && b == DomCount:
		return DomLogProb // n·log p
	case a == DomRate && b == DomCount:
		return DomRate // aggregate rate over n sources
	case a == DomProb && b == DomRate:
		return DomRate // thinning a rate by a probability
	case a == DomProb && b == DomWeight:
		return DomWeight // importance-weighted probability mass
	}
	return DomNone
}

// quoDomain is the division table (a / b).
func quoDomain(a, b Domain) Domain {
	switch {
	case a == DomProb && b == DomProb:
		return DomProb // conditional probability
	case a == DomProb && b == DomCount:
		return DomProb // averaging probabilities
	case a == DomRate && b == DomCount:
		return DomRate // per-source rate
	case a == DomWeight && b == DomCount:
		return DomWeight
	case a == DomWeight && b == DomWeight:
		return DomProb // normalized weight
	}
	return DomNone
}

// call applies domain semantics for a call: the math-package
// sources/converters, RNG draws, then summarized intra-module callees,
// then a name-heuristic fallback.
func (t *domTransfer) call(s domStore, call *ast.CallExpr) DomVal {
	args := make([]DomVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = t.eval(s, a)
	}

	// Conversions pass the domain through (float64(n) keeps Count; the
	// integer rule in eval already handled the argument).
	if len(call.Args) == 1 {
		if tv, ok := t.info.Types[call.Fun]; ok && tv.IsType() {
			return args[0]
		}
	}

	switch calleeName(t.info, call) {
	case "math.Exp", "math.Exp2":
		// Back to linear space. The result's magnitude is unbounded
		// below: exp of a very negative log-probability is exactly the
		// value 1−x destroys. ViaExp records that provenance.
		d := DomNone
		if len(args) == 1 && args[0].D == DomLogProb {
			d = DomProb
		}
		return DomVal{D: d, ViaExp: true}
	case "math.Log", "math.Log2", "math.Log10", "math.Log1p":
		return DomVal{D: DomLogProb}
	case "math.Expm1":
		// exp(x)−1 is a signed complement, deliberately outside the
		// lattice; its whole point is avoiding the cancellation.
		return DomVal{}
	case "math.Sqrt", "math.Abs":
		if len(args) == 1 {
			return args[0]
		}
	case "math.Pow":
		if len(args) == 2 && args[0].D == DomProb {
			return DomVal{D: DomProb} // p^n stays in [0,1]
		}
		return DomVal{}
	case "math.Min", "math.Max", "builtin.min", "builtin.max":
		var v DomVal
		for _, a := range args {
			v = v.join(a)
		}
		return v
	case "builtin.len", "builtin.cap":
		return DomVal{D: DomCount}
	case "math/rand.Float64", "math/rand/v2.Float64",
		"math/rand.(method).Float64", "math/rand/v2.(method).Float64":
		return DomVal{D: DomProb} // a uniform draw is a probability
	}

	// Intra-module callee with an eager summary.
	if sum := t.calleeDomains(call); sum != nil && len(sum.results) == 1 {
		return sum.results[0]
	}
	return DomVal{}
}

// calleeDomains resolves the eager domain summary of a direct
// intra-module call, falling back to nil for external callees.
func (t *domTransfer) calleeDomains(call *ast.CallExpr) *domainSummary {
	if t.facts == nil {
		return nil
	}
	fn := calleeFunc(t.info, call)
	if fn == nil {
		return nil
	}
	return t.facts.domainsOf(fn)
}
