package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitGroupCapture enforces the worker-pool discipline used by the
// simulators' fan-out loops (burst.PDL, poolsim.Split,
// rs.EncodeParallel):
//
//  1. A goroutine launched inside a loop must not reference the loop
//     variable directly — it must receive it as a parameter of the go
//     func literal. (Go 1.22 made per-iteration variables safe, but
//     parameter passing keeps the dependency explicit and the code
//     correct under earlier toolchains and refactors.)
//
//  2. A goroutine launched inside a loop must not write to a variable
//     declared outside the loop without holding a lock — the shared-
//     accumulator race. Writing to distinct elements of a
//     pre-allocated slice (slots[i] = …) is the blessed pattern and is
//     not flagged; direct writes (sum += x, done++) are, unless the
//     goroutine body acquires a mutex.
//
//  3. wg.Add must not run inside the spawned goroutine itself — the
//     spawner may already be blocked in Wait when the Add executes
//     (the Add-after-Wait race). The check is shared with goleak
//     (goleak.go), whose lifecycle summaries subsume this analyzer's
//     lexical rules; the waitgroupcapture name is kept as the
//     established alias for the loop-discipline findings.
var WaitGroupCapture = &Analyzer{
	Name: "waitgroupcapture",
	Doc:  "flag worker-pool loops capturing loop variables or racing on shared accumulators",
	Run:  runWaitGroupCapture,
}

func runWaitGroupCapture(pass *Pass) error {
	for _, f := range pass.Files {
		// Rule 3 applies to every spawned literal, in or out of a loop.
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					reportAddInsideGoroutine(pass, lit)
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			loopVars := make(map[types.Object]bool)
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
				if init, ok := loop.Init.(*ast.AssignStmt); ok {
					for _, lhs := range init.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				body = loop.Body
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			default:
				return true
			}
			checkLoopGoroutines(pass, n.Pos(), body, loopVars)
			return true
		})
	}
	return nil
}

// checkLoopGoroutines inspects go statements directly inside one loop
// body (not nested inside further function literals).
func checkLoopGoroutines(pass *Pass, loopPos token.Pos, body *ast.BlockStmt, loopVars map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure is not "launched by this loop"
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		locks := containsLockCall(lit.Body)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil && loopVars[obj] {
					pass.Report(n.Pos(),
						"goroutine references loop variable %q; pass it as a parameter of the go func",
						n.Name)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportSharedWrite(pass, lhs, lit, loopPos, locks)
				}
			case *ast.IncDecStmt:
				reportSharedWrite(pass, n.X, lit, loopPos, locks)
			}
			return true
		})
		return true
	})
}

// reportSharedWrite flags a direct assignment to a variable declared
// before the loop, performed inside the goroutine without locking.
func reportSharedWrite(pass *Pass, lhs ast.Expr, lit *ast.FuncLit, loopPos token.Pos, locks bool) {
	if locks {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return // element/field writes are the per-slot pattern
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	// Declared inside the goroutine: private. Declared inside the loop
	// body but outside the goroutine: per-iteration, racy only against
	// this one goroutine — still shared, but the common benign case is
	// a per-iteration temp; we flag only pre-loop declarations, which
	// are shared across every worker.
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return
	}
	if v.Pos() >= loopPos {
		return
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
		return
	}
	pass.Report(id.Pos(),
		"goroutine writes shared accumulator %q without synchronization; use per-worker slots or a mutex",
		id.Name)
}
