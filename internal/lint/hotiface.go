package lint

// HotIface owns the interface costs of hot paths:
//
//  1. Boxing — converting a concrete value into an interface
//     (explicit T(x) conversions, assignments to interface-typed
//     variables, arguments to interface-typed parameters) allocates
//     unless the concrete type is pointer-shaped (pointer, chan, map,
//     func), whose values ride the interface data word for free.
//  2. Dispatch — an interface method call or a call through a
//     function value inside a hot loop. No allocation, but the
//     indirect call defeats inlining and reloads the itable every
//     iteration, which is exactly the cost the gf256 kernels avoid by
//     taking concrete slices.
//
// Boxing is reported anywhere in hot scope; dispatch only inside
// loops, where the per-iteration cost accumulates. Cold-path boxing
// (error formatting) is exempt, as everywhere in the family.
var HotIface = &Analyzer{
	Name: "hotiface",
	Doc:  "forbid interface boxing on hot paths and dynamic dispatch in hot loops",
	Run:  runHotIface,
}

func runHotIface(pass *Pass) error {
	eachHotSite(pass, func(scope hotScope, s AllocSite) {
		switch s.kind {
		case akIfaceBox:
			if s.Class != HeapAlloc {
				return
			}
			where := "on the hot path"
			if s.InLoop {
				where = "in a hot loop"
			}
			pass.Report(s.Node.Pos(),
				"%s %s performs %s (%s); keep the concrete type or use a pointer-shaped value",
				scope.fd.Name.Name, where, s.What, scope.label)
		case akDispatch:
			if !s.InLoop {
				return
			}
			pass.Report(s.Node.Pos(),
				"%s has %s in a hot loop (%s); devirtualize to a concrete call or hoist the decision out of the loop",
				scope.fd.Name.Name, s.What, scope.label)
		}
	})
	return nil
}
