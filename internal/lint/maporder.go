package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder is the dataflow analyzer behind the repository's core
// reproducibility invariant: no value whose content or order depends on
// Go's randomized map iteration order may reach a reported statistic,
// rendered output, or persisted state without an intervening sort.
//
// Sources are `range` statements over maps (the key and value become
// order-tainted) and calls to module functions whose fact summary says
// they return map-ordered data (see Facts). Taint propagates through
// assignments, arithmetic, composite literals, append, channel sends
// and receives, and summarized intra-module calls; sort.* and
// slices.Sort* sanitize their argument.
//
// Sinks, each reported:
//
//   - a float or string accumulator (x += tainted): float addition is
//     not associative and string concatenation is order-dependent, so
//     the result differs run to run;
//   - a return of a tainted value from an exported function or method:
//     the nondeterministic order escapes the package API;
//   - a tainted argument to fmt output (Print/Fprint families),
//     encoding/json marshalling, the render package, or
//     runctl.SaveCheckpoint: the order reaches rendered tables, CSV,
//     JSON, or checkpoint files directly.
//
// Integer accumulators (counters) are deliberately not sinks: integer
// addition is exact and commutative, so map-order iteration cannot
// change the result.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map-iteration order from reaching accumulators, output, or returns without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ft := pass.FuncTaint(fd)
			checkMapOrderBody(pass, ft, fd.Body, fd.Name.IsExported())
		}
	}
	return nil
}

// checkMapOrderBody walks one body (not descending into nested function
// literals, which get their own taint analysis and are never "exported"
// API) and reports taint at sinks.
func checkMapOrderBody(pass *Pass, ft *FuncTaint, body *ast.BlockStmt, exported bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMapOrderBody(pass, pass.FuncLitTaint(n), n.Body, false)
			return false
		case *ast.AssignStmt:
			checkMapOrderAccum(pass, ft, n)
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, e := range n.Results {
				if ft.Of(e)&TaintMapOrder != 0 {
					pass.Report(n.Pos(),
						"exported function returns data in map-iteration order; sort before returning")
					break
				}
			}
		case *ast.CallExpr:
			checkMapOrderCallSink(pass, ft, n)
		}
		return true
	})
}

// checkMapOrderAccum flags order-sensitive accumulation: compound
// assignment of a map-ordered value into a float or string.
func checkMapOrderAccum(pass *Pass, ft *FuncTaint, a *ast.AssignStmt) {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if ft.Of(a.Rhs[0])&TaintMapOrder == 0 {
		return
	}
	t := pass.Info.TypeOf(a.Lhs[0])
	if isFloat(t) {
		pass.Report(a.Pos(),
			"float accumulation in map-iteration order is not reproducible (addition is not associative); iterate sorted keys")
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Report(a.Pos(),
			"string built in map-iteration order differs run to run; iterate sorted keys")
	}
}

// mapOrderSinkCalls maps callee → index of the first argument to check
// (1 skips the io.Writer of the Fprint family).
var mapOrderSinkCalls = map[string]int{
	"fmt.Print": 0, "fmt.Printf": 1, "fmt.Println": 0,
	"fmt.Fprint": 1, "fmt.Fprintf": 2, "fmt.Fprintln": 1,
	"encoding/json.Marshal": 0, "encoding/json.MarshalIndent": 0,
	"mlec/internal/runctl.SaveCheckpoint": 1,
}

// checkMapOrderCallSink flags tainted arguments reaching output calls.
func checkMapOrderCallSink(pass *Pass, ft *FuncTaint, call *ast.CallExpr) {
	name := calleeName(pass.Info, call)
	from, ok := mapOrderSinkCalls[name]
	if !ok {
		// Any function of the render package is an output sink.
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "mlec/internal/render" {
			from = 0
		} else if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel &&
			sel.Sel.Name == "Encode" && isJSONEncoder(pass.Info.TypeOf(sel.X)) {
			from = 0
		} else {
			return
		}
	}
	for i := from; i < len(call.Args); i++ {
		if ft.Of(call.Args[i])&TaintMapOrder != 0 {
			pass.Report(call.Args[i].Pos(),
				"map-iteration-ordered value reaches %s output; sort before emitting", sinkLabel(name))
			return
		}
	}
}

func sinkLabel(callee string) string {
	switch callee {
	case "encoding/json.Marshal", "encoding/json.MarshalIndent":
		return "JSON"
	case "mlec/internal/runctl.SaveCheckpoint":
		return "checkpoint"
	case "":
		return "rendered"
	}
	return "printed"
}

// isJSONEncoder reports whether t is *encoding/json.Encoder.
func isJSONEncoder(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Encoder" && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/json"
}
