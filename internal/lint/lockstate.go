package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mlec/internal/lint/cfg"
)

// This file implements the lock-state engine behind the concurrency
// analyzer family (lockcheck, atomicmix, goleak, copylock).
//
// # Directive grammar
//
//	//mlec:guardedby <name>
//
// On (or directly above) a struct field, <name> must be a sibling field
// of type sync.Mutex or sync.RWMutex; on (or directly above) a
// package-level var, <name> must be a package-level mutex var. The
// annotation is the human claim "every access to this state happens
// with <name> held"; the engine turns the claim into a checked
// invariant. A directive that anchors to nothing, or whose guard does
// not resolve, is recorded in Package.MalformedGuard and reported by
// the driver — a dangling guard annotation is a reviewer believing
// state is protected when nothing checks it.
//
// # The lock-state lattice
//
// Per control-flow point and per lock reference (an identifier or
// field-selection chain, e.g. r.mu) the engine tracks four small
// counters: write-hold depth, read-hold depth, and the deferred
// write/read releases registered so far. Depths are clamped to [0,2] —
// enough to detect double-lock, never enough to diverge. The join at
// CFG merge points is the pointwise minimum (must-held semantics: a
// lock is held after a merge only if it is held on every incoming
// path), so one iteration order reaches the greatest fixed point and a
// hard cap bounds the loop defensively.
//
// Exit discipline rides the CFG's synthetic Exit block: every return,
// direct panic call and fall-off-the-end edges into Exit, and at each
// such edge the engine compares hold depth against registered deferred
// releases. `defer mu.Unlock()` therefore counts as released on every
// exit path — including panic edges — while a conditional defer only
// counts on the paths that registered it.
//
// # Interprocedural summaries
//
// Functions compose through lock summaries computed bottom-up over the
// Tarjan condensation (callgraph.go), iterated to a fixed point inside
// cycles like every other fact in facts.go. A summary abstracts lock
// references through the callee's receiver, parameters, or
// package-level vars and records four sets:
//
//	requires — locks that must be held by the caller (inferred from
//	           guarded access or callee requires at depth zero in an
//	           unexported function);
//	acquires — locks held at exit beyond entry (lock helpers);
//	releases — locks released beyond acquisition (unlock helpers);
//	internal — locks the function takes itself, for the
//	           caller-already-holds self-deadlock check.
//
// At a call site the caller concretizes each abstract lock against the
// actual receiver/arguments, applies releases then acquires, checks
// requires against its own state, and reports a self-deadlock when it
// already holds a lock the callee takes internally. Inference keeps
// unexported helpers quiet (their obligation propagates to callers);
// exported functions must be self-contained — an exported API whose
// correctness depends on an undocumented caller-held lock is itself a
// finding.
//
// Function literals do not contribute to summaries. A literal spawned
// by a `go` statement is analyzed in strict mode — guarded access with
// no lock held is always a finding, because requires-inference has no
// caller to propagate to once the goroutine is running. Other literals
// (callbacks, sort comparators) are analyzed in quiet mode: they often
// execute with the enclosing function's locks held, which the engine
// does not model, so only hard local errors (double-lock, imbalance on
// a path) are reported.

// validateGuardDirectives anchors every //mlec:guardedby directive to a
// struct field or package-level var and resolves its guard, filling
// guardedFields/guardedVars; failures land in MalformedGuard.
func (p *Package) validateGuardDirectives() {
	p.guardedFields = make(map[*types.Var]*types.Var)
	p.guardedVars = make(map[*types.Var]*types.Var)
	if len(p.guards) == 0 {
		return
	}
	// claimed tracks directive lines that anchored to something.
	claimed := make(map[string]map[int]bool)
	claim := func(file string, line int) {
		lines := claimed[file]
		if lines == nil {
			lines = make(map[int]bool)
			claimed[file] = lines
		}
		lines[line] = true
	}
	// guardAt returns the directive guard name for a node starting at
	// pos: directive on the same line (trailing) or the line above.
	guardAt := func(pos token.Position) (string, int, bool) {
		lines := p.guards[pos.Filename]
		if g, ok := lines[pos.Line]; ok {
			return g, pos.Line, true
		}
		if g, ok := lines[pos.Line-1]; ok {
			return g, pos.Line - 1, true
		}
		return "", 0, false
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if st, ok := n.(*ast.StructType); ok {
				p.anchorStructGuards(st, guardAt, claim)
				return true
			}
			return true
		})
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				pos := p.Fset.Position(vs.Pos())
				guard, line, ok := guardAt(pos)
				if !ok {
					continue
				}
				mu := p.packageMutexVar(guard)
				if mu == nil {
					continue // leave unclaimed → malformed
				}
				for _, name := range vs.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						p.guardedVars[v] = mu
					}
				}
				claim(pos.Filename, line)
			}
		}
	}
	for file, lines := range p.guards {
		for line := range lines {
			if !claimed[file][line] {
				p.MalformedGuard = append(p.MalformedGuard,
					token.Position{Filename: file, Line: line, Column: 1})
			}
		}
	}
	sort.Slice(p.MalformedGuard, func(i, j int) bool {
		a, b := p.MalformedGuard[i], p.MalformedGuard[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}

// anchorStructGuards resolves guardedby directives on the fields of one
// struct type against its sibling mutex fields.
func (p *Package) anchorStructGuards(st *ast.StructType,
	guardAt func(token.Position) (string, int, bool), claim func(string, int)) {
	// Mutex fields by name, for sibling resolution.
	mutexes := make(map[string]*types.Var)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, ok := p.Info.Defs[name].(*types.Var)
			if ok && isMutex(v.Type()) {
				mutexes[name.Name] = v
			}
		}
	}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded fields are not guardable state
		}
		pos := p.Fset.Position(field.Pos())
		guard, line, ok := guardAt(pos)
		if !ok {
			continue
		}
		mu := mutexes[guard]
		if mu == nil {
			continue // unresolvable guard → line stays unclaimed
		}
		for _, name := range field.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok && v != mu {
				p.guardedFields[v] = mu
			}
		}
		claim(pos.Filename, line)
	}
}

// packageMutexVar resolves a guard name to a package-level mutex var.
func (p *Package) packageMutexVar(name string) *types.Var {
	if p.Types == nil {
		return nil
	}
	v, ok := p.Types.Scope().Lookup(name).(*types.Var)
	if ok && isMutex(v.Type()) {
		return v
	}
	return nil
}

// A lockAbs abstracts a lock reference through a function boundary:
// rooted at the receiver, a parameter, or a package-level var, plus the
// field path from the root to the mutex.
type lockAbs struct {
	kind byte // 'r' receiver, 'p' parameter, 'g' package-level var
	idx  int  // parameter index when kind == 'p'
	obj  types.Object
	path string // ".mu"-style selection path; "" when the root is the mutex
	read bool   // RLock-mode for acquires/releases; read-suffices for requires
}

func (a lockAbs) key() string {
	mode := "w"
	if a.read {
		mode = "r"
	}
	switch a.kind {
	case 'r':
		return "recv" + a.path + "/" + mode
	case 'p':
		return fmt.Sprintf("p%d%s/%s", a.idx, a.path, mode)
	default:
		name := "?"
		if a.obj != nil {
			name = a.obj.Name()
		}
		return "g." + name + a.path + "/" + mode
	}
}

// lockSummary is one function's composed lock behaviour (see the file
// comment). Sets are keyed by lockAbs.key for deduplication.
type lockSummary struct {
	requires map[string]lockAbs
	acquires map[string]lockAbs
	releases map[string]lockAbs
	internal map[string]lockAbs
}

func newLockSummary() *lockSummary {
	return &lockSummary{
		requires: make(map[string]lockAbs),
		acquires: make(map[string]lockAbs),
		releases: make(map[string]lockAbs),
		internal: make(map[string]lockAbs),
	}
}

func (s *lockSummary) equal(o *lockSummary) bool {
	eq := func(a, b map[string]lockAbs) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if _, ok := b[k]; !ok {
				return false
			}
		}
		return true
	}
	return eq(s.requires, o.requires) && eq(s.acquires, o.acquires) &&
		eq(s.releases, o.releases) && eq(s.internal, o.internal)
}

// empty reports whether the summary claims nothing.
func (s *lockSummary) empty() bool {
	return len(s.requires) == 0 && len(s.acquires) == 0 &&
		len(s.releases) == 0 && len(s.internal) == 0
}

// lockVal is the per-lock state at one program point.
type lockVal struct {
	w, r   int8 // hold depths, clamped to [0,2]
	dw, dr int8 // deferred releases registered so far
}

func (v lockVal) zero() bool { return v == lockVal{} }

// lockState maps lock references to their state. sliceRef (bounds.go)
// is reused as the reference type: an object root plus a selection
// path is exactly what identifies a mutex too.
type lockState map[sliceRef]lockVal

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// join is the pointwise minimum: held only if held on every path.
func joinLockStates(a, b lockState) lockState {
	out := make(lockState)
	min8 := func(x, y int8) int8 {
		if x < y {
			return x
		}
		return y
	}
	for k, av := range a {
		bv := b[k] // zero value when absent
		v := lockVal{min8(av.w, bv.w), min8(av.r, bv.r), min8(av.dw, bv.dw), min8(av.dr, bv.dr)}
		if !v.zero() {
			out[k] = v
		}
	}
	return out
}

func equalLockStates(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

const (
	lockModeDecl    = iota // declared function: summaries + reports
	lockModeGo             // go-statement literal: strict, no inference
	lockModeClosure        // other literal: quiet, hard errors only
)

// lockEngine analyzes one function body. report is nil in summary mode
// (fact computation); in analysis mode it is the Pass's Report.
type lockEngine struct {
	info    *types.Info
	facts   *Facts
	fn      *types.Func // nil for literals
	mode    int
	report  func(pos token.Pos, format string, args ...any)
	summary *lockSummary

	recvObj  types.Object
	paramIdx map[types.Object]int

	// locallyBorn holds objects assigned from a fresh composite literal
	// or new() in this body: construct-then-publish state is exempt
	// from guard checks until it escapes.
	locallyBorn map[types.Object]bool

	// lits collects nested function literals for separate analysis,
	// paired with whether they are spawned by a go statement.
	lits []litSite
}

type litSite struct {
	lit *ast.FuncLit
	gos bool
}

// newLockEngine prepares an engine for a declared function.
func newLockEngine(info *types.Info, facts *Facts, fn *types.Func, decl *ast.FuncDecl,
	report func(pos token.Pos, format string, args ...any)) *lockEngine {
	e := &lockEngine{
		info:     info,
		facts:    facts,
		fn:       fn,
		mode:     lockModeDecl,
		report:   report,
		summary:  newLockSummary(),
		paramIdx: make(map[types.Object]int),
	}
	if decl != nil {
		if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			e.recvObj = info.Defs[decl.Recv.List[0].Names[0]]
		}
		i := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				e.paramIdx[info.Defs[name]] = i
				i++
			}
		}
	}
	return e
}

// analyze runs the engine over a body: fixed point first, then (when
// reporting) a second pass that fires diagnostics and checks every
// edge into the CFG's Exit block for imbalance.
func (e *lockEngine) analyze(body *ast.BlockStmt, entry lockState) {
	if body == nil {
		return
	}
	e.collectLocallyBorn(body)
	g := cfg.Build(body)
	n := len(g.Blocks)
	ins := make([]lockState, n)
	outs := make([]lockState, n)
	visited := make([]bool, n)
	preds := make([][]int, n)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk.Index)
		}
	}
	if entry == nil {
		entry = make(lockState)
	}
	// Fixed point. The lattice is tiny and join is min, so a handful of
	// sweeps converge; the cap keeps malformed inputs (fuzzing) safe.
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, blk := range g.Blocks {
			var in lockState
			if blk == g.Entry {
				in = entry.clone()
			} else {
				seen := false
				for _, p := range preds[blk.Index] {
					if !visited[p] {
						continue
					}
					if !seen {
						in = outs[p].clone()
						seen = true
					} else {
						in = joinLockStates(in, outs[p])
					}
				}
				if !seen {
					continue // unreachable (so far)
				}
			}
			out := in.clone()
			e.transferBlock(blk, out, false)
			if !visited[blk.Index] || !equalLockStates(ins[blk.Index], in) ||
				!equalLockStates(outs[blk.Index], out) {
				changed = true
			}
			visited[blk.Index] = true
			ins[blk.Index] = in
			outs[blk.Index] = out
		}
		if !changed {
			break
		}
	}
	// Report pass + exit-edge imbalance checks, in block order so
	// diagnostics are deterministic.
	for _, blk := range g.Blocks {
		if !visited[blk.Index] {
			continue
		}
		st := ins[blk.Index].clone()
		e.transferBlock(blk, st, true)
		for _, s := range blk.Succs {
			if s == g.Exit {
				e.checkExit(blk, st, body)
				break
			}
		}
	}
	// Nested literals: analyzed with a fresh state — the engine does
	// not model which enclosing locks are held when a closure runs.
	lits := e.lits
	e.lits = nil
	for _, ls := range lits {
		sub := &lockEngine{
			info: e.info, facts: e.facts, mode: lockModeClosure,
			report: e.report, summary: newLockSummary(),
			paramIdx: make(map[types.Object]int), locallyBorn: e.locallyBorn,
		}
		if ls.gos {
			sub.mode = lockModeGo
		}
		sub.analyze(ls.lit.Body, nil)
	}
}

// checkExit fires imbalance diagnostics and acquire/release summaries
// for one edge into Exit.
func (e *lockEngine) checkExit(blk *cfg.Block, st lockState, body *ast.BlockStmt) {
	pos := body.End()
	if len(blk.Nodes) > 0 {
		pos = blk.Nodes[len(blk.Nodes)-1].Pos()
	}
	var refs []sliceRef
	for ref := range st {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return lockRefLabel(refs[i]) < lockRefLabel(refs[j]) })
	for _, ref := range refs {
		v := st[ref]
		netW, netR := v.w-v.dw, v.r-v.dr
		if netW > 0 || netR > 0 {
			if abs, ok := e.absOf(ref); ok && e.mode == lockModeDecl && e.isLockHelper() {
				abs.read = netW <= 0
				e.summary.acquires[abs.key()] = abs
				e.summary.internal[abs.key()] = abs
				continue
			}
			if e.mode == lockModeClosure {
				continue
			}
			e.emit(pos, "%s is still held when the function exits here (missing unlock on this return/panic path; defer the unlock or release before leaving)", lockRefLabel(ref))
			continue
		}
		if netW < 0 || netR < 0 {
			// Deferred release beyond acquisition: an unlock helper.
			if abs, ok := e.absOf(ref); ok && e.allowInference() {
				abs.read = netW >= 0
				e.summary.releases[abs.key()] = abs
				continue
			}
			if e.mode == lockModeClosure {
				continue
			}
			e.emit(pos, "deferred unlock of %s without a matching lock on this path", lockRefLabel(ref))
		}
	}
}

// transferBlock interprets one basic block's nodes against st.
func (e *lockEngine) transferBlock(blk *cfg.Block, st lockState, report bool) {
	for _, n := range blk.Nodes {
		e.node(n, st, report)
	}
}

// node dispatches one CFG node.
func (e *lockEngine) node(n ast.Node, st lockState, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			e.expr(rhs, false, st, report)
		}
		for _, lhs := range n.Lhs {
			e.writeTarget(lhs, st, report)
		}
	case *ast.IncDecStmt:
		e.writeTarget(n.X, st, report)
	case *ast.ExprStmt:
		e.expr(n.X, false, st, report)
	case *ast.SendStmt:
		e.expr(n.Chan, false, st, report)
		e.expr(n.Value, false, st, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			e.expr(r, false, st, report)
		}
	case *ast.DeferStmt:
		e.deferStmt(n, st, report)
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			if report {
				e.lits = append(e.lits, litSite{lit, true})
			}
		} else {
			e.expr(n.Call.Fun, false, st, report)
		}
		for _, a := range n.Call.Args {
			e.expr(a, false, st, report)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						e.expr(v, false, st, report)
					}
				}
			}
		}
	case *ast.RangeStmt:
		e.expr(n.X, false, st, report)
	case *ast.LabeledStmt, *ast.EmptyStmt, *ast.BranchStmt:
		// no lock-relevant content
	case ast.Expr:
		e.expr(n, false, st, report)
	case ast.Stmt:
		// Remaining statement forms (Init statements re-dispatched by
		// the CFG, etc.): scan conservatively for reads.
		ast.Inspect(n, func(sub ast.Node) bool {
			if x, ok := sub.(ast.Expr); ok {
				e.expr(x, false, st, report)
				return false
			}
			return true
		})
	}
}

// writeTarget walks an assignment target: the stored-to reference is a
// write access, inner index/pointer expressions are reads.
func (e *lockEngine) writeTarget(x ast.Expr, st lockState, report bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		e.expr(x.(ast.Expr), true, st, report)
	case *ast.IndexExpr:
		e.expr(x.X, true, st, report)
		e.expr(x.Index, false, st, report)
	case *ast.StarExpr:
		e.expr(x.X, false, st, report)
	default:
		e.expr(x, false, st, report)
	}
}

// expr walks one expression, checking guarded accesses (write reports
// whether the surrounding context stores to the reference) and
// interpreting lock operations and module calls.
func (e *lockEngine) expr(x ast.Expr, write bool, st lockState, report bool) {
	if x == nil {
		return
	}
	switch x := x.(type) {
	case *ast.Ident:
		e.access(x, write, st, report)
	case *ast.SelectorExpr:
		e.access(x, write, st, report)
		e.expr(x.X, write, st, report)
	case *ast.ParenExpr:
		e.expr(x.X, write, st, report)
	case *ast.UnaryExpr:
		// Taking the address of guarded state hands out a mutable
		// alias: treated as a write access.
		e.expr(x.X, x.Op == token.AND || write, st, report)
	case *ast.StarExpr:
		e.expr(x.X, false, st, report)
	case *ast.IndexExpr:
		e.expr(x.X, write, st, report)
		e.expr(x.Index, false, st, report)
	case *ast.SliceExpr:
		e.expr(x.X, write, st, report)
		e.expr(x.Low, false, st, report)
		e.expr(x.High, false, st, report)
		e.expr(x.Max, false, st, report)
	case *ast.BinaryExpr:
		e.expr(x.X, false, st, report)
		e.expr(x.Y, false, st, report)
	case *ast.CallExpr:
		e.call(x, st, report)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				e.expr(kv.Value, false, st, report)
				continue
			}
			e.expr(el, false, st, report)
		}
	case *ast.KeyValueExpr:
		e.expr(x.Value, false, st, report)
	case *ast.TypeAssertExpr:
		e.expr(x.X, false, st, report)
	case *ast.FuncLit:
		if report {
			e.lits = append(e.lits, litSite{x, false})
		}
	}
}

// call interprets one call expression: a mutex operation, a module
// callee with a lock summary, or an ordinary call whose operands are
// read (and whose guarded method receiver is a write).
func (e *lockEngine) call(call *ast.CallExpr, st lockState, report bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if op, ref, ok := e.lockOp(sel); ok {
			e.applyLockOp(op, ref, call.Pos(), st, report)
			return
		}
		// Method call on a guarded field conservatively mutates it
		// (r.buf.Write, e.rng.Shuffle): the receiver is a write access.
		if e.info != nil {
			if s, ok := e.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				e.expr(sel.X, true, st, report)
			} else {
				e.expr(sel.X, false, st, report)
			}
		}
	} else {
		e.expr(call.Fun, false, st, report)
	}
	for _, a := range call.Args {
		e.expr(a, false, st, report)
	}
	if e.facts != nil && e.info != nil {
		if callee := calleeFunc(e.info, call); callee != nil {
			if sum := e.facts.locks[callee]; sum != nil {
				e.applySummary(callee, sum, call, st, report)
			}
		}
	}
}

// lockOp recognizes mu.Lock / Unlock / RLock / RUnlock on a resolvable
// mutex reference.
func (e *lockEngine) lockOp(sel *ast.SelectorExpr) (string, sliceRef, bool) {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", sliceRef{}, false
	}
	if e.info == nil {
		return "", sliceRef{}, false
	}
	t := e.info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isMutex(t) {
		return "", sliceRef{}, false
	}
	ref, ok := resolveRef(e.info, sel.X)
	if !ok {
		return "", sliceRef{}, false
	}
	return sel.Sel.Name, ref, true
}

// applyLockOp updates st for one mutex operation and reports the
// double-lock / unheld-release family.
func (e *lockEngine) applyLockOp(op string, ref sliceRef, pos token.Pos, st lockState, report bool) {
	v := st[ref]
	label := lockRefLabel(ref)
	switch op {
	case "Lock":
		if report {
			if v.w > 0 {
				e.emit(pos, "double Lock of %s on this path (already held; self-deadlock)", label)
			} else if v.r > 0 {
				e.emit(pos, "Lock of %s while its read lock is held on this path (self-deadlock)", label)
			}
		}
		if v.w < 2 {
			v.w++
		}
		e.noteInternal(ref, false)
	case "RLock":
		if report && v.w > 0 {
			e.emit(pos, "RLock of %s while its write lock is held on this path (self-deadlock)", label)
		}
		if v.r < 2 {
			v.r++
		}
		e.noteInternal(ref, true)
	case "Unlock":
		if v.w > 0 {
			v.w--
		} else if !e.releaseInference(ref, false) && report {
			e.emit(pos, "Unlock of %s which is not held on this path", label)
		}
	case "RUnlock":
		if v.r > 0 {
			v.r--
		} else if !e.releaseInference(ref, true) && report {
			e.emit(pos, "RUnlock of %s which is not held on this path", label)
		}
	}
	if v.zero() {
		delete(st, ref)
	} else {
		st[ref] = v
	}
}

// noteInternal records an acquisition for the self-deadlock summary.
func (e *lockEngine) noteInternal(ref sliceRef, read bool) {
	if e.mode != lockModeDecl {
		return
	}
	if abs, ok := e.absOf(ref); ok {
		abs.read = read
		e.summary.internal[abs.key()] = abs
	}
}

// releaseInference absorbs an unlock-at-depth-zero into the releases
// summary when the function may legitimately be an unlock helper.
func (e *lockEngine) releaseInference(ref sliceRef, read bool) bool {
	if !e.allowInference() {
		return false
	}
	abs, ok := e.absOf(ref)
	if !ok {
		return false
	}
	abs.read = read
	e.summary.releases[abs.key()] = abs
	return true
}

// deferStmt registers deferred releases: a direct deferred unlock, the
// unlocks inside a deferred literal, and the releases summary of a
// deferred module callee.
func (e *lockEngine) deferStmt(d *ast.DeferStmt, st lockState, report bool) {
	for _, a := range d.Call.Args {
		e.expr(a, false, st, report)
	}
	addDeferred := func(ref sliceRef, read bool) {
		v := st[ref]
		if read {
			if v.dr < 2 {
				v.dr++
			}
		} else if v.dw < 2 {
			v.dw++
		}
		st[ref] = v
	}
	if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
		if op, ref, ok := e.lockOp(sel); ok {
			switch op {
			case "Unlock":
				addDeferred(ref, false)
			case "RUnlock":
				addDeferred(ref, true)
			}
			return
		}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		// Unlocks anywhere in the deferred literal (not in further
		// nested literals) run on every exit path.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if op, ref, ok := e.lockOp(sel); ok {
					switch op {
					case "Unlock":
						addDeferred(ref, false)
					case "RUnlock":
						addDeferred(ref, true)
					}
				}
			}
			return true
		})
		if report {
			e.lits = append(e.lits, litSite{lit, false})
		}
		return
	}
	if e.facts != nil && e.info != nil {
		if callee := calleeFunc(e.info, d.Call); callee != nil {
			if sum := e.facts.locks[callee]; sum != nil {
				for _, abs := range sortedAbs(sum.releases) {
					if ref, ok := e.concretize(abs, d.Call); ok {
						addDeferred(ref, abs.read)
					}
				}
			}
		}
	}
}

// applySummary composes a module callee's lock summary into st.
func (e *lockEngine) applySummary(callee *types.Func, sum *lockSummary, call *ast.CallExpr, st lockState, report bool) {
	held := func(ref sliceRef, read bool) bool {
		v := st[ref]
		if read {
			return v.w > 0 || v.r > 0
		}
		return v.w > 0
	}
	if report {
		for _, abs := range sortedAbs(sum.internal) {
			if ref, ok := e.concretize(abs, call); ok && held(ref, true) {
				e.emit(call.Pos(), "calling %s, which locks %s internally, while already holding it (self-deadlock)",
					callee.Name(), lockRefLabel(ref))
			}
		}
	}
	for _, abs := range sortedAbs(sum.requires) {
		ref, ok := e.concretize(abs, call)
		if !ok {
			continue
		}
		if held(ref, abs.read) {
			continue
		}
		if e.requireInference(ref, abs.read) {
			continue
		}
		if report && e.mode != lockModeClosure {
			e.emit(call.Pos(), "calling %s requires holding %s, which is not held on this path",
				callee.Name(), lockRefLabel(ref))
		}
	}
	for _, abs := range sortedAbs(sum.releases) {
		if ref, ok := e.concretize(abs, call); ok {
			v := st[ref]
			if abs.read {
				if v.r > 0 {
					v.r--
				}
			} else if v.w > 0 {
				v.w--
			}
			if v.zero() {
				delete(st, ref)
			} else {
				st[ref] = v
			}
		}
	}
	for _, abs := range sortedAbs(sum.acquires) {
		if ref, ok := e.concretize(abs, call); ok {
			v := st[ref]
			if abs.read {
				if v.r < 2 {
					v.r++
				}
			} else if v.w < 2 {
				v.w++
			}
			st[ref] = v
		}
	}
}

// access checks one guarded-state reference against the current state.
func (e *lockEngine) access(x ast.Expr, write bool, st lockState, report bool) {
	if !report || e.info == nil || e.facts == nil {
		return
	}
	guardRef, mu, field, ok := e.guardOfExpr(x)
	if !ok {
		return
	}
	v := st[guardRef]
	rw := isRWMutex(mu.Type())
	heldOK := v.w > 0 || (rw && !write && v.r > 0)
	if heldOK {
		return
	}
	if e.requireInference(guardRef, rw && !write) {
		return
	}
	if e.mode == lockModeClosure {
		return
	}
	verb := "read"
	if write {
		verb = "written"
	}
	where := ""
	if e.mode == lockModeGo {
		where = " inside a goroutine"
	}
	e.emit(x.Pos(), "%s is %s%s without holding %s (//mlec:guardedby)",
		fieldLabel(field), verb, where, lockRefLabel(guardRef))
}

// guardOfExpr resolves x to an annotated field or package var and
// returns the concrete lock reference guarding it.
func (e *lockEngine) guardOfExpr(x ast.Expr) (sliceRef, *types.Var, *types.Var, bool) {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		s, ok := e.info.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return sliceRef{}, nil, nil, false
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			return sliceRef{}, nil, nil, false
		}
		mu := e.facts.guardedFields[field]
		if mu == nil {
			return sliceRef{}, nil, nil, false
		}
		base, ok := resolveRef(e.info, x.X)
		if !ok || e.locallyBorn[base.obj] {
			return sliceRef{}, nil, nil, false
		}
		return sliceRef{obj: base.obj, path: base.path + "." + mu.Name()}, mu, field, true
	case *ast.Ident:
		obj, ok := e.info.ObjectOf(x).(*types.Var)
		if !ok {
			return sliceRef{}, nil, nil, false
		}
		mu := e.facts.guardedVars[obj]
		if mu == nil {
			return sliceRef{}, nil, nil, false
		}
		return sliceRef{obj: mu}, mu, obj, true
	}
	return sliceRef{}, nil, nil, false
}

// requireInference absorbs an unheld obligation into the requires
// summary when propagation to callers is legitimate.
func (e *lockEngine) requireInference(ref sliceRef, read bool) bool {
	if !e.allowInference() {
		return false
	}
	abs, ok := e.absOf(ref)
	if !ok {
		return false
	}
	abs.read = read
	e.summary.requires[abs.key()] = abs
	return true
}

// allowInference: only unexported declared functions may push lock
// obligations onto their callers; exported API must be self-contained,
// and goroutine bodies have no caller left to satisfy the obligation.
func (e *lockEngine) allowInference() bool {
	return e.mode == lockModeDecl && e.fn != nil && !e.fn.Exported()
}

// isLockHelper reports whether the function's name advertises that it
// returns with a lock held (lock/acquire naming convention).
func (e *lockEngine) isLockHelper() bool {
	if e.fn == nil {
		return false
	}
	n := strings.ToLower(e.fn.Name())
	return strings.Contains(n, "lock") || strings.Contains(n, "acquire")
}

// absOf abstracts a concrete lock reference through this function's
// boundary, if its root is the receiver, a parameter, or package-level.
func (e *lockEngine) absOf(ref sliceRef) (lockAbs, bool) {
	if ref.obj == nil {
		return lockAbs{}, false
	}
	if e.recvObj != nil && ref.obj == e.recvObj {
		return lockAbs{kind: 'r', path: ref.path}, true
	}
	if idx, ok := e.paramIdx[ref.obj]; ok {
		return lockAbs{kind: 'p', idx: idx, path: ref.path}, true
	}
	if v, ok := ref.obj.(*types.Var); ok && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope() {
		return lockAbs{kind: 'g', obj: v, path: ref.path}, true
	}
	return lockAbs{}, false
}

// concretize maps a callee's abstract lock to a caller reference at one
// call site.
func (e *lockEngine) concretize(abs lockAbs, call *ast.CallExpr) (sliceRef, bool) {
	unwrap := func(x ast.Expr) ast.Expr {
		x = ast.Unparen(x)
		if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
			return u.X
		}
		return x
	}
	switch abs.kind {
	case 'g':
		return sliceRef{obj: abs.obj, path: abs.path}, true
	case 'r':
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return sliceRef{}, false
		}
		base, ok := resolveRef(e.info, unwrap(sel.X))
		if !ok {
			return sliceRef{}, false
		}
		return sliceRef{obj: base.obj, path: base.path + abs.path}, true
	case 'p':
		if abs.idx >= len(call.Args) {
			return sliceRef{}, false
		}
		base, ok := resolveRef(e.info, unwrap(call.Args[abs.idx]))
		if !ok {
			return sliceRef{}, false
		}
		return sliceRef{obj: base.obj, path: base.path + abs.path}, true
	}
	return sliceRef{}, false
}

// collectLocallyBorn marks objects initialized from fresh composite
// literals or new() in this body.
func (e *lockEngine) collectLocallyBorn(body *ast.BlockStmt) {
	e.locallyBorn = make(map[types.Object]bool)
	if e.info == nil {
		return
	}
	born := func(rhs ast.Expr) bool {
		rhs = ast.Unparen(rhs)
		if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhs = ast.Unparen(u.X)
		}
		switch rhs := rhs.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			id, ok := rhs.Fun.(*ast.Ident)
			return ok && id.Name == "new"
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if ok && born(n.Rhs[i]) {
					if obj := e.info.ObjectOf(id); obj != nil {
						e.locallyBorn[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i >= len(n.Values) {
					break
				}
				if born(n.Values[i]) {
					if obj := e.info.Defs[name]; obj != nil {
						e.locallyBorn[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (e *lockEngine) emit(pos token.Pos, format string, args ...any) {
	if e.report != nil {
		e.report(pos, format, args...)
	}
}

// lockRefLabel renders a lock reference for diagnostics: "r.mu".
func lockRefLabel(ref sliceRef) string {
	if ref.obj == nil {
		return "<lock>" + ref.path
	}
	return ref.obj.Name() + ref.path
}

func fieldLabel(v *types.Var) string {
	return v.Name()
}

// sortedAbs returns a summary set in deterministic key order.
func sortedAbs(m map[string]lockAbs) []lockAbs {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockAbs, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// isRWMutex reports whether t is sync.RWMutex specifically.
func isRWMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "RWMutex"
}

// computeLocks fills the per-function lock summaries bottom-up over the
// SCC condensation, fixed-pointed inside cycles like every other fact.
func (f *Facts) computeLocks(g *callGraph) {
	f.locks = make(map[*types.Func]*lockSummary)
	for _, scc := range g.sccs {
		for _, n := range scc {
			f.locks[n.fn] = newLockSummary()
		}
		for iter := 1; iter <= sccIterationCap; iter++ {
			changed := false
			for _, n := range scc {
				e := newLockEngine(n.site.pkg.Info, f, n.fn, n.site.decl, nil)
				e.analyze(n.site.decl.Body, nil)
				if !e.summary.equal(f.locks[n.fn]) {
					f.locks[n.fn] = e.summary
					changed = true
				}
			}
			if iter > f.maxSCCIters {
				f.maxSCCIters = iter
			}
			if !changed {
				break
			}
		}
	}
}

// LockSummaryOf exposes a function's lock summary (nil outside the
// module), for tests.
func (f *Facts) LockSummaryOf(fn *types.Func) *lockSummary { return f.locks[fn] }
