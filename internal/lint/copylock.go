package lint

import (
	"go/ast"
	"go/types"
)

// CopyLock flags by-value copies of lock-bearing values — structs (or
// arrays of structs) that transitively contain a sync or sync/atomic
// synchronization primitive. A copied mutex is a fork of the lock
// state: both copies unlock independently, the guarded invariant
// silently splits, and the race detector only notices once both halves
// run. `go vet` catches the common intraprocedural sites; this
// analyzer also covers declaration-site and flow sites vet skips —
// value receivers and by-value parameters in function signatures,
// returning a lock-bearing value loaded from existing storage, and
// range-value iteration over a slice of lock-bearing elements.
// Copies of freshly constructed values (composite literals, call
// results) are not flagged: a value that existed only on the right-hand
// side has no lock state to fork yet.
var CopyLock = &Analyzer{
	Name: "copylock",
	Doc:  "flag by-value copies of lock-bearing structs: parameters, receivers, returns, assignments and range values",
	Run:  runCopyLock,
}

func runCopyLock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					// Assigning to the blank identifier evaluates and
					// discards: no second copy of the lock survives.
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					checkCopyExpr(pass, rhs, "assignment copies")
				}
			case *ast.DeclStmt:
				// handled by the GenDecl case below
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							checkCopyExpr(pass, v, "variable initialization copies")
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyExpr(pass, r, "return copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); t != nil && lockBearing(t) {
						pass.Report(n.Value.Pos(),
							"range value copies lock-bearing %s each iteration; range over indices or pointers instead",
							types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSignature flags value receivers and by-value parameters of
// lock-bearing type — a copy on every call.
func checkSignature(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(field *ast.Field, what string) {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !lockBearing(t) {
			return
		}
		pass.Report(field.Type.Pos(),
			"%s lock-bearing %s by value; every call copies the lock state — use a pointer",
			what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	if recv != nil {
		for _, field := range recv.List {
			report(field, "method receives")
		}
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			report(field, "function takes")
		}
	}
}

// checkCopyExpr flags loading a lock-bearing value out of existing
// storage (the copy forks live lock state). Fresh values — composite
// literals, call results, conversions of fresh values — are exempt.
func checkCopyExpr(pass *Pass, rhs ast.Expr, what string) {
	if !copiesExistingStorage(rhs) {
		return
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil || !lockBearing(t) {
		return
	}
	pass.Report(rhs.Pos(), "%s lock-bearing %s by value; use a pointer",
		what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// checkCallArgs flags passing a lock-bearing value loaded from storage
// as a call argument (the callee receives a copy).
func checkCallArgs(pass *Pass, call *ast.CallExpr) {
	for _, a := range call.Args {
		if !copiesExistingStorage(a) {
			continue
		}
		t := pass.Info.TypeOf(a)
		if t == nil || !lockBearing(t) {
			continue
		}
		pass.Report(a.Pos(), "call passes lock-bearing %s by value; use a pointer",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// copiesExistingStorage reports whether evaluating e loads a value that
// already lives somewhere — an identifier, field, dereference, or
// element — as opposed to constructing a fresh one.
func copiesExistingStorage(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.TypeAssertExpr:
		return true
	case *ast.CallExpr:
		// A conversion of an existing value still copies it; a real
		// call returns a fresh value.
		if len(e.Args) == 1 {
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Obj != nil {
				if _, isType := id.Obj.Decl.(*ast.TypeSpec); isType {
					return copiesExistingStorage(e.Args[0])
				}
			}
		}
		return false
	}
	return false
}

// lockBearing reports whether t transitively contains a sync or
// sync/atomic primitive by value, through structs and arrays. Pointers,
// slices, maps and channels stop the walk: sharing through them is the
// intended idiom.
func lockBearing(t types.Type) bool {
	return lockBearingRec(t, make(map[types.Type]bool))
}

func lockBearingRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				// noCopy-protected or state-bearing sync types. Locker
				// is an interface and copies fine.
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return true
				}
			case "sync/atomic":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearingRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockBearingRec(u.Elem(), seen)
	}
	return false
}
