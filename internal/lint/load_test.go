package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func loadEdgePackage(t *testing.T) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "loadedge"))
	if err != nil {
		t.Fatalf("LoadDir(loadedge): %v", err)
	}
	if pkg == nil {
		t.Fatal("LoadDir(loadedge) returned no package")
	}
	return pkg
}

// TestLoadBuildTagExcluded checks that files failing their //go:build
// (or legacy // +build) constraint are skipped before type-checking.
// The excluded fixtures reference undefined identifiers, so accidental
// inclusion fails the load itself, not just the scope lookups.
func TestLoadBuildTagExcluded(t *testing.T) {
	pkg := loadEdgePackage(t)
	scope := pkg.Types.Scope()
	if scope.Lookup("Included") == nil {
		t.Error("unconstrained file was not loaded: Included missing")
	}
	for _, name := range []string{"Excluded", "ExcludedLegacy"} {
		if scope.Lookup(name) != nil {
			t.Errorf("build-constrained declaration %s was loaded", name)
		}
	}
}

// TestLoadTestOnlyPackage checks that a directory holding only _test.go
// files loads as (nil, nil): no package, no error.
func TestLoadTestOnlyPackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "onlytests"))
	if err != nil {
		t.Fatalf("LoadDir(onlytests): %v", err)
	}
	if pkg != nil {
		t.Fatalf("test-only directory produced package %s", pkg.Path)
	}
}

// TestFirstLineDirective checks that a //lint:allow on line 1 of a file
// (where it doubles as the package doc comment) is indexed and
// suppresses findings on lines 1 and 2 but not line 3.
func TestFirstLineDirective(t *testing.T) {
	pkg := loadEdgePackage(t)
	file, err := filepath.Abs(filepath.Join("testdata", "src", "loadedge", "firstline.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		line int
		want bool
	}{{1, true}, {2, true}, {3, false}} {
		got := pkg.allowed("walltime", token.Position{Filename: file, Line: tc.line})
		if got != tc.want {
			t.Errorf("allowed(walltime, line %d) = %v, want %v", tc.line, got, tc.want)
		}
	}
	if pkg.allowed("maporder", token.Position{Filename: file, Line: 2}) {
		t.Error("directive suppressed the wrong analyzer")
	}
}

// TestMalformedDirectiveRecorded checks that a directive missing its
// mandatory reason is recorded in Malformed rather than honored.
func TestMalformedDirectiveRecorded(t *testing.T) {
	pkg := loadEdgePackage(t)
	if len(pkg.Malformed) != 1 {
		t.Fatalf("Malformed = %v, want exactly one entry", pkg.Malformed)
	}
	if base := filepath.Base(pkg.Malformed[0].Filename); base != "loadedge.go" {
		t.Errorf("malformed directive attributed to %s", base)
	}
	// The well-formed directive in the same file must still be indexed.
	file, err := filepath.Abs(filepath.Join("testdata", "src", "loadedge", "loadedge.go"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for line := 1; line < 20 && !found; line++ {
		found = pkg.allowed("maporder", token.Position{Filename: file, Line: line})
	}
	if !found {
		t.Error("well-formed directive in loadedge.go was not indexed")
	}
}

// TestParseAllowDirective pins the directive grammar.
func TestParseAllowDirective(t *testing.T) {
	for _, tc := range []struct {
		text        string
		analyzer    string
		isDirective bool
		ok          bool
	}{
		{"//lint:allow maporder because fixtures", "maporder", true, true},
		{"//lint:allow maporder", "", true, false},
		{"//lint:allow", "", true, false},
		{"//lint:allow   \t ", "", true, false},
		{"// lint:allow maporder reason", "", false, false},
		{"//nolint:allow maporder reason", "", false, false},
		{"", "", false, false},
	} {
		analyzer, isDirective, ok := parseAllowDirective(tc.text)
		if analyzer != tc.analyzer || isDirective != tc.isDirective || ok != tc.ok {
			t.Errorf("parseAllowDirective(%q) = (%q, %v, %v), want (%q, %v, %v)",
				tc.text, analyzer, isDirective, ok, tc.analyzer, tc.isDirective, tc.ok)
		}
	}
}

// TestFileIncluded pins the constraint evaluator on representative
// sources.
func TestFileIncluded(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package x\n", true},
		{"satisfied goos", "//go:build linux || darwin || windows\n\npackage x\n", true},
		{"unsatisfied tag", "//go:build neverenabledtag\n\npackage x\n", false},
		{"negated unsatisfied", "//go:build !neverenabledtag\n\npackage x\n", true},
		{"legacy unsatisfied", "// +build neverenabledtag\n\npackage x\n", false},
		{"release tag", "//go:build go1.18\n\npackage x\n", true},
		{"after package clause ignored", "package x\n\n//go:build neverenabledtag\n", true},
	} {
		if got := fileIncluded([]byte(tc.src)); got != tc.want {
			t.Errorf("%s: fileIncluded = %v, want %v", tc.name, got, tc.want)
		}
	}
}
