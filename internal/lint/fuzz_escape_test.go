package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEscapeEngine feeds arbitrary parser-valid Go sources through the
// escape/allocation engine. The engine must never panic and every
// returned site must be internally consistent, whatever the
// control-flow shape (goto loops, labeled continues, empty branches)
// and even without type information — an empty types.Info is how the
// engine sees expressions the checker could not resolve, and the
// classification must degrade, not crash. The corpus is seeded from
// the analyzer fixtures, so every construct the hot* analyzers care
// about is a mutation starting point.
func FuzzEscapeEngine(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "src", "*", "*.go"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no fixture seeds under testdata/src")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("package p\nfunc f(n int) {\n\ti := 0\nagain:\n\tdefer g()\n\ti++\n\tif i < n {\n\t\tgoto again\n\t}\n}\n")
	f.Add("package p\nfunc f(xs []int) []int {\n\tout := make([]int, 0, len(xs))\n\tfor _, x := range xs {\n\t\tout = append(out, x)\n\t}\n\treturn out\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, s := range escapeSites(info, fset, fd.Body) {
				if s.Node == nil {
					t.Fatal("site with nil node")
				}
				if s.Class < AllocFree || s.Class > HeapAlloc {
					t.Fatalf("site with out-of-range class %d", s.Class)
				}
				if s.What == "" {
					t.Fatal("site with empty description")
				}
				pos := fset.Position(s.Node.Pos())
				if !pos.IsValid() {
					t.Fatal("site with invalid position")
				}
			}
		}
	})
}
