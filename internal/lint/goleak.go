package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak requires every `go` statement to have a provable lifecycle:
// someone must be able to join the goroutine or tell it to stop. Three
// disciplines satisfy the analyzer:
//
//   - WaitGroup pairing: wg.Add(n) before the go statement, with
//     wg.Done() on the same WaitGroup reference inside the goroutine
//     body (including inside its deferred closures, the runctl.Pool
//     idiom). Add inside the goroutine is the classic Add-after-Wait
//     race and is a separate finding.
//   - Cancellation: the goroutine body (or a named callee, followed
//     transitively through module functions) blocks on a channel
//     receive — <-ctx.Done() in a select, a for-range over a work
//     channel, a quit channel — or polls ctx.Err(). A goroutine that
//     listens can be told to exit.
//   - Channel join: the goroutine sends on (or closes) a channel that
//     the spawning function receives from after the go statement; the
//     receive is the join point.
//
// A goroutine with none of the three outlives any caller's ability to
// wait for it or stop it — a leak under repeated calls, and the reason
// barego exists. goleak extends that lexical check into dataflow. The
// escape hatch for intentionally detached goroutines is an explicit
// //lint:allow goleak with the reviewed reason.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "require a provable join or cancel path (WaitGroup pairing, context/channel cancel, or channel join) for every go statement",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd.Body)
		}
	}
	return nil
}

// checkGoStmts examines every go statement whose innermost enclosing
// function body is `body` (literals recurse with their own body).
func checkGoStmts(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkGoStmts(pass, lit.Body)
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			reportAddInsideGoroutine(pass, lit)
			if wgPaired(pass, body, g, lit.Body) ||
				hasCancelPath(pass, lit.Body, 0) ||
				channelJoined(pass, body, g, lit.Body) {
				return true
			}
			pass.Report(g.Pos(),
				"goroutine has no provable join or cancel path (no WaitGroup Add/Done pairing, no channel/context receive, no channel join); callers cannot wait for it or stop it")
			return true
		}
		// go f(...): follow the named callee's body for Done / cancel.
		if callee := calleeFunc(pass.Info, g.Call); callee != nil {
			if site := pass.Facts.decls[callee]; site != nil && site.decl.Body != nil {
				if wgPaired(pass, body, g, site.decl.Body) ||
					hasCancelPath(pass, site.decl.Body, 0) {
					return true
				}
			}
		}
		pass.Report(g.Pos(),
			"goroutine has no provable join or cancel path; callers cannot wait for it or stop it")
		return true
	})
}

// reportAddInsideGoroutine flags wg.Add called inside the spawned body
// on a WaitGroup declared outside it: the spawner may already be in
// Wait when the Add runs (Add-after-Wait race). Add must happen before
// the go statement.
func reportAddInsideGoroutine(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ref, ok := wgCall(pass.Info, call, "Add")
		if !ok {
			return true
		}
		if v, ok := ref.obj.(*types.Var); ok &&
			v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the goroutine's own WaitGroup: private
		}
		pass.Report(call.Pos(),
			"%s.Add inside the spawned goroutine races a concurrent Wait (Add-after-Wait); call Add before the go statement",
			lockRefLabel(ref))
		return true
	})
}

// wgPaired reports the WaitGroup discipline: Add on some reference
// before the go statement (outside the spawned body), Done on the same
// reference inside the spawned body — including inside its nested
// deferred closures, where runctl.Pool puts it.
func wgPaired(pass *Pass, encl *ast.BlockStmt, g *ast.GoStmt, spawned *ast.BlockStmt) bool {
	added := make(map[sliceRef]bool)
	ast.Inspect(encl, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() >= g.Pos() {
			return n.Pos() < g.End() // skip the go statement's own subtree
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ref, ok := wgCall(pass.Info, call, "Add"); ok {
				added[ref] = true
			}
		}
		return true
	})
	if len(added) == 0 {
		return false
	}
	done := false
	ast.Inspect(spawned, func(n ast.Node) bool {
		if done {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ref, ok := wgCall(pass.Info, call, "Done"); ok && added[ref] {
				done = true
			}
		}
		return true
	})
	return done
}

// wgCall matches ref.<method>() on a sync.WaitGroup and resolves the
// receiver reference.
func wgCall(info *types.Info, call *ast.CallExpr, method string) (sliceRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return sliceRef{}, false
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return sliceRef{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return sliceRef{}, false
	}
	return resolveRef(info, sel.X)
}

// hasCancelPath reports whether the body blocks on or polls a stop
// signal: any channel receive (<-ctx.Done(), quit channels, work
// channels via range), or a ctx.Err() poll. Named module callees are
// followed transitively to a small depth — the signal may live one
// helper down.
func hasCancelPath(pass *Pass, body *ast.BlockStmt, depth int) bool {
	if body == nil || depth > 3 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
				if t := pass.Info.TypeOf(sel.X); t != nil && isContextType(t) {
					found = true
					return false
				}
			}
			if callee := calleeFunc(pass.Info, n); callee != nil {
				if site := pass.Facts.decls[callee]; site != nil {
					if hasCancelPath(pass, site.decl.Body, depth+1) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// channelJoined reports the channel-join discipline: the spawned body
// sends on (or closes) a channel reference, and the enclosing function
// receives from the same reference after the go statement.
func channelJoined(pass *Pass, encl *ast.BlockStmt, g *ast.GoStmt, spawned *ast.BlockStmt) bool {
	sent := make(map[sliceRef]bool)
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if ref, ok := resolveRef(pass.Info, n.Chan); ok {
				sent[ref] = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if ref, ok := resolveRef(pass.Info, n.Args[0]); ok {
					sent[ref] = true
				}
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	joined := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if joined {
			return false
		}
		if n == nil || n.End() <= g.End() {
			return true
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if ref, ok := resolveRef(pass.Info, n.X); ok && sent[ref] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if ref, ok := resolveRef(pass.Info, n.X); ok && sent[ref] {
				joined = true
			}
		}
		return !joined
	})
	return joined
}
