package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// Domain is the probflow abstract numeric domain: which measurement
// scale a floating-point value lives on. Every headline number this
// repository reproduces is a rare-event probability, and the bug class
// the domain analysis targets — adding a log-domain value to a linear
// one, comparing a rate against a probability, computing 1−p for p≪1 —
// silently destroys all significant digits while every tolerance-based
// test still passes. The lattice is flat: DomNone (no information) at
// the bottom, the concrete domains in the middle, DomMixed (values from
// conflicting domains met on different paths) on top.
type Domain uint8

const (
	// DomNone carries no information: literals, unclassified values.
	DomNone Domain = iota
	// DomProb is a linear-domain probability or fraction in [0,1]
	// (PDL, φ, tail probabilities, PMF values).
	DomProb
	// DomLogProb is a log-domain value: ln p, log-binomials, log
	// factorials — anything that must pass through math.Exp before it
	// can meet a linear probability.
	DomLogProb
	// DomRate is an event rate (per hour in this module): λ, μ,
	// catastrophic-pool rates, loss rates.
	DomRate
	// DomCount is an exact count: device counts, stripe counts, loop
	// indices. All integer-typed values are counts.
	DomCount
	// DomWeight is a splitting-estimator stage weight or other
	// importance weight.
	DomWeight
	// DomMixed is the lattice top: conflicting domains joined on
	// different control-flow paths. Analyzers never report on it.
	DomMixed
)

func (d Domain) String() string {
	switch d {
	case DomProb:
		return "prob"
	case DomLogProb:
		return "logprob"
	case DomRate:
		return "rate"
	case DomCount:
		return "count"
	case DomWeight:
		return "weight"
	case DomMixed:
		return "mixed"
	}
	return "none"
}

// parseDomain resolves a //mlec:unit argument. The accepted spellings
// are the String values above (DomNone and DomMixed are not
// annotatable: an annotation exists to assert a concrete domain).
func parseDomain(s string) (Domain, bool) {
	switch s {
	case "prob", "probability":
		return DomProb, true
	case "logprob", "log-prob":
		return DomLogProb, true
	case "rate":
		return DomRate, true
	case "count":
		return DomCount, true
	case "weight":
		return DomWeight, true
	}
	return DomNone, false
}

// DomVal is the dataflow lattice value: the domain plus a provenance
// bit recording that the value passed through math.Exp. A linear
// probability recovered from log space can be arbitrarily close to 0
// or 1, which is exactly when 1−x cancels catastrophically; the cancel
// analyzer keys on this bit.
type DomVal struct {
	D      Domain
	ViaExp bool
}

// isNone reports a value with no domain information.
func (v DomVal) isNone() bool { return v.D == DomNone && !v.ViaExp }

// joinDom joins two domains: equal stays, None yields the other,
// conflicting concrete domains go to Mixed.
func joinDom(a, b Domain) Domain {
	switch {
	case a == b:
		return a
	case a == DomNone:
		return b
	case b == DomNone:
		return a
	}
	return DomMixed
}

// join is the lattice join used at control-flow merges.
func (v DomVal) join(w DomVal) DomVal {
	return DomVal{D: joinDom(v.D, w.D), ViaExp: v.ViaExp || w.ViaExp}
}

// domainFromName classifies an identifier by its name, the cheapest and
// highest-yield seed: this module (like the reliability literature it
// reproduces) names probabilities p/q/φ/ψ/PDL, rates λ/μ/β, and
// log-domain values with a log/ln prefix. The name is split into
// lower-cased camelCase/snake_case tokens; the first rule whose token
// set matches wins. Log-domain wins over probability so that logPDL is
// LogProb, not Prob.
func domainFromName(name string) Domain {
	switch name {
	case "lp", "lq", "lg", "ll":
		// Conventional short names for log-domain locals (mathx).
		return DomLogProb
	}
	toks := nameTokens(name)
	has := func(want ...string) bool {
		for _, t := range toks {
			for _, w := range want {
				if t == w {
					return true
				}
			}
		}
		return false
	}
	switch {
	case has("log", "ln"):
		return DomLogProb
	case has("p", "q", "prob", "probability", "pdl", "pmf", "cdf", "tail", "phi", "psi", "frac", "fraction"):
		return DomProb
	case has("rate", "lambda", "mu", "beta", "freq", "intensity"):
		return DomRate
	case has("weight", "wt"):
		return DomWeight
	case has("count", "total"):
		return DomCount
	}
	return DomNone
}

// nameTokens splits an identifier into lower-cased tokens at underscores
// and camelCase boundaries: "CatRatePerPoolHour" → [cat rate per pool
// hour], "logP" → [log p].
func nameTokens(name string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			// Boundary before an upper-case rune, except inside an
			// acronym run (PDL): split when the previous rune is lower
			// or the next one is.
			if i > 0 && (isLower(runes[i-1]) || (i+1 < len(runes) && isLower(runes[i+1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

func isLower(r rune) bool { return r >= 'a' && r <= 'z' }

// unitIndex resolves //mlec:unit annotations by file and line, merged
// across every package the fact store indexed.
type unitIndex map[string]map[int]Domain

// at returns the domain annotated at pos's line or the line directly
// above it (mirroring //lint:allow placement).
func (u unitIndex) at(pos token.Position) (Domain, bool) {
	lines := u[pos.Filename]
	if lines == nil {
		return DomNone, false
	}
	if d, ok := lines[pos.Line]; ok {
		return d, true
	}
	d, ok := lines[pos.Line-1]
	return d, ok
}

// seedObject returns the declared domain of a named object: an
// //mlec:unit annotation at its declaration site wins, then the name
// heuristic (floating-point objects only), then the integer-type rule
// (every integer is a count). Objects of other types carry no domain.
func seedObject(units unitIndex, fset *token.FileSet, obj types.Object) DomVal {
	if obj == nil {
		return DomVal{}
	}
	t := obj.Type()
	if isIntegerType(t) {
		// An annotation may still refine an integer (e.g. a count used
		// as a weight), but the default is Count.
		if units != nil && obj.Pos().IsValid() {
			if d, ok := units.at(fset.Position(obj.Pos())); ok {
				return DomVal{D: d}
			}
		}
		return DomVal{D: DomCount}
	}
	if !isFloat(t) {
		return DomVal{}
	}
	if units != nil && obj.Pos().IsValid() {
		if d, ok := units.at(fset.Position(obj.Pos())); ok {
			return DomVal{D: d}
		}
	}
	return DomVal{D: domainFromName(obj.Name())}
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// parseUnitDirective parses one comment's text as a //mlec:unit
// directive, mirroring parseAllowDirective: isDirective reports the
// prefix matched, ok that a recognized domain followed. Trailing text
// after the domain is ignored (room for a rationale).
func parseUnitDirective(text string) (d Domain, isDirective, ok bool) {
	rest, found := strings.CutPrefix(text, "//mlec:unit")
	if !found {
		return DomNone, false, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return DomNone, true, false
	}
	d, ok = parseDomain(fields[0])
	return d, true, ok
}
