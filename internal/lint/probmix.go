package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbMix is the probflow analyzer for domain confusion: adding,
// subtracting or comparing values that live on incompatible numeric
// scales — a log-domain probability against a linear one, a rate
// against a probability, a count against either. Every headline number
// this repository reproduces is a rare-event probability whose
// magnitude (1e-15 and below) makes such mixes numerically silent: the
// sum is finite, plausible, and wrong in every digit, and no
// tolerance-based test catches it.
//
// Domains are inferred by the whole-program domain engine
// (domainflow.go, facts.go): seeded from declaration names
// (p/pdl/φ → prob, λ/μ/rate → rate, log*/ln* → logprob), from standard
// sources (math.Log, math.Exp, rand.Float64), and from explicit
// //mlec:unit annotations; call results come from the eager bottom-up
// summaries, so a mix through three helpers and a package boundary is
// still caught.
//
// Reported sites:
//
//   - x+y, x−y, and comparisons where both operand domains are known
//     and differ;
//   - assignments, composite-literal fields, and returns whose
//     destination has a declared domain (annotation or name) that
//     contradicts the computed domain of the value.
var ProbMix = &Analyzer{
	Name: "probmix",
	Doc:  "forbid arithmetic or comparisons mixing incompatible numeric domains (prob, logprob, rate, count, weight)",
	Run:  runProbMix,
}

func runProbMix(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkProbMixBody(pass, pass.FuncDomains(fd), fd.Body, fd)
		}
	}
	return nil
}

func checkProbMixBody(pass *Pass, doms *FuncDomains, body *ast.BlockStmt, fd *ast.FuncDecl) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkProbMixBody(pass, pass.FuncLitDomains(n), n.Body, nil)
			return false
		case *ast.BinaryExpr:
			checkProbMixBinary(pass, doms, n)
		case *ast.AssignStmt:
			checkProbMixAssign(pass, doms, n)
		case *ast.CompositeLit:
			checkProbMixComposite(pass, doms, n)
		case *ast.ReturnStmt:
			if fd != nil {
				checkProbMixReturn(pass, doms, n, fd)
			}
		}
		return true
	})
}

// mixable reports operators whose operands must share a domain:
// addition and subtraction (the sum of a log and a linear value is
// meaningless) and ordered/equality comparisons (a rate is not larger
// or smaller than a probability). Multiplication and division compose
// domains legitimately and are handled by the engine's algebra instead.
func mixableOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// concrete reports a domain an analyzer may claim: known and not the
// Mixed top (already-poisoned values never re-report).
func concrete(v DomVal) bool {
	return v.D != DomNone && v.D != DomMixed
}

func checkProbMixBinary(pass *Pass, doms *FuncDomains, e *ast.BinaryExpr) {
	if !mixableOp(e.Op) {
		return
	}
	x, y := doms.Of(e.X), doms.Of(e.Y)
	if !concrete(x) || !concrete(y) || x.D == y.D {
		return
	}
	verb := "mixes"
	if e.Op != token.ADD && e.Op != token.SUB {
		verb = "compares"
	}
	fix := "convert one side first"
	if (x.D == DomLogProb) != (y.D == DomLogProb) {
		fix = "use math.Exp/math.Log to move both into one domain"
	}
	pass.Report(e.OpPos, "%s %s and %s values; %s", verb, x.D, y.D, fix)
}

// checkProbMixAssign flags x = e and x op= e where x's declared domain
// (annotation or name) contradicts the computed domain of e.
func checkProbMixAssign(pass *Pass, doms *FuncDomains, a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, l := range a.Lhs {
		obj := assignedObject(pass.Info, l)
		declared := seedObject(pass.Facts.units, pass.Facts.fset, obj)
		v := doms.Of(a.Rhs[i])
		if !concrete(declared) || !concrete(v) || declared.D == v.D {
			continue
		}
		pass.Report(a.Rhs[i].Pos(), "assigns a %s value to %s (declared %s)",
			v.D, obj.Name(), declared.D)
	}
}

// assignedObject resolves the object a plain identifier assignment
// targets (selector/index destinations are container writes the engine
// handles weakly, not declaration contracts).
func assignedObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}

// checkProbMixComposite flags struct-literal fields whose declared
// domain contradicts the value: Result{AnnualPDL: lossRate} is exactly
// the confusion the field name exists to prevent.
func checkProbMixComposite(pass *Pass, doms *FuncDomains, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		field := pass.Info.Uses[key]
		if field == nil {
			continue
		}
		declared := seedObject(pass.Facts.units, pass.Facts.fset, field)
		v := doms.Of(kv.Value)
		if !concrete(declared) || !concrete(v) || declared.D == v.D {
			continue
		}
		pass.Report(kv.Value.Pos(), "field %s (declared %s) initialized with a %s value",
			field.Name(), declared.D, v.D)
	}
}

// checkProbMixReturn flags returns whose value's domain contradicts the
// function's declared result domain.
func checkProbMixReturn(pass *Pass, doms *FuncDomains, ret *ast.ReturnStmt, fd *ast.FuncDecl) {
	if len(ret.Results) == 0 {
		return
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	declared := pass.Facts.declSeed(fn, fd)
	if !concrete(declared) || declared.D == DomCount {
		// Integer results are all counts; re-reporting them is noise.
		return
	}
	v := doms.Of(ret.Results[0])
	if !concrete(v) || declared.D == v.D {
		return
	}
	pass.Report(ret.Results[0].Pos(), "%s (declared %s) returns a %s value",
		fd.Name.Name, declared.D, v.D)
}
