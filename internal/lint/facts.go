package lint

import (
	"go/ast"
	"go/types"
)

// Facts is the cross-package fact store, modeled on go/analysis facts:
// for every function of the module it can produce a taint summary —
// which taint kinds the function's results carry on their own (e.g. a
// function that builds a slice from map-range keys) and which
// parameters flow into which results. Analyzers consult the store
// through the taint engine, so a package importing another package's
// "returns map-ordered data" function inherits the taint at the call
// site even when only one package is under analysis.
//
// Summaries are computed lazily and memoized. Recursive and mutually
// recursive calls are cut off optimistically (the in-progress function
// reports no flow); a fixed point over recursion is not worth the
// complexity for a linter whose fixtures and sweep define the required
// precision.
type Facts struct {
	decls      map[*types.Func]*declSite
	summaries  map[*types.Func]*funcSummary
	inProgress map[*types.Func]bool
}

// declSite pairs a function declaration with the package whose
// types.Info type-checked it.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcSummary is one function's taint behaviour.
type funcSummary struct {
	// results[i] describes result i: kinds the function introduces
	// itself, params the mask of parameters whose taint flows there.
	results []taintVal
	// recvFlows reports that the receiver's taint flows into at least
	// one result.
	recvFlows bool
}

// receiver flow is tracked with the top param bit, far above any real
// Go parameter list this module will see.
const recvBit = 1 << 31

// NewFacts indexes every function declaration reachable through the
// packages' loader (analyzed packages plus their intra-module
// dependencies), so call sites resolve summaries across package
// boundaries.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		decls:      make(map[*types.Func]*declSite),
		summaries:  make(map[*types.Func]*funcSummary),
		inProgress: make(map[*types.Func]bool),
	}
	seen := make(map[*Package]bool)
	var index func(p *Package)
	index = func(p *Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					f.decls[fn] = &declSite{decl: fd, pkg: p}
				}
			}
		}
	}
	for _, p := range pkgs {
		index(p)
		if p.loader != nil {
			for _, dep := range p.loader.pkgs {
				index(dep)
			}
		}
	}
	return f
}

// summaryOf returns the function's taint summary, or nil when the
// function's source is outside the module (std lib, no AST).
func (f *Facts) summaryOf(fn *types.Func) *funcSummary {
	if sum, ok := f.summaries[fn]; ok {
		return sum
	}
	site, ok := f.decls[fn]
	if !ok || site.decl.Body == nil {
		return nil
	}
	if f.inProgress[fn] {
		return nil // recursion cut-off
	}
	f.inProgress[fn] = true
	defer delete(f.inProgress, fn)

	fd := site.decl
	info := site.pkg.Info

	params := make(map[types.Object]taintVal)
	bit := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if bit < 31 {
				params[info.Defs[name]] = taintVal{params: 1 << bit}
			}
			bit++
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		params[info.Defs[fd.Recv.List[0].Names[0]]] = taintVal{params: recvBit}
	}

	resultObjs, nresults := resultObjects(info, fd)
	ft := analyzeBody(info, f, fd.Body, params, resultObjs, nresults)

	sum := &funcSummary{results: make([]taintVal, nresults)}
	for i, r := range ft.results {
		if r.params&recvBit != 0 {
			sum.recvFlows = true
			r.params &^= recvBit
		}
		sum.results[i] = r
	}
	f.summaries[fn] = sum
	return sum
}

// resultObjects returns the named result objects (nil entries for
// unnamed results) and the result count.
func resultObjects(info *types.Info, fd *ast.FuncDecl) ([]types.Object, int) {
	if fd.Type.Results == nil {
		return nil, 0
	}
	var objs []types.Object
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			n++
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, info.Defs[name])
			n++
		}
	}
	return objs, n
}

// FuncTaint runs the taint engine over a function declaration's body in
// analysis mode (no parameter seeding) and returns the per-expression
// taints. Analyzers call this once per declaration and then walk the
// body looking at sinks.
func (p *Pass) FuncTaint(fd *ast.FuncDecl) *FuncTaint {
	resultObjs, nresults := resultObjects(p.Info, fd)
	return analyzeBody(p.Info, p.Facts, fd.Body, nil, resultObjs, nresults)
}

// FuncLitTaint is FuncTaint for a function literal. Captured variables
// start untainted (closure environments are not modeled; the engine is
// intraprocedural).
func (p *Pass) FuncLitTaint(lit *ast.FuncLit) *FuncTaint {
	var nresults int
	if lit.Type.Results != nil {
		for _, field := range lit.Type.Results.List {
			if len(field.Names) == 0 {
				nresults++
			} else {
				nresults += len(field.Names)
			}
		}
	}
	return analyzeBody(p.Info, p.Facts, lit.Body, nil, nil, nresults)
}
