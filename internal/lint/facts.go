package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Facts is the whole-program fact store — the probflow layer. Where the
// first generation of this file computed taint summaries lazily with an
// optimistic recursion cut-off, the store now evaluates eagerly: it
// builds the module call graph (callgraph.go), condenses it into
// strongly connected components, and walks the condensation bottom-up
// so every summary is computed after the summaries it depends on.
// Within a component (recursion, mutual recursion) the member
// summaries iterate to a fixed point; every lattice involved is finite
// with monotone transfer functions, so the iteration terminates and is
// exact where the lazy cut-off used to be merely optimistic.
//
// Three summaries are maintained per function:
//
//   - taint (funcSummary): which taint kinds each result carries and
//     which parameters flow into it — the engine behind maporder,
//     walltime and ctxpoll;
//   - domain (domainSummary): the numeric Domain of each result — the
//     engine behind probmix and cancel;
//   - mayFail (bool): whether the function can return a non-nil error —
//     the engine behind errflow. A function that returns only literal
//     nil errors (directly or through callees, including recursive
//     ones) is proven infallible and its discarded errors are not
//     findings.
type Facts struct {
	decls map[*types.Func]*declSite
	fset  *token.FileSet
	units unitIndex
	// hotIdx and coldIdx merge //mlec:hot and //mlec:cold directive
	// lines across packages; hot/cold/hotVia are the propagated
	// hotness facts (see hot.go).
	hotIdx  posIndex
	coldIdx posIndex
	hot     map[*types.Func]bool
	cold    map[*types.Func]bool
	hotVia  map[*types.Func]*types.Func
	// allocates holds the per-function allocation summaries: whether a
	// steady-state heap allocation is reachable through the function's
	// own body or a direct callee (see escape.go), and siteCache the
	// memoized escape-engine classification behind them.
	allocates map[*types.Func]bool
	siteCache map[*types.Func][]AllocSite

	summaries map[*types.Func]*funcSummary
	domains   map[*types.Func]*domainSummary
	mayFail   map[*types.Func]bool

	// guardedFields and guardedVars merge the resolved //mlec:guardedby
	// annotations across packages; locks holds the per-function lock
	// summaries (see lockstate.go).
	guardedFields map[*types.Var]*types.Var
	guardedVars   map[*types.Var]*types.Var
	locks         map[*types.Func]*lockSummary

	// sccCount and maxSCCIters are recorded for tests and the
	// benchmark: how big the condensation was and the deepest
	// fixed-point iteration any component needed.
	sccCount    int
	maxSCCIters int
}

// declSite pairs a function declaration with the package whose
// types.Info type-checked it.
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcSummary is one function's taint behaviour.
type funcSummary struct {
	// results[i] describes result i: kinds the function introduces
	// itself, params the mask of parameters whose taint flows there.
	results []taintVal
	// recvFlows reports that the receiver's taint flows into at least
	// one result.
	recvFlows bool
}

// domainSummary is one function's numeric-domain behaviour: the Domain
// of each result slot.
type domainSummary struct {
	results []DomVal
}

// receiver flow is tracked with the top param bit, far above any real
// Go parameter list this module will see.
const recvBit = 1 << 31

// sccIterationCap bounds the fixed-point loop per component. The
// lattices are finite and the transfers monotone, so the bound is never
// reached by construction; it exists so a future non-monotone transfer
// bug degrades to imprecision instead of a hang.
const sccIterationCap = 64

// NewFacts indexes every function declaration reachable through the
// packages' loader (analyzed packages plus their intra-module
// dependencies) and eagerly computes all summaries bottom-up over the
// call graph's SCC condensation.
func NewFacts(pkgs []*Package) *Facts {
	f := &Facts{
		decls:     make(map[*types.Func]*declSite),
		units:     make(unitIndex),
		hotIdx:    make(posIndex),
		coldIdx:   make(posIndex),
		allocates: make(map[*types.Func]bool),
		summaries: make(map[*types.Func]*funcSummary),
		domains:   make(map[*types.Func]*domainSummary),
		mayFail:   make(map[*types.Func]bool),

		guardedFields: make(map[*types.Var]*types.Var),
		guardedVars:   make(map[*types.Var]*types.Var),
	}
	seen := make(map[*Package]bool)
	index := func(p *Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if f.fset == nil {
			f.fset = p.Fset
		}
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					f.decls[fn] = &declSite{decl: fd, pkg: p}
				}
			}
		}
		for file, lines := range p.units {
			f.units[file] = lines
		}
		for file, lines := range p.hots {
			f.hotIdx[file] = lines
		}
		for file, lines := range p.colds {
			f.coldIdx[file] = lines
		}
		for field, mu := range p.guardedFields {
			f.guardedFields[field] = mu
		}
		for v, mu := range p.guardedVars {
			f.guardedVars[v] = mu
		}
	}
	for _, p := range pkgs {
		index(p)
		if p.loader != nil {
			paths := make([]string, 0, len(p.loader.pkgs))
			for path := range p.loader.pkgs {
				paths = append(paths, path)
			}
			sort.Strings(paths)
			for _, path := range paths {
				index(p.loader.pkgs[path])
			}
		}
	}
	g := buildCallGraph(f.decls)
	f.computeAll(g)
	f.computeHot(g)
	f.computeAllocates(g)
	f.computeLocks(g)
	return f
}

// computeAll walks the condensation bottom-up. Singleton components
// converge in one pass (their callees are final); cyclic components
// start from the optimistic bottom (empty summaries, mayFail=false) and
// iterate until nothing changes.
func (f *Facts) computeAll(g *callGraph) {
	f.sccCount = len(g.sccs)
	for _, scc := range g.sccs {
		for _, n := range scc {
			f.summaries[n.fn] = &funcSummary{results: make([]taintVal, resultCount(n.fn))}
			f.domains[n.fn] = &domainSummary{results: make([]DomVal, resultCount(n.fn))}
			f.mayFail[n.fn] = false
		}
		for iter := 1; iter <= sccIterationCap; iter++ {
			changed := false
			for _, n := range scc {
				if sum := f.computeTaint(n); !sum.equal(f.summaries[n.fn]) {
					f.summaries[n.fn] = sum
					changed = true
				}
				if dom := f.computeDomains(n); !dom.equal(f.domains[n.fn]) {
					f.domains[n.fn] = dom
					changed = true
				}
				if mf := f.computeMayFail(n); mf != f.mayFail[n.fn] {
					f.mayFail[n.fn] = mf
					changed = true
				}
			}
			if iter > f.maxSCCIters {
				f.maxSCCIters = iter
			}
			if !changed {
				break
			}
		}
	}
}

func resultCount(fn *types.Func) int {
	return fn.Type().(*types.Signature).Results().Len()
}

func (s *funcSummary) equal(o *funcSummary) bool {
	if s.recvFlows != o.recvFlows || len(s.results) != len(o.results) {
		return false
	}
	for i := range s.results {
		if s.results[i] != o.results[i] {
			return false
		}
	}
	return true
}

func (d *domainSummary) equal(o *domainSummary) bool {
	if len(d.results) != len(o.results) {
		return false
	}
	for i := range d.results {
		if d.results[i] != o.results[i] {
			return false
		}
	}
	return true
}

// computeTaint runs the taint engine over one declaration in summary
// mode (parameters seeded with their flow bits).
func (f *Facts) computeTaint(n *cgNode) *funcSummary {
	fd := n.site.decl
	info := n.site.pkg.Info
	nres := resultCount(n.fn)
	if fd.Body == nil {
		return &funcSummary{results: make([]taintVal, nres)}
	}

	params := make(map[types.Object]taintVal)
	bit := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if bit < 31 {
				params[info.Defs[name]] = taintVal{params: 1 << bit}
			}
			bit++
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		params[info.Defs[fd.Recv.List[0].Names[0]]] = taintVal{params: recvBit}
	}

	resultObjs, nresults := resultObjects(info, fd)
	ft := analyzeBody(info, f, fd.Body, params, resultObjs, nresults)

	sum := &funcSummary{results: make([]taintVal, nresults)}
	for i, r := range ft.results {
		if r.params&recvBit != 0 {
			sum.recvFlows = true
			r.params &^= recvBit
		}
		sum.results[i] = r
	}
	return sum
}

// computeDomains runs the domain engine over one declaration with
// parameters seeded from their declarations, then fills still-unknown
// result slots from the result declarations and, for the first slot,
// the function's own name — HypergeomTail's body may end in an opaque
// accumulator, but its name says probability.
func (f *Facts) computeDomains(n *cgNode) *domainSummary {
	fd := n.site.decl
	info := n.site.pkg.Info
	nres := resultCount(n.fn)
	sum := &domainSummary{results: make([]DomVal, nres)}
	if fd.Body == nil {
		return sum
	}
	resultObjs, nresults := resultObjects(info, fd)
	flow := domainFlow(info, f, fd.Body, f.paramSeeds(fd, info), resultObjs, nresults)
	copy(sum.results, flow.results)
	for i := range sum.results {
		if !sum.results[i].isNone() {
			continue
		}
		if i < len(resultObjs) && resultObjs[i] != nil {
			sum.results[i] = seedObject(f.units, f.fset, resultObjs[i])
		}
	}
	if nres > 0 && sum.results[0].isNone() {
		sum.results[0] = f.declSeed(n.fn, fd)
	}
	// An explicit //mlec:unit annotation on the declaration is a human
	// claim and overrides inference: Choose goes through exp(logΓ) so
	// the engine sees a probability, but its result is a count.
	if nres > 0 {
		if d, ok := f.units.at(f.fset.Position(fd.Pos())); ok {
			sum.results[0] = DomVal{D: d}
		}
	}
	return sum
}

// declSeed derives the declared domain of a function's primary result:
// an //mlec:unit annotation on (or directly above) the declaration
// wins, then the name heuristic, both gated on the result being
// floating-point.
func (f *Facts) declSeed(fn *types.Func, fd *ast.FuncDecl) DomVal {
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return DomVal{}
	}
	rt := sig.Results().At(0).Type()
	if isIntegerType(rt) {
		return DomVal{D: DomCount}
	}
	if !isFloat(rt) {
		return DomVal{}
	}
	if d, ok := f.units.at(f.fset.Position(fd.Pos())); ok {
		return DomVal{D: d}
	}
	return DomVal{D: domainFromName(fn.Name())}
}

// paramSeeds maps each parameter (and receiver) to its declared domain.
func (f *Facts) paramSeeds(fd *ast.FuncDecl, info *types.Info) map[types.Object]DomVal {
	params := make(map[types.Object]DomVal)
	add := func(name *ast.Ident) {
		obj := info.Defs[name]
		if v := seedObject(f.units, f.fset, obj); !v.isNone() {
			params[obj] = v
		}
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			add(name)
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		add(fd.Recv.List[0].Names[0])
	}
	return params
}

// computeMayFail decides whether the function can return a non-nil
// error. Only the error slot of each return statement matters: a
// literal nil contributes nothing, a tail call to a summarized module
// function contributes that callee's current fact, anything else is
// conservatively fallible. Bare returns of a named error are
// conservative too — proving the named variable nil on every path is
// the flow engines' job, not worth duplicating here.
func (f *Facts) computeMayFail(n *cgNode) bool {
	sig := n.fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	fd := n.site.decl
	if fd.Body == nil {
		return true
	}
	info := n.site.pkg.Info
	errIdx := res.Len() - 1
	fails := false
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		if fails {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // closure returns are the closure's
		case *ast.ReturnStmt:
			fails = f.returnMayFail(info, node, errIdx, res.Len())
			return false
		}
		return true
	})
	return fails
}

// returnMayFail inspects one return statement's error slot.
func (f *Facts) returnMayFail(info *types.Info, ret *ast.ReturnStmt, errIdx, nres int) bool {
	if len(ret.Results) == 0 {
		return true // bare return of a named error: conservative
	}
	if len(ret.Results) == 1 && nres > 1 {
		// return f(...): the callee's error fact is the answer.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			return f.callMayFail(info, call)
		}
		return true
	}
	if errIdx >= len(ret.Results) {
		return true
	}
	e := ast.Unparen(ret.Results[errIdx])
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		return false
	}
	if call, ok := e.(*ast.CallExpr); ok {
		return f.callMayFail(info, call)
	}
	return true
}

// callMayFail resolves a call in error position: module callees use
// their (current) fact, everything else is fallible.
func (f *Facts) callMayFail(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return true
	}
	if _, known := f.decls[fn]; !known {
		return true
	}
	return f.mayFail[fn]
}

// summaryOf returns the function's eagerly-computed taint summary, or
// nil when the function's source is outside the module.
func (f *Facts) summaryOf(fn *types.Func) *funcSummary {
	return f.summaries[fn]
}

// domainsOf returns the function's eagerly-computed domain summary, or
// nil when the function's source is outside the module.
func (f *Facts) domainsOf(fn *types.Func) *domainSummary {
	return f.domains[fn]
}

// MayFail reports whether a module function can return a non-nil error;
// known reports whether the function is summarized at all (false for
// stdlib and indirect callees).
func (f *Facts) MayFail(fn *types.Func) (mayFail, known bool) {
	if _, ok := f.decls[fn]; !ok {
		return true, false
	}
	return f.mayFail[fn], true
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// resultObjects returns the named result objects (nil entries for
// unnamed results) and the result count.
func resultObjects(info *types.Info, fd *ast.FuncDecl) ([]types.Object, int) {
	if fd.Type.Results == nil {
		return nil, 0
	}
	var objs []types.Object
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			n++
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, info.Defs[name])
			n++
		}
	}
	return objs, n
}

// FuncTaint runs the taint engine over a function declaration's body in
// analysis mode (no parameter seeding) and returns the per-expression
// taints. Analyzers call this once per declaration and then walk the
// body looking at sinks.
func (p *Pass) FuncTaint(fd *ast.FuncDecl) *FuncTaint {
	resultObjs, nresults := resultObjects(p.Info, fd)
	return analyzeBody(p.Info, p.Facts, fd.Body, nil, resultObjs, nresults)
}

// FuncLitTaint is FuncTaint for a function literal. Captured variables
// start untainted (closure environments are not modeled; the engine is
// intraprocedural).
func (p *Pass) FuncLitTaint(lit *ast.FuncLit) *FuncTaint {
	var nresults int
	if lit.Type.Results != nil {
		for _, field := range lit.Type.Results.List {
			if len(field.Names) == 0 {
				nresults++
			} else {
				nresults += len(field.Names)
			}
		}
	}
	return analyzeBody(p.Info, p.Facts, lit.Body, nil, nil, nresults)
}

// FuncDomains runs the domain engine over a declaration in analysis
// mode: parameters are seeded from their declared domains so the
// recorded per-expression values reflect what the signature promises.
func (p *Pass) FuncDomains(fd *ast.FuncDecl) *FuncDomains {
	resultObjs, nresults := resultObjects(p.Info, fd)
	return domainFlow(p.Info, p.Facts, fd.Body, p.Facts.paramSeeds(fd, p.Info), resultObjs, nresults)
}

// FuncLitDomains is FuncDomains for a function literal (captured
// variables are not modeled; parameters seed from their names).
func (p *Pass) FuncLitDomains(lit *ast.FuncLit) *FuncDomains {
	params := make(map[types.Object]DomVal)
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if v := seedObject(p.Facts.units, p.Facts.fset, obj); !v.isNone() {
				params[obj] = v
			}
		}
	}
	var nresults int
	if lit.Type.Results != nil {
		for _, field := range lit.Type.Results.List {
			if len(field.Names) == 0 {
				nresults++
			} else {
				nresults += len(field.Names)
			}
		}
	}
	return domainFlow(p.Info, p.Facts, lit.Body, params, nil, nresults)
}
