package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLockStateEngine feeds arbitrary parser-valid Go sources through
// the lock-state engine in every mode. The engine walks the CFG to a
// fixed point over a depth-clamped lattice, so it must terminate and
// must not panic whatever the control-flow shape — including code that
// does not type-check (an empty types.Info is exactly how the engine
// sees expressions the checker could not resolve, so nil type lookups
// are a supported input, not an edge case). The corpus is seeded from
// the analyzer fixtures: every lock idiom the suite cares about is a
// mutation starting point.
func FuzzLockStateEngine(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "src", "*", "*.go"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no fixture seeds under testdata/src")
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("package p\nfunc f() { mu.Lock(); defer mu.Unlock(); for { go func() { mu.Lock() }() } }\n")
	f.Add("package p\nfunc f() { mu.RLock(); if x { return }; mu.RUnlock() }\n")
	f.Add("package p\nfunc f() { defer func() { mu.Unlock() }(); mu.Lock(); panic(\"x\") }\n")

	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		facts := &Facts{
			decls:         make(map[*types.Func]*declSite),
			fset:          fset,
			locks:         make(map[*types.Func]*lockSummary),
			guardedFields: make(map[*types.Var]*types.Var),
			guardedVars:   make(map[*types.Var]*types.Var),
		}
		report := func(pos token.Pos, format string, args ...any) {}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The reporting pass, as lockcheck runs it.
			newLockEngine(info, facts, nil, fd, report).analyze(fd.Body, nil)
			// The summary pass, as computeLocks runs it.
			newLockEngine(info, facts, nil, fd, nil).analyze(fd.Body, nil)
		}
	})
}
