package lint

import (
	"go/ast"
	"go/types"
)

// ErrFlow is the probflow analyzer for discarded errors on simulator
// paths. A Monte-Carlo campaign that drops an error keeps running with
// a silently-absent contribution — the estimate stays plausible and the
// confidence interval lies. The analyzer flags a call whose error
// result is discarded (an expression statement, go/defer, or a blank
// assignment) when the callee is a module function the eager summaries
// prove can actually return a non-nil error.
//
// The interprocedural part is what makes the check usable: a callee
// that returns only literal nil errors — directly, through wrappers,
// or through (mutual) recursion resolved by the SCC fixed point — is
// infallible, and discarding its error is not a finding. External
// callees (fmt.Fprintf and friends) are out of scope: their error
// contracts are the standard library's business, not this module's.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "forbid discarding the error result of module functions that can actually fail",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrFlowBody(pass, fd.Body)
		}
	}
	return nil
}

func checkErrFlowBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				reportDiscardedError(pass, call, "statement discards")
			}
		case *ast.GoStmt:
			reportDiscardedError(pass, n.Call, "goroutine discards")
		case *ast.DeferStmt:
			reportDiscardedError(pass, n.Call, "defer discards")
		case *ast.AssignStmt:
			checkErrFlowAssign(pass, n)
		}
		return true
	})
}

// checkErrFlowAssign flags v, _ := f() where the blank sits in the
// error slot.
func checkErrFlowAssign(pass *Pass, a *ast.AssignStmt) {
	if len(a.Rhs) != 1 || len(a.Lhs) < 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := fallibleModuleCallee(pass, call)
	if fn == nil {
		return
	}
	errIdx := fn.Type().(*types.Signature).Results().Len() - 1
	if errIdx >= len(a.Lhs) {
		return
	}
	if id, ok := a.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Report(a.Lhs[errIdx].Pos(),
			"blank identifier discards the error of %s, which can fail; handle or propagate it", fn.Name())
	}
}

// reportDiscardedError flags a call used for effect only whose callee
// can return a non-nil error.
func reportDiscardedError(pass *Pass, call *ast.CallExpr, how string) {
	fn := fallibleModuleCallee(pass, call)
	if fn == nil {
		return
	}
	pass.Report(call.Pos(),
		"%s the error of %s, which can fail; handle or propagate it", how, fn.Name())
}

// fallibleModuleCallee resolves a direct call to a module function
// whose last result is an error the fact store proves may be non-nil.
func fallibleModuleCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return nil
	}
	mayFail, known := pass.Facts.MayFail(fn)
	if !known || !mayFail {
		return nil
	}
	return fn
}
