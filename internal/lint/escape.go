package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlec/internal/lint/cfg"
)

// This file is the allocation/escape half of the hot-path analysis
// family (hotness propagation lives in hot.go): a conservative
// intraprocedural engine that classifies every allocation-prone
// expression of a function body. The hot* analyzers filter the
// resulting sites; the fact store folds them into per-function
// "allocates" summaries so a caller three packages away can know that
// a helper it pulled onto a hot path heap-allocates.
//
// The engine is deliberately a classifier, not a prover: Go's real
// escape analysis is interprocedural and version-dependent, so the
// classes are calibrated to be conservative in the direction that
// matters for enforcement — a site reported as HeapAlloc may in some
// builds be stack-allocated, but a site reported AllocFree never
// allocates on the steady-state path.

// AllocClass is the engine's verdict for one site.
type AllocClass int

const (
	// AllocFree marks a site proven not to allocate on the steady
	// state: a sanitized append (capacity planned by an explicit-cap
	// make or a [:0] reuse reslice), a pointer-shaped interface
	// conversion, a capture-free function literal. Also used for the
	// zero-allocation perf sites (dynamic dispatch, defer) that other
	// analyzers report on different grounds.
	AllocFree AllocClass = iota
	// StackPlausible marks an allocation whose result is bound to a
	// local that the engine cannot see escaping — returned, captured,
	// passed as an argument, or stored through a pointer — so the
	// compiler's escape analysis plausibly keeps it on the stack.
	StackPlausible
	// ColdAlloc marks a heap allocation on an early-exit path: inside
	// an if/case body whose last statement is a return or a panic.
	// Error formatting and precondition panics live here; they run
	// once per call at most and never per iteration.
	ColdAlloc
	// HeapAlloc marks a steady-state heap allocation.
	HeapAlloc
)

func (c AllocClass) String() string {
	switch c {
	case AllocFree:
		return "alloc-free"
	case StackPlausible:
		return "stack-plausible"
	case ColdAlloc:
		return "cold-path"
	case HeapAlloc:
		return "heap"
	}
	return "?"
}

// allocKind names the source pattern of a site; each hot* analyzer
// owns a disjoint subset.
type allocKind int

const (
	akMake        allocKind = iota // make(slice/map/chan)
	akNew                          // new(T)
	akLit                          // slice/map composite literal, &T{...}
	akAppend                       // append without a capacity proof (hotprealloc)
	akIfaceBox                     // concrete non-pointer value boxed into an interface (hotiface)
	akDispatch                     // interface method call / indirect call (hotiface; no allocation)
	akClosure                      // function literal capturing locals
	akMethodValue                  // bound method value (closure allocation)
	akStringConv                   // string <-> []byte/[]rune conversion
	akVariadic                     // implicit slice for a variadic call
	akFmt                          // call into fmt/log (formats and boxes)
	akDefer                        // defer statement (hotdefer; allocation only in loops)
)

// AllocSite is one classified expression or statement.
type AllocSite struct {
	Node   ast.Node
	kind   allocKind
	Class  AllocClass
	What   string // short human description for diagnostics
	InLoop bool   // the site's CFG block lies on a cycle
}

// escapeSites runs the engine over one function body and returns its
// sites in source order. The body's function literals are not
// descended into — a closure body runs on its invoker's schedule and
// is analyzed as its own scope; only the closure allocation itself is
// a site of this body.
func escapeSites(info *types.Info, fset *token.FileSet, body *ast.BlockStmt) []AllocSite {
	if body == nil {
		return nil
	}
	w := &escapeWalker{info: info, fset: fset}
	w.prepare(body)
	w.walk(body)
	return w.sites
}

type escapeWalker struct {
	info *types.Info
	fset *token.FileSet

	// topLoop maps each CFG block node to whether its block lies on a
	// cycle; the walk derives every nested node's loop state from its
	// nearest enclosing block node.
	topLoop map[ast.Node]bool
	// coldRoots marks subtree roots (if/case bodies ending in return
	// or panic) whose contents are cold.
	coldRoots map[ast.Node]bool
	// escaped holds local objects the engine saw escaping.
	escaped map[types.Object]bool
	// capProven holds local slice objects defined by an explicit-cap
	// make or a [:0] reuse reslice, with the definition position.
	capProven map[types.Object]token.Pos
	// bound maps an allocation expression to the local it is directly
	// bound to by an assignment or var declaration.
	bound map[ast.Expr]types.Object

	sites []AllocSite
}

// prepare computes the walk's node metadata: loop membership from the
// CFG (goto-formed loops included), cold roots, escape bits and the
// append-capacity sanitizer index.
func (w *escapeWalker) prepare(body *ast.BlockStmt) {
	g := cfg.Build(body)
	loops := g.LoopBlocks()
	w.topLoop = make(map[ast.Node]bool)
	for _, blk := range g.Blocks {
		in := loops[blk]
		for _, n := range blk.Nodes {
			w.topLoop[n] = in
		}
	}

	w.coldRoots = make(map[ast.Node]bool)
	w.escaped = make(map[types.Object]bool)
	w.capProven = make(map[types.Object]token.Pos)
	w.bound = make(map[ast.Expr]types.Object)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal's free variables escape into the closure;
			// its body is out of scope.
			w.markFreeVars(n)
			return false
		case *ast.IfStmt:
			if terminates(n.Body.List) {
				w.coldRoots[n.Body] = true
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && terminates(els.List) {
				w.coldRoots[els] = true
			}
		case *ast.CaseClause:
			if terminates(n.Body) {
				w.coldRoots[n] = true
			}
		case *ast.CommClause:
			if terminates(n.Body) {
				w.coldRoots[n] = true
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				w.markEscape(r)
			}
		case *ast.SendStmt:
			w.markEscape(n.Value)
		case *ast.CallExpr:
			for _, a := range n.Args {
				w.markEscape(a)
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					w.markEscape(kv.Value)
				} else {
					w.markEscape(e)
				}
			}
		case *ast.AssignStmt:
			w.prepareAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := w.info.Defs[name]
				if obj == nil || i >= len(n.Values) {
					continue
				}
				w.indexBinding(obj, n.Values[i])
			}
		}
		return true
	})
}

// terminates reports whether a statement list ends in a return or a
// call to panic — the early-exit shape that makes a block cold.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// markEscape records the root object of an expression as escaping.
func (w *escapeWalker) markEscape(e ast.Expr) {
	if obj := rootObj(w.info, e); obj != nil {
		w.escaped[obj] = true
	}
}

// markFreeVars records every variable a function literal captures.
func (w *escapeWalker) markFreeVars(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := w.info.Uses[id].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return true
		}
		// A variable declared outside the literal but inside some
		// function is a capture; package-level variables are not.
		if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() &&
			(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			w.escaped[obj] = true
		}
		return true
	})
}

// prepareAssign records escapes through non-local stores, direct
// allocation bindings, and the append-capacity sanitizer index.
func (w *escapeWalker) prepareAssign(a *ast.AssignStmt) {
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			lhs, rhs := a.Lhs[i], a.Rhs[i]
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent {
				// Store through a selector/index/deref: the value
				// escapes into whatever holds the target.
				w.markEscape(rhs)
				continue
			}
			obj := w.info.Defs[id]
			if obj == nil {
				obj = w.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
				// Assignment to a package-level variable escapes.
				w.markEscape(rhs)
				continue
			}
			w.indexBinding(obj, rhs)
		}
		return
	}
	// Multi-value assignment from a single call: nothing to index.
}

// indexBinding records that obj is directly bound to rhs — the hook
// for StackPlausible classification and the capacity sanitizer.
func (w *escapeWalker) indexBinding(obj types.Object, rhs ast.Expr) {
	rhs = ast.Unparen(rhs)
	w.bound[rhs] = obj
	switch e := rhs.(type) {
	case *ast.CallExpr:
		if name, ok := builtinName(w.info, e); ok && name == "make" && len(e.Args) == 3 {
			// make(T, len, cap): an explicit capacity is the author's
			// capacity plan; appends to obj are alloc-free-after-warmup.
			w.capProven[obj] = rhs.Pos()
		}
	case *ast.SliceExpr:
		// s = s[:0]: reusing a warm buffer keeps its capacity.
		if root := rootObj(w.info, e.X); root == obj && e.Low == nil && e.High != nil && e.Max == nil {
			if lit, ok := ast.Unparen(e.High).(*ast.BasicLit); ok && lit.Value == "0" {
				w.capProven[obj] = rhs.Pos()
			}
		}
	}
}

// builtinName resolves a call to a builtin function.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

// walkState is the per-node traversal state.
type walkState struct {
	inLoop bool
	cold   bool
}

// walk runs the main classification traversal, deriving each node's
// state from the stacks maintained through ast.Inspect's push/pop
// protocol.
func (w *escapeWalker) walk(body *ast.BlockStmt) {
	type frame struct {
		node ast.Node
		st   walkState
	}
	var stack []frame
	cur := func() walkState {
		if len(stack) == 0 {
			return walkState{}
		}
		return stack[len(stack)-1].st
	}
	parent := func() ast.Node {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].node
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		st := cur()
		if in, ok := w.topLoop[n]; ok {
			st.inLoop = in
		}
		if w.coldRoots[n] {
			st.cold = true
		}
		descend := w.visit(n, st, parent())
		if !descend {
			return false
		}
		stack = append(stack, frame{n, st})
		return true
	})
}

// classify picks the class for an allocating expression: cold path
// beats everything, then a non-escaping direct binding is plausibly
// stacked, otherwise it is a steady-state heap allocation.
func (w *escapeWalker) classify(e ast.Expr, st walkState) AllocClass {
	if st.cold {
		return ColdAlloc
	}
	if obj, ok := w.bound[e]; ok && !w.escaped[obj] {
		return StackPlausible
	}
	return HeapAlloc
}

func (w *escapeWalker) add(n ast.Node, kind allocKind, class AllocClass, what string, st walkState) {
	w.sites = append(w.sites, AllocSite{Node: n, kind: kind, Class: class, What: what, InLoop: st.inLoop})
}

// visit records the sites of one node; it returns false to prune the
// subtree (function literals only).
func (w *escapeWalker) visit(n ast.Node, st walkState, parent ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		w.visitFuncLit(n, st)
		return false
	case *ast.DeferStmt:
		w.add(n, akDefer, AllocFree, "defer", st)
	case *ast.CallExpr:
		w.visitCall(n, st)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.add(n, akLit, w.classify(n, st), "address of composite literal", st)
			}
		}
	case *ast.CompositeLit:
		// A slice or map literal allocates its backing store; struct
		// and array literals are values (their &lit form is handled
		// above).
		switch w.typeOf(n).Underlying().(type) {
		case *types.Slice:
			w.add(n, akLit, w.classify(n, st), "slice literal", st)
		case *types.Map:
			w.add(n, akLit, w.classify(n, st), "map literal", st)
		}
	case *ast.SelectorExpr:
		w.visitSelector(n, st, parent)
	case *ast.AssignStmt:
		w.visitAssignBoxing(n, st)
	case *ast.ValueSpec:
		for i, name := range n.Names {
			if i < len(n.Values) {
				w.checkBoxing(n.Values[i], w.info.Defs[name], st)
			}
		}
	}
	return true
}

func (w *escapeWalker) typeOf(e ast.Expr) types.Type {
	if t := w.info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// visitFuncLit records the closure allocation: a literal capturing at
// least one variable materializes a closure object; a capture-free
// literal is a static function value and free.
func (w *escapeWalker) visitFuncLit(lit *ast.FuncLit, st walkState) {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := w.info.Uses[id].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() == nil || obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captures = true
		}
		return true
	})
	if captures {
		w.add(lit, akClosure, w.classify(lit, st), "closure capturing locals", st)
	}
}

// visitSelector records bound method values: a method used as a value
// allocates a closure binding the receiver.
func (w *escapeWalker) visitSelector(sel *ast.SelectorExpr, st walkState, parent ast.Node) {
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // a direct method call, not a method value
	}
	if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		w.add(sel, akMethodValue, w.classify(sel, st), "bound method value", st)
	}
}

// visitAssignBoxing flags concrete non-pointer values assigned into
// interface-typed targets.
func (w *escapeWalker) visitAssignBoxing(a *ast.AssignStmt, st walkState) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		var obj types.Object
		if id, ok := ast.Unparen(a.Lhs[i]).(*ast.Ident); ok {
			obj = w.info.Defs[id]
			if obj == nil {
				obj = w.info.Uses[id]
			}
		}
		if obj != nil {
			w.checkBoxing(a.Rhs[i], obj, st)
		} else if t := w.typeOf(a.Lhs[i]); t != nil {
			w.checkBoxingTo(a.Rhs[i], t, st)
		}
	}
}

// checkBoxing flags rhs if assigning it to obj boxes a concrete value
// into an interface.
func (w *escapeWalker) checkBoxing(rhs ast.Expr, obj types.Object, st walkState) {
	if obj == nil {
		return
	}
	w.checkBoxingTo(rhs, obj.Type(), st)
}

// checkBoxingTo flags rhs when it is a concrete non-pointer-shaped
// value converted to an interface target type.
func (w *escapeWalker) checkBoxingTo(rhs ast.Expr, target types.Type, st walkState) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	rt := w.typeOf(rhs)
	if rt == nil || types.IsInterface(rt) || pointerShaped(rt) {
		return
	}
	if tv, ok := w.info.Types[rhs]; ok && tv.IsNil() {
		return
	}
	w.add(rhs, akIfaceBox, w.classify(ast.Unparen(rhs), st), "interface boxing of "+rt.String(), st)
}

// pointerShaped reports whether values of t fit an interface's data
// word without allocating: pointers, channels, maps, functions and
// unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// visitCall dispatches the call-shaped sources: builtins (make, new,
// append), type conversions (string/byte, interface boxing), fmt and
// log calls, variadic boxing, interface dispatch and indirect calls.
func (w *escapeWalker) visitCall(call *ast.CallExpr, st walkState) {
	if name, ok := builtinName(w.info, call); ok {
		switch name {
		case "make":
			what := "make"
			if len(call.Args) > 0 {
				what = "make(" + types.TypeString(w.typeOf(call), nil) + ")"
			}
			w.add(call, akMake, w.classify(call, st), what, st)
		case "new":
			w.add(call, akNew, w.classify(call, st), "new("+types.TypeString(w.typeOf(call), nil)+")", st)
		case "append":
			w.visitAppend(call, st)
		}
		return
	}
	if tv, ok := w.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		w.visitConversion(call, tv.Type, st)
		return
	}

	fn := calleeFunc(w.info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			w.add(call, akFmt, w.coldOrHeap(st), fn.Pkg().Name()+"."+fn.Name()+" call", st)
			return // one site per fmt call; skip the per-arg boxing
		}
	}

	// Dispatch: an interface method call (calleeFunc resolves these to
	// the interface's *types.Func, so check the selection, not fn) or,
	// when nothing resolves, a call through a function value.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			w.add(call, akDispatch, AllocFree, "interface method call "+sel.Sel.Name, st)
		}
	} else if fn == nil {
		// A directly-invoked function literal is a static call, not
		// dispatch through a value.
		if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
			if _, ok := w.typeOf(ast.Unparen(call.Fun)).Underlying().(*types.Signature); ok {
				w.add(call, akDispatch, AllocFree, "indirect call through function value", st)
			}
		}
	}

	sig := w.callSignature(call)
	if sig != nil {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			w.add(call, akVariadic, w.coldOrHeap(st), "variadic argument slice", st)
		} else {
			w.checkArgBoxing(call, sig, st)
		}
	}
}

// coldOrHeap classifies sites that always heap-allocate when executed
// (fmt, variadic boxing): only the cold-path exemption applies.
func (w *escapeWalker) coldOrHeap(st walkState) AllocClass {
	if st.cold {
		return ColdAlloc
	}
	return HeapAlloc
}

// callSignature returns the called function's signature, nil for
// builtins and conversions.
func (w *escapeWalker) callSignature(call *ast.CallExpr) *types.Signature {
	t := w.typeOf(call.Fun)
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// checkArgBoxing flags concrete values passed to interface-typed
// parameters of a non-variadic (or spread) call.
func (w *escapeWalker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature, st walkState) {
	n := sig.Params().Len()
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		pt := sig.Params().At(i).Type()
		if sig.Variadic() && i == n-1 {
			continue // spread slice passes through
		}
		w.checkBoxingTo(arg, pt, st)
	}
}

// visitAppend classifies an append call: sanitized when the appended
// slice has a capacity plan (explicit-cap make or [:0] reuse) defined
// before the call and the result is assigned back to the same slice.
func (w *escapeWalker) visitAppend(call *ast.CallExpr, st walkState) {
	if len(call.Args) == 0 {
		return
	}
	if root := rootObj(w.info, call.Args[0]); root != nil {
		if def, ok := w.capProven[root]; ok && def < call.Pos() {
			if obj, bound := w.bound[call]; bound && obj == root {
				w.add(call, akAppend, AllocFree, "append within proven capacity", st)
				return
			}
		}
	}
	w.add(call, akAppend, w.coldOrHeap(st), "append without a capacity proof", st)
}

// visitConversion classifies explicit conversions T(x): string/byte
// materializations and interface boxing.
func (w *escapeWalker) visitConversion(call *ast.CallExpr, target types.Type, st walkState) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	at := w.typeOf(arg)
	if isStringType(target) && isByteOrRuneSlice(at) || isStringType(at) && isByteOrRuneSlice(target) {
		w.add(call, akStringConv, w.coldOrHeap(st), "string conversion", st)
		return
	}
	w.checkBoxingTo(arg, target, st)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// steadyAlloc reports whether a site is a steady-state heap
// allocation — the bit the per-function "allocates" summary tracks.
func (s AllocSite) steadyAlloc() bool {
	if s.Class != HeapAlloc {
		return false
	}
	switch s.kind {
	case akDispatch, akDefer:
		return false
	}
	return true
}

// FuncAllocSites runs the escape engine over a declaration in this
// pass, memoized through the fact store so the four hot* analyzers
// share one classification per function.
func (p *Pass) FuncAllocSites(fd *ast.FuncDecl) []AllocSite {
	fn := p.declFunc(fd)
	if fn == nil {
		return escapeSites(p.Info, p.Fset, fd.Body)
	}
	return p.Facts.sitesOf(fn)
}

// sitesOf memoizes escapeSites per declared function.
func (f *Facts) sitesOf(fn *types.Func) []AllocSite {
	if sites, ok := f.siteCache[fn]; ok {
		return sites
	}
	site := f.decls[fn]
	if site == nil {
		return nil
	}
	sites := escapeSites(site.pkg.Info, f.fset, site.decl.Body)
	if f.siteCache == nil {
		f.siteCache = make(map[*types.Func][]AllocSite)
	}
	f.siteCache[fn] = sites
	return sites
}

// computeAllocates folds the escape engine's verdicts into the
// per-function summaries, bottom-up over the condensation: a function
// allocates when its own body has a steady-state heap site or when a
// direct callee allocates. Within an SCC every member reaches every
// other, so the whole component shares one verdict.
func (f *Facts) computeAllocates(g *callGraph) {
	for _, scc := range g.sccs {
		alloc := false
		for _, n := range scc {
			for _, s := range f.sitesOf(n.fn) {
				if s.steadyAlloc() {
					alloc = true
					break
				}
			}
			if alloc {
				break
			}
			for _, c := range n.callees {
				// Callees outside this SCC are final (bottom-up
				// order); callees inside share the verdict below.
				if f.allocates[c.fn] {
					alloc = true
					break
				}
			}
			if alloc {
				break
			}
		}
		for _, n := range scc {
			f.allocates[n.fn] = alloc
		}
	}
}

// Allocates reports whether a module function (or one of its direct
// callees, transitively) performs a steady-state heap allocation;
// known is false for functions outside the module.
func (f *Facts) Allocates(fn *types.Func) (alloc, known bool) {
	if _, ok := f.decls[fn]; !ok {
		return false, false
	}
	return f.allocates[fn], true
}
