package lint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzParseAllowDirective checks the //lint:allow parser's invariants
// over arbitrary comment text: it never panics, recognizes exactly the
// "//lint:allow" prefix, returns an analyzer name only for well-formed
// directives, and never returns a name containing whitespace.
func FuzzParseAllowDirective(f *testing.F) {
	f.Add("//lint:allow maporder fixture exercises the sink")
	f.Add("//lint:allow maporder")
	f.Add("//lint:allow")
	f.Add("//lint:allow   ")
	f.Add("// lint:allow maporder reason")
	f.Add("//lint:allow\tmaporder\treason")
	f.Add("/*lint:allow maporder reason*/")
	f.Add("//lint:allowx y")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		analyzer, isDirective, ok := parseAllowDirective(s)
		if isDirective != strings.HasPrefix(s, "//lint:allow") {
			t.Fatalf("isDirective=%v disagrees with prefix for %q", isDirective, s)
		}
		if ok && !isDirective {
			t.Fatalf("ok without isDirective for %q", s)
		}
		if !ok && analyzer != "" {
			t.Fatalf("analyzer %q returned without ok for %q", analyzer, s)
		}
		if ok {
			if analyzer == "" {
				t.Fatalf("ok with empty analyzer for %q", s)
			}
			if strings.IndexFunc(analyzer, unicode.IsSpace) >= 0 {
				t.Fatalf("analyzer %q contains whitespace for %q", analyzer, s)
			}
			// A well-formed directive always carries a reason after the
			// analyzer name.
			rest := strings.TrimPrefix(s, "//lint:allow")
			if len(strings.Fields(rest)) < 2 {
				t.Fatalf("ok for directive without reason: %q", s)
			}
		}
	})
}
