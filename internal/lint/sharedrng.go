package lint

import (
	"go/ast"
	"go/types"
)

// SharedRNG enforces the two rules that keep *rand.Rand values
// data-race-free and replay-deterministic:
//
//  1. A struct that pairs a mutex field with a *rand.Rand field has
//     declared "this RNG is shared between goroutines" — so every
//     method that touches the RNG field must acquire a lock. This is
//     the burst.LRCEvaluator contract, previously enforced only by a
//     comment.
//
//  2. A goroutine body (go func literal) must not capture a *rand.Rand
//     declared outside it. Even when every access happens to be
//     serialized today, a captured RNG consumes draws in scheduling
//     order, so results stop being a function of the seed. Each worker
//     must own a private RNG created inside the goroutine (or derived
//     per worker with mathx/rngsplit.Derive).
var SharedRNG = &Analyzer{
	Name: "sharedrng",
	Doc:  "require locking around mutex-paired *rand.Rand fields and forbid goroutine-captured RNGs",
	Run:  runSharedRNG,
}

func runSharedRNG(pass *Pass) error {
	guarded := collectGuardedRNGStructs(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccess(pass, fd, guarded)
		}
		checkGoroutineCapture(pass, f)
	}
	return nil
}

// collectGuardedRNGStructs finds named struct types declaring both a
// mutex field and at least one *rand.Rand field, returning the RNG
// field objects per type.
func collectGuardedRNGStructs(pass *Pass) map[*types.Named][]*types.Var {
	guarded := make(map[*types.Named][]*types.Var)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var rngs []*types.Var
		hasMutex := false
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if isRandRandPtr(fld.Type()) {
				rngs = append(rngs, fld)
			}
			if isMutex(fld.Type()) {
				hasMutex = true
			}
		}
		if hasMutex && len(rngs) > 0 {
			guarded[named] = rngs
		}
	}
	return guarded
}

// checkGuardedAccess flags methods of guarded structs that touch an RNG
// field without any lock acquisition in the method body.
func checkGuardedAccess(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Named][]*types.Var) {
	named := receiverBaseType(pass.Info, fd)
	if named == nil {
		return
	}
	rngs := guarded[named]
	if rngs == nil {
		return
	}
	isRNGField := func(v *types.Var) bool {
		for _, r := range rngs {
			if r == v {
				return true
			}
		}
		return false
	}
	locks := containsLockCall(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fld, ok := selection.Obj().(*types.Var)
		if !ok || !isRNGField(fld) {
			return true
		}
		if !locks {
			pass.Report(sel.Pos(),
				"method %s touches mutex-guarded RNG field %s without acquiring the lock",
				fd.Name.Name, fld.Name())
		}
		return true
	})
}

// checkGoroutineCapture flags go func literals that reference a
// *rand.Rand variable declared outside the literal.
func checkGoroutineCapture(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || !isRandRandPtr(v.Type()) || v.IsField() {
				return true
			}
			// Declared inside the literal (including its parameters)
			// means worker-private: fine.
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true
			}
			pass.Report(id.Pos(),
				"goroutine captures shared *rand.Rand %q; create a per-worker RNG inside the goroutine (e.g. rngsplit.Derive)",
				id.Name)
			return true
		})
		return true
	})
}
