package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"mlec/internal/lint/cfg"
)

// This file implements the value-range half of the bce analysis family
// (the analyzers live in hotbce.go and hotinline.go, the compiler
// cross-check in oracle.go). The engine answers one question per
// indexing or slicing site in a function: can the bounds check be
// proven eliminable from the length facts visible on every path to the
// site? It is the static twin of the gc compiler's prove pass, scoped
// to the idioms the //mlec:hot kernels actually use, and `mlecvet
// -compiler` keeps the two honest against each other.
//
// # The fact lattice
//
// A boundsState is a conjunction of facts over slice references:
//
//	minLen[r] = c    len(r) >= c          (from `len(r) >= c` guards,
//	                                       make(T, c), reslicing, and
//	                                       index postconditions)
//	lenEq{a, b}      len(a) == len(b)     (from `len(a) != len(b)`
//	                                       early-return guards and
//	                                       slice-copy assignments)
//	ltLen[i][r]      i < len(r)           (from range-loop keys and
//	                                       `i < len(r)` conditions)
//	nonNeg[i]        i >= 0               (range keys, non-negative
//	                                       constants, `i >= 0` guards)
//
// A reference r is a local or parameter object, optionally extended by
// a pure field path (`src`, `e.queue`). Facts meet by intersection at
// control-flow joins (a fact holds only if it holds on every incoming
// edge), so the in-state of every block only shrinks and the fixed
// point terminates without widening.
//
// # Transfer highlights
//
//   - Branch conditions refine the true/false out-edges; `&&` refines
//     its right operand and the true edge, `||` the false edge. The
//     cfg builder emits the true edge first (locked by
//     TestCondSuccsOrderTrueFirst), which is what makes two-successor
//     refinement sound.
//   - A guard whose body leaves the function (`if len(a) != len(b) {
//     return err }`) leaves len(a) == len(b) on the fall-through path —
//     this is the false-edge refinement of the condition, no special
//     case needed.
//   - Reslicing transfers: after `s = s[c:]`, minLen(s) drops by c;
//     `s = s[lo:hi]` with constant bounds pins the length exactly.
//   - Postconditions: execution continues past `s[c]` only when
//     len(s) > c, so every successful index strengthens the state —
//     which is exactly why the idiomatic hint `_ = s[n-1]` placed
//     before a loop proves the loop body's indexes.
//   - A byte-typed index into an array of 256 or more entries can
//     never fail; this is the product-table rule the gf256 kernels
//     lean on.
//   - Calls cannot change the length of a local slice (slices are
//     passed by value), so local facts survive calls; facts about
//     field paths and about locals whose address escapes are killed at
//     every call and send.
//
// The engine only judges; reporting policy (hot scope, loop blocks
// only) lives in the hotbce analyzer.

// A sliceRef names a trackable slice/array/string reference: a
// variable, optionally extended by a chain of field selections. The
// zero path means the object itself.
type sliceRef struct {
	obj  types.Object
	path string // "" or ".field" chains, e.g. ".queue"
}

// resolveRef resolves e to a sliceRef when e is an identifier or a
// pure field-selection chain rooted at one.
func resolveRef(info *types.Info, e ast.Expr) (sliceRef, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if _, ok := obj.(*types.Var); ok {
			return sliceRef{obj: obj}, true
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return sliceRef{}, false
		}
		base, ok := resolveRef(info, x.X)
		if !ok {
			return sliceRef{}, false
		}
		return sliceRef{obj: base.obj, path: base.path + "." + x.Sel.Name}, true
	}
	return sliceRef{}, false
}

// boundsState is one program point's fact set. A nil map means "no
// facts of that kind". States are value-ish: mutate only via the
// methods, copy with clone.
type boundsState struct {
	minLen map[sliceRef]int
	lenEq  map[sliceRef]map[sliceRef]bool
	ltLen  map[types.Object]map[sliceRef]bool
	nonNeg map[types.Object]bool
}

func newBoundsState() *boundsState { return &boundsState{} }

func (s *boundsState) clone() *boundsState {
	c := &boundsState{}
	if s.minLen != nil {
		c.minLen = make(map[sliceRef]int, len(s.minLen))
		for k, v := range s.minLen {
			c.minLen[k] = v
		}
	}
	if s.lenEq != nil {
		c.lenEq = make(map[sliceRef]map[sliceRef]bool, len(s.lenEq))
		for k, set := range s.lenEq {
			cs := make(map[sliceRef]bool, len(set))
			for r := range set {
				cs[r] = true
			}
			c.lenEq[k] = cs
		}
	}
	if s.ltLen != nil {
		c.ltLen = make(map[types.Object]map[sliceRef]bool, len(s.ltLen))
		for k, set := range s.ltLen {
			cs := make(map[sliceRef]bool, len(set))
			for r := range set {
				cs[r] = true
			}
			c.ltLen[k] = cs
		}
	}
	if s.nonNeg != nil {
		c.nonNeg = make(map[types.Object]bool, len(s.nonNeg))
		for k := range s.nonNeg {
			c.nonNeg[k] = true
		}
	}
	return c
}

func (s *boundsState) setMinLen(r sliceRef, n int) {
	if n <= 0 {
		return
	}
	if s.minLen == nil {
		s.minLen = make(map[sliceRef]int)
	}
	if n > s.minLen[r] {
		s.minLen[r] = n
	}
}

func (s *boundsState) addLenEq(a, b sliceRef) {
	if a == b {
		return
	}
	if s.lenEq == nil {
		s.lenEq = make(map[sliceRef]map[sliceRef]bool)
	}
	for _, pair := range [2][2]sliceRef{{a, b}, {b, a}} {
		set := s.lenEq[pair[0]]
		if set == nil {
			set = make(map[sliceRef]bool)
			s.lenEq[pair[0]] = set
		}
		set[pair[1]] = true
	}
}

func (s *boundsState) addLtLen(i types.Object, r sliceRef) {
	if s.ltLen == nil {
		s.ltLen = make(map[types.Object]map[sliceRef]bool)
	}
	set := s.ltLen[i]
	if set == nil {
		set = make(map[sliceRef]bool)
		s.ltLen[i] = set
	}
	set[r] = true
}

func (s *boundsState) setNonNeg(i types.Object) {
	if s.nonNeg == nil {
		s.nonNeg = make(map[types.Object]bool)
	}
	s.nonNeg[i] = true
}

// sameLenGroup reports the equality component of r (always including r
// itself) by walking the lenEq adjacency.
func (s *boundsState) sameLenGroup(r sliceRef) map[sliceRef]bool {
	group := map[sliceRef]bool{r: true}
	if s.lenEq == nil {
		return group
	}
	work := []sliceRef{r}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for next := range s.lenEq[cur] {
			if !group[next] {
				group[next] = true
				work = append(work, next)
			}
		}
	}
	return group
}

// minLenOf returns the best lower bound on len(r), folding in length
// equalities: the max bound over r's equality component.
func (s *boundsState) minLenOf(r sliceRef) int {
	best := s.minLen[r]
	if s.lenEq == nil {
		return best
	}
	for m := range s.sameLenGroup(r) {
		if v := s.minLen[m]; v > best {
			best = v
		}
	}
	return best
}

// ltLenHolds reports i < len(r), folding in length equalities.
func (s *boundsState) ltLenHolds(i types.Object, r sliceRef) bool {
	set := s.ltLen[i]
	if len(set) == 0 {
		return false
	}
	if set[r] {
		return true
	}
	for m := range s.sameLenGroup(r) {
		if set[m] {
			return true
		}
	}
	return false
}

// killRef removes every fact about r and about any reference that
// extends r's path (killing `e` also kills `e.queue`). When r is a
// bare object it also drops the object's integer facts.
func (s *boundsState) killRef(r sliceRef) {
	covers := func(m sliceRef) bool {
		if m.obj != r.obj {
			return false
		}
		if r.path == "" {
			return true
		}
		return m.path == r.path || (len(m.path) > len(r.path) && m.path[:len(r.path)] == r.path && m.path[len(r.path)] == '.')
	}
	for m := range s.minLen {
		if covers(m) {
			delete(s.minLen, m)
		}
	}
	for a, set := range s.lenEq {
		if covers(a) {
			delete(s.lenEq, a)
			continue
		}
		for b := range set {
			if covers(b) {
				delete(set, b)
			}
		}
	}
	for i, set := range s.ltLen {
		if r.path == "" && i == r.obj {
			delete(s.ltLen, i)
			continue
		}
		for m := range set {
			if covers(m) {
				delete(set, m)
			}
		}
	}
	if r.path == "" {
		delete(s.nonNeg, r.obj)
	}
}

// killCalls drops the facts a function call can invalidate: every
// field-path reference (the callee may reach the struct through
// another alias) and every unstable object (address taken or captured
// by a closure).
func (s *boundsState) killCalls(unstable map[types.Object]bool) {
	var doomed []sliceRef
	for m := range s.minLen {
		if m.path != "" || unstable[m.obj] {
			doomed = append(doomed, m)
		}
	}
	for a := range s.lenEq {
		if a.path != "" || unstable[a.obj] {
			doomed = append(doomed, a)
		}
	}
	for i, set := range s.ltLen {
		if unstable[i] {
			delete(s.ltLen, i)
			continue
		}
		for m := range set {
			if m.path != "" || unstable[m.obj] {
				delete(set, m)
			}
		}
	}
	for i := range s.nonNeg {
		if unstable[i] {
			delete(s.nonNeg, i)
		}
	}
	for _, r := range doomed {
		s.killRef(r)
	}
}

// meetInto intersects other into s and reports whether s changed.
func (s *boundsState) meetInto(other *boundsState) bool {
	changed := false
	for r, v := range s.minLen {
		ov := other.minLen[r]
		if ov < v {
			if ov <= 0 {
				delete(s.minLen, r)
			} else {
				s.minLen[r] = ov
			}
			changed = true
		}
	}
	for a, set := range s.lenEq {
		oset := other.lenEq[a]
		for b := range set {
			if !oset[b] {
				delete(set, b)
				changed = true
			}
		}
		if len(set) == 0 {
			delete(s.lenEq, a)
		}
	}
	for i, set := range s.ltLen {
		oset := other.ltLen[i]
		for r := range set {
			if !oset[r] {
				delete(set, r)
				changed = true
			}
		}
		if len(set) == 0 {
			delete(s.ltLen, i)
		}
	}
	for i := range s.nonNeg {
		if !other.nonNeg[i] {
			delete(s.nonNeg, i)
			changed = true
		}
	}
	return changed
}

// A boundsSite is one indexing or slicing expression and the engine's
// verdict on it.
type boundsSite struct {
	node   ast.Node
	kind   string // "index" or "slice"
	base   string // rendering of the indexed expression
	expr   string // rendering of the whole site
	proven bool
	inLoop bool
	// need is the constant length the base must be proven to have for
	// the site to be eliminable, or 0 when the index is not constant.
	need int
}

// boundsEngine runs the dataflow over one function body.
type boundsEngine struct {
	info     *types.Info
	graph    *cfg.Graph
	loops    map[*cfg.Block]bool
	in       []*boundsState
	unstable map[types.Object]bool
}

// boundsIterationCap bounds worklist processing. The meet is an
// intersection and in-states only shrink, so the fixed point is
// reached long before the cap by construction; if a future transfer
// breaks monotonicity the engine degrades to "nothing proven" instead
// of hanging or, worse, over-claiming.
const boundsIterationCap = 256

// analyzeBounds classifies every index and slice expression of body.
// Sites inside function literals are not analyzed (a closure body is
// its own flow graph and is never a //mlec:hot kernel in this tree).
func analyzeBounds(info *types.Info, body *ast.BlockStmt) []boundsSite {
	if body == nil {
		return nil
	}
	en := &boundsEngine{
		info:     info,
		graph:    cfg.Build(body),
		unstable: make(map[types.Object]bool),
	}
	en.loops = en.graph.LoopBlocks()
	en.in = make([]*boundsState, len(en.graph.Blocks))
	en.prepare(body)

	// Worklist fixed point. in[entry] starts empty (no facts about
	// parameters); all other blocks start unvisited (nil = top).
	en.in[en.graph.Entry.Index] = newBoundsState()
	work := []*cfg.Block{en.graph.Entry}
	queued := make([]bool, len(en.graph.Blocks))
	queued[en.graph.Entry.Index] = true
	rounds := 0
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		queued[b.Index] = false
		if rounds++; rounds > boundsIterationCap*len(en.graph.Blocks) {
			// Non-monotone transfer bug: drop every fact so no site is
			// over-claimed (the oracle would catch over-claims too).
			for i := range en.in {
				if en.in[i] != nil {
					en.in[i] = newBoundsState()
				}
			}
			break
		}
		out := en.in[b.Index].clone()
		en.transfer(b, out, nil)
		for si, succ := range b.Succs {
			edge := en.edgeState(b, si, out)
			changed := false
			if en.in[succ.Index] == nil {
				en.in[succ.Index] = edge.clone()
				changed = true
			} else {
				changed = en.in[succ.Index].meetInto(edge)
			}
			if changed && !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Reporting pass: re-run each reachable block's transfer from its
	// fixed in-state, recording verdicts.
	var sites []boundsSite
	for _, b := range en.graph.Blocks {
		st := en.in[b.Index]
		if st == nil {
			continue // unreachable
		}
		inLoop := en.loops[b]
		en.transfer(b, st.clone(), func(site boundsSite) {
			site.inLoop = inLoop
			sites = append(sites, site)
		})
	}
	return sites
}

// prepare marks the objects whose facts cannot survive a call: locals
// whose address is taken and variables referenced from closures (the
// closure may run inside any callee and reassign them).
func (en *boundsEngine) prepare(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := rootObj(en.info, n.X); obj != nil {
					en.unstable[obj] = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := en.info.ObjectOf(id).(*types.Var); ok {
						en.unstable[v] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// transfer runs st through the block's nodes in execution order,
// mutating st and (when record is non-nil) emitting a verdict for each
// index/slice site encountered.
func (en *boundsEngine) transfer(b *cfg.Block, st *boundsState, record func(boundsSite)) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			en.transferAssign(n, st, record)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						en.checkExpr(st, v, record)
					}
					en.killAfterCalls(st, n)
					if len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							en.assignOne(st, name, vs.Values[i])
						}
					} else {
						for _, name := range vs.Names {
							en.killTarget(st, name)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			en.checkExpr(st, n.X, record)
			if obj := identObj(en.info, n.X); obj != nil {
				// i++ preserves i >= 0 but breaks i < len(s); i--
				// breaks both.
				wasNonNeg := st.nonNeg[obj] && n.Tok == token.INC
				st.killRef(sliceRef{obj: obj})
				if wasNonNeg {
					st.setNonNeg(obj)
				}
			} else if r, ok := resolveRef(en.info, n.X); ok {
				st.killRef(r)
			}
		case *ast.RangeStmt:
			en.checkExpr(st, n.X, record)
			// Key/value effects belong to the loop edges; edgeState
			// applies them so the done edge keeps no stale relation.
		case *ast.ExprStmt:
			en.checkExpr(st, n.X, record)
			en.killAfterCalls(st, n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				en.checkExpr(st, r, record)
			}
			en.killAfterCalls(st, n)
		case *ast.SendStmt:
			en.checkExpr(st, n.Chan, record)
			en.checkExpr(st, n.Value, record)
			st.killCalls(en.unstable)
		case *ast.GoStmt:
			en.checkExpr(st, n.Call, record)
			st.killCalls(en.unstable)
		case *ast.DeferStmt:
			en.checkExpr(st, n.Call, record)
			st.killCalls(en.unstable)
		case ast.Expr:
			// A condition or switch tag evaluated in this block.
			en.checkExpr(st, n, record)
			en.killAfterCalls(st, n)
		}
	}
}

// transferAssign handles assignments and short variable declarations.
func (en *boundsEngine) transferAssign(n *ast.AssignStmt, st *boundsState, record func(boundsSite)) {
	for _, r := range n.Rhs {
		en.checkExpr(st, r, record)
	}
	for _, l := range n.Lhs {
		en.checkExpr(st, l, record)
	}
	en.killAfterCalls(st, n)
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment (+=, -=, …): conservatively drop the
		// target's facts.
		for _, l := range n.Lhs {
			en.killTarget(st, l)
		}
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple from a call or map/chan read: nothing to learn.
		for _, l := range n.Lhs {
			en.killTarget(st, l)
		}
		return
	}
	// Parallel assignment: the RHS values are all read before any LHS
	// is written, so gens are computed against the pre-kill state.
	type gen struct {
		min int
		eq  sliceRef
		has bool
	}
	gens := make([]gen, len(n.Lhs))
	for i, r := range n.Rhs {
		gens[i].min, gens[i].eq, gens[i].has = en.rhsFacts(st, r)
	}
	nonNegs := make([]bool, len(n.Lhs))
	for i, r := range n.Rhs {
		if c, ok := constIntVal(en.info, r); ok && c >= 0 {
			nonNegs[i] = true
		}
	}
	for _, l := range n.Lhs {
		en.killTarget(st, l)
	}
	for i, l := range n.Lhs {
		lr, ok := resolveRef(en.info, l)
		if !ok {
			continue
		}
		if gens[i].min > 0 {
			st.setMinLen(lr, gens[i].min)
		}
		if gens[i].has {
			st.addLenEq(lr, gens[i].eq)
		}
		if nonNegs[i] && lr.path == "" {
			st.setNonNeg(lr.obj)
		}
	}
}

// assignOne applies `name := value` (var declarations with initializers).
func (en *boundsEngine) assignOne(st *boundsState, name *ast.Ident, value ast.Expr) {
	min, eq, has := en.rhsFacts(st, value)
	c, isConst := constIntVal(en.info, value)
	en.killTarget(st, name)
	lr, ok := resolveRef(en.info, name)
	if !ok {
		return
	}
	if min > 0 {
		st.setMinLen(lr, min)
	}
	if has {
		st.addLenEq(lr, eq)
	}
	if isConst && c >= 0 && lr.path == "" {
		st.setNonNeg(lr.obj)
	}
}

// rhsFacts derives length facts for the value of r: a minimum length,
// and optionally a reference the value shares its length with.
func (en *boundsEngine) rhsFacts(st *boundsState, r ast.Expr) (min int, eq sliceRef, hasEq bool) {
	switch x := ast.Unparen(r).(type) {
	case *ast.CallExpr:
		// make([]T, n) with constant n.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := en.info.ObjectOf(id).(*types.Builtin); isBuiltin && len(x.Args) >= 2 {
				if c, ok := constIntVal(en.info, x.Args[1]); ok && c > 0 {
					return int(c), sliceRef{}, false
				}
			}
		}
	case *ast.SliceExpr:
		base, ok := resolveRef(en.info, x.X)
		if !ok {
			return 0, sliceRef{}, false
		}
		lo := int64(0)
		if x.Low != nil {
			c, ok := constIntVal(en.info, x.Low)
			if !ok {
				return 0, sliceRef{}, false
			}
			lo = c
		}
		if x.High != nil {
			if hi, ok := constIntVal(en.info, x.High); ok && hi >= lo {
				return int(hi - lo), sliceRef{}, false
			}
			return 0, sliceRef{}, false
		}
		if m := st.minLenOf(base); m > int(lo) {
			return m - int(lo), sliceRef{}, false
		}
	case *ast.Ident, *ast.SelectorExpr:
		if ref, ok := resolveRef(en.info, x); ok {
			if t := en.info.TypeOf(x); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice {
					return st.minLenOf(ref), ref, true
				}
			}
		}
	}
	return 0, sliceRef{}, false
}

// killTarget drops the facts invalidated by writing through l.
func (en *boundsEngine) killTarget(st *boundsState, l ast.Expr) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if r, ok := resolveRef(en.info, l); ok {
		st.killRef(r)
		return
	}
	if _, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
		return // s[i] = v changes no length
	}
	// *p = v (or any other unresolvable target) may rewrite any
	// unstable variable or field.
	st.killCalls(en.unstable)
}

// killAfterCalls applies the call kill set when the subtree performs
// at least one real call (conversions and the pure builtins len, cap,
// copy, append, min, max do not invalidate length facts).
func (en *boundsEngine) killAfterCalls(st *boundsState, n ast.Node) {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if fl, ok := m.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRealCall(en.info, call) {
			found = true
			return false
		}
		return true
	})
	if found {
		st.killCalls(en.unstable)
	}
}

// isRealCall reports whether call invokes a function (rather than a
// conversion or a length-safe builtin).
func isRealCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch id.Name {
			case "len", "cap", "copy", "append", "min", "max", "delete",
				"real", "imag", "complex", "print", "println":
				return false
			}
			// make, new: allocate, mutate nothing. panic/recover/clear:
			// treat as real (panic ends the path anyway).
			switch id.Name {
			case "make", "new":
				return false
			}
		}
	}
	return true
}

// edgeState returns the state that flows along b's si-th out-edge:
// out refined by the block's trailing condition or range header. The
// cfg builder emits the true/body edge first.
func (en *boundsEngine) edgeState(b *cfg.Block, si int, out *boundsState) *boundsState {
	if len(b.Nodes) == 0 {
		return out
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.RangeStmt:
		st := out.clone()
		// The header reassigns key/value on every entry to the block,
		// so both edges drop their old facts.
		if last.Key != nil {
			en.killTarget(st, last.Key)
		}
		if last.Value != nil {
			en.killTarget(st, last.Value)
		}
		if si != 0 {
			return st // done edge: kills only
		}
		// Body edge: the operand is non-empty and the key indexes it.
		ref, refOK := resolveRef(en.info, last.X)
		if refOK && isLenType(en.info.TypeOf(last.X)) {
			st.setMinLen(ref, 1)
		}
		if key := identObj(en.info, last.Key); key != nil {
			st.setNonNeg(key)
			if refOK && isLenType(en.info.TypeOf(last.X)) {
				st.addLtLen(key, ref)
			}
		}
		return st
	case ast.Expr:
		// A two-successor block ending in an expression is a condition
		// with the true edge first. A switch tag also ends its block
		// but branches to case blocks, which do not mean "tag is true".
		if len(b.Succs) != 2 || b.Succs[0].Kind == "switch.case" {
			return out
		}
		st := out.clone()
		en.refineCond(st, last, si == 0)
		return st
	}
	return out
}

// isLenType reports whether t supports len with an index relation
// (slice, array, pointer-to-array, or string).
func isLenType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// refineCond strengthens st with the knowledge that e evaluated to
// isTrue. Unknown shapes refine nothing (sound: fewer facts).
func (en *boundsEngine) refineCond(st *boundsState, e ast.Expr, isTrue bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			en.refineCond(st, x.X, !isTrue)
		}
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if isTrue {
				en.refineCond(st, x.X, true)
				en.refineCond(st, x.Y, true)
			}
			return
		case token.LOR:
			if !isTrue {
				en.refineCond(st, x.X, false)
				en.refineCond(st, x.Y, false)
			}
			return
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			en.refineCmp(st, x, isTrue)
			return
		}
	}
}

// refineCmp handles one comparison under a known truth value.
func (en *boundsEngine) refineCmp(st *boundsState, x *ast.BinaryExpr, isTrue bool) {
	op := x.Op
	if !isTrue {
		op = negateCmp(op)
	}
	l, r := x.X, x.Y
	// Normalize so interesting shapes have len() or the variable on
	// the left: a OP b <=> b mirror(OP) a.
	lRef, lIsLen := lenArgRef(en.info, l)
	rRef, rIsLen := lenArgRef(en.info, r)
	switch {
	case lIsLen && rIsLen:
		if op == token.EQL {
			st.addLenEq(lRef, rRef)
		}
	case lIsLen:
		if c, ok := constIntVal(en.info, r); ok {
			applyLenBound(st, lRef, op, c)
		}
	case rIsLen:
		if c, ok := constIntVal(en.info, l); ok {
			applyLenBound(st, rRef, mirrorCmp(op), c)
		} else if i := identObj(en.info, l); i != nil {
			// i OP len(r)
			if op == token.LSS {
				st.addLtLen(i, rRef)
			}
		}
	default:
		if i := identObj(en.info, l); i != nil {
			if c, ok := constIntVal(en.info, r); ok {
				switch {
				case op == token.GEQ && c >= 0, op == token.GTR && c >= -1, op == token.EQL && c >= 0:
					st.setNonNeg(i)
				}
			}
		}
		if i := identObj(en.info, r); i != nil {
			if c, ok := constIntVal(en.info, l); ok {
				op = mirrorCmp(op)
				switch {
				case op == token.GEQ && c >= 0, op == token.GTR && c >= -1, op == token.EQL && c >= 0:
					st.setNonNeg(i)
				}
			}
		}
	}
	// i < len(s) in the mirrored direction: len(s) > i.
	if lIsLen && !rIsLen {
		if i := identObj(en.info, r); i != nil && op == token.GTR {
			st.addLtLen(i, lRef)
		}
	}
}

// applyLenBound records len(ref) OP c as a minimum-length fact.
func applyLenBound(st *boundsState, ref sliceRef, op token.Token, c int64) {
	switch op {
	case token.GEQ:
		st.setMinLen(ref, int(c))
	case token.GTR:
		st.setMinLen(ref, int(c)+1)
	case token.EQL:
		st.setMinLen(ref, int(c))
	case token.NEQ:
		if c == 0 {
			st.setMinLen(ref, 1) // len is never negative
		}
	}
}

// negateCmp returns the comparison that holds when op is false.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

// mirrorCmp returns the comparison with swapped operands.
func mirrorCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// lenArgRef matches len(x) with x a trackable reference.
func lenArgRef(info *types.Info, e ast.Expr) (sliceRef, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return sliceRef{}, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return sliceRef{}, false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return sliceRef{}, false
	}
	return resolveRef(info, call.Args[0])
}

// identObj resolves a bare identifier to its variable object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.ObjectOf(id).(*types.Var); ok {
		return v
	}
	return nil
}

// constIntVal evaluates e as a compile-time integer constant.
func constIntVal(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// checkExpr walks e recording a verdict for every index/slice site,
// threading short-circuit refinement through && and || so a guard in
// the left operand protects sites in the right.
func (en *boundsEngine) checkExpr(st *boundsState, e ast.Expr, record func(boundsSite)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				en.checkExpr(st, x.X, record)
				refined := st.clone()
				en.refineCond(refined, x.X, x.Op == token.LAND)
				en.checkExpr(refined, x.Y, record)
				// Postconditions learned inside the operands are
				// control-dependent; keep st unchanged (conservative).
				return false
			}
		case *ast.IndexExpr:
			en.checkExpr(st, x.X, record)
			en.checkExpr(st, x.Index, record)
			en.judgeIndex(st, x, record)
			return false
		case *ast.SliceExpr:
			en.checkExpr(st, x.X, record)
			en.checkExpr(st, x.Low, record)
			en.checkExpr(st, x.High, record)
			en.checkExpr(st, x.Max, record)
			en.judgeSlice(st, x, record)
			return false
		}
		return true
	})
}

// judgeIndex records the verdict for x and, on the assumption the
// program continues, learns the index postcondition.
func (en *boundsEngine) judgeIndex(st *boundsState, x *ast.IndexExpr, record func(boundsSite)) {
	baseT := en.info.TypeOf(x.X)
	if baseT == nil {
		return
	}
	var arr *types.Array
	switch u := baseT.Underlying().(type) {
	case *types.Map:
		return // map indexing is not bounds-checked
	case *types.Array:
		arr = u
	case *types.Pointer:
		a, ok := u.Elem().Underlying().(*types.Array)
		if !ok {
			return
		}
		arr = a
	case *types.Slice:
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}

	ref, refOK := resolveRef(en.info, x.X)
	c, isConst := constIntVal(en.info, x.Index)
	idxObj := identObj(en.info, x.Index)
	proven := false
	need := 0
	switch {
	case arr != nil && isConst:
		// Constant index into an array: checked at compile time.
		proven = c >= 0 && c < arr.Len()
	case arr != nil && isByteTyped(en.info.TypeOf(x.Index)) && arr.Len() >= 256:
		// A byte can never exceed a 256-entry table.
		proven = true
	case arr != nil:
		proven = idxObj != nil && st.nonNeg[idxObj] && refOK && st.ltLenHolds(idxObj, ref)
	case isConst:
		need = int(c) + 1
		proven = c >= 0 && refOK && st.minLenOf(ref) > int(c)
	case idxObj != nil:
		proven = st.nonNeg[idxObj] && refOK && st.ltLenHolds(idxObj, ref)
	}
	if record != nil {
		record(boundsSite{
			node:   x,
			kind:   "index",
			base:   types.ExprString(x.X),
			expr:   types.ExprString(x),
			proven: proven,
			need:   need,
		})
	}
	// Postcondition: past this expression the index was in bounds.
	if refOK && arr == nil {
		if isConst && c >= 0 {
			st.setMinLen(ref, int(c)+1)
		} else {
			// Any successful index means the base is non-empty.
			st.setMinLen(ref, 1)
			if idxObj != nil {
				st.setNonNeg(idxObj)
				st.addLtLen(idxObj, ref)
			}
		}
	}
}

// judgeSlice records the verdict for s[lo:hi] / s[lo:hi:max].
func (en *boundsEngine) judgeSlice(st *boundsState, x *ast.SliceExpr, record func(boundsSite)) {
	baseT := en.info.TypeOf(x.X)
	if baseT == nil {
		return
	}
	known := 0 // length the base is known to have
	trackable := false
	var ref sliceRef
	switch u := baseT.Underlying().(type) {
	case *types.Slice:
		ref, trackable = resolveRef(en.info, x.X)
		if trackable {
			known = st.minLenOf(ref)
		}
	case *types.Basic:
		if u.Info()&types.IsString == 0 {
			return
		}
		ref, trackable = resolveRef(en.info, x.X)
		if trackable {
			known = st.minLenOf(ref)
		}
	case *types.Array:
		known = int(u.Len())
		trackable = true
	case *types.Pointer:
		a, ok := u.Elem().Underlying().(*types.Array)
		if !ok {
			return
		}
		known = int(a.Len())
		trackable = true
	default:
		return
	}

	// All provided bounds must be compile-time constants, ordered, and
	// within the known minimum length. (Slicing checks against cap,
	// and cap >= len >= minLen, so minLen is a sound certificate.)
	proven := trackable
	need := 0
	prev := int64(0)
	for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
		if bound == nil {
			continue
		}
		c, ok := constIntVal(en.info, bound)
		if !ok || c < prev {
			proven = false
			need = 0
			break
		}
		prev = c
		if int(c) > need {
			need = int(c)
		}
		if int(c) > known {
			proven = false
		}
	}
	if record != nil {
		record(boundsSite{
			node:   x,
			kind:   "slice",
			base:   types.ExprString(x.X),
			expr:   types.ExprString(x),
			proven: proven,
			need:   need,
		})
	}
}

// isByteTyped reports whether t is an unsigned 8-bit integer.
func isByteTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Byte)
}
