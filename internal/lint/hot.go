package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the hotness half of the hot-path analysis
// family (the allocation classification half lives in escape.go).
//
// # Directive grammar
//
// Two directives ride the same comment pipeline as //mlec:unit:
//
//	//mlec:hot [rationale...]
//	//mlec:cold [rationale...]
//
// //mlec:hot on (or directly above) a function declaration marks the
// whole function as a hot path; on (or directly above) a statement it
// marks just that statement's subtree — typically the inner loop of a
// function whose setup is allowed to allocate. //mlec:cold attaches
// only to function declarations and is the propagation barrier: a
// reviewed claim that the function runs off the steady-state path
// (amortized poll points, error formatting, observability rendering),
// so hotness neither enters it nor flows through it to its callees.
// Any trailing text is a free-form rationale, encouraged for colds.
//
// # The hotness lattice
//
// Per function the analysis computes one of three values, ordered
// Cold > Hot > Unknown (an explicit human claim beats propagation,
// and either beats silence):
//
//	Cold     — annotated //mlec:cold; terminal.
//	Hot      — annotated //mlec:hot, called (directly or transitively)
//	           from a hot function, or called from inside a hot region.
//	Unknown  — neither; the hot* analyzers ignore it.
//
// Propagation runs top-down over the Tarjan condensation of the module
// call graph (callgraph.go): components are visited callers-first, a
// component with any hot member marks all its members hot (mutual
// recursion with a hot function is hot), and every direct callee of a
// hot function becomes hot unless cold. Calls made inside function
// literals are attributed to the enclosing declaration, matching the
// call graph's edge semantics — a helper invoked from a hot closure is
// hot. Indirect calls (function values, interface methods) propagate
// nothing; hotiface flags the dispatch itself instead.
//
// Each propagated function records the caller that made it hot, so a
// diagnostic in a helper three packages away can say which annotated
// kernel pulled it onto the hot path.

// parseHotDirective parses one comment's text as a //mlec:hot or
// //mlec:cold directive. kind is "hot" or "cold" when isDirective.
func parseHotDirective(text string) (kind string, isDirective bool) {
	for _, k := range [...]string{"hot", "cold"} {
		rest, found := strings.CutPrefix(text, "//mlec:"+k)
		if !found {
			continue
		}
		// Reject prefixes of longer words (//mlec:hotspot is not ours).
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return k, true
		}
	}
	return "", false
}

// validateHotDirectives records every //mlec:hot directive that
// anchors to no function declaration or statement, and every
// //mlec:cold that anchors to no function declaration, as malformed.
// A directive at line L anchors to a node starting at L (trailing
// comment) or L+1 (comment line above).
func (p *Package) validateHotDirectives() {
	if len(p.hots) == 0 && len(p.colds) == 0 {
		return
	}
	declLines := make(map[string]map[int]bool)
	stmtLines := make(map[string]map[int]bool)
	mark := func(m map[string]map[int]bool, pos token.Position) {
		lines := m[pos.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			m[pos.Filename] = lines
		}
		lines[pos.Line] = true
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mark(declLines, p.Fset.Position(fd.Pos()))
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if s, ok := n.(ast.Stmt); ok {
					mark(stmtLines, p.Fset.Position(s.Pos()))
				}
				return true
			})
		}
	}
	anchored := func(m map[string]map[int]bool, file string, line int) bool {
		return m[file][line] || m[file][line+1]
	}
	for file, lines := range p.hots {
		for line := range lines {
			if !anchored(declLines, file, line) && !anchored(stmtLines, file, line) {
				p.MalformedHot = append(p.MalformedHot, token.Position{Filename: file, Line: line, Column: 1})
			}
		}
	}
	for file, lines := range p.colds {
		for line := range lines {
			if !anchored(declLines, file, line) {
				p.MalformedHot = append(p.MalformedHot, token.Position{Filename: file, Line: line, Column: 1})
			}
		}
	}
	sort.Slice(p.MalformedHot, func(i, j int) bool {
		a, b := p.MalformedHot[i], p.MalformedHot[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}

// posIndex resolves line-anchored directives by file and line, merged
// across every package the fact store indexed (mirrors unitIndex).
type posIndex map[string]map[int]bool

// at reports a directive at the node's line or the line directly above.
func (x posIndex) at(pos token.Position) bool {
	lines := x[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}

// hotRegionStmts returns the statements of body annotated //mlec:hot.
// A statement already inside an annotated ancestor is not returned
// twice — the outermost annotated statement covers its subtree.
func hotRegionStmts(idx posIndex, fset *token.FileSet, body *ast.BlockStmt) []ast.Stmt {
	var regions []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if ok && idx.at(fset.Position(s.Pos())) {
			regions = append(regions, s)
			return false // subtree is covered; don't nest regions
		}
		return true
	}
	ast.Inspect(body, walk)
	return regions
}

// computeHot seeds hotness from //mlec:hot annotations (declarations
// and regions) and propagates it top-down over the SCC condensation,
// stopping at //mlec:cold barriers. Must run after the condensation is
// built; the graph's deterministic node order keeps hotVia stable.
func (f *Facts) computeHot(g *callGraph) {
	f.hot = make(map[*types.Func]bool)
	f.cold = make(map[*types.Func]bool)
	f.hotVia = make(map[*types.Func]*types.Func)

	// Declaration-level seeds. Cold wins a conflict: a function both
	// annotated hot and cold is cold (the barrier is the stronger,
	// reviewed claim), though such code should not survive review.
	for _, n := range g.nodes {
		pos := f.fset.Position(n.site.decl.Pos())
		if f.coldIdx.at(pos) {
			f.cold[n.fn] = true
			continue
		}
		if f.hotIdx.at(pos) {
			f.hot[n.fn] = true
		}
	}

	// Region seeds: every resolvable callee inside a hot region is hot,
	// attributed to the enclosing function.
	for _, n := range g.nodes {
		body := n.site.decl.Body
		if body == nil {
			continue
		}
		info := n.site.pkg.Info
		for _, region := range hotRegionStmts(f.hotIdx, f.fset, body) {
			ast.Inspect(region, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil {
					return true
				}
				if _, known := f.decls[callee]; known && !f.cold[callee] && !f.hot[callee] {
					f.hot[callee] = true
					f.hotVia[callee] = n.fn
				}
				return true
			})
		}
	}

	// Top-down propagation: the condensation is emitted bottom-up
	// (callees first), so the reverse order visits callers before
	// callees and one sweep reaches a fixed point.
	for i := len(g.sccs) - 1; i >= 0; i-- {
		scc := g.sccs[i]
		var hotMember *types.Func
		for _, n := range scc {
			if f.hot[n.fn] {
				hotMember = n.fn
				break
			}
		}
		if hotMember == nil {
			continue
		}
		for _, n := range scc {
			if !f.cold[n.fn] && !f.hot[n.fn] {
				f.hot[n.fn] = true
				f.hotVia[n.fn] = hotMember
			}
		}
		for _, n := range scc {
			if !f.hot[n.fn] {
				continue
			}
			for _, c := range n.callees {
				if !f.cold[c.fn] && !f.hot[c.fn] {
					f.hot[c.fn] = true
					f.hotVia[c.fn] = n.fn
				}
			}
		}
	}
}

// IsHot reports whether fn is on a hot path: annotated //mlec:hot or
// reachable through direct calls from an annotated function or region.
func (f *Facts) IsHot(fn *types.Func) bool { return f.hot[fn] }

// IsCold reports whether fn carries an //mlec:cold barrier annotation.
func (f *Facts) IsCold(fn *types.Func) bool { return f.cold[fn] }

// HotVia returns the caller whose hotness propagated to fn, or nil
// when fn is hot by its own annotation (or not hot at all).
func (f *Facts) HotVia(fn *types.Func) *types.Func { return f.hotVia[fn] }

// hotLabel renders why fn is hot, for diagnostics: the annotation
// itself, or the nearest caller that propagated hotness.
func (f *Facts) hotLabel(fn *types.Func) string {
	via := f.hotVia[fn]
	if via == nil {
		return "annotated //mlec:hot"
	}
	if via.Pkg() != nil {
		return fmt.Sprintf("hot via %s.%s", via.Pkg().Name(), via.Name())
	}
	return fmt.Sprintf("hot via %s", via.Name())
}

// declFunc resolves the *types.Func of a declaration in this pass.
func (p *Pass) declFunc(fd *ast.FuncDecl) *types.Func {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// FuncHot reports whether the declared function is hot (annotation or
// propagation); FuncCold whether it carries the cold barrier.
func (p *Pass) FuncHot(fd *ast.FuncDecl) bool {
	fn := p.declFunc(fd)
	return fn != nil && p.Facts.IsHot(fn)
}

// FuncCold reports whether the declared function is annotated cold.
func (p *Pass) FuncCold(fd *ast.FuncDecl) bool {
	fn := p.declFunc(fd)
	return fn != nil && p.Facts.IsCold(fn)
}

// HotRegions returns the //mlec:hot-annotated statements of the body
// (outermost only). For a function that is itself hot the regions are
// redundant — the whole body is in scope.
func (p *Pass) HotRegions(fd *ast.FuncDecl) []ast.Stmt {
	if fd.Body == nil {
		return nil
	}
	return hotRegionStmts(p.Facts.hotIdx, p.Fset, fd.Body)
}

// HotLabel renders the hotness provenance of a declaration for
// analyzer messages.
func (p *Pass) HotLabel(fd *ast.FuncDecl) string {
	fn := p.declFunc(fd)
	if fn == nil {
		return "annotated //mlec:hot"
	}
	return p.Facts.hotLabel(fn)
}
