package lint

import (
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

func TestNameTokens(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"CatRatePerPoolHour", []string{"cat", "rate", "per", "pool", "hour"}},
		{"logP", []string{"log", "p"}},
		{"AnnualPDL", []string{"annual", "pdl"}},
		{"lambda_per_hour", []string{"lambda", "per", "hour"}},
		{"pdl", []string{"pdl"}},
		{"MTTDLHours", []string{"mttdl", "hours"}},
	}
	for _, c := range cases {
		if got := nameTokens(c.name); !reflect.DeepEqual(got, c.want) {
			t.Errorf("nameTokens(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDomainFromName(t *testing.T) {
	cases := []struct {
		name string
		want Domain
	}{
		{"pdl", DomProb},
		{"AnnualPDL", DomProb},
		{"tailProb", DomProb},
		{"phi", DomProb},
		{"logPDL", DomLogProb}, // log wins over prob
		{"lnSurvive", DomLogProb},
		{"lp", DomLogProb},
		{"lambdaPerHour", DomRate},
		{"CatRatePerPoolHour", DomRate},
		{"mu", DomRate},
		{"stageWeight", DomWeight},
		{"diskCount", DomCount},
		{"total", DomCount},
		{"hours", DomNone},
		{"x", DomNone},
		{"pool", DomNone}, // "p" must match as a token, not a prefix
	}
	for _, c := range cases {
		if got := domainFromName(c.name); got != c.want {
			t.Errorf("domainFromName(%q) = %s, want %s", c.name, got, c.want)
		}
	}
}

// TestJoinDomLattice checks the join is a real lattice join: idempotent,
// commutative, None is the identity, Mixed absorbs, and distinct
// concrete domains meet at Mixed (never at each other).
func TestJoinDomLattice(t *testing.T) {
	all := []Domain{DomNone, DomProb, DomLogProb, DomRate, DomCount, DomWeight, DomMixed}
	for _, a := range all {
		if joinDom(a, a) != a {
			t.Errorf("join(%s,%s) not idempotent", a, a)
		}
		if joinDom(DomNone, a) != a || joinDom(a, DomNone) != a {
			t.Errorf("None is not the identity for %s", a)
		}
		if a != DomNone && (joinDom(DomMixed, a) != DomMixed || joinDom(a, DomMixed) != DomMixed) {
			t.Errorf("Mixed does not absorb %s", a)
		}
		for _, b := range all {
			x, y := joinDom(a, b), joinDom(b, a)
			if x != y {
				t.Errorf("join(%s,%s)=%s but join(%s,%s)=%s", a, b, x, b, a, y)
			}
			if a != b && a != DomNone && b != DomNone && x != DomMixed {
				t.Errorf("join(%s,%s)=%s, want mixed", a, b, x)
			}
		}
	}
}

func TestParseUnitDirective(t *testing.T) {
	cases := []struct {
		text        string
		d           Domain
		isDirective bool
		ok          bool
	}{
		{"//mlec:unit prob", DomProb, true, true},
		{"//mlec:unit logprob", DomLogProb, true, true},
		{"//mlec:unit log-prob", DomLogProb, true, true},
		{"//mlec:unit rate events per hour", DomRate, true, true},
		{"//mlec:unit count", DomCount, true, true},
		{"//mlec:unit", DomNone, true, false},
		{"//mlec:unit   ", DomNone, true, false},
		{"//mlec:unit volts", DomNone, true, false},
		{"//mlec:unit mixed", DomNone, true, false}, // not annotatable
		{"// mlec:unit prob", DomNone, false, false},
		{"//lint:allow floateq exact", DomNone, false, false},
		{"", DomNone, false, false},
	}
	for _, c := range cases {
		d, isDirective, ok := parseUnitDirective(c.text)
		if d != c.d || isDirective != c.isDirective || ok != c.ok {
			t.Errorf("parseUnitDirective(%q) = (%s,%v,%v), want (%s,%v,%v)",
				c.text, d, isDirective, ok, c.d, c.isDirective, c.ok)
		}
	}
}

func TestUnitIndexAt(t *testing.T) {
	u := unitIndex{"f.go": {10: DomRate}}
	for line, want := range map[int]Domain{10: DomRate, 11: DomRate} {
		if d, ok := u.at(token.Position{Filename: "f.go", Line: line}); !ok || d != want {
			t.Errorf("at(f.go:%d) = (%s,%v), want (%s,true)", line, d, ok, want)
		}
	}
	if _, ok := u.at(token.Position{Filename: "f.go", Line: 12}); ok {
		t.Error("at(f.go:12) resolved; directives only bind one line down")
	}
	if _, ok := u.at(token.Position{Filename: "g.go", Line: 10}); ok {
		t.Error("at(g.go:10) resolved from the wrong file")
	}
}

// lookupFunc resolves a package-scope function of a fixture package.
func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %q", name)
	}
	return fn
}

// TestMayFailFixedPoint pins the interprocedural errflow facts on the
// errflow fixture: direct failures, propagation through wrappers and
// tail calls, and the SCC fixed point proving a mutually-recursive
// nil-only cycle infallible.
func TestMayFailFixedPoint(t *testing.T) {
	l := newFixtureLoader(t)
	pkg := loadFixture(t, l, "errflow")
	facts := NewFacts([]*Package{pkg})
	for name, want := range map[string]bool{
		"step":      true,
		"validate":  true,
		"wrap":      true,
		"relay":     true,
		"alwaysNil": false,
		"nilRelay":  false,
		"evenOK":    false,
		"oddOK":     false,
	} {
		got, known := facts.MayFail(lookupFunc(t, pkg, name))
		if !known {
			t.Errorf("MayFail(%s) unknown; the fixture function was not summarized", name)
			continue
		}
		if got != want {
			t.Errorf("MayFail(%s) = %v, want %v", name, got, want)
		}
	}
	// evenOK/oddOK share one component, so the condensation must be one
	// smaller than the declaration count.
	if decls := len(facts.decls); facts.sccCount != decls-1 {
		t.Errorf("sccCount = %d with %d decls; evenOK/oddOK should share one SCC", facts.sccCount, decls)
	}
	if facts.maxSCCIters < 2 {
		t.Errorf("maxSCCIters = %d; the cyclic component should need a confirming pass", facts.maxSCCIters)
	}
}

// TestDomainSummaries pins the eager domain summaries on the probmix
// fixture: a helper's log-domain result is visible to its callers.
func TestDomainSummaries(t *testing.T) {
	l := newFixtureLoader(t)
	pkg := loadFixture(t, l, "probmix")
	facts := NewFacts([]*Package{pkg})
	for name, want := range map[string]Domain{
		"logOf":           DomLogProb,
		"compareRateProb": DomNone, // bool result carries no domain
		"productFromLogs": DomProb, // exp of a log-domain sum
	} {
		sum := facts.domainsOf(lookupFunc(t, pkg, name))
		if sum == nil || len(sum.results) == 0 {
			t.Errorf("domainsOf(%s): no summary", name)
			continue
		}
		if sum.results[0].D != want {
			t.Errorf("domainsOf(%s).results[0] = %s, want %s", name, sum.results[0].D, want)
		}
	}
	if sum := facts.domainsOf(lookupFunc(t, pkg, "productFromLogs")); sum != nil && !sum.results[0].ViaExp {
		t.Error("productFromLogs lost the ViaExp provenance bit")
	}
}
