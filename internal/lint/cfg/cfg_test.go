package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parse builds the CFG of the first function in src.
func parse(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// nodeCount sums the nodes across reachable blocks.
func nodeCount(g *Graph) int {
	n := 0
	for b := range reachable(g) {
		n += len(b.Nodes)
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := parse(t, `func f() { x := 1; x++; _ = x }`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3: %s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry has %d succs, want 1 (exit): %s", len(g.Entry.Succs), g)
	}
}

func TestIfElse(t *testing.T) {
	g := parse(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`)
	// Entry evaluates the condition and branches two ways.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-entry has %d succs, want 2: %s", len(g.Entry.Succs), g)
	}
	// Both returns must appear in reachable blocks.
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("found %d returns, want 2: %s", returns, g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := parse(t, `func f() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}`)
	// Some block must have a back edge: a successor with a smaller
	// index that is a loop head.
	hasBack := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Kind == "for.head" {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("no back edge to for.head: %s", g)
	}
}

func TestRangeHeaderHoldsRangeStmt(t *testing.T) {
	g := parse(t, `func f(m map[int]int) {
		for k, v := range m {
			_, _ = k, v
		}
	}`)
	found := false
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				if b.Kind != "range.head" {
					t.Fatalf("RangeStmt in %q block, want range.head", b.Kind)
				}
				// The header must both enter the body and exit.
				if len(b.Succs) != 2 {
					t.Fatalf("range.head has %d succs, want 2: %s", len(b.Succs), g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no RangeStmt node in graph: %s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := parse(t, `func f(xs []int) int {
		total := 0
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 100 {
				break
			}
			total += x
		}
		return total
	}`)
	// The accumulation and the return must both be reachable.
	if nodeCount(g) < 6 {
		t.Fatalf("only %d reachable nodes: %s", nodeCount(g), g)
	}
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return unreachable after break/continue loop: %s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parse(t, `func f() int {
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i*j > 2 {
					break outer
				}
			}
		}
		return 7
	}`)
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return not reachable through labeled break: %s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := parse(t, `func f(x int) int {
		y := 0
		switch x {
		case 1:
			y = 1
			fallthrough
		case 2:
			y += 2
		default:
			y = 9
		}
		return y
	}`)
	// All three case bodies and the return are reachable.
	if nodeCount(g) < 7 {
		t.Fatalf("only %d reachable nodes: %s", nodeCount(g), g)
	}
}

func TestSelect(t *testing.T) {
	g := parse(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}`)
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("found %d reachable returns in select, want 2: %s", returns, g)
	}
}

func TestInfiniteLoopNoFalseExit(t *testing.T) {
	g := parse(t, `func f() {
		for {
			_ = 1
		}
	}`)
	// With no condition the head must not edge to for.done; the done
	// block stays unreachable (nothing follows the loop).
	for b := range reachable(g) {
		if b.Kind == "for.head" && len(b.Succs) != 1 {
			t.Fatalf("infinite loop head has %d succs, want 1: %s", len(b.Succs), g)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := Build(nil)
	if g.Entry == nil || len(g.Blocks) == 0 {
		t.Fatal("nil body must still yield an entry block")
	}
}

func TestGotoForwardEdgesToLabel(t *testing.T) {
	g := parse(t, `func f() {
		x := 1
		goto done
	done:
		_ = x
	}`)
	if nodeCount(g) < 1 {
		t.Fatalf("goto graph lost nodes: %s", g)
	}
	// A forward goto must not create a cycle.
	if loops := g.LoopBlocks(); len(loops) != 0 {
		t.Fatalf("forward goto produced %d loop blocks: %s", len(loops), g)
	}
	// The label block must be reachable from the goto block.
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.done" {
			label = b
		}
	}
	if label == nil || !reachable(g)[label] {
		t.Fatalf("label block missing or unreachable: %s", g)
	}
}

func TestGotoBackwardFormsLoop(t *testing.T) {
	// A loop written with goto — invisible to AST for/range ancestry,
	// but a genuine cycle the hot-path analyzers must classify as a
	// loop.
	g := parse(t, `func f(n int) {
		i := 0
	again:
		i++
		if i < n {
			goto again
		}
	}`)
	loops := g.LoopBlocks()
	if len(loops) == 0 {
		t.Fatalf("backward goto formed no loop: %s", g)
	}
	// The labeled block itself must be part of the cycle.
	inCycle := false
	for b := range loops {
		if b.Kind == "label.again" {
			inCycle = true
		}
	}
	if !inCycle {
		t.Fatalf("label.again not classified as a loop block: %s", g)
	}
}

func TestLabeledContinueKeepsBackEdge(t *testing.T) {
	// continue outer from the inner loop must edge to the outer loop's
	// post block, keeping the outer cycle intact and both loop bodies
	// classified as loop blocks.
	g := parse(t, `func f(xs [][]int) int {
		total := 0
	outer:
		for i := 0; i < len(xs); i++ {
			for _, x := range xs[i] {
				if x < 0 {
					continue outer
				}
				total += x
			}
		}
		return total
	}`)
	loops := g.LoopBlocks()
	kinds := map[string]bool{}
	for b := range loops {
		kinds[b.Kind] = true
	}
	if !kinds["for.body"] || !kinds["range.body"] {
		t.Fatalf("labeled continue broke loop classification (loop kinds %v): %s", kinds, g)
	}
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return unreachable through labeled continue: %s", g)
	}
}

func TestLoopBlocksStraightLine(t *testing.T) {
	g := parse(t, `func f() { x := 1; _ = x }`)
	if loops := g.LoopBlocks(); len(loops) != 0 {
		t.Fatalf("straight-line code has %d loop blocks, want 0: %s", len(loops), g)
	}
}

func TestLoopBlocksForAndAfter(t *testing.T) {
	g := parse(t, `func f(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		return s
	}`)
	loops := g.LoopBlocks()
	for b := range loops {
		switch b.Kind {
		case "for.head", "for.body", "for.post":
		default:
			t.Fatalf("non-loop block %q classified as loop: %s", b.Kind, g)
		}
	}
	if len(loops) != 3 {
		t.Fatalf("got %d loop blocks, want head+body+post: %s", len(loops), g)
	}
}
