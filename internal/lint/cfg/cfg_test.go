package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parse builds the CFG of the first function in src.
func parse(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// nodeCount sums the nodes across reachable blocks.
func nodeCount(g *Graph) int {
	n := 0
	for b := range reachable(g) {
		n += len(b.Nodes)
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := parse(t, `func f() { x := 1; x++; _ = x }`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3: %s", len(g.Entry.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry has %d succs, want 1 (exit): %s", len(g.Entry.Succs), g)
	}
}

func TestIfElse(t *testing.T) {
	g := parse(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`)
	// Entry evaluates the condition and branches two ways.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-entry has %d succs, want 2: %s", len(g.Entry.Succs), g)
	}
	// Both returns must appear in reachable blocks.
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("found %d returns, want 2: %s", returns, g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := parse(t, `func f() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}`)
	// Some block must have a back edge: a successor with a smaller
	// index that is a loop head.
	hasBack := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Kind == "for.head" {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("no back edge to for.head: %s", g)
	}
}

func TestRangeHeaderHoldsRangeStmt(t *testing.T) {
	g := parse(t, `func f(m map[int]int) {
		for k, v := range m {
			_, _ = k, v
		}
	}`)
	found := false
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				if b.Kind != "range.head" {
					t.Fatalf("RangeStmt in %q block, want range.head", b.Kind)
				}
				// The header must both enter the body and exit.
				if len(b.Succs) != 2 {
					t.Fatalf("range.head has %d succs, want 2: %s", len(b.Succs), g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no RangeStmt node in graph: %s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := parse(t, `func f(xs []int) int {
		total := 0
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 100 {
				break
			}
			total += x
		}
		return total
	}`)
	// The accumulation and the return must both be reachable.
	if nodeCount(g) < 6 {
		t.Fatalf("only %d reachable nodes: %s", nodeCount(g), g)
	}
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return unreachable after break/continue loop: %s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parse(t, `func f() int {
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i*j > 2 {
					break outer
				}
			}
		}
		return 7
	}`)
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return not reachable through labeled break: %s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := parse(t, `func f(x int) int {
		y := 0
		switch x {
		case 1:
			y = 1
			fallthrough
		case 2:
			y += 2
		default:
			y = 9
		}
		return y
	}`)
	// All three case bodies and the return are reachable.
	if nodeCount(g) < 7 {
		t.Fatalf("only %d reachable nodes: %s", nodeCount(g), g)
	}
}

func TestSelect(t *testing.T) {
	g := parse(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}`)
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Fatalf("found %d reachable returns in select, want 2: %s", returns, g)
	}
}

func TestInfiniteLoopNoFalseExit(t *testing.T) {
	g := parse(t, `func f() {
		for {
			_ = 1
		}
	}`)
	// With no condition the head must not edge to for.done; the done
	// block stays unreachable (nothing follows the loop).
	for b := range reachable(g) {
		if b.Kind == "for.head" && len(b.Succs) != 1 {
			t.Fatalf("infinite loop head has %d succs, want 1: %s", len(b.Succs), g)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := Build(nil)
	if g.Entry == nil || len(g.Blocks) == 0 {
		t.Fatal("nil body must still yield an entry block")
	}
}

func TestGotoForwardEdgesToLabel(t *testing.T) {
	g := parse(t, `func f() {
		x := 1
		goto done
	done:
		_ = x
	}`)
	if nodeCount(g) < 1 {
		t.Fatalf("goto graph lost nodes: %s", g)
	}
	// A forward goto must not create a cycle.
	if loops := g.LoopBlocks(); len(loops) != 0 {
		t.Fatalf("forward goto produced %d loop blocks: %s", len(loops), g)
	}
	// The label block must be reachable from the goto block.
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.done" {
			label = b
		}
	}
	if label == nil || !reachable(g)[label] {
		t.Fatalf("label block missing or unreachable: %s", g)
	}
}

func TestGotoBackwardFormsLoop(t *testing.T) {
	// A loop written with goto — invisible to AST for/range ancestry,
	// but a genuine cycle the hot-path analyzers must classify as a
	// loop.
	g := parse(t, `func f(n int) {
		i := 0
	again:
		i++
		if i < n {
			goto again
		}
	}`)
	loops := g.LoopBlocks()
	if len(loops) == 0 {
		t.Fatalf("backward goto formed no loop: %s", g)
	}
	// The labeled block itself must be part of the cycle.
	inCycle := false
	for b := range loops {
		if b.Kind == "label.again" {
			inCycle = true
		}
	}
	if !inCycle {
		t.Fatalf("label.again not classified as a loop block: %s", g)
	}
}

func TestLabeledContinueKeepsBackEdge(t *testing.T) {
	// continue outer from the inner loop must edge to the outer loop's
	// post block, keeping the outer cycle intact and both loop bodies
	// classified as loop blocks.
	g := parse(t, `func f(xs [][]int) int {
		total := 0
	outer:
		for i := 0; i < len(xs); i++ {
			for _, x := range xs[i] {
				if x < 0 {
					continue outer
				}
				total += x
			}
		}
		return total
	}`)
	loops := g.LoopBlocks()
	kinds := map[string]bool{}
	for b := range loops {
		kinds[b.Kind] = true
	}
	if !kinds["for.body"] || !kinds["range.body"] {
		t.Fatalf("labeled continue broke loop classification (loop kinds %v): %s", kinds, g)
	}
	returns := 0
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 1 {
		t.Fatalf("return unreachable through labeled continue: %s", g)
	}
}

func TestLoopBlocksStraightLine(t *testing.T) {
	g := parse(t, `func f() { x := 1; _ = x }`)
	if loops := g.LoopBlocks(); len(loops) != 0 {
		t.Fatalf("straight-line code has %d loop blocks, want 0: %s", len(loops), g)
	}
}

func TestLoopBlocksForAndAfter(t *testing.T) {
	g := parse(t, `func f(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		return s
	}`)
	loops := g.LoopBlocks()
	for b := range loops {
		switch b.Kind {
		case "for.head", "for.body", "for.post":
		default:
			t.Fatalf("non-loop block %q classified as loop: %s", b.Kind, g)
		}
	}
	if len(loops) != 3 {
		t.Fatalf("got %d loop blocks, want head+body+post: %s", len(loops), g)
	}
}

// blocksOfKind returns the blocks with the given Kind, in index order.
func blocksOfKind(g *Graph, kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// hasEdge reports whether from lists to among its successors.
func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// TestRangeOverIntBackEdge locks the shape the bounds engine depends on
// for range-over-int loops (go1.22): the header holds the RangeStmt,
// the body edges back to the header, and the body is the header's
// FIRST successor — passes refine "iteration in progress" facts along
// Succs[0] and "loop done" facts along Succs[1].
func TestRangeOverIntBackEdge(t *testing.T) {
	g := parse(t, `func f(n int) int {
		s := 0
		for i := range n {
			s += i
		}
		return s
	}`)
	heads := blocksOfKind(g, "range.head")
	bodies := blocksOfKind(g, "range.body")
	dones := blocksOfKind(g, "range.done")
	if len(heads) != 1 || len(bodies) != 1 || len(dones) != 1 {
		t.Fatalf("want one range head/body/done, got %s", g)
	}
	head, body, done := heads[0], bodies[0], dones[0]
	if len(head.Nodes) != 1 {
		t.Fatalf("range head holds %d nodes, want the RangeStmt alone: %s", len(head.Nodes), g)
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
	if len(head.Succs) != 2 || head.Succs[0] != body || head.Succs[1] != done {
		t.Fatalf("range head succs must be [body, done]: %s", g)
	}
	if !hasEdge(body, head) {
		t.Fatalf("range body missing back-edge to header: %s", g)
	}
	loops := g.LoopBlocks()
	if !loops[head] || !loops[body] {
		t.Fatalf("range-over-int header/body not classified as loop blocks: %s", g)
	}
	if loops[done] {
		t.Fatalf("range.done wrongly classified as a loop block: %s", g)
	}
}

// TestNestedLabeledLoopBackEdges locks the back-edge structure of
// nested labeled for loops: `continue outer` from the inner body must
// edge to the OUTER post block (so the outer increment still runs),
// `break inner` to the inner done block, and falling out of the inner
// loop must rejoin the outer post→head back-edge.
func TestNestedLabeledLoopBackEdges(t *testing.T) {
	g := parse(t, `func f(n int) {
	outer:
		for i := 0; i < n; i++ {
		inner:
			for j := 0; j < n; j++ {
				if j == i {
					continue outer
				}
				if j > i {
					break inner
				}
			}
		}
	}`)
	heads := blocksOfKind(g, "for.head")
	posts := blocksOfKind(g, "for.post")
	dones := blocksOfKind(g, "for.done")
	if len(heads) != 2 || len(posts) != 2 || len(dones) != 2 {
		t.Fatalf("want two of each loop block kind, got %s", g)
	}
	outerHead, innerHead := heads[0], heads[1]
	outerPost, innerPost := posts[0], posts[1]
	outerDone, innerDone := dones[0], dones[1]
	if !hasEdge(outerPost, outerHead) || !hasEdge(innerPost, innerHead) {
		t.Fatalf("post→head back-edge missing: %s", g)
	}
	// continue outer: some block of the inner body edges to outerPost.
	contOK := false
	for _, b := range g.Blocks {
		if b != innerPost && b != innerDone && hasEdge(b, outerPost) && b.Kind == "if.then" {
			contOK = true
		}
	}
	if !contOK {
		t.Fatalf("`continue outer` does not edge to the outer post block: %s", g)
	}
	// break inner: an if.then block edges to innerDone.
	brkOK := false
	for _, b := range blocksOfKind(g, "if.then") {
		if hasEdge(b, innerDone) {
			brkOK = true
		}
	}
	if !brkOK {
		t.Fatalf("`break inner` does not edge to the inner done block: %s", g)
	}
	// Falling out of the inner loop rejoins the outer back-edge.
	if !hasEdge(innerDone, outerPost) {
		t.Fatalf("inner loop exit does not rejoin the outer post block: %s", g)
	}
	loops := g.LoopBlocks()
	if !loops[outerHead] || !loops[innerHead] || !loops[outerPost] || !loops[innerPost] {
		t.Fatalf("loop headers/posts not all classified as loop blocks: %s", g)
	}
	if loops[outerDone] {
		t.Fatalf("outer for.done wrongly classified as a loop block: %s", g)
	}
	// The inner done IS on the outer cycle — a fact passes must respect
	// when deciding "does this block re-execute".
	if !loops[innerDone] {
		t.Fatalf("inner for.done lies on the outer cycle and must be a loop block: %s", g)
	}
}

// TestLabeledRangeContinueBackEdge: `continue outer` inside a nested
// range loop must edge to the OUTER range header (range loops have no
// post block; the header re-evaluates the RangeStmt).
func TestLabeledRangeContinueBackEdge(t *testing.T) {
	g := parse(t, `func f(xs [][]int) {
	outer:
		for _, row := range xs {
			for _, v := range row {
				if v == 0 {
					continue outer
				}
			}
		}
	}`)
	heads := blocksOfKind(g, "range.head")
	if len(heads) != 2 {
		t.Fatalf("want two range headers, got %s", g)
	}
	outerHead := heads[0]
	contOK := false
	for _, b := range blocksOfKind(g, "if.then") {
		if hasEdge(b, outerHead) {
			contOK = true
		}
	}
	if !contOK {
		t.Fatalf("`continue outer` does not edge back to the outer range header: %s", g)
	}
	loops := g.LoopBlocks()
	if !loops[outerHead] {
		t.Fatalf("outer range header not classified as a loop block: %s", g)
	}
}

// TestCondSuccsOrderTrueFirst locks the successor ordering convention
// across every conditional construct: Succs[0] is the edge taken when
// the condition holds (if.then / loop body), Succs[1] the refuted edge.
// The bounds engine's branch refinement is built on this ordering.
func TestCondSuccsOrderTrueFirst(t *testing.T) {
	g := parse(t, `func f(s []byte, n int) {
		if len(s) > 0 {
			_ = s[0]
		}
		for len(s) >= 8 {
			s = s[8:]
		}
		for i := 0; i < n; i++ {
			_ = i
		}
	}`)
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 || len(b.Succs) != 2 {
			continue
		}
		switch b.Kind {
		case "for.head":
			if b.Succs[0].Kind != "for.body" || b.Succs[1].Kind != "for.done" {
				t.Fatalf("for.head succs not [body, done]: %s", g)
			}
		}
	}
	// The if condition lives at the end of its predecessor block; its
	// first successor must be the then block.
	thens := blocksOfKind(g, "if.then")
	if len(thens) != 1 {
		t.Fatalf("want one if.then, got %s", g)
	}
	for _, b := range g.Blocks {
		if hasEdge(b, thens[0]) && b.Succs[0] != thens[0] {
			t.Fatalf("if predecessor's first successor is not the then block: %s", g)
		}
	}
}

// edgesInto returns the blocks with a direct edge into target.
func edgesInto(g *Graph, target *Block) []*Block {
	var in []*Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == target {
				in = append(in, b)
				break
			}
		}
	}
	return in
}

func TestExitFieldIsTheExitBlock(t *testing.T) {
	g := parse(t, `func f() { return }`)
	if g.Exit == nil || g.Exit.Kind != "exit" {
		t.Fatalf("Graph.Exit = %v, want the exit block: %s", g.Exit, g)
	}
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("exit block has successors: %s", g)
	}
}

// TestPanicTerminatesBlock locks the panic-edge semantics the
// lock-state engine leans on: a direct panic call ends its block with
// an edge to Exit, and statements after it are unreachable from entry.
func TestPanicTerminatesBlock(t *testing.T) {
	g := parse(t, `func f(x bool) {
	if x {
		panic("bad")
	}
	use()
}`)
	// The then-branch must edge to Exit, not rejoin the if.done block:
	// otherwise the panic path would appear to fall through to use().
	var panicBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanicCall(es.X) {
				panicBlk = b
			}
		}
	}
	if panicBlk == nil {
		t.Fatalf("no block holds the panic call: %s", g)
	}
	if len(panicBlk.Succs) != 1 || panicBlk.Succs[0] != g.Exit {
		t.Fatalf("panic block succs = %v, want only the exit block: %s", panicBlk.Succs, g)
	}
}

// TestPanicMakesFollowersUnreachable: nodes after an unconditional
// panic are kept (for inspection) but not reachable from entry.
func TestPanicMakesFollowersUnreachable(t *testing.T) {
	g := parse(t, `func f() {
	setup()
	panic("always")
	use()
}`)
	seen := reachable(g)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" && seen[b] {
				t.Fatalf("use() after an unconditional panic is reachable: %s", g)
			}
		}
	}
	if nodeCount(g) != 2 { // setup() and panic() only
		t.Fatalf("reachable node count = %d, want 2: %s", nodeCount(g), g)
	}
}

// TestDeferStaysStraightLine: a defer statement is an ordinary node of
// its block (the lock-state engine collects deferred unlocks from the
// path state, not from special edges), and a defer after Lock shares
// the Lock's block.
func TestDeferStaysStraightLine(t *testing.T) {
	g := parse(t, `func f() {
	mu.Lock()
	defer mu.Unlock()
	work()
}`)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want Lock+defer+work in one block: %s", len(g.Entry.Nodes), g)
	}
	hasDefer := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			hasDefer = true
		}
	}
	if !hasDefer {
		t.Fatalf("entry block lost the DeferStmt node: %s", g)
	}
}

// TestConditionalDeferOnOwnPath: a defer inside an if-branch appears
// only in that branch's block, so a path-sensitive pass sees paths on
// which the defer never registered — the conditional-defer negative
// case of the lock-state engine.
func TestConditionalDeferOnOwnPath(t *testing.T) {
	g := parse(t, `func f(x bool) {
	mu.Lock()
	if x {
		defer mu.Unlock()
	}
	work()
}`)
	deferBlocks := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferBlocks++
				if b.Kind != "if.then" {
					t.Fatalf("DeferStmt in %q block, want if.then: %s", b.Kind, g)
				}
			}
		}
	}
	if deferBlocks != 1 {
		t.Fatalf("found %d defer nodes, want 1: %s", deferBlocks, g)
	}
}

// TestPanicAndReturnShareExit: every function-leaving path — fallthrough,
// return, panic — converges on the single Exit block, which is what lets
// an exit-edge pass apply deferred releases exactly once per path.
func TestPanicAndReturnShareExit(t *testing.T) {
	g := parse(t, `func f(n int) int {
	if n < 0 {
		panic("negative")
	}
	if n == 0 {
		return 0
	}
	return n + 1
}`)
	in := edgesInto(g, g.Exit)
	if len(in) != 3 {
		t.Fatalf("%d blocks edge into exit, want 3 (panic, return 0, return n+1): %s", len(in), g)
	}
}
