// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, in the spirit of golang.org/x/tools/go/cfg but built
// only on the standard library so the repository stays dependency-free.
//
// The graph is deliberately simple: a Graph is a list of basic Blocks,
// each holding the ast.Nodes that execute in order when control reaches
// the block, plus successor edges. Conditions (if/for/switch tags) are
// recorded as nodes of the block that evaluates them, and a RangeStmt
// appears as a node of its own loop-header block, so a dataflow pass
// walking block nodes in order sees every expression exactly where it
// is evaluated.
//
// The builder covers the statements that appear in straight Go code:
// if/else, for (including range), switch and type switch (including
// fallthrough), select, labeled break/continue, return, and goto (an
// edge to the function exit — a sound over-approximation for the
// forward taint pass, which only needs "everything after this point may
// not execute in this block"). Function literals are NOT descended
// into: a closure body is its own flow graph and is built separately by
// the caller.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// A Block is a maximal straight-line sequence of AST nodes. Control
// enters at the first node and leaves to one of Succs after the last.
type Block struct {
	// Index is the position in Graph.Blocks (stable across builds of
	// the same body; useful as a worklist key).
	Index int
	// Kind describes why the block exists ("entry", "if.then",
	// "for.body", "range.loop", …) for debugging output.
	Kind string
	// Nodes holds statements and evaluated expressions in execution
	// order. Entries are *ast.ExprStmt, *ast.AssignStmt, …, or bare
	// ast.Expr for conditions and switch tags, or *ast.RangeStmt for a
	// range-loop header.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Blocks lists every block, Entry first. Unreachable blocks are
	// kept (they still hold nodes a dataflow pass may want to see).
	Blocks []*Block
}

// Build constructs the CFG of a function body. A nil body (declaration
// without definition) yields a graph with a single empty entry block.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.exit = exit
	cur := entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	b.edge(cur, exit)
	return &Graph{Entry: entry, Blocks: b.blocks}
}

// String renders the graph compactly for tests and debugging:
// "0(entry)->1,2 …".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s,%d)->", blk.Index, blk.Kind, len(blk.Nodes))
		for i, s := range blk.Succs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String())
}

type builder struct {
	blocks []*Block
	exit   *Block
	// branch targets for break/continue, innermost last.
	targets []target
}

type target struct {
	label     string // "" for unlabeled loops/switches
	brk, cont *Block // cont is nil for switch/select
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.blocks), Kind: kind}
	b.blocks = append(b.blocks, blk)
	return blk
}

// edge links from → to unless from is nil (unreachable flow).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block; a nil current block (code
// after return/break) gets a fresh unreachable block so nodes are never
// dropped from the graph.
func (b *builder) add(cur *Block, n ast.Node) *Block {
	if cur == nil {
		cur = b.newBlock("unreachable")
	}
	cur.Nodes = append(cur.Nodes, n)
	return cur
}

// stmtList threads the statements through the graph, returning the
// block that falls through the end (nil if control cannot).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt extends the graph with one statement. label is the non-empty
// label name when the statement is the body of a LabeledStmt.
func (b *builder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		// The label belongs to the inner statement (loop/switch); plain
		// labeled statements (goto targets) just pass through.
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Cond)
		then := b.newBlock("if.then")
		b.edge(cur, then)
		thenEnd := b.stmtList(then, s.Body.List)
		done := b.newBlock("if.done")
		b.edge(thenEnd, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cur, els)
			elseEnd := b.stmt(els, s.Else, "")
			b.edge(elseEnd, done)
		} else {
			b.edge(cur, done)
		}
		return done

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done) // condition false
		}
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.push(label, done, post)
		bodyEnd := b.stmtList(body, s.Body.List)
		b.pop()
		b.edge(bodyEnd, post)
		b.edge(post, head)
		return done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.edge(cur, head)
		// The RangeStmt node itself marks the per-iteration key/value
		// assignment; a dataflow pass treats it as the loop's source.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, done)
		b.push(label, done, head)
		bodyEnd := b.stmtList(body, s.Body.List)
		b.pop()
		b.edge(bodyEnd, head)
		return done

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		if s.Tag != nil {
			cur = b.add(cur, s.Tag)
		}
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			cc := c.(*ast.CaseClause)
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CaseClause).List == nil })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Assign)
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			return nil // type lists carry no evaluated expressions
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CaseClause).List == nil })

	case *ast.SelectStmt:
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				return []ast.Node{cc.Comm}
			}
			return nil
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CommClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CommClause).Comm == nil })

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.ReturnStmt:
		cur = b.add(cur, s)
		b.edge(cur, b.exit)
		return nil

	default:
		// Assignments, declarations, expression statements, go/defer,
		// sends, inc/dec, empty statements: straight-line nodes.
		return b.add(cur, s)
	}
}

// switchBody builds the shared shape of switch / type switch / select:
// every clause is a branch out of cur; a missing default adds a
// fall-past edge. caseNodes extracts the evaluated expressions of a
// clause, caseStmts its body, isDefault whether it is the default.
func (b *builder) switchBody(cur *Block, label string, body *ast.BlockStmt,
	caseNodes func(ast.Stmt) []ast.Node, caseStmts func(ast.Stmt) []ast.Stmt,
	isDefault func(ast.Stmt) bool) *Block {
	done := b.newBlock("switch.done")
	b.push(label, done, nil)
	hasDefault := false
	var caseBlocks []*Block
	for _, c := range body.List {
		blk := b.newBlock("switch.case")
		b.edge(cur, blk)
		blk.Nodes = append(blk.Nodes, caseNodes(c)...)
		if isDefault(c) {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, blk)
	}
	for i, c := range body.List {
		end := b.stmtListFallthrough(caseBlocks[i], caseStmts(c), caseBlocks, i)
		b.edge(end, done)
	}
	if !hasDefault {
		b.edge(cur, done)
	}
	b.pop()
	return done
}

// stmtListFallthrough is stmtList plus `fallthrough` handling: a
// trailing fallthrough redirects the fallthrough edge to the next
// case's body block.
func (b *builder) stmtListFallthrough(cur *Block, list []ast.Stmt, cases []*Block, i int) *Block {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if i+1 < len(cases) {
				b.edge(cur, cases[i+1])
			}
			return nil
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// branch resolves break/continue/goto. Goto is over-approximated with
// an edge to the exit block: the forward pass only relies on "control
// leaves here", and no code in this repository uses goto loops.
func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.find(name, false); t != nil {
			b.edge(cur, t.brk)
		}
	case "continue":
		if t := b.find(name, true); t != nil {
			b.edge(cur, t.cont)
		}
	case "goto":
		b.edge(cur, b.exit)
	case "fallthrough":
		// Handled by stmtListFallthrough; a stray one ends the block.
	}
	return nil
}

// find returns the innermost target matching the label; continue
// targets must have a loop (cont != nil).
func (b *builder) find(label string, needCont bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *builder) push(label string, brk, cont *Block) {
	b.targets = append(b.targets, target{label: label, brk: brk, cont: cont})
}

func (b *builder) pop() {
	b.targets = b.targets[:len(b.targets)-1]
}
