// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, in the spirit of golang.org/x/tools/go/cfg but built
// only on the standard library so the repository stays dependency-free.
//
// The graph is deliberately simple: a Graph is a list of basic Blocks,
// each holding the ast.Nodes that execute in order when control reaches
// the block, plus successor edges. Conditions (if/for/switch tags) are
// recorded as nodes of the block that evaluates them, and a RangeStmt
// appears as a node of its own loop-header block, so a dataflow pass
// walking block nodes in order sees every expression exactly where it
// is evaluated.
//
// The builder covers the statements that appear in straight Go code:
// if/else, for (including range), switch and type switch (including
// fallthrough), select, labeled break/continue, return, and goto.
// Goto edges are resolved to the labeled statement's block (forward or
// backward), so a loop formed by a backward goto appears as a real
// cycle in the graph — LoopBlocks sees it the same way it sees a for
// loop. Function literals are NOT descended into: a closure body is
// its own flow graph and is built separately by the caller.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// A Block is a maximal straight-line sequence of AST nodes. Control
// enters at the first node and leaves to one of Succs after the last.
type Block struct {
	// Index is the position in Graph.Blocks (stable across builds of
	// the same body; useful as a worklist key).
	Index int
	// Kind describes why the block exists ("entry", "if.then",
	// "for.body", "range.loop", …) for debugging output.
	Kind string
	// Nodes holds statements and evaluated expressions in execution
	// order. Entries are *ast.ExprStmt, *ast.AssignStmt, …, or bare
	// ast.Expr for conditions and switch tags, or *ast.RangeStmt for a
	// range-loop header.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic block every function-leaving edge targets:
	// falling off the end, return statements, and direct panic calls.
	// A pass that must act on "every way out of the function" — the
	// lock-state engine applying deferred unlocks, for instance —
	// checks for edges into Exit rather than pattern-matching return
	// statements itself.
	Exit *Block
	// Blocks lists every block, Entry first. Unreachable blocks are
	// kept (they still hold nodes a dataflow pass may want to see).
	Blocks []*Block
}

// Build constructs the CFG of a function body. A nil body (declaration
// without definition) yields a graph with a single empty entry block.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.exit = exit
	cur := entry
	if body != nil {
		cur = b.stmtList(cur, body.List)
	}
	b.edge(cur, exit)
	return &Graph{Entry: entry, Exit: exit, Blocks: b.blocks}
}

// String renders the graph compactly for tests and debugging:
// "0(entry)->1,2 …".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s,%d)->", blk.Index, blk.Kind, len(blk.Nodes))
		for i, s := range blk.Succs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String())
}

type builder struct {
	blocks []*Block
	exit   *Block
	// branch targets for break/continue, innermost last.
	targets []target
	// labels maps a label name to the block its labeled statement
	// starts in. Entries are created on first mention — by the
	// LabeledStmt itself or by a forward goto — so goto edges always
	// have a concrete target block.
	labels map[string]*Block
}

type target struct {
	label     string // "" for unlabeled loops/switches
	brk, cont *Block // cont is nil for switch/select
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.blocks), Kind: kind}
	b.blocks = append(b.blocks, blk)
	return blk
}

// edge links from → to unless from is nil (unreachable flow).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block; a nil current block (code
// after return/break) gets a fresh unreachable block so nodes are never
// dropped from the graph.
func (b *builder) add(cur *Block, n ast.Node) *Block {
	if cur == nil {
		cur = b.newBlock("unreachable")
	}
	cur.Nodes = append(cur.Nodes, n)
	return cur
}

// stmtList threads the statements through the graph, returning the
// block that falls through the end (nil if control cannot).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// stmt extends the graph with one statement. label is the non-empty
// label name when the statement is the body of a LabeledStmt.
func (b *builder) stmt(cur *Block, s ast.Stmt, label string) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		// The label belongs to the inner statement (loop/switch). The
		// labeled statement also starts a fresh block so goto edges —
		// including backward gotos that form loops — have a stable
		// target.
		blk := b.labelBlock(s.Label.Name)
		b.edge(cur, blk)
		return b.stmt(blk, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Cond)
		then := b.newBlock("if.then")
		b.edge(cur, then)
		thenEnd := b.stmtList(then, s.Body.List)
		done := b.newBlock("if.done")
		b.edge(thenEnd, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cur, els)
			elseEnd := b.stmt(els, s.Else, "")
			b.edge(elseEnd, done)
		} else {
			b.edge(cur, done)
		}
		return done

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, done) // condition false
		}
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.push(label, done, post)
		bodyEnd := b.stmtList(body, s.Body.List)
		b.pop()
		b.edge(bodyEnd, post)
		b.edge(post, head)
		return done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.edge(cur, head)
		// The RangeStmt node itself marks the per-iteration key/value
		// assignment; a dataflow pass treats it as the loop's source.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, done)
		b.push(label, done, head)
		bodyEnd := b.stmtList(body, s.Body.List)
		b.pop()
		b.edge(bodyEnd, head)
		return done

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		if s.Tag != nil {
			cur = b.add(cur, s.Tag)
		}
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			cc := c.(*ast.CaseClause)
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CaseClause).List == nil })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.add(cur, s.Init)
		}
		cur = b.add(cur, s.Assign)
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			return nil // type lists carry no evaluated expressions
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CaseClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CaseClause).List == nil })

	case *ast.SelectStmt:
		return b.switchBody(cur, label, s.Body, func(c ast.Stmt) []ast.Node {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				return []ast.Node{cc.Comm}
			}
			return nil
		}, func(c ast.Stmt) []ast.Stmt { return c.(*ast.CommClause).Body },
			func(c ast.Stmt) bool { return c.(*ast.CommClause).Comm == nil })

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.ReturnStmt:
		cur = b.add(cur, s)
		b.edge(cur, b.exit)
		return nil

	case *ast.ExprStmt:
		// A direct call to the panic builtin leaves the function (to a
		// recovering caller, if any): it ends the block with an exit
		// edge, exactly like a return, so deferred cleanup analyses see
		// the panic path and value analyses drop facts from the dead
		// fall-through. Only the unshadowed builtin spelling is
		// recognized; a call through a variable named panic is not Go
		// anyone writes.
		if isPanicCall(s.X) {
			cur = b.add(cur, s)
			b.edge(cur, b.exit)
			return nil
		}
		return b.add(cur, s)

	default:
		// Assignments, declarations, expression statements, go/defer,
		// sends, inc/dec, empty statements: straight-line nodes.
		return b.add(cur, s)
	}
}

// switchBody builds the shared shape of switch / type switch / select:
// every clause is a branch out of cur; a missing default adds a
// fall-past edge. caseNodes extracts the evaluated expressions of a
// clause, caseStmts its body, isDefault whether it is the default.
func (b *builder) switchBody(cur *Block, label string, body *ast.BlockStmt,
	caseNodes func(ast.Stmt) []ast.Node, caseStmts func(ast.Stmt) []ast.Stmt,
	isDefault func(ast.Stmt) bool) *Block {
	done := b.newBlock("switch.done")
	b.push(label, done, nil)
	hasDefault := false
	var caseBlocks []*Block
	for _, c := range body.List {
		blk := b.newBlock("switch.case")
		b.edge(cur, blk)
		blk.Nodes = append(blk.Nodes, caseNodes(c)...)
		if isDefault(c) {
			hasDefault = true
		}
		caseBlocks = append(caseBlocks, blk)
	}
	for i, c := range body.List {
		end := b.stmtListFallthrough(caseBlocks[i], caseStmts(c), caseBlocks, i)
		b.edge(end, done)
	}
	if !hasDefault {
		b.edge(cur, done)
	}
	b.pop()
	return done
}

// stmtListFallthrough is stmtList plus `fallthrough` handling: a
// trailing fallthrough redirects the fallthrough edge to the next
// case's body block.
func (b *builder) stmtListFallthrough(cur *Block, list []ast.Stmt, cases []*Block, i int) *Block {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			if i+1 < len(cases) {
				b.edge(cur, cases[i+1])
			}
			return nil
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

// branch resolves break/continue/goto. Goto edges go to the labeled
// statement's block (created on demand for forward gotos), so a
// backward goto produces a genuine cycle; a goto with no label (never
// legal Go) degrades to an exit edge.
func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.find(name, false); t != nil {
			b.edge(cur, t.brk)
		}
	case "continue":
		if t := b.find(name, true); t != nil {
			b.edge(cur, t.cont)
		}
	case "goto":
		if name == "" {
			b.edge(cur, b.exit)
		} else {
			b.edge(cur, b.labelBlock(name))
		}
	case "fallthrough":
		// Handled by stmtListFallthrough; a stray one ends the block.
	}
	return nil
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// labelBlock returns the block for the named label, creating it when
// the label has not been seen yet (a forward goto mentions the label
// before its statement is built).
func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock("label." + name)
		b.labels[name] = blk
	}
	return blk
}

// LoopBlocks returns the set of blocks that lie on a cycle of the
// graph: the bodies, headers and post blocks of for/range loops, and
// any region a backward goto re-enters. A pass deciding "does this
// node execute inside a loop" checks membership of the node's block.
// The computation is Tarjan's SCC algorithm over blocks — a block is a
// loop block iff its component has more than one member or it has a
// self edge.
func (g *Graph) LoopBlocks() map[*Block]bool {
	n := len(g.Blocks)
	index := make([]int, n) // 0 = unvisited; otherwise order+1
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n) // component id per block; -1 = unassigned
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	counter := 0
	comps := 0
	compSize := make(map[int]int)

	// Iterative Tarjan: a frame is (block, next-successor-to-visit).
	type frame struct{ b, succ int }
	for root := range g.Blocks {
		if index[root] != 0 {
			continue
		}
		work := []frame{{root, 0}}
		counter++
		index[root], lowlink[root] = counter, counter
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			b := g.Blocks[f.b]
			if f.succ < len(b.Succs) {
				s := b.Succs[f.succ].Index
				f.succ++
				if index[s] == 0 {
					counter++
					index[s], lowlink[s] = counter, counter
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{s, 0})
				} else if onStack[s] && index[s] < lowlink[f.b] {
					lowlink[f.b] = index[s]
				}
				continue
			}
			// Frame done: pop, fold lowlink into the parent, and emit
			// the component if this block is its root.
			v := f.b
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].b
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = comps
					compSize[comps]++
					if w == v {
						break
					}
				}
				comps++
			}
		}
	}

	loops := make(map[*Block]bool)
	for i, blk := range g.Blocks {
		if compSize[comp[i]] > 1 {
			loops[blk] = true
			continue
		}
		for _, s := range blk.Succs {
			if s == blk {
				loops[blk] = true
				break
			}
		}
	}
	return loops
}

// find returns the innermost target matching the label; continue
// targets must have a loop (cont != nil).
func (b *builder) find(label string, needCont bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *builder) push(label string, brk, cont *Block) {
	b.targets = append(b.targets, target{label: label, brk: brk, cont: cont})
}

func (b *builder) pop() {
	b.targets = b.targets[:len(b.targets)-1]
}
