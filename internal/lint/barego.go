package lint

import (
	"go/ast"
)

// BareGo forbids bare `go` statements in library code: every fan-out
// must go through runctl.Pool.Go.
//
// A bare goroutine is invisible to the run-control layer — it cannot be
// drained on cancellation, its panics crash the whole process instead
// of surfacing as a typed *runctl.PanicError with the offending RNG
// stream, and the leak check (runctl.Live) cannot see it. The runctl
// package itself is exempt: it is where the one legitimate `go`
// statement per worker lives.
var BareGo = &Analyzer{
	Name: "barego",
	Doc:  "forbid bare go statements outside runctl; fan out through runctl.Pool",
	Run:  runBareGo,
}

func runBareGo(pass *Pass) error {
	if !isLibraryPackage(pass.Pkg) {
		return nil
	}
	if pass.Pkg.Path() == "mlec/internal/runctl" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Report(g.Pos(),
				"bare go statement escapes run control (no drain, no panic containment); use runctl.Pool.Go")
			return true
		})
	}
	return nil
}
