package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix enforces that every field picks exactly one concurrency
// regime. Mixing `sync/atomic` calls with plain loads and stores on the
// same field is a data race the atomic half does nothing to prevent —
// the plain access tears right past the atomic one — and mixing an
// atomic regime with a //mlec:guardedby mutex claim means one of the
// two disciplines is a lie. Three patterns are flagged:
//
//  1. a field (or package-level var) passed to a sync/atomic function
//     in one place and read or written plainly in another: the plain
//     sites are reported;
//  2. an annotated guarded field also accessed via sync/atomic: the
//     atomic site is reported (the annotation is the reviewed claim);
//  3. an annotated guarded field whose type is itself from sync/atomic
//     (atomic.Int64 and friends): the type already synchronizes, the
//     mutex claim is contradictory, reported at the annotation.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag fields accessed both via sync/atomic and plain loads/stores, or both guarded and atomic",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	type site struct {
		v   *types.Var
		pos token.Pos
	}
	var atomicSites []site
	// Spans of atomic call arguments, so the operand of
	// atomic.AddInt64(&c.n, 1) is not also counted as a plain access.
	type span struct{ lo, hi token.Pos }
	var atomicSpans []span

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			for _, a := range call.Args {
				u, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if v := accessedVar(pass.Info, u.X); v != nil {
					atomicSites = append(atomicSites, site{v, a.Pos()})
					atomicSpans = append(atomicSpans, span{a.Pos(), a.End()})
				}
			}
			return true
		})
	}

	atomicVars := make(map[*types.Var]bool, len(atomicSites))
	for _, s := range atomicSites {
		atomicVars[s.v] = true
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Plain accesses of atomically-used vars.
	if len(atomicVars) > 0 {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var v *types.Var
				switch n := n.(type) {
				case *ast.SelectorExpr:
					v = accessedVar(pass.Info, n)
				case *ast.Ident:
					got, ok := pass.Info.Uses[n].(*types.Var)
					if ok && !got.IsField() && got.Parent() == pass.Pkg.Scope() {
						v = got
					}
				}
				if v == nil || !atomicVars[v] || inAtomicArg(n.Pos()) {
					return true
				}
				pass.Report(n.Pos(),
					"%s is accessed with sync/atomic elsewhere but read/written plainly here; pick one regime",
					v.Name())
				return false
			})
		}
	}

	// Guarded + atomic on the same field: the atomic site contradicts
	// the //mlec:guardedby claim.
	for _, s := range atomicSites {
		if pass.Facts.guardedFields[s.v] != nil || pass.Facts.guardedVars[s.v] != nil {
			pass.Report(s.pos,
				"%s is //mlec:guardedby-annotated but accessed via sync/atomic here; the mutex claim and the atomic access contradict",
				s.v.Name())
		}
	}

	// Guarded field of a sync/atomic type: the annotation itself is the
	// contradiction. Restricted to this package's fields so every
	// finding is reported exactly once.
	var contradictory []*types.Var
	for v := range pass.Facts.guardedFields {
		if v.Pkg() == pass.Pkg && isAtomicType(v.Type()) {
			contradictory = append(contradictory, v)
		}
	}
	sort.Slice(contradictory, func(i, j int) bool { return contradictory[i].Pos() < contradictory[j].Pos() })
	for _, v := range contradictory {
		pass.Report(v.Pos(),
			"%s has a sync/atomic type and a //mlec:guardedby annotation; the type already synchronizes, drop one",
			v.Name())
	}
	return nil
}

// accessedVar resolves a selector (field access) or package-level ident
// to its *types.Var, the unit atomicmix reasons about.
func accessedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		v, _ := sel.Obj().(*types.Var)
		return v
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if ok && !v.IsField() {
			return v
		}
	}
	return nil
}

// isAtomicType reports whether t is declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
