package lint

import "testing"

// BenchmarkMlecvetWholeRepo measures a full `mlecvet ./...` — load,
// type-check, eager whole-program summary computation, and every
// analyzer — which is exactly what `make check` runs with a 60-second
// budget (cmd/mlecvet -timeout). The benchmark keeps that budget honest
// locally: at the time of writing a full run is under three seconds, so
// a regression that threatens the CI gate is a 20× slowdown, visible
// long before the gate trips.
func BenchmarkMlecvetWholeRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := Run(pkgs, All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repository is not clean: %v", diags[0])
		}
	}
}
