package lint

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const cannedRaceOutput = `=== RUN   TestRace
==================
WARNING: DATA RACE
Read at 0x00c000014088 by goroutine 8:
  stressfix.(*Counter).Inc()
      /tmp/mod/counter.go:14 +0x38
  stressfix.TestRace.func1()
      /tmp/mod/race_test.go:13 +0x4e

Previous write at 0x00c000014088 by goroutine 7:
  stressfix.(*Counter).Inc()
      /tmp/mod/counter.go:14 +0x50

Goroutine 8 (running) created at:
  stressfix.TestRace()
      /tmp/mod/race_test.go:12 +0xc4
==================
==================
WARNING: DATA RACE
Write at 0x00c00001c0b0 by goroutine 9:
  stressfix.Touch()
      /tmp/mod/other.go:7 +0x30
==================
--- FAIL: TestRace (0.01s)
    testing.go:1490: race detected during execution of test
FAIL
`

func TestParseRaceReports(t *testing.T) {
	reports := ParseRaceReports(strings.NewReader(cannedRaceOutput))
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	want0 := []string{"/tmp/mod/counter.go", "/tmp/mod/race_test.go"}
	if len(reports[0].Files) != 2 || reports[0].Files[0] != want0[0] || reports[0].Files[1] != want0[1] {
		t.Errorf("report 0 files = %v, want %v", reports[0].Files, want0)
	}
	if len(reports[1].Files) != 1 || reports[1].Files[0] != "/tmp/mod/other.go" {
		t.Errorf("report 1 files = %v, want [/tmp/mod/other.go]", reports[1].Files)
	}
	if !strings.Contains(reports[0].Raw, "Previous write") {
		t.Error("report 0 raw text lost the Previous write stanza")
	}
}

// TestParseRaceReportsTruncated: a crash mid-report must not hide the
// race — the unterminated block is still returned.
func TestParseRaceReportsTruncated(t *testing.T) {
	src := "==================\nWARNING: DATA RACE\nWrite at 0xdead by goroutine 5:\n  p.f()\n      /tmp/mod/f.go:3 +0x10\n"
	reports := ParseRaceReports(strings.NewReader(src))
	if len(reports) != 1 || len(reports[0].Files) != 1 || reports[0].Files[0] != "/tmp/mod/f.go" {
		t.Fatalf("truncated block not recovered: %+v", reports)
	}
}

func TestUnexplainedRaces(t *testing.T) {
	reports := ParseRaceReports(strings.NewReader(cannedRaceOutput))
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "/tmp/mod/counter.go", Line: 99},
		Analyzer: "lockcheck",
	}}
	un := UnexplainedRaces(reports, diags)
	if len(un) != 1 {
		t.Fatalf("got %d unexplained, want 1 (only other.go lacks a finding)", len(un))
	}
	if un[0].Files[0] != "/tmp/mod/other.go" {
		t.Errorf("wrong report survived: %v", un[0].Files)
	}
	if rest := UnexplainedRaces(reports, append(diags, Diagnostic{
		Pos: token.Position{Filename: "/tmp/mod/other.go", Line: 1},
	})); len(rest) != 0 {
		t.Errorf("fully claimed set still yields %d unexplained", len(rest))
	}
}

// TestStressSource checks harness generation against the lockcheck
// fixture, which carries struct annotations under both mutex kinds and
// a package-level annotated var. The output must parse and must lock
// exactly the annotated guards around the annotated state.
func TestStressSource(t *testing.T) {
	l := newFixtureLoader(t)
	pkg := loadFixture(t, l, "lockcheck")
	src := stressSource(pkg)
	if src == nil {
		t.Fatal("stressSource returned nil for an annotated package")
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, StressFileName, src, 0); err != nil {
		t.Fatalf("generated harness does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{
		"func TestMlecRaceStressCounter(t *testing.T)",
		"func TestMlecRaceStressStats(t *testing.T)",
		"func TestMlecRaceStressPkgVars(t *testing.T)",
		"s.mu.Lock()",
		"_ = s.n",
		"s.rw.Lock()",
		"_ = s.total",
		"stateMu.Lock()",
		"_ = registry",
	} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated harness missing %q", want)
		}
	}
	// A package with no annotations generates nothing.
	if s := stressSource(loadFixture(t, l, "copylock")); s != nil {
		t.Errorf("unannotated package produced a harness:\n%s", s)
	}
}

// writeRaceModule lays out a throwaway module whose Counter type has a
// racy increment and a test that executes the race. With annotate set,
// the counter carries the //mlec:guardedby annotation that lets
// lockcheck claim the race.
func writeRaceModule(t *testing.T, annotate bool) string {
	t.Helper()
	dir := t.TempDir()
	guard := ""
	if annotate {
		guard = "\t//mlec:guardedby mu\n"
	}
	files := map[string]string{
		"go.mod": "module stressfix\n\ngo 1.24\n",
		"counter.go": "package stressfix\n\nimport \"sync\"\n\ntype Counter struct {\n" +
			"\tmu sync.Mutex\n" + guard + "\tn int\n}\n\n" +
			"// Inc mutates without the lock: the seeded bug.\n" +
			"func (c *Counter) Inc() { c.n++ }\n\n" +
			"func (c *Counter) Get() int {\n\tc.mu.Lock()\n\tdefer c.mu.Unlock()\n\treturn c.n\n}\n",
		"race_test.go": "package stressfix\n\nimport (\n\t\"sync\"\n\t\"testing\"\n)\n\n" +
			"func TestRace(t *testing.T) {\n\tvar c Counter\n\tvar wg sync.WaitGroup\n" +
			"\tfor g := 0; g < 4; g++ {\n\t\twg.Add(1)\n\t\tgo func() {\n\t\t\tdefer wg.Done()\n" +
			"\t\t\tfor i := 0; i < 200; i++ {\n\t\t\t\tc.Inc()\n\t\t\t}\n\t\t}()\n\t}\n" +
			"\twg.Wait()\n\t_ = c.Get()\n}\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// raceTest runs the module's tests under -race and returns the combined
// output. The run is expected to fail (the seeded race), so only infra
// errors are fatal.
func raceTest(t *testing.T, dir string) []byte {
	t.Helper()
	cmd := exec.Command("go", "test", "-race", "-count=1", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("seeded race did not fail the -race run:\n%s", out)
	}
	if !strings.Contains(string(out), "WARNING: DATA RACE") {
		t.Fatalf("-race run failed without a race report: %v\n%s", err, out)
	}
	return out
}

// TestRaceOracleExplained is the end-to-end positive direction: a
// seeded race in an annotated struct is reported by the race detector
// AND claimed by a lockcheck finding in the same file, so the oracle
// counts zero unexplained races.
func TestRaceOracleExplained(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a module under -race")
	}
	dir := writeRaceModule(t, true)

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, ConcurrencyAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "lockcheck" && filepath.Base(d.Pos.Filename) == "counter.go" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lockcheck did not claim the seeded race; diags: %v", diags)
	}

	// The generated stress harness must coexist with the seeded test:
	// it compiles, runs, and is itself race-free.
	paths, dirs, err := WriteStressTests(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(dirs) != 1 {
		t.Fatalf("WriteStressTests wrote %v, want one harness", paths)
	}

	out := raceTest(t, dir)
	reports := ParseRaceReports(strings.NewReader(string(out)))
	if len(reports) == 0 {
		t.Fatalf("no race reports parsed from:\n%s", out)
	}
	if un := UnexplainedRaces(reports, diags); len(un) != 0 {
		t.Errorf("explained race counted as unexplained: %+v", un)
	}
}

// TestRaceOracleUnexplained is the negative direction: the same seeded
// race without the annotation produces no static finding, so the race
// report must surface as unexplained (this is what fails CI).
func TestRaceOracleUnexplained(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a module under -race")
	}
	dir := writeRaceModule(t, false)

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, ConcurrencyAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "lockcheck" {
			t.Fatalf("unannotated module still has a lockcheck finding: %v", d)
		}
	}

	out := raceTest(t, dir)
	reports := ParseRaceReports(strings.NewReader(string(out)))
	if len(reports) == 0 {
		t.Fatalf("no race reports parsed from:\n%s", out)
	}
	un := UnexplainedRaces(reports, diags)
	if len(un) == 0 {
		t.Fatal("race with no static finding was not flagged as unexplained")
	}
}
