package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point expressions.
//
// Accumulated rounding error makes float equality order- and
// optimization-dependent, which silently breaks the replayability the
// simulators promise. Three comparisons are recognized as exact and
// exempt:
//
//   - both operands are compile-time constants;
//   - the self-comparison NaN test (x != x);
//   - comparison against a constant, e.g. p == 0 — the dynamic
//     programs use exact zero/one tests to elide work on impossible
//     events, and a stored constant compares reliably against itself.
//
// Everything else (two computed values) needs either an epsilon
// comparison or an explicit //lint:allow floateq directive explaining
// why the arithmetic is exact at that site (e.g. integer-valued DP
// tables, combinatorial identities).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between computed floating-point expressions",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			// Constant on either side is an exact sentinel test; both
			// sides constant folds at compile time.
			if xt.Value != nil || yt.Value != nil {
				return true
			}
			if sameSimpleExpr(bin.X, bin.Y) {
				return true // x != x: the NaN test
			}
			pass.Report(bin.OpPos,
				"%s between computed floats is rounding-sensitive; use an epsilon or allowlist with a reason",
				bin.Op)
			return true
		})
	}
	return nil
}
