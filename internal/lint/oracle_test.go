package lint

import (
	"go/token"
	"strings"
	"testing"
)

const cannedOracle = `# mlec/internal/gf256
internal/gf256/gf256.go:98:9: Found IsInBounds
internal/gf256/gf256.go:132:6: can inline MulByte
internal/gf256/gf256.go:140:12: Found IsSliceInBounds
internal/obs/metrics.go:20:6: can inline (*Counter).Inc
internal/obs/metrics.go:20:19: inlining call to sync/atomic.(*Int64).Add
internal/gf256/gf256.go:55:2: s escapes to heap
internal/gf256/gf256.go:98:30: Found IsInBounds
not a diagnostic line
internal/gf256/gf256.go:200:6: cannot inline XorSlice: function too complex
`

func oraclePos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

func TestParseOracle(t *testing.T) {
	facts, err := ParseOracle(strings.NewReader(cannedOracle))
	if err != nil {
		t.Fatal(err)
	}
	abs := "/work/repo/internal/gf256/gf256.go"
	if !oracleAt(facts.Bounds, oraclePos(abs, 98)) {
		t.Errorf("missing Found at %s:98", abs)
	}
	if !oracleAt(facts.Bounds, oraclePos(abs, 140)) {
		t.Errorf("missing Found (IsSliceInBounds) at %s:140", abs)
	}
	if oracleAt(facts.Bounds, oraclePos(abs, 132)) {
		t.Errorf("spurious Found at %s:132", abs)
	}
	if !oracleAt(facts.CanInline, oraclePos(abs, 132)) {
		t.Errorf("missing can-inline at %s:132", abs)
	}
	if !oracleAt(facts.CanInline, oraclePos("/work/repo/internal/obs/metrics.go", 20)) {
		t.Errorf("missing can-inline for a method at metrics.go:20")
	}
	// cannot-inline and escape lines are not can-inline facts.
	if oracleAt(facts.CanInline, oraclePos(abs, 200)) {
		t.Errorf("`cannot inline` parsed as can-inline at %s:200", abs)
	}
	// A same-base same-line file in a different directory must not match.
	if oracleAt(facts.Bounds, oraclePos("/work/repo/internal/other/gf256.go", 98)) {
		t.Errorf("suffix match leaked across directories")
	}
}

func TestCompareOracle(t *testing.T) {
	facts, err := ParseOracle(strings.NewReader(cannedOracle))
	if err != nil {
		t.Fatal(err)
	}
	abs := "/work/repo/internal/gf256/gf256.go"
	bounds := []BoundsClaim{
		// Proven on a line the compiler checked: unsoundness.
		{Pos: oraclePos(abs, 98), Expr: "tab[x]", Proven: true},
		// Unproven on a line with no Found: over-conservative.
		{Pos: oraclePos(abs, 60), Expr: "s[i]", Proven: false},
		// Proven on a clean line: agreement.
		{Pos: oraclePos(abs, 61), Expr: "s[0]", Proven: true},
		// Unproven on a checked line: agreement.
		{Pos: oraclePos(abs, 140), Expr: "s[8:]", Proven: false},
		// Mixed line: skipped in both directions.
		{Pos: oraclePos(abs, 70), Expr: "a[0]", Proven: true},
		{Pos: oraclePos(abs, 70), Expr: "b[i]", Proven: false},
	}
	inlines := []InlineClaim{
		// Declared at a can-inline line: agreement.
		{CallPos: oraclePos(abs, 300), DeclPos: oraclePos(abs, 132), Name: "MulByte"},
		// No can-inline at the declaration: divergence.
		{CallPos: oraclePos(abs, 301), DeclPos: oraclePos(abs, 200), Name: "XorSlice"},
	}
	got := CompareOracle(bounds, inlines, facts)
	if len(got) != 3 {
		t.Fatalf("got %d disagreements, want 3:\n%v", len(got), got)
	}
	wantSubstr := []string{
		"compiler eliminated the bounds check on s[i]",
		"static engine proves tab[x]",
		"hotinline judged XorSlice inlinable",
	}
	for i, w := range wantSubstr {
		if !strings.Contains(got[i].String(), w) {
			t.Errorf("disagreement %d = %q, want substring %q", i, got[i], w)
		}
	}
}
