package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the race-detector half of the lock-discipline oracle.
// The static side (lockstate.go and the lockcheck/atomicmix/goleak
// analyzers) claims that every access to //mlec:guardedby state is
// disciplined; the dynamic side runs the package test suites under
// -race, augmented by a generated stress harness that hammers every
// annotated struct, and cross-checks the two: a data race whose stack
// frames touch no file with a concurrency finding means the static
// suite missed a real bug, and the oracle fails.
//
// The direction of the check is deliberate. The race detector only
// observes executed interleavings, so "no race" proves nothing and the
// oracle never demands a race per finding. But every race it does see
// must be explained by a static claim — the same asymmetric contract
// the compiler oracle (oracle.go) applies to bounds checks.

// ConcurrencyAnalyzers returns the analyzers whose findings count as
// explanations for a race-detector report: the lock-discipline,
// atomic-consistency, goroutine-lifecycle and lock-copy checks.
func ConcurrencyAnalyzers() []*Analyzer {
	return []*Analyzer{Lockcheck, AtomicMix, GoLeak, WaitGroupCapture, CopyLock}
}

// A RaceReport is one WARNING: DATA RACE block from -race output.
type RaceReport struct {
	// Files lists the distinct source files appearing in the report's
	// stack frames, cleaned, in first-appearance order. Generated
	// stress files and runtime frames are included; the explanation
	// match just needs one overlap with a finding.
	Files []string
	// Raw is the full text of the block, for the failure artifact.
	Raw string
}

// raceFrameRE matches the source line of one goroutine stack frame in a
// race report: an indented "/path/to/file.go:123 +0x44" (the offset is
// absent for some runtime frames).
var raceFrameRE = regexp.MustCompile(`^\s+(\S+\.go):(\d+)`)

// ParseRaceReports scans -race test output and returns one RaceReport
// per "WARNING: DATA RACE" block. Blocks are delimited by the
// detector's ================== fences; a truncated trailing block is
// still returned so a crash mid-report cannot hide a race.
func ParseRaceReports(r io.Reader) []RaceReport {
	var (
		reports []RaceReport
		cur     *RaceReport
		seen    map[string]bool
	)
	flush := func() {
		if cur != nil && len(cur.Files) > 0 {
			reports = append(reports, *cur)
		}
		cur = nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.Contains(line, "WARNING: DATA RACE"):
			flush()
			cur = &RaceReport{Raw: line + "\n"}
			seen = make(map[string]bool)
		case cur != nil && strings.HasPrefix(line, "=================="):
			flush()
		case cur != nil:
			cur.Raw += line + "\n"
			if m := raceFrameRE.FindStringSubmatch(line); m != nil {
				file := filepath.Clean(m[1])
				if !seen[file] {
					seen[file] = true
					cur.Files = append(cur.Files, file)
				}
			}
		}
	}
	flush()
	return reports
}

// UnexplainedRaces returns the subset of reports none of whose frame
// files carries a finding from the concurrency analyzers. Matching is
// per file, not per line: the detector blames the access site while
// lockcheck may blame the function exit or the call site two lines up,
// and demanding line equality would turn every such skew into a false
// CI failure. A finding anywhere in the file claims the race.
func UnexplainedRaces(reports []RaceReport, diags []Diagnostic) []RaceReport {
	claimed := make(map[string]bool, len(diags))
	for _, d := range diags {
		claimed[filepath.Clean(d.Pos.Filename)] = true
	}
	var out []RaceReport
	for _, r := range reports {
		explained := false
		for _, f := range r.Files {
			if claimed[f] {
				explained = true
				break
			}
		}
		if !explained {
			out = append(out, r)
		}
	}
	return out
}

// StressFileName is the generated per-package stress harness; the zz_
// prefix keeps it sorted after real sources and greppable for cleanup.
const StressFileName = "zz_mlec_race_stress_test.go"

// stressTarget is one annotated field or package-level var to hammer.
type stressTarget struct {
	recv  string // struct type name; "" for a package-level var
	field string
	guard string
}

// stressSource renders the stress harness for one package: for every
// struct with //mlec:guardedby fields, a test that spawns goroutines
// which lock the guard, touch each guarded field, and unlock — and
// likewise for annotated package-level vars. The harness follows the
// annotated discipline exactly, so on a correct annotation it is
// race-free; if the guard does not actually protect the state (the
// annotation lies, or a method mutates without it while the suite
// runs), the detector fires and the oracle demands a static
// explanation. Returns nil when the package has no annotations.
func stressSource(pkg *Package) []byte {
	targets := collectStressTargets(pkg)
	if len(targets) == 0 {
		return nil
	}
	// Group by receiver type, package-level vars under "".
	byRecv := make(map[string][]stressTarget)
	var recvs []string
	for _, t := range targets {
		if _, ok := byRecv[t.recv]; !ok {
			recvs = append(recvs, t.recv)
		}
		byRecv[t.recv] = append(byRecv[t.recv], t)
	}
	sort.Strings(recvs)

	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by mlecvet -race-oracle; DO NOT EDIT.\n")
	fmt.Fprintf(&b, "//\n// Stress harness for the //mlec:guardedby annotations of this\n")
	fmt.Fprintf(&b, "// package: hammers every annotated struct under the race detector,\n")
	fmt.Fprintf(&b, "// following the annotated lock discipline. Deleted after the run.\n")
	fmt.Fprintf(&b, "package %s\n\n", pkg.Types.Name())
	fmt.Fprintf(&b, "import (\n\t\"sync\"\n\t\"testing\"\n)\n")
	for _, recv := range recvs {
		ts := byRecv[recv]
		name := recv
		if name == "" {
			name = "PkgVars"
		}
		fmt.Fprintf(&b, "\nfunc TestMlecRaceStress%s(t *testing.T) {\n", sanitizeTestName(name))
		if recv != "" {
			fmt.Fprintf(&b, "\tvar s %s\n", recv)
		}
		fmt.Fprintf(&b, "\tvar wg sync.WaitGroup\n")
		fmt.Fprintf(&b, "\tfor g := 0; g < 4; g++ {\n")
		fmt.Fprintf(&b, "\t\twg.Add(1)\n")
		fmt.Fprintf(&b, "\t\tgo func() {\n")
		fmt.Fprintf(&b, "\t\t\tdefer wg.Done()\n")
		fmt.Fprintf(&b, "\t\t\tfor i := 0; i < 1000; i++ {\n")
		// One lock section per distinct guard, touching its fields.
		byGuard := make(map[string][]stressTarget)
		var guards []string
		for _, t := range ts {
			if _, ok := byGuard[t.guard]; !ok {
				guards = append(guards, t.guard)
			}
			byGuard[t.guard] = append(byGuard[t.guard], t)
		}
		sort.Strings(guards)
		for _, guard := range guards {
			ref := guard
			if recv != "" {
				ref = "s." + guard
			}
			fmt.Fprintf(&b, "\t\t\t\t%s.Lock()\n", ref)
			for _, t := range byGuard[guard] {
				fld := t.field
				if recv != "" {
					fld = "s." + fld
				}
				fmt.Fprintf(&b, "\t\t\t\t_ = %s\n", fld)
			}
			fmt.Fprintf(&b, "\t\t\t\t%s.Unlock()\n", ref)
		}
		fmt.Fprintf(&b, "\t\t\t}\n\t\t}()\n\t}\n\twg.Wait()\n}\n")
	}
	return b.Bytes()
}

// collectStressTargets walks the package AST pairing each annotated
// field with its owning struct type name. Generic types are skipped:
// the harness could not pick type arguments for them.
func collectStressTargets(pkg *Package) []stressTarget {
	var out []stressTarget
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				return false // only package-level state
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok || n.TypeParams != nil {
					return true
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						fv, ok := defVar(pkg, name)
						if !ok {
							continue
						}
						if mu, ok := pkg.guardedFields[fv]; ok {
							out = append(out, stressTarget{
								recv:  n.Name.Name,
								field: name.Name,
								guard: mu.Name(),
							})
						}
					}
				}
				return false
			case *ast.ValueSpec:
				for _, name := range n.Names {
					vv, ok := defVar(pkg, name)
					if !ok {
						continue
					}
					if mu, ok := pkg.guardedVars[vv]; ok {
						out = append(out, stressTarget{
							field: name.Name,
							guard: mu.Name(),
						})
					}
				}
			}
			return true
		})
	}
	return out
}

// defVar resolves an identifier's definition to a *types.Var.
func defVar(pkg *Package, name *ast.Ident) (*types.Var, bool) {
	v, ok := pkg.Info.Defs[name].(*types.Var)
	return v, ok
}

// sanitizeTestName maps a type name to a Test suffix fragment.
func sanitizeTestName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "X"
	}
	out := b.String()
	if c := out[0]; '0' <= c && c <= '9' {
		out = "X" + out
	}
	return strings.ToUpper(out[:1]) + out[1:]
}

// WriteStressTests writes the generated harness into every annotated
// package directory and returns the written paths (for deferred
// removal) plus the directories that now carry a harness. Packages
// without annotations are untouched.
func WriteStressTests(pkgs []*Package) (paths, dirs []string, err error) {
	for _, pkg := range pkgs {
		src := stressSource(pkg)
		if src == nil {
			continue
		}
		path := filepath.Join(pkg.Dir, StressFileName)
		if _, statErr := os.Stat(path); statErr == nil {
			return paths, dirs, fmt.Errorf("%s already exists; remove the stale harness first", path)
		}
		if werr := os.WriteFile(path, src, 0o644); werr != nil {
			return paths, dirs, werr
		}
		paths = append(paths, path)
		dirs = append(dirs, pkg.Dir)
	}
	return paths, dirs, nil
}

// FormatRaceSummary renders the oracle tally line: total reports, how
// many the static suite claimed, how many it could not.
func FormatRaceSummary(total, unexplained int) string {
	return "race oracle: " + strconv.Itoa(total) + " race report(s), " +
		strconv.Itoa(total-unexplained) + " explained, " +
		strconv.Itoa(unexplained) + " unexplained"
}
