package lint

// HotPrealloc owns the append family on hot paths: an append with no
// capacity proof may grow its backing array — a heap allocation plus
// a copy, amortized but never free, and in a loop a repeated
// reallocation cascade. The escape engine accepts two proofs
// (escape.go, visitAppend):
//
//   - the appended slice was defined by an explicit-capacity make
//     (make(T, len, cap)) earlier in the function — the author's
//     reviewed capacity plan, making appends alloc-free after warmup;
//   - the slice was re-sliced to s[:0] — the warm-buffer reuse
//     pattern, which keeps the previous capacity.
//
// In both cases the append result must flow back into the same slice
// variable (s = append(s, ...)); appending into a different variable
// abandons the plan. Cold-path appends (error branches) are exempt.
var HotPrealloc = &Analyzer{
	Name: "hotprealloc",
	Doc:  "require a capacity plan (explicit-cap make or [:0] reuse) for appends on hot paths",
	Run:  runHotPrealloc,
}

func runHotPrealloc(pass *Pass) error {
	eachHotSite(pass, func(scope hotScope, s AllocSite) {
		if s.kind != akAppend || s.Class != HeapAlloc {
			return
		}
		if s.InLoop {
			pass.Report(s.Node.Pos(),
				"%s appends in a hot loop without a capacity plan (%s); preallocate with make(T, 0, n) before the loop or reuse a buffer via s = s[:0]",
				scope.fd.Name.Name, scope.label)
			return
		}
		pass.Report(s.Node.Pos(),
			"%s appends on the hot path without a capacity plan (%s); preallocate with an explicit-capacity make",
			scope.fd.Name.Name, scope.label)
	})
	return nil
}
