package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the compiler-oracle half of the hotbce/hotinline pair:
// the static engines make claims ("this index needs no check", "this
// callee will inline"), and `mlecvet -compiler` checks every claim
// against the real compiler's diagnostics from
//
//	go build -gcflags='<module>/...=-d=ssa/check_bce -m' <module>/...
//
// A disagreement in either direction is its own finding class:
//
//   - The engine proves a site the compiler still checks: the engine is
//     unsound for that idiom and must be fixed before its verdicts can
//     be trusted.
//   - The compiler eliminates a site the engine cannot prove: the
//     engine is too conservative, and a kernel author following its
//     hint would add a guard the compiler does not need.
//   - A callee the engine judged inlinable is missing from the `-m`
//     `can inline` set: the shape heuristics in hotinline have diverged
//     from the real inliner.
//
// Comparison is per source line, only on lines where the static engine
// makes a claim: check_bce reports column positions that do not line up
// node-for-node with AST positions, but line granularity does. A line
// carrying both proven and unproven claims is skipped — neither verdict
// about the line as a whole would be justified.

// A BoundsClaim is the static engine's verdict for one index or slice
// expression in a swept hot loop.
type BoundsClaim struct {
	Pos    token.Position
	Expr   string
	Proven bool
}

// An InlineClaim records that hotinline judged a hot-loop callee
// inlinable (small, in-module, blocker-free): the compiler must agree
// with a `can inline` line at the callee's declaration.
type InlineClaim struct {
	CallPos token.Position
	DeclPos token.Position
	Name    string
}

// CollectOracleClaims gathers the claims for the swept scope — loop
// sites in directly //mlec:hot functions and hot regions — mirroring
// exactly what hotbce and hotinline inspect.
func CollectOracleClaims(pkgs []*Package) ([]BoundsClaim, []InlineClaim) {
	facts := NewFacts(pkgs)
	var bounds []BoundsClaim
	var inlines []InlineClaim
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer: HotBCE,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			pkg:      pkg,
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.FuncCold(fd) {
					continue
				}
				direct := pass.funcDirectHot(fd)
				var regions []ast.Stmt
				if !direct {
					regions = pass.HotRegions(fd)
					if len(regions) == 0 {
						continue
					}
				}
				for _, site := range analyzeBounds(pass.Info, fd.Body) {
					if !site.inLoop {
						continue
					}
					if !direct && !inStmts(site.node, regions) {
						continue
					}
					bounds = append(bounds, BoundsClaim{
						Pos:    pass.Fset.Position(site.node.Pos()),
						Expr:   site.expr,
						Proven: site.proven,
					})
				}
				for _, call := range loopCallExprs(fd) {
					if !direct && !inStmts(call, regions) {
						continue
					}
					site, verdict := judgeCall(pass, call)
					if verdict != callInlinable {
						continue
					}
					ds := facts.decls[site.callee]
					inlines = append(inlines, InlineClaim{
						CallPos: pass.Fset.Position(call.Pos()),
						DeclPos: ds.pkg.Fset.Position(ds.decl.Pos()),
						Name:    site.callee.Name(),
					})
				}
			}
		}
	}
	return bounds, inlines
}

// OracleFacts is the parsed compiler output: which source lines kept a
// bounds check, and which declaration lines the inliner accepted.
// Paths are kept as the compiler printed them (relative to the module
// root) and matched against absolute claim positions by path suffix.
type OracleFacts struct {
	Bounds    map[oracleKey][]string // base+line -> compiler-printed paths with Found
	CanInline map[oracleKey][]string // base+line of a `can inline` declaration
}

// oracleKey indexes diagnostics by file base name and line; the stored
// paths disambiguate same-named files in different directories.
type oracleKey struct {
	base string
	line int
}

var (
	foundRe  = regexp.MustCompile(`^(.+\.go):(\d+):\d+: Found (?:IsInBounds|IsSliceInBounds)$`)
	inlineRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: can inline `)
)

// ParseOracle extracts check_bce and inliner facts from the combined
// output of the oracle build; all other lines (escape analysis, package
// banners) are ignored.
func ParseOracle(r io.Reader) (*OracleFacts, error) {
	facts := &OracleFacts{
		Bounds:    make(map[oracleKey][]string),
		CanInline: make(map[oracleKey][]string),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := foundRe.FindStringSubmatch(line); m != nil {
			facts.add(facts.Bounds, m[1], m[2])
		} else if m := inlineRe.FindStringSubmatch(line); m != nil {
			facts.add(facts.CanInline, m[1], m[2])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("oracle: reading compiler output: %w", err)
	}
	return facts, nil
}

func (f *OracleFacts) add(m map[oracleKey][]string, file, lineStr string) {
	n, err := strconv.Atoi(lineStr)
	if err != nil {
		return
	}
	file = filepath.ToSlash(file)
	k := oracleKey{base: filepath.Base(file), line: n}
	for _, p := range m[k] {
		if p == file {
			return
		}
	}
	m[k] = append(m[k], file)
}

// at reports whether m holds a diagnostic for the claim position: same
// base name and line, with the compiler-printed path a suffix of the
// claim's path (compiler paths are module-relative, claim paths
// absolute).
func oracleAt(m map[oracleKey][]string, pos token.Position) bool {
	file := filepath.ToSlash(pos.Filename)
	for _, p := range m[oracleKey{base: filepath.Base(file), line: pos.Line}] {
		if file == p || strings.HasSuffix(file, "/"+p) {
			return true
		}
	}
	return false
}

// A Disagreement is one line where the static engine and the compiler
// reached different verdicts.
type Disagreement struct {
	Pos    token.Position
	Detail string
}

func (d Disagreement) String() string {
	return fmt.Sprintf("%s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Detail)
}

// CompareOracle cross-checks the claims against the compiler facts and
// returns the disagreements sorted by position. Bounds claims are
// grouped per line; a line with both proven and unproven claims is
// skipped (no line-level verdict is justified).
func CompareOracle(bounds []BoundsClaim, inlines []InlineClaim, facts *OracleFacts) []Disagreement {
	var out []Disagreement

	type lineVerdict struct {
		pos                token.Position
		proven, unproven   bool
		provenEx, unprovEx string
	}
	lines := make(map[oracleKey]*lineVerdict)
	for _, c := range bounds {
		k := oracleKey{base: filepath.Base(filepath.ToSlash(c.Pos.Filename)), line: c.Pos.Line}
		v := lines[k]
		if v == nil {
			v = &lineVerdict{pos: c.Pos}
			lines[k] = v
		}
		if c.Proven {
			v.proven, v.provenEx = true, c.Expr
		} else {
			v.unproven, v.unprovEx = true, c.Expr
		}
	}
	for _, v := range lines {
		switch {
		case v.proven && v.unproven:
			// Mixed line: check_bce output cannot be attributed to one
			// claim, so neither direction is checkable.
		case v.proven && oracleAt(facts.Bounds, v.pos):
			out = append(out, Disagreement{Pos: v.pos, Detail: fmt.Sprintf(
				"static engine proves %s but the compiler kept a bounds check (Found IsInBounds); the engine is unsound for this idiom", v.provenEx)})
		case v.unproven && !oracleAt(facts.Bounds, v.pos):
			out = append(out, Disagreement{Pos: v.pos, Detail: fmt.Sprintf(
				"compiler eliminated the bounds check on %s but the static engine cannot prove it; teach the engine the idiom", v.unprovEx)})
		}
	}

	for _, c := range inlines {
		if !oracleAt(facts.CanInline, c.DeclPos) {
			out = append(out, Disagreement{Pos: c.CallPos, Detail: fmt.Sprintf(
				"hotinline judged %s inlinable but the compiler printed no `can inline %s` at %s:%d; the shape heuristics have diverged",
				c.Name, c.Name, c.DeclPos.Filename, c.DeclPos.Line)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}
