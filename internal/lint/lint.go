// Package lint is a self-contained static-analysis framework for the
// mlec codebase, modeled on golang.org/x/tools/go/analysis but built
// entirely on the standard library's go/ast, go/parser and go/types so
// the repository stays dependency-free.
//
// The framework exists because the paper's results are Monte-Carlo
// estimates whose reproducibility depends on disciplined RNG seeding
// and data-race-free worker pools. Those properties were previously
// enforced only by convention (comments pairing a mutex with an RNG
// field, worker pools that happen to pass loop variables as
// parameters); the analyzers in this package turn the conventions into
// machine-checked invariants run by cmd/mlecvet and `make check`.
//
// # Suppressing a finding
//
// A diagnostic can be suppressed at a specific site with a directive
// comment on the flagged line or on the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allowlisted site is a reviewed claim that
// the flagged pattern is intentional (an exact-arithmetic comparison, a
// kernel precondition panic), and the reason is where that review
// lives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named checker with a
// documented rationale and a Run function executed once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a short description shown by `mlecvet -list`.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with the parsed and type-checked package
// under inspection plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files, with
	// comments attached.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the full types.Info (Defs, Uses, Types,
	// Selections, Scopes) for the files.
	Info *types.Info
	// Facts resolves cross-package taint summaries for the dataflow
	// analyzers (see facts.go). Shared across all passes of one Run.
	Facts *Facts

	pkg  *Package
	diag *[]Diagnostic
}

// Report records a finding at pos unless the site carries a matching
// //lint:allow directive.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced
// it, and a message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes every analyzer over every package and returns the
// combined findings sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := NewFacts(pkgs)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				pkg:      pkg,
				diag:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SharedRNG,
		GlobalRand,
		FloatEq,
		NakedPanic,
		WaitGroupCapture,
		BareGo,
		MapOrder,
		WallTime,
		CtxPoll,
		ProbMix,
		Cancel,
		ErrFlow,
		HotAlloc,
		HotIface,
		HotDefer,
		HotPrealloc,
		HotBCE,
		HotInline,
		Lockcheck,
		AtomicMix,
		GoLeak,
		CopyLock,
	}
}

// ByName resolves a comma-separated analyzer list against All,
// rejecting unknown names.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
