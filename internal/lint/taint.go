package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlec/internal/lint/cfg"
)

// Taint is a bit set of value properties the dataflow engine tracks.
type Taint uint8

const (
	// TaintMapOrder marks a value whose content (or element order)
	// depends on Go's randomized map iteration order: range keys and
	// values of a map, and anything derived from them without an
	// intervening sort.
	TaintMapOrder Taint = 1 << iota
	// TaintWallTime marks a value derived from the process wall clock
	// (time.Now, time.Since): anything it flows into stops being a
	// pure function of the seed.
	TaintWallTime
)

func (t Taint) String() string {
	switch {
	case t&TaintMapOrder != 0 && t&TaintWallTime != 0:
		return "maporder|walltime"
	case t&TaintMapOrder != 0:
		return "maporder"
	case t&TaintWallTime != 0:
		return "walltime"
	}
	return "none"
}

// taintVal is the lattice element: concrete taint kinds plus, in
// summary mode, the set of function parameters that flow here (bit i =
// param i). Join is bitwise union.
type taintVal struct {
	kinds  Taint
	params uint32
}

func (v taintVal) join(w taintVal) taintVal {
	return taintVal{v.kinds | w.kinds, v.params | w.params}
}

func (v taintVal) isZero() bool { return v.kinds == 0 && v.params == 0 }

// store maps variables to their current taint. Entries with zero taint
// are removed so map equality checks stay cheap.
type store map[types.Object]taintVal

func (s store) clone() store {
	out := make(store, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges other into s, reporting whether s changed.
func (s store) joinInto(other store) bool {
	changed := false
	for k, v := range other {
		old := s[k]
		nv := old.join(v)
		if nv != old {
			s[k] = nv
			changed = true
		}
	}
	return changed
}

func (s store) set(obj types.Object, v taintVal) {
	if obj == nil {
		return
	}
	if v.isZero() {
		delete(s, obj)
		return
	}
	s[obj] = v
}

func (s store) weakSet(obj types.Object, v taintVal) {
	if obj == nil || v.isZero() {
		return
	}
	s[obj] = s[obj].join(v)
}

// FuncTaint is the result of running the taint engine over one function
// body: the taint of every expression node at the program point where
// it is evaluated, plus the joined taint of each result slot (used by
// the fact store to build cross-package summaries).
type FuncTaint struct {
	exprs   map[ast.Expr]taintVal
	results []taintVal
}

// Of returns the taint kinds of an expression node.
func (ft *FuncTaint) Of(e ast.Expr) Taint { return ft.exprs[e].kinds }

// val returns the full lattice value (kinds + param bits).
func (ft *FuncTaint) val(e ast.Expr) taintVal { return ft.exprs[e] }

// analyzeBody runs the forward taint analysis over a function body to a
// fixed point. info provides types, facts resolves callee summaries
// (may be nil), params seeds the parameter objects (used in summary
// mode: param i carries bit 1<<i), and results names the result
// objects for bare returns.
func analyzeBody(info *types.Info, facts *Facts, body *ast.BlockStmt,
	params map[types.Object]taintVal, resultObjs []types.Object, nresults int) *FuncTaint {

	g := cfg.Build(body)
	ft := &FuncTaint{
		exprs:   make(map[ast.Expr]taintVal),
		results: make([]taintVal, nresults),
	}
	tr := &transfer{info: info, facts: facts, ft: ft, resultObjs: resultObjs}

	in := make([]store, len(g.Blocks))
	for i := range in {
		in[i] = store{}
	}
	for obj, v := range params {
		in[g.Entry.Index].set(obj, v)
	}

	// Worklist fixed point. Every block starts on the list: blocks
	// generate taint on their own (a range header is a source), so
	// waiting for an in-state change would never process blocks whose
	// predecessors have clean out-states. The lattice is finite (bit
	// sets over a fixed variable population), so this terminates.
	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false

		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			tr.node(out, n)
		}
		for _, succ := range blk.Succs {
			if in[succ.Index].joinInto(out) && !queued[succ.Index] {
				queued[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Final pass: with stable block-entry states, record per-expression
	// taints (the fixed point guarantees these are the join over all
	// paths reaching the node).
	for _, blk := range g.Blocks {
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			tr.node(out, n)
		}
	}
	return ft
}

// transfer implements the dataflow transfer functions. node mutates the
// store in place and records expression taints into ft.
type transfer struct {
	info       *types.Info
	facts      *Facts
	ft         *FuncTaint
	resultObjs []types.Object
}

func (t *transfer) node(s store, n ast.Node) {
	switch n := n.(type) {
	case ast.Expr:
		t.eval(s, n)
	case *ast.AssignStmt:
		t.assign(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var v taintVal
					if i < len(vs.Values) {
						v = t.eval(s, vs.Values[i])
					}
					s.set(t.info.Defs[name], v)
				}
			}
		}
	case *ast.ExprStmt:
		t.eval(s, n.X)
	case *ast.IncDecStmt:
		t.eval(s, n.X)
	case *ast.SendStmt:
		v := t.eval(s, n.Value)
		t.eval(s, n.Chan)
		// A send taints the channel; receives read it back out.
		s.weakSet(rootObj(t.info, n.Chan), v)
	case *ast.ReturnStmt:
		if len(n.Results) == 0 {
			// Bare return: named results carry their current taint.
			for i, obj := range t.resultObjs {
				if obj != nil && i < len(t.ft.results) {
					t.ft.results[i] = t.ft.results[i].join(s[obj])
				}
			}
			return
		}
		if len(n.Results) == 1 && len(t.ft.results) > 1 {
			// return f() returning multiple values: join the call's
			// taint into every slot (conservative).
			v := t.eval(s, n.Results[0])
			for i := range t.ft.results {
				t.ft.results[i] = t.ft.results[i].join(v)
			}
			return
		}
		for i, e := range n.Results {
			v := t.eval(s, e)
			if i < len(t.ft.results) {
				t.ft.results[i] = t.ft.results[i].join(v)
			}
		}
	case *ast.RangeStmt:
		v := t.eval(s, n.X)
		iter := v
		if isMapType(t.info.TypeOf(n.X)) {
			// Ranging a map is THE map-order source: key and value
			// become order-tainted regardless of the map's own taint.
			iter.kinds |= TaintMapOrder
		}
		if n.Key != nil {
			t.assignTo(s, n.Key, iter, n.Tok == token.DEFINE)
		}
		if n.Value != nil {
			t.assignTo(s, n.Value, iter, n.Tok == token.DEFINE)
		}
	case *ast.GoStmt:
		t.eval(s, n.Call)
	case *ast.DeferStmt:
		t.eval(s, n.Call)
	case ast.Stmt:
		// Other statements hold no top-level expressions to evaluate
		// (the CFG lifts conditions and bodies into their own blocks).
	}
}

func (t *transfer) assign(s store, a *ast.AssignStmt) {
	if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
		if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
			// x, y := f(): every LHS gets the call's taint.
			v := t.eval(s, a.Rhs[0])
			for _, l := range a.Lhs {
				t.assignTo(s, l, v, a.Tok == token.DEFINE)
			}
			return
		}
		for i, l := range a.Lhs {
			var v taintVal
			if i < len(a.Rhs) {
				v = t.eval(s, a.Rhs[i])
			}
			t.assignTo(s, l, v, a.Tok == token.DEFINE)
		}
		return
	}
	// Compound assignment (+=, -=, …): the LHS keeps its old taint and
	// absorbs the RHS's — except integer accumulators. Integer
	// arithmetic is exact and commutative, so a counter folded over a
	// map range is the same whatever the iteration order; floats (not
	// associative) and strings (concatenation order) do absorb taint.
	v := t.eval(s, a.Rhs[0])
	t.eval(s, a.Lhs[0])
	if lt := t.info.TypeOf(a.Lhs[0]); lt != nil {
		if bt, ok := lt.Underlying().(*types.Basic); ok && bt.Info()&types.IsInteger != 0 {
			return
		}
	}
	s.weakSet(rootObj(t.info, a.Lhs[0]), v)
}

// assignTo writes v into an assignable expression. Plain identifiers
// get a strong (killing) update; element/field writes taint the root
// variable weakly — the container may hold clean values too, but once a
// tainted value is inside, reads are conservatively tainted.
func (t *transfer) assignTo(s store, lhs ast.Expr, v taintVal, define bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if define {
			s.set(t.info.Defs[l], v)
			return
		}
		if obj := t.info.Uses[l]; obj != nil {
			s.set(obj, v)
			return
		}
		s.set(t.info.Defs[l], v)
	case *ast.IndexExpr:
		t.eval(s, l.Index)
		// A map is key-addressed: writing entries in map-iteration
		// order leaves the map's content deterministic, so MapOrder
		// does not propagate through m[k] = v (WallTime still does —
		// the stored value itself is wall-clock data). Exception:
		// slice-valued entries. m[k] = append(m[k], x) grows an
		// ordered structure in iteration order, which is exactly the
		// nondeterminism the analyzer hunts.
		if mt := asMapType(t.info.TypeOf(l.X)); mt != nil {
			if _, sliceElem := mt.Elem().Underlying().(*types.Slice); !sliceElem {
				v.kinds &^= TaintMapOrder
			}
		}
		s.weakSet(rootObj(t.info, l.X), v)
	case *ast.SelectorExpr, *ast.StarExpr:
		s.weakSet(rootObj(t.info, lhs), v)
	case *ast.ParenExpr:
		t.assignTo(s, l.X, v, define)
	}
}

// eval computes the taint of an expression and records it.
func (t *transfer) eval(s store, e ast.Expr) taintVal {
	v := t.evalInner(s, e)
	if !v.isZero() {
		t.ft.exprs[e] = t.ft.exprs[e].join(v)
	}
	return v
}

func (t *transfer) evalInner(s store, e ast.Expr) taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.info.ObjectOf(e); obj != nil {
			return s[obj]
		}
	case *ast.ParenExpr:
		return t.eval(s, e.X)
	case *ast.UnaryExpr:
		return t.eval(s, e.X) // includes <-ch: channel taint flows out
	case *ast.StarExpr:
		return t.eval(s, e.X)
	case *ast.BinaryExpr:
		return t.eval(s, e.X).join(t.eval(s, e.Y))
	case *ast.IndexExpr:
		return t.eval(s, e.X).join(t.eval(s, e.Index))
	case *ast.SliceExpr:
		v := t.eval(s, e.X)
		if e.Low != nil {
			t.eval(s, e.Low)
		}
		if e.High != nil {
			t.eval(s, e.High)
		}
		if e.Max != nil {
			t.eval(s, e.Max)
		}
		return v
	case *ast.SelectorExpr:
		// Method values / package selectors carry no taint; field reads
		// inherit the base object's.
		if sel, ok := t.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return t.eval(s, e.X)
		}
		return taintVal{}
	case *ast.CompositeLit:
		var v taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = v.join(t.eval(s, kv.Value))
				continue
			}
			v = v.join(t.eval(s, el))
		}
		return v
	case *ast.TypeAssertExpr:
		return t.eval(s, e.X)
	case *ast.CallExpr:
		return t.call(s, e)
	case *ast.FuncLit:
		// Closure bodies are analyzed as separate functions; the value
		// itself is clean.
		return taintVal{}
	}
	return taintVal{}
}

// call applies taint semantics for a call expression: sources
// (time.Now/Since), sanitizers (sort.*, slices.Sort*), pass-throughs
// (append, copy, conversions) and summarized intra-module callees.
func (t *transfer) call(s store, call *ast.CallExpr) taintVal {
	args := make([]taintVal, len(call.Args))
	for i, a := range call.Args {
		args[i] = t.eval(s, a)
	}

	// Conversions: T(x) passes taint through.
	if len(call.Args) == 1 {
		if tv, ok := t.info.Types[call.Fun]; ok && tv.IsType() {
			return args[0]
		}
	}

	switch calleeName(t.info, call) {
	case "builtin.append":
		var v taintVal
		for _, a := range args {
			v = v.join(a)
		}
		return v
	case "builtin.len", "builtin.cap":
		return taintVal{} // sizes are order-independent
	case "builtin.min", "builtin.max":
		var v taintVal
		for _, a := range args {
			v = v.join(a)
		}
		return v
	case "time.Now", "time.Since":
		return taintVal{kinds: TaintWallTime}
	case "sort.Sort", "sort.Stable", "sort.Strings", "sort.Ints",
		"sort.Float64s", "sort.Slice", "sort.SliceStable",
		"slices.Sort", "slices.SortFunc", "slices.SortStableFunc":
		// Sorting re-establishes a canonical order: the map-order
		// taint of the sorted container is sanitized in place.
		if len(call.Args) > 0 {
			if obj := rootObj(t.info, call.Args[0]); obj != nil {
				v := s[obj]
				v.kinds &^= TaintMapOrder
				// Param bits model order flow too — a sorted result no
				// longer depends on argument order.
				s.set(obj, v)
			}
		}
		return taintVal{}
	}

	// Intra-module callee with a computed summary: map argument taints
	// through the parameter-flow mask and add the callee's own result
	// taint.
	if t.facts != nil {
		if fn := calleeFunc(t.info, call); fn != nil {
			if sum := t.facts.summaryOf(fn); sum != nil {
				var v taintVal
				for _, r := range sum.results {
					v.kinds |= r.kinds
					for p := 0; p < 32 && p < len(args); p++ {
						if r.params&(1<<p) != 0 {
							v = v.join(args[p])
						}
					}
				}
				// Method calls: bit 31 marks receiver flow.
				if sum.recvFlows {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						v = v.join(t.eval(s, sel.X))
					}
				}
				return v
			}
		}
	}

	// Unknown callee (standard library or an indirect call through a
	// function value): conservatively assume every argument's taint —
	// and, for method calls, the receiver's — flows into the results.
	// This keeps chains like time.Since(start).Hours() or
	// fmt.Sprintf("%v", k) tainted.
	var v taintVal
	for _, a := range args {
		v = v.join(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tsel, ok := t.info.Selections[sel]; ok && tsel.Kind() == types.MethodVal {
			v = v.join(t.eval(s, sel.X))
		}
	}
	return v
}

// calleeName returns "pkgpath.Name" for direct calls to package-level
// functions and builtins, or "" otherwise.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := info.Uses[fun].(type) {
		case *types.Builtin:
			return "builtin." + o.Name()
		case *types.Func:
			if o.Pkg() != nil && o.Type().(*types.Signature).Recv() == nil {
				return o.Pkg().Path() + "." + o.Name()
			}
		}
	case *ast.SelectorExpr:
		if o, ok := info.Uses[fun.Sel].(*types.Func); ok && o.Pkg() != nil {
			if o.Type().(*types.Signature).Recv() == nil {
				return o.Pkg().Path() + "." + o.Name()
			}
			// Methods: qualify by receiver type for the few stdlib
			// methods the engine knows about.
			return o.Pkg().Path() + ".(method)." + o.Name()
		}
	}
	return ""
}

// calleeFunc resolves the *types.Func of a direct call (function or
// method), or nil for indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// rootObj returns the variable at the base of an assignable expression:
// x, x.F, x[i], *x, x.F[i].G all root at x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				e = x.X
				continue
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t (or what it points to) is a map.
func isMapType(t types.Type) bool {
	return asMapType(t) != nil
}

// asMapType returns t (or what it points to) as a *types.Map, or nil.
func asMapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}
