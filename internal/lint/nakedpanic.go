package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NakedPanic flags panic calls in library packages that are reachable
// (through the package-internal call graph) from exported functions or
// methods.
//
// A panic that escapes an exported entry point turns a recoverable
// input problem into a process crash for every caller; library
// validation belongs in returned errors. Two idioms are exempt:
//
//   - functions whose name starts with "Must": panicking on error is
//     their documented contract (rs.MustNew, failure.MustExponentialAFR);
//   - sites carrying //lint:allow nakedpanic <reason> — reserved for
//     true invariant violations (corrupted internal state, kernel
//     precondition breaches analogous to out-of-bounds indexing) where
//     an error return would only smear the bug into later state.
var NakedPanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "flag panics reachable from exported entry points; return errors instead",
	Run:  runNakedPanic,
}

func runNakedPanic(pass *Pass) error {
	if !isLibraryPackage(pass.Pkg) {
		return nil
	}

	// Collect this package's function declarations keyed by object.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Roots: exported functions, and exported methods of exported
	// types. Everything a root references (call or function value)
	// within the package is reachable.
	reachable := make(map[*types.Func]bool)
	var frontier []*types.Func
	for obj, fd := range decls {
		if !obj.Exported() {
			continue
		}
		if named := receiverBaseType(pass.Info, fd); named != nil && !named.Obj().Exported() {
			continue
		}
		reachable[obj] = true
		frontier = append(frontier, obj)
	}
	for len(frontier) > 0 {
		obj := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		fd := decls[obj]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg || reachable[callee] {
				return true
			}
			if _, has := decls[callee]; has {
				reachable[callee] = true
				frontier = append(frontier, callee)
			}
			return true
		})
	}

	for obj, fd := range decls {
		if !reachable[obj] {
			continue
		}
		if strings.HasPrefix(obj.Name(), "Must") {
			continue
		}
		name := obj.Name()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Report(call.Pos(),
				"panic reachable from exported API via %s; return an error (or allowlist a true invariant)",
				name)
			return true
		})
	}
	return nil
}
