package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// wallTimePackages names the simulation packages (by package name, so
// fixtures can opt in by declaring the same name) in which wall-clock
// readings must never reach simulation state or statistics. Simulated
// time in those packages is a float64 of hours advanced by the event
// queue; mixing in time.Now makes a run's numbers depend on host speed
// and scheduling, destroying seed-for-seed reproducibility.
var wallTimePackages = map[string]bool{
	"sim":       true,
	"syssim":    true,
	"poolsim":   true,
	"burst":     true,
	"splitting": true,
}

// WallTime reports wall-clock values (time.Now, time.Since and data
// derived from them) flowing into simulation state inside the
// simulation packages: stored into a struct field or element, folded
// into an accumulator, returned, or passed to another module function.
//
// Wall-clock use remains legal where it belongs — progress reporting
// and deadlines in CLI code (any package outside the restricted set),
// and, inside the restricted set, calls into the standard library such
// as fmt progress lines or context deadline plumbing, and pure
// comparisons that never store the reading.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock readings from reaching simulation state or statistics",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) error {
	if !wallTimePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWallTimeBody(pass, pass.FuncTaint(fd), fd.Body)
		}
	}
	return nil
}

func checkWallTimeBody(pass *Pass, ft *FuncTaint, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkWallTimeBody(pass, pass.FuncLitTaint(n), n.Body)
			return false
		case *ast.AssignStmt:
			checkWallTimeAssign(pass, ft, n)
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if ft.Of(e)&TaintWallTime != 0 {
					pass.Report(n.Pos(),
						"wall-clock reading returned from simulation code; derive durations from simulated time")
					break
				}
			}
		case *ast.CallExpr:
			checkWallTimeCall(pass, ft, n)
		}
		return true
	})
}

// checkWallTimeAssign flags wall-clock data landing in state: any store
// through a field, index or pointer, and any compound accumulation.
func checkWallTimeAssign(pass *Pass, ft *FuncTaint, a *ast.AssignStmt) {
	tainted := false
	for _, rhs := range a.Rhs {
		if ft.Of(rhs)&TaintWallTime != 0 {
			tainted = true
			break
		}
	}
	if !tainted {
		return
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		pass.Report(a.Pos(),
			"wall-clock reading accumulated into simulation statistics; use simulated time")
		return
	}
	for _, lhs := range a.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			pass.Report(a.Pos(),
				"wall-clock reading stored into simulation state; use simulated time")
			return
		}
	}
}

// checkWallTimeCall flags wall-clock data handed to another function of
// this module: once it crosses a call boundary inside the simulation
// packages it is treated as entering state. Standard-library callees
// (fmt progress lines, context plumbing, time arithmetic) stay legal.
//
// The obs package is the one sanctioned in-module sink. Its metrics and
// progress cells are write-only from the engines' point of view — no
// simulation code ever reads them back — so a wall-clock duration
// flowing into an obs histogram can influence operator dashboards but
// never a simulated result. Exempting the package here keeps the
// invariant honest without scattering allow directives over every
// instrumentation site.
func checkWallTimeCall(pass *Pass, ft *FuncTaint, call *ast.CallExpr) {
	name := calleeName(pass.Info, call)
	if !strings.HasPrefix(name, "mlec/") {
		return
	}
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "obs" {
		return
	}
	for _, arg := range call.Args {
		if ft.Of(arg)&TaintWallTime != 0 {
			pass.Report(arg.Pos(),
				"wall-clock reading passed into %s from simulation code; pass simulated time instead", name)
			return
		}
	}
}
