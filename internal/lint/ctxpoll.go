package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll generalizes the hand-placed cancellation checks of the
// Monte-Carlo engines into a machine-checked invariant: a function that
// accepts a context.Context and contains a work loop — a loop that
// draws random numbers or steps a simulation engine — must actually
// consult the context somewhere: call ctx.Err, ctx.Done, ctx.Deadline
// or ctx.Value, or hand ctx to a callee that does. A context parameter
// that is accepted and then ignored around an unbounded trial loop
// means Stop/timeout silently cannot interrupt the run.
//
// Loops without randomness or engine stepping (setup, result folding)
// are not work loops and need no poll; function literals that declare
// their own context parameter are analyzed as functions in their own
// right.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "require trial/event loops in context-accepting functions to poll the context",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	// The obs package is sanctioned out: its loops are pure observers
	// (progress tickers, trace flushing) that run on wall-clock
	// schedules and terminate via their own quit channels, not via the
	// engines' contexts. Requiring a context poll there would force
	// observability plumbing into code that must stay inert.
	if pass.Pkg.Name() == "obs" {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxPoll(pass, ctxParamObj(pass, fd.Type.Params), fd.Body)
		}
	}
	return nil
}

// checkCtxPoll analyzes one function body. ctxObj is the body's own
// context parameter (nil when the function takes none). Nested function
// literals are split off: a literal with its own context parameter is
// checked independently, and any other literal's body is excluded from
// the enclosing function's scan because it runs on the schedule of
// whoever invokes it.
func checkCtxPoll(pass *Pass, ctxObj types.Object, body *ast.BlockStmt) {
	var lits []*ast.FuncLit
	strip := func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	}

	if ctxObj != nil {
		consults := false
		var loops []ast.Node
		ast.Inspect(body, func(n ast.Node) bool {
			if !strip(n) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if callConsultsCtx(pass, ctxObj, n) {
					consults = true
				}
			case *ast.ForStmt, *ast.RangeStmt:
				if isWorkLoop(pass, n) {
					loops = append(loops, n)
				}
			}
			return true
		})
		if !consults {
			for _, loop := range loops {
				pass.Report(loop.Pos(),
					"loop does simulation work but the function never consults its context; poll ctx.Err() or pass ctx to a callee")
			}
		}
	} else {
		ast.Inspect(body, func(n ast.Node) bool { return strip(n) })
	}

	for _, lit := range lits {
		checkCtxPoll(pass, ctxParamObj(pass, lit.Type.Params), lit.Body)
	}
}

// ctxParamObj returns the object of the first context.Context parameter
// in the field list, or nil.
func ctxParamObj(pass *Pass, params *ast.FieldList) types.Object {
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// callConsultsCtx reports whether the call consults ctxObj: a method
// call on it (ctx.Err, ctx.Done, ...) or ctxObj passed as an argument,
// delegating the polling obligation to the callee.
func callConsultsCtx(pass *Pass, ctxObj types.Object, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.ObjectOf(id) == ctxObj {
			return true
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.ObjectOf(id) == ctxObj {
			return true
		}
	}
	return false
}

// isWorkLoop reports whether the loop body draws random numbers or
// steps a simulation engine — the operations whose repetition makes a
// loop worth interrupting.
func isWorkLoop(pass *Pass, loop ast.Node) bool {
	var scan []ast.Node
	switch l := loop.(type) {
	case *ast.ForStmt:
		// `for eng.Step() {}` does its work in the condition.
		if l.Cond != nil {
			scan = append(scan, l.Cond)
		}
		if l.Post != nil {
			scan = append(scan, l.Post)
		}
		scan = append(scan, l.Body)
	case *ast.RangeStmt:
		scan = append(scan, l.Body)
	}
	work := false
	for _, root := range scan {
		inspectWork(pass, root, &work)
	}
	return work
}

func inspectWork(pass *Pass, root ast.Node, work *bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if *work {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			recv := pass.Info.TypeOf(sel.X)
			if isRandPtr(recv) {
				*work = true
				return false
			}
			if isSimEngine(recv) && (sel.Sel.Name == "Step" || sel.Sel.Name == "RunUntil") {
				*work = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isRandPtr(pass.Info.TypeOf(arg)) {
				*work = true
				return false
			}
		}
		return true
	})
}

// isRandPtr reports whether t is *math/rand.Rand.
func isRandPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand"
}

// isSimEngine reports whether t is mlec/internal/sim.Engine or a
// pointer to it.
func isSimEngine(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && obj.Pkg().Path() == "mlec/internal/sim"
}
