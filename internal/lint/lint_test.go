package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The self-tests mirror golang.org/x/tools' analysistest convention:
// each fixture package under testdata/src/<name> marks the lines where
// an analyzer must report with comments of the form
//
//	// want `regexp`
//
// (one or more backquoted patterns per comment). Lines without a want
// comment must produce no diagnostic, so every fixture doubles as a
// negative test for its unmarked declarations.

func newFixtureLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return pkg
}

type wantKey struct {
	file string
	line int
}

type wantEntry struct {
	re   *regexp.Regexp
	used bool
}

// collectWants extracts // want comments from the fixture sources.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]*wantEntry {
	t.Helper()
	wants := make(map[wantKey][]*wantEntry)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, re := range parseWantPatterns(t, pos, rest) {
					wants[k] = append(wants[k], &wantEntry{re: re})
				}
			}
		}
	}
	return wants
}

// parseWantPatterns reads one or more backquoted regexps.
func parseWantPatterns(t *testing.T, pos token.Position, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			if len(out) == 0 {
				t.Fatalf("%s: want comment has no patterns", pos)
			}
			return out
		}
		if s[0] != '`' {
			t.Fatalf("%s: malformed want comment near %q (use backquoted regexps)", pos, s)
		}
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		re, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			t.Fatalf("%s: bad want pattern: %v", pos, err)
		}
		out = append(out, re)
		s = s[2+end:]
	}
}

// runFixture runs one analyzer over one fixture package and matches its
// diagnostics against the want comments: every diagnostic must be
// expected, and every expectation must fire.
func runFixture(t *testing.T, l *Loader, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, l, name)
	wants := collectWants(t, pkg)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, entries := range wants {
		for _, w := range entries {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					filepath.Base(k.file), k.line, w.re)
			}
		}
	}
}

func TestAnalyzers(t *testing.T) {
	l := newFixtureLoader(t)
	cases := []struct {
		a       *Analyzer
		fixture string
	}{
		{SharedRNG, "sharedrng"},
		{GlobalRand, "globalrand"},
		{FloatEq, "floateq"},
		{NakedPanic, "nakedpanic"},
		{WaitGroupCapture, "waitgroupcapture"},
		{BareGo, "barego"},
		{MapOrder, "maporder"},
		{WallTime, "walltime"},
		{WallTime, "walltimecli"},
		{CtxPoll, "ctxpoll"},
		{CtxPoll, "obspoll"},
		{ProbMix, "probmix"},
		{Cancel, "cancel"},
		{ErrFlow, "errflow"},
		{HotAlloc, "hotalloc"},
		{HotIface, "hotiface"},
		{HotDefer, "hotdefer"},
		{HotPrealloc, "hotprealloc"},
		{HotBCE, "hotbce"},
		{HotInline, "hotinline"},
		{Lockcheck, "lockcheck"},
		{AtomicMix, "atomicmix"},
		{GoLeak, "goleak"},
		{CopyLock, "copylock"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			runFixture(t, l, c.a, c.fixture)
		})
	}
}

// TestMalformedDirective checks that //lint:allow without the mandatory
// reason is recorded as malformed and does not suppress the finding.
func TestMalformedDirective(t *testing.T) {
	l := newFixtureLoader(t)
	runFixture(t, l, FloatEq, "directive") // the finding must still fire
	pkg := loadFixture(t, l, "directive")
	if len(pkg.Malformed) != 1 {
		t.Fatalf("got %d malformed directives, want 1", len(pkg.Malformed))
	}
}

// TestMalformedUnitDirective checks that //mlec:unit without a known
// domain is recorded as malformed, while a well-formed annotation in the
// same file still seeds the domain engine.
func TestMalformedUnitDirective(t *testing.T) {
	l := newFixtureLoader(t)
	runFixture(t, l, ProbMix, "unitdirective") // the valid annotation must work
	pkg := loadFixture(t, l, "unitdirective")
	if len(pkg.MalformedUnit) != 2 {
		t.Fatalf("got %d malformed //mlec:unit directives, want 2", len(pkg.MalformedUnit))
	}
}

// TestMalformedHotDirective checks the //mlec:hot anchoring rules: a
// hot directive on a non-function declaration or anchored to nothing,
// and a cold directive on a statement, are recorded as malformed —
// while the valid annotations in the same file still seed hotness
// propagation (the fixture's want comment proves the chain fires).
func TestMalformedHotDirective(t *testing.T) {
	l := newFixtureLoader(t)
	runFixture(t, l, HotAlloc, "hotdirective")
	pkg := loadFixture(t, l, "hotdirective")
	if len(pkg.MalformedHot) != 3 {
		t.Fatalf("got %d malformed hot/cold directives, want 3: %v", len(pkg.MalformedHot), pkg.MalformedHot)
	}
}

// TestMalformedGuardDirective checks the //mlec:guardedby anchoring
// rules: a guard naming no sibling mutex, a bare directive, and
// directives on a type or function declaration are malformed, while
// the valid annotation in the same file still feeds the lock engine
// (the fixture's want comment proves it).
func TestMalformedGuardDirective(t *testing.T) {
	l := newFixtureLoader(t)
	runFixture(t, l, Lockcheck, "guarddirective")
	pkg := loadFixture(t, l, "guarddirective")
	if len(pkg.MalformedGuard) != 4 {
		t.Fatalf("got %d malformed //mlec:guardedby directives, want 4: %v",
			len(pkg.MalformedGuard), pkg.MalformedGuard)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := ByName("floateq, nakedpanic")
	if err != nil || len(two) != 2 || two[0] != FloatEq || two[1] != NakedPanic {
		t.Fatalf("ByName(\"floateq, nakedpanic\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") did not error")
	}
}

// TestSuiteIsClean is the self-hosting check: the analyzers must find
// nothing in the repository's own library code. It duplicates what
// `make check` runs in CI, so a regression fails `go test` too.
func TestSuiteIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, pkg := range pkgs {
		for _, pos := range pkg.Malformed {
			t.Errorf("%s: malformed //lint:allow directive", pos)
		}
		for _, pos := range pkg.MalformedUnit {
			t.Errorf("%s: malformed //mlec:unit directive", pos)
		}
	}
}
