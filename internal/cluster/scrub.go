package cluster

import "fmt"

// ScrubReport summarizes a full-cluster consistency scrub.
type ScrubReport struct {
	LocalStripesChecked   int
	LocalParityMismatches int
	NetworkStripesChecked int
	NetworkMismatches     int
	// SkippedDegraded counts stripes skipped because chunks are missing
	// (scrub verifies parity consistency, not availability — missing
	// chunks are the repairer's job and show up in Report()).
	SkippedDegraded int
}

// Clean reports whether the scrub found no inconsistencies.
func (r ScrubReport) Clean() bool {
	return r.LocalParityMismatches == 0 && r.NetworkMismatches == 0
}

// Scrub re-verifies every fully-present local stripe against its local
// parities and every fully-present network stripe against its network
// parities — the background consistency check a production system runs
// continuously. It never modifies state and meters no repair traffic.
func (c *Cluster) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	p := c.cfg.Params
	for _, obj := range c.sortedObjects() {
		for ns := range obj.stripes {
			meta := &obj.stripes[ns]
			netShards := make([][]byte, p.NetworkWidth())
			netComplete := true
			for li := range meta.locals {
				lm := meta.locals[li]
				chunks := make([][]byte, p.LocalWidth())
				complete := true
				for ci, d := range lm.disks {
					b, ok := c.readChunkPeek(chunkKey{obj.name, ns, li, ci}, d)
					if !ok {
						complete = false
						break
					}
					chunks[ci] = b
				}
				if !complete {
					rep.SkippedDegraded++
					netComplete = false
					continue
				}
				rep.LocalStripesChecked++
				ok, err := c.locC.Verify(chunks)
				if err != nil {
					return rep, fmt.Errorf("cluster: scrub %s/%d/%d: %w", obj.name, ns, li, err)
				}
				if !ok {
					rep.LocalParityMismatches++
				}
				payload := make([]byte, 0, p.KL*c.cfg.ChunkBytes)
				for i := 0; i < p.KL; i++ {
					payload = append(payload, chunks[i]...)
				}
				netShards[li] = payload
			}
			if !netComplete {
				continue
			}
			rep.NetworkStripesChecked++
			ok, err := c.netC.Verify(netShards)
			if err != nil {
				return rep, fmt.Errorf("cluster: scrub %s/%d net: %w", obj.name, ns, err)
			}
			if !ok {
				rep.NetworkMismatches++
			}
		}
	}
	return rep, nil
}

// CorruptChunk flips a byte of a stored chunk in place (test/fault
// injection hook for scrubbing: silent corruption, not a disk failure).
func (c *Cluster) CorruptChunk(objName string, netStripe, localIdx, chunkIdx int) error {
	obj, ok := c.objects[objName]
	if !ok {
		return fmt.Errorf("cluster: no object %q", objName)
	}
	if netStripe >= len(obj.stripes) || localIdx >= len(obj.stripes[netStripe].locals) {
		return fmt.Errorf("cluster: stripe out of range")
	}
	lm := obj.stripes[netStripe].locals[localIdx]
	if chunkIdx >= len(lm.disks) {
		return fmt.Errorf("cluster: chunk out of range")
	}
	key := chunkKey{objName, netStripe, localIdx, chunkIdx}
	b, ok := c.disks[lm.disks[chunkIdx]].chunks[key]
	if !ok {
		return fmt.Errorf("cluster: chunk not present")
	}
	b[0] ^= 0xff
	return nil
}
