package cluster

import (
	"fmt"

	"mlec/internal/placement"
)

// spareDiskFor picks a spare-space target inside the pool for a rebuilt
// chunk of a declustered stripe: the least-loaded healthy pool disk that
// doesn't already hold a chunk of the same stripe (§2.1: "the data,
// parities, and spare space are pseudorandomly spread across all the
// disks"). Returns -1 when no disk qualifies (caller falls back to
// replace-in-place).
func (c *Cluster) spareDiskFor(pool int, stripeDisks []int) int {
	base := c.poolFirstDisk(pool)
	size := c.layout.LocalPoolSize()
	used := make(map[int]bool, len(stripeDisks))
	for _, d := range stripeDisks {
		used[d] = true
	}
	best, bestLoad := -1, -1
	for d := base; d < base+size; d++ {
		if c.disks[d].failed || used[d] {
			continue
		}
		load := len(c.disks[d].chunks)
		if best == -1 || load < bestLoad {
			best, bestLoad = d, load
		}
	}
	return best
}

// writeRebuiltChunk stores a rebuilt chunk. For declustered local
// placement, a chunk whose home disk lost it is redirected to spare space
// on the least-loaded surviving pool disk (§2.1), updating the stripe's
// metadata; clustered placement replaces in place (the spare disk assumes
// the failed disk's identity). Chunks still present on their home disk
// (R_ALL rewrites everything) stay put.
func (c *Cluster) writeRebuiltChunk(key chunkKey, lm localStripeMeta, ci, srcRack int, data []byte) {
	target := lm.disks[ci]
	if c.layout.Scheme.Local == placement.Declustered {
		if _, ok := c.readChunkPeek(key, target); !ok {
			if spare := c.spareDiskFor(lm.pool, lm.disks); spare >= 0 {
				lm.disks[ci] = spare // aliases the object's metadata slice
				target = spare
			}
		}
	}
	c.writeChunk(key, target, srcRack, data)
}

// PoolLoad returns the chunk count of every disk in the pool, for
// rebalance decisions and tests.
func (c *Cluster) PoolLoad(pool int) []int {
	base := c.poolFirstDisk(pool)
	size := c.layout.LocalPoolSize()
	out := make([]int, size)
	for i := 0; i < size; i++ {
		out[i] = len(c.disks[base+i].chunks)
	}
	return out
}

// RebalancePool migrates chunks within a declustered pool until no disk
// holds more than one chunk above the minimum — the paper's "bring in a
// new disk and rebalance the data in the background" (§2.1). Moves never
// violate the one-chunk-per-disk-per-stripe constraint and are metered as
// local traffic. Returns the number of chunks moved.
func (c *Cluster) RebalancePool(pool int) (int, error) {
	if c.layout.Scheme.Local != placement.Declustered {
		return 0, fmt.Errorf("cluster: rebalance applies to declustered pools")
	}
	base := c.poolFirstDisk(pool)
	size := c.layout.LocalPoolSize()
	rack := c.layout.RackOfPool(pool)
	moved := 0
	for iter := 0; iter < size*size; iter++ {
		// Find the most- and least-loaded healthy disks.
		hi, lo := -1, -1
		for d := base; d < base+size; d++ {
			if c.disks[d].failed {
				continue
			}
			if hi == -1 || len(c.disks[d].chunks) > len(c.disks[hi].chunks) {
				hi = d
			}
			if lo == -1 || len(c.disks[d].chunks) < len(c.disks[lo].chunks) {
				lo = d
			}
		}
		if hi == -1 || lo == -1 || len(c.disks[hi].chunks)-len(c.disks[lo].chunks) <= 1 {
			break
		}
		if !c.moveOneChunk(hi, lo, rack) {
			break // nothing movable without violating stripe constraints
		}
		moved++
	}
	return moved, nil
}

// moveOneChunk relocates one chunk from disk src to disk dst if some
// chunk on src belongs to a stripe with no presence on dst.
func (c *Cluster) moveOneChunk(src, dst, rack int) bool {
	for key, data := range c.disks[src].chunks {
		obj, ok := c.objects[key.obj]
		if !ok {
			continue
		}
		lm := &obj.stripes[key.netStripe].locals[key.localIdx]
		conflict := false
		for _, d := range lm.disks {
			if d == dst {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		// Move: read from src, write to dst, update metadata.
		c.LocalRead += float64(len(data))
		c.writeChunk(key, dst, rack, data)
		delete(c.disks[src].chunks, key)
		lm.disks[key.chunkIdx] = dst
		return true
	}
	return false
}

// RebalanceAll rebalances every declustered pool and returns total moves.
func (c *Cluster) RebalanceAll() (int, error) {
	if c.layout.Scheme.Local != placement.Declustered {
		return 0, fmt.Errorf("cluster: rebalance applies to declustered pools")
	}
	total := 0
	for p := 0; p < c.layout.TotalLocalPools(); p++ {
		n, err := c.RebalancePool(p)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
