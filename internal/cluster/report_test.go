package cluster

import (
	"testing"

	"mlec/internal/placement"
)

func TestReportHealthy(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("obj", randomData(c.NetStripeDataBytes(), 1)); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r != (FailureReport{}) {
		t.Fatalf("healthy cluster report %+v", r)
	}
}

func TestReportClassification(t *testing.T) {
	// C/C small config: (2+1)/(4+2); pool 0 = disks 0..5 of rack 0.
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("obj", randomData(c.NetStripeDataBytes(), 2)); err != nil {
		t.Fatal(err)
	}
	// One failed disk: each stripe it holds is affected but locally
	// recoverable; no lost stripes, no catastrophic pools.
	c.FailDisk(0)
	r := c.Report()
	if r.FailedChunks == 0 || r.AffectedLocalStripes == 0 {
		t.Fatalf("no damage recorded: %+v", r)
	}
	if r.LocallyRecoverable != r.AffectedLocalStripes {
		t.Fatalf("single disk must leave all stripes locally recoverable: %+v", r)
	}
	if r.LostLocalStripes != 0 || r.CatastrophicLocalPools != 0 || r.LostNetworkStripes != 0 {
		t.Fatalf("single disk produced losses: %+v", r)
	}

	// pl+1 = 3 failures in pool 0: its stripes become lost local
	// stripes, the pool catastrophic; network stripes remain
	// recoverable (pn = 1).
	c.FailDisk(1)
	c.FailDisk(2)
	r = c.Report()
	if r.LostLocalStripes == 0 || r.CatastrophicLocalPools != 1 {
		t.Fatalf("triple failure not catastrophic: %+v", r)
	}
	if r.AffectedNetworkStripes == 0 || r.RecoverableNetStripes != r.AffectedNetworkStripes {
		t.Fatalf("network stripes misclassified: %+v", r)
	}
	if r.LostNetworkStripes != 0 {
		t.Fatalf("data loss misreported: %+v", r)
	}

	// Second aligned catastrophic pool (rack 1, same position): with
	// pn = 1, network stripes placed across both pools are lost.
	dpr := c.cfg.Topo.DisksPerRack()
	c.FailDisk(dpr + 0)
	c.FailDisk(dpr + 1)
	c.FailDisk(dpr + 2)
	r = c.Report()
	if r.CatastrophicLocalPools != 2 {
		t.Fatalf("want 2 catastrophic pools: %+v", r)
	}
	if r.LostNetworkStripes == 0 {
		t.Fatalf("pn+1 aligned catastrophic pools must lose network stripes: %+v", r)
	}
}
