package cluster

// FailureReport classifies the cluster's current damage using the
// paper's Table 1 taxonomy.
type FailureReport struct {
	// Local level.
	FailedChunks           int // lost (but possibly recoverable) chunks
	AffectedLocalStripes   int // local stripes with ≥1 failed chunk
	LocallyRecoverable     int // 1..pl failed chunks
	LostLocalStripes       int // > pl failed chunks
	CatastrophicLocalPools int // pools with ≥1 lost local stripe
	// Network level.
	AffectedNetworkStripes int // network stripes with ≥1 lost local stripe
	RecoverableNetStripes  int // 1..pn lost local stripes
	LostNetworkStripes     int // > pn lost local stripes (data loss)
}

// Report scans the cluster and returns the Table 1 classification.
func (c *Cluster) Report() FailureReport {
	var r FailureReport
	pl, pn := c.cfg.Params.PL, c.cfg.Params.PN
	catPools := map[int]bool{}
	for _, obj := range c.objects {
		for ns := range obj.stripes {
			meta := &obj.stripes[ns]
			lostLocals := 0
			for li := range meta.locals {
				lm := meta.locals[li]
				lost := 0
				for ci, d := range lm.disks {
					if c.disks[d].failed {
						lost++
					} else if _, ok := c.disks[d].chunks[chunkKey{obj.name, ns, li, ci}]; !ok {
						lost++
					}
				}
				if lost == 0 {
					continue
				}
				r.FailedChunks += lost
				r.AffectedLocalStripes++
				if lost <= pl {
					r.LocallyRecoverable++
				} else {
					r.LostLocalStripes++
					catPools[lm.pool] = true
					lostLocals++
				}
			}
			if lostLocals > 0 {
				r.AffectedNetworkStripes++
				if lostLocals <= pn {
					r.RecoverableNetStripes++
				} else {
					r.LostNetworkStripes++
				}
			}
		}
	}
	r.CatastrophicLocalPools = len(catPools)
	return r
}
