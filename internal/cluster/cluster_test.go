package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

// smallConfig: 6 racks × 2 enclosures × 8 disks, (2+1)/(4+2) MLEC,
// 1 KiB chunks — small enough to exhaustively exercise, wide enough to
// be interesting (pl = 2 tolerates double chunk loss locally).
func smallConfig(scheme placement.Scheme) Config {
	topo := topology.Default()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12
	return Config{
		Topo:       topo,
		Params:     placement.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:     scheme,
		ChunkBytes: 1024,
		Seed:       42,
	}
}

func randomData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, s := range placement.AllSchemes {
		c, err := New(smallConfig(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Odd size forces padding; multiple network stripes.
		data := randomData(3*c.NetStripeDataBytes()/2+17, 1)
		if err := c.Write("obj", data); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got, err := c.Read("obj")
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: round trip mismatch", s)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("x", nil); err == nil {
		t.Error("empty object accepted")
	}
	if err := c.Write("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("a", []byte{2}); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := c.Read("missing"); err == nil {
		t.Error("read of missing object succeeded")
	}
}

func TestDegradedReadSingleDisk(t *testing.T) {
	for _, s := range placement.AllSchemes {
		c, _ := New(smallConfig(s))
		data := randomData(c.NetStripeDataBytes(), 2)
		if err := c.Write("obj", data); err != nil {
			t.Fatal(err)
		}
		// Fail a couple of disks; local pl=2 handles ≤2 chunk losses
		// per stripe, network pn=1 handles a lost stripe.
		c.FailDisk(0)
		c.FailDisk(1)
		got, err := c.Read("obj")
		if err != nil {
			t.Fatalf("%v: degraded read: %v", s, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%v: degraded read corrupted data", s)
		}
	}
}

func TestDataLossBeyondTolerance(t *testing.T) {
	// C/C with known placement: kill pn+1 = 2 aligned local pools
	// beyond local tolerance → the read must fail with ErrDataLoss.
	c, _ := New(smallConfig(placement.SchemeCC))
	data := randomData(c.NetStripeDataBytes(), 3)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	// Network pool 0 = pool position 0 in racks 0,1,2 (kn+pn = 3).
	// Kill 3 disks (> pl = 2) of the position-0 pool in racks 0 and 1.
	dpr := c.cfg.Topo.DisksPerRack()
	for _, d := range []int{0, 1, 2, dpr + 0, dpr + 1, dpr + 2} {
		c.FailDisk(d)
	}
	_, err := c.Read("obj")
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
}

func TestRepairRestoresAllMethods(t *testing.T) {
	for _, s := range placement.AllSchemes {
		for _, m := range repair.AllMethods {
			c, _ := New(smallConfig(s))
			objs := map[string][]byte{}
			for i, name := range []string{"a", "b", "c"} {
				data := randomData(c.NetStripeDataBytes()+i*333+1, int64(10+i))
				if err := c.Write(name, data); err != nil {
					t.Fatal(err)
				}
				objs[name] = data
			}
			// Catastrophic failure: pl+1 = 3 disks of one local pool.
			// Pool 0 starts at disk 0 for every scheme.
			c.FailDisk(0)
			c.FailDisk(1)
			c.FailDisk(2)
			if err := c.Repair(m); err != nil {
				t.Fatalf("%v/%v: repair: %v", s, m, err)
			}
			if err := c.VerifyAll(objs); err != nil {
				t.Fatalf("%v/%v: after repair: %v", s, m, err)
			}
			if pools := c.CatastrophicPools(); len(pools) != 0 {
				t.Fatalf("%v/%v: catastrophic pools remain: %v", s, m, pools)
			}
		}
	}
}

func TestCatastrophicPoolsDetection(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	data := randomData(2*c.NetStripeDataBytes(), 5)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	if got := c.CatastrophicPools(); len(got) != 0 {
		t.Fatalf("healthy cluster reports catastrophic pools %v", got)
	}
	// ≤ pl failures: not catastrophic.
	c.FailDisk(0)
	c.FailDisk(1)
	if got := c.CatastrophicPools(); len(got) != 0 {
		t.Fatalf("2 failures (≤ pl) reported catastrophic: %v", got)
	}
	c.FailDisk(2)
	got := c.CatastrophicPools()
	if len(got) != 1 || got[0] != c.layout.PoolOfDisk(0) {
		t.Fatalf("CatastrophicPools = %v, want [%d]", got, c.layout.PoolOfDisk(0))
	}
}

// TestRepairTrafficOrdering verifies — with real byte movement — the
// Figure 8 ordering R_ALL > R_FCO ≥ R_HYB ≥ R_MIN and the paper's key
// ratios for clustered and declustered local placement.
func TestRepairTrafficOrdering(t *testing.T) {
	measure := func(s placement.Scheme, m repair.Method) float64 {
		c, _ := New(smallConfig(s))
		// Several objects so the pool holds many stripes.
		objs := map[string][]byte{}
		for i := 0; i < 24; i++ {
			name := string(rune('a' + i))
			data := randomData(2*c.NetStripeDataBytes(), int64(i))
			if err := c.Write(name, data); err != nil {
				t.Fatal(err)
			}
			objs[name] = data
		}
		// Fail disks of enclosure 0 until its pool turns catastrophic:
		// 3 suffice for a clustered pool; a declustered pool needs more
		// before some stripe exceeds pl losses (that absorption is the
		// point of declustering). All failures stay in one rack, so the
		// network level (pn = 1) always recovers.
		next := 0
		for len(c.CatastrophicPools()) == 0 {
			if next >= c.cfg.Topo.DisksPerEnclosure {
				t.Fatalf("%v: could not provoke a catastrophic pool", s)
			}
			c.FailDisk(next)
			next++
		}
		c.ResetTraffic()
		if err := c.Repair(m); err != nil {
			t.Fatalf("%v/%v: %v", s, m, err)
		}
		if err := c.VerifyAll(objs); err != nil {
			t.Fatalf("%v/%v: verify: %v", s, m, err)
		}
		return c.CrossRackTotal()
	}

	for _, s := range []placement.Scheme{placement.SchemeCC, placement.SchemeCD} {
		all := measure(s, repair.RAll)
		fco := measure(s, repair.RFCO)
		hyb := measure(s, repair.RHYB)
		min := measure(s, repair.RMin)
		t.Logf("%v cross-rack bytes: R_ALL=%.0f R_FCO=%.0f R_HYB=%.0f R_MIN=%.0f", s, all, fco, hyb, min)
		if !(all > fco && fco >= hyb && hyb >= min && min > 0) {
			t.Errorf("%v: ordering violated: %v %v %v %v", s, all, fco, hyb, min)
		}
	}

	// Declustered local pools make R_HYB dramatically cheaper than
	// R_FCO (only the few lost stripes cross the network), while on
	// clustered pools under a simultaneous burst they coincide.
	cdFco := measure(placement.SchemeCD, repair.RFCO)
	cdHyb := measure(placement.SchemeCD, repair.RHYB)
	if cdHyb >= cdFco/2 {
		t.Errorf("C/D: R_HYB (%.0f) should be far below R_FCO (%.0f)", cdHyb, cdFco)
	}
	ccFco := measure(placement.SchemeCC, repair.RFCO)
	ccHyb := measure(placement.SchemeCC, repair.RHYB)
	if ccHyb != ccFco {
		t.Errorf("C/C: R_HYB (%.0f) must equal R_FCO (%.0f) under a simultaneous burst", ccHyb, ccFco)
	}
}

// TestRMinTrafficRatio: R_MIN's network stage repairs (lost−pl)/lost of
// the failed data — for a 3-loss stripe with pl=2, one third of R_FCO's
// chunk volume (modulo parity-chunk accounting).
func TestRMinTrafficRatio(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	data := randomData(4*c.NetStripeDataBytes(), 9)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	c.FailDisk(0)
	c.FailDisk(1)
	c.FailDisk(2)
	c.ResetTraffic()
	if err := c.Repair(repair.RMin); err != nil {
		t.Fatal(err)
	}
	minTraffic := c.CrossRackTotal()
	if minTraffic <= 0 {
		t.Fatal("R_MIN moved no cross-rack bytes")
	}
	if c.LocalRead == 0 || c.LocalWritten == 0 {
		t.Error("R_MIN stage 2 must do local repair I/O")
	}
}

func TestReplaceDisk(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	c.FailDisk(3)
	if !c.disks[3].failed {
		t.Fatal("disk not failed")
	}
	c.ReplaceDisk(3)
	if c.disks[3].failed {
		t.Fatal("disk not replaced")
	}
}

func TestFailDiskAt(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	id := topology.DiskID{Rack: 2, Enclosure: 1, Disk: 3}
	c.FailDiskAt(id)
	if !c.disks[c.cfg.Topo.Index(id)].failed {
		t.Fatal("FailDiskAt missed")
	}
}

func TestTrafficMetersUserReadsNotCounted(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCD))
	data := randomData(c.NetStripeDataBytes(), 11)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	c.FailDisk(0)
	c.ResetTraffic()
	if _, err := c.Read("obj"); err != nil {
		t.Fatal(err)
	}
	if c.CrossRackTotal() != 0 || c.LocalRead != 0 {
		t.Error("user reads must not move the repair-traffic meters")
	}
}

func TestDeleteAndList(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCD))
	if err := c.Write("a", randomData(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("b", randomData(2000, 2)); err != nil {
		t.Fatal(err)
	}
	if n, err := c.ObjectSize("b"); err != nil || n != 2000 {
		t.Fatalf("ObjectSize = %d, %v", n, err)
	}
	if got := len(c.Objects()); got != 2 {
		t.Fatalf("Objects = %d", got)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("a"); err == nil {
		t.Fatal("read of deleted object succeeded")
	}
	if err := c.Delete("a"); err == nil {
		t.Fatal("double delete succeeded")
	}
	// Deleted chunks are gone from every disk.
	for i, d := range c.disks {
		for key := range d.chunks {
			if key.obj == "a" {
				t.Fatalf("disk %d still holds chunk of deleted object", i)
			}
		}
	}
	// Remaining object unaffected.
	if _, err := c.Read("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ObjectSize("a"); err == nil {
		t.Fatal("ObjectSize of deleted object succeeded")
	}
}
