package cluster

import (
	"bytes"
	"math/rand"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/repair"
)

// TestRandomFailureRepairCycles is a property test over the whole storage
// system: across many randomized rounds of (fail some disks → repair with
// a random method → verify everything), data must never corrupt as long
// as each round's failures stay within a single rack (the network level
// tolerates pn = 1 lost local stripe per network stripe, and one rack can
// host at most one member of any network stripe).
func TestRandomFailureRepairCycles(t *testing.T) {
	for _, scheme := range placement.AllSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			c, err := New(smallConfig(scheme))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			objs := map[string][]byte{}
			for i := 0; i < 8; i++ {
				name := string(rune('a' + i))
				data := randomData(c.NetStripeDataBytes()+rng.Intn(2000)+1, int64(i))
				if err := c.Write(name, data); err != nil {
					t.Fatal(err)
				}
				objs[name] = data
			}
			dpr := c.cfg.Topo.DisksPerRack()
			for round := 0; round < 25; round++ {
				// Fail 1..6 random disks of one random rack.
				rack := rng.Intn(c.cfg.Topo.Racks)
				n := 1 + rng.Intn(6)
				for _, d := range rng.Perm(dpr)[:n] {
					c.FailDisk(rack*dpr + d)
				}
				method := repair.AllMethods[rng.Intn(len(repair.AllMethods))]
				if err := c.Repair(method); err != nil {
					t.Fatalf("round %d (%v, rack %d, %d disks): %v", round, method, rack, n, err)
				}
				for name, want := range objs {
					got, err := c.Read(name)
					if err != nil {
						t.Fatalf("round %d: read %q: %v", round, name, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("round %d: object %q corrupted", round, name)
					}
				}
				rep, err := c.Scrub()
				if err != nil {
					t.Fatalf("round %d: scrub: %v", round, err)
				}
				if !rep.Clean() {
					t.Fatalf("round %d: scrub found inconsistencies: %+v", round, rep)
				}
				if rep.SkippedDegraded != 0 {
					t.Fatalf("round %d: repair left degraded stripes: %+v", round, rep)
				}
			}
		})
	}
}

// TestRandomCrossRackFailures exercises multi-rack failures that stay
// within the combined tolerance: ≤ pl failures per enclosure never even
// need network repair, for any number of affected racks.
func TestRandomCrossRackFailures(t *testing.T) {
	c, err := New(smallConfig(placement.SchemeDD))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	data := randomData(4*c.NetStripeDataBytes(), 1)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		// pl = 2: fail ≤2 disks in each of several enclosures.
		topo := c.cfg.Topo
		for e := 0; e < topo.TotalEnclosures(); e++ {
			if rng.Float64() < 0.5 {
				continue
			}
			for _, d := range rng.Perm(topo.DisksPerEnclosure)[:rng.Intn(3)] {
				c.FailDisk(e*topo.DisksPerEnclosure + d)
			}
		}
		if pools := c.CatastrophicPools(); len(pools) != 0 {
			t.Fatalf("round %d: ≤pl failures per enclosure made pools catastrophic: %v", round, pools)
		}
		if err := c.Repair(repair.RHYB); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := c.Read("obj")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round %d: read failed: %v", round, err)
		}
		// All repairs must have been local: no cross-rack traffic.
		if tr := c.CrossRackTotal(); tr != 0 {
			t.Fatalf("round %d: locally-recoverable damage moved %g cross-rack bytes", round, tr)
		}
	}
}
