// Package cluster is an in-memory, byte-accurate MLEC storage system: a
// miniature datacenter whose disks hold real chunk bytes, with the full
// write path (two-level encoding), degraded reads, disk failures, and all
// four repair methods of the paper moving real data and metering actual
// cross-rack traffic.
//
// It serves two purposes: it is the executable core a downstream user
// would adopt (see examples/), and it validates the analytic repair
// models end-to-end — the byte counters measured here must reproduce the
// R_ALL : R_FCO : R_HYB : R_MIN traffic ratios that internal/repair
// derives analytically and the paper reports in Figure 8.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/rs"
	"mlec/internal/topology"
)

// Config describes a cluster.
type Config struct {
	Topo   topology.Config
	Params placement.Params
	Scheme placement.Scheme
	// ChunkBytes is the EC chunk size for stored objects (defaults to
	// Topo.ChunkSizeBytes).
	ChunkBytes int
	// Seed drives the pseudorandom declustered placement.
	Seed int64
}

// Cluster is the storage system. Not safe for concurrent use.
type Cluster struct {
	cfg    Config
	layout *placement.Layout
	netC   *rs.Codec // (kn+pn) over local-stripe payloads
	locC   *rs.Codec // (kl+pl) over chunks
	rng    *rand.Rand

	disks   []*disk
	objects map[string]*object

	// Traffic meters (bytes).
	CrossRackRead    float64
	CrossRackWritten float64
	LocalRead        float64
	LocalWritten     float64

	nextNetPool int // round-robin cursor for network-clustered writes
}

type disk struct {
	failed bool
	chunks map[chunkKey][]byte
}

type chunkKey struct {
	obj       string
	netStripe int
	localIdx  int // member within the network stripe, 0..kn+pn-1
	chunkIdx  int // member within the local stripe, 0..kl+pl-1
}

// localStripeMeta records where one local stripe's chunks live.
type localStripeMeta struct {
	pool  int
	disks []int // global disk index per chunk
}

type netStripeMeta struct {
	locals []localStripeMeta // kn+pn
}

type object struct {
	name    string
	size    int
	stripes []netStripeMeta
}

// ErrDataLoss is returned when a read cannot be satisfied by any repair
// path (a lost network stripe).
var ErrDataLoss = errors.New("cluster: unrecoverable data loss")

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	l, err := placement.NewLayout(cfg.Topo, cfg.Params, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = int(cfg.Topo.ChunkSizeBytes)
	}
	netC, err := rs.New(cfg.Params.KN, cfg.Params.PN)
	if err != nil {
		return nil, err
	}
	locC, err := rs.New(cfg.Params.KL, cfg.Params.PL)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		layout:  l,
		netC:    netC,
		locC:    locC,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		disks:   make([]*disk, cfg.Topo.TotalDisks()),
		objects: make(map[string]*object),
	}
	for i := range c.disks {
		c.disks[i] = &disk{chunks: make(map[chunkKey][]byte)}
	}
	return c, nil
}

// Layout exposes the placement geometry.
func (c *Cluster) Layout() *placement.Layout { return c.layout }

// NetStripeDataBytes returns the user-data capacity of one network
// stripe: kn·kl·chunk.
func (c *Cluster) NetStripeDataBytes() int {
	return c.cfg.Params.KN * c.cfg.Params.KL * c.cfg.ChunkBytes
}

// Write stores an object, encoding it through both MLEC levels and
// placing chunks according to the scheme. Zero-length data is rejected.
func (c *Cluster) Write(name string, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("cluster: empty object %q", name)
	}
	if _, ok := c.objects[name]; ok {
		return fmt.Errorf("cluster: object %q exists", name)
	}
	obj := &object{name: name, size: len(data)}
	stripeBytes := c.NetStripeDataBytes()
	for off, ns := 0, 0; off < len(data); off, ns = off+stripeBytes, ns+1 {
		end := off + stripeBytes
		var payload []byte
		if end <= len(data) {
			payload = data[off:end]
		} else {
			payload = make([]byte, stripeBytes)
			copy(payload, data[off:])
		}
		meta, err := c.writeNetStripe(name, ns, payload)
		if err != nil {
			return err
		}
		obj.stripes = append(obj.stripes, meta)
	}
	c.objects[name] = obj
	return nil
}

// writeNetStripe encodes one full network stripe and stores its chunks.
func (c *Cluster) writeNetStripe(name string, ns int, data []byte) (netStripeMeta, error) {
	p := c.cfg.Params
	payloadBytes := p.KL * c.cfg.ChunkBytes
	// Network-level shards: kn data payloads + pn parity payloads.
	shards := make([][]byte, p.NetworkWidth())
	for i := 0; i < p.KN; i++ {
		shards[i] = data[i*payloadBytes : (i+1)*payloadBytes]
	}
	for i := p.KN; i < p.NetworkWidth(); i++ {
		shards[i] = make([]byte, payloadBytes)
	}
	if err := c.netC.Encode(shards); err != nil {
		return netStripeMeta{}, err
	}
	pools, err := c.choosePools()
	if err != nil {
		return netStripeMeta{}, err
	}
	meta := netStripeMeta{locals: make([]localStripeMeta, p.NetworkWidth())}
	for li, pool := range pools {
		lm, err := c.writeLocalStripe(name, ns, li, pool, shards[li])
		if err != nil {
			return netStripeMeta{}, err
		}
		meta.locals[li] = lm
	}
	return meta, nil
}

// writeLocalStripe encodes one payload into kl+pl chunks on the pool's
// disks.
func (c *Cluster) writeLocalStripe(name string, ns, li, pool int, payload []byte) (localStripeMeta, error) {
	p := c.cfg.Params
	chunks := make([][]byte, p.LocalWidth())
	for i := 0; i < p.KL; i++ {
		chunks[i] = payload[i*c.cfg.ChunkBytes : (i+1)*c.cfg.ChunkBytes]
	}
	for i := p.KL; i < p.LocalWidth(); i++ {
		chunks[i] = make([]byte, c.cfg.ChunkBytes)
	}
	if err := c.locC.Encode(chunks); err != nil {
		return localStripeMeta{}, err
	}
	disks, err := c.chooseDisks(pool)
	if err != nil {
		return localStripeMeta{}, err
	}
	lm := localStripeMeta{pool: pool, disks: disks}
	for ci, d := range disks {
		buf := make([]byte, len(chunks[ci]))
		copy(buf, chunks[ci])
		c.disks[d].chunks[chunkKey{name, ns, li, ci}] = buf
	}
	return lm, nil
}

// choosePools selects kn+pn local pools in distinct racks per the
// network-level placement kind.
func (c *Cluster) choosePools() ([]int, error) {
	l := c.layout
	p := c.cfg.Params
	if c.layout.Scheme.Network == placement.Clustered {
		// Round-robin across network pools; members are the aligned
		// pools of the pool's rack group.
		np := c.nextNetPool
		c.nextNetPool = (c.nextNetPool + 1) % l.TotalNetworkPools()
		group := np / l.LocalPoolsPerRack()
		pos := np % l.LocalPoolsPerRack()
		pools := make([]int, p.NetworkWidth())
		for i := 0; i < p.NetworkWidth(); i++ {
			rack := group*p.NetworkWidth() + i
			pools[i] = rack*l.LocalPoolsPerRack() + pos
		}
		return pools, nil
	}
	// Declustered: kn+pn distinct racks, one uniform pool in each.
	racks := c.rng.Perm(l.Topo.Racks)[:p.NetworkWidth()]
	pools := make([]int, p.NetworkWidth())
	for i, r := range racks {
		pools[i] = r*l.LocalPoolsPerRack() + c.rng.Intn(l.LocalPoolsPerRack())
	}
	return pools, nil
}

// chooseDisks selects kl+pl distinct disks within the pool per the local
// placement kind.
func (c *Cluster) chooseDisks(pool int) ([]int, error) {
	l := c.layout
	p := c.cfg.Params
	size := l.LocalPoolSize()
	base := c.poolFirstDisk(pool)
	if l.Scheme.Local == placement.Clustered {
		disks := make([]int, p.LocalWidth())
		for i := range disks {
			disks[i] = base + i
		}
		return disks, nil
	}
	sel := c.rng.Perm(size)[:p.LocalWidth()]
	disks := make([]int, p.LocalWidth())
	for i, s := range sel {
		disks[i] = base + s
	}
	return disks, nil
}

// poolFirstDisk returns the global index of the pool's first disk.
func (c *Cluster) poolFirstDisk(pool int) int {
	l := c.layout
	enclosure := pool / l.LocalPoolsPerEnclosure()
	within := pool % l.LocalPoolsPerEnclosure()
	return enclosure*l.Topo.DisksPerEnclosure + within*l.LocalPoolSize()
}

// FailDisk marks a disk failed and discards its contents.
func (c *Cluster) FailDisk(global int) {
	d := c.disks[global]
	d.failed = true
	d.chunks = make(map[chunkKey][]byte)
}

// FailDiskAt is FailDisk addressed by physical coordinates.
func (c *Cluster) FailDiskAt(id topology.DiskID) {
	c.FailDisk(c.cfg.Topo.Index(id))
}

// ReplaceDisk brings a failed disk back empty (a fresh spare).
func (c *Cluster) ReplaceDisk(global int) {
	c.disks[global].failed = false
}

// rackOfDisk returns the rack of a global disk index.
func (c *Cluster) rackOfDisk(global int) int { return c.cfg.Topo.RackOf(global) }

// readChunk fetches a chunk if its disk is alive, metering traffic
// relative to destRack (reads crossing racks count as cross-rack).
func (c *Cluster) readChunk(key chunkKey, from int, destRack int) ([]byte, bool) {
	d := c.disks[from]
	if d.failed {
		return nil, false
	}
	b, ok := d.chunks[key]
	if !ok {
		return nil, false
	}
	if c.rackOfDisk(from) == destRack {
		c.LocalRead += float64(len(b))
	} else {
		c.CrossRackRead += float64(len(b))
	}
	return b, true
}

// writeChunk stores a chunk, metering traffic relative to srcRack.
func (c *Cluster) writeChunk(key chunkKey, to int, srcRack int, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	c.disks[to].chunks[key] = buf
	if c.rackOfDisk(to) == srcRack {
		c.LocalWritten += float64(len(data))
	} else {
		c.CrossRackWritten += float64(len(data))
	}
}

// CrossRackTotal returns the total cross-rack bytes moved so far.
func (c *Cluster) CrossRackTotal() float64 { return c.CrossRackRead + c.CrossRackWritten }

// ResetTraffic zeroes the meters.
func (c *Cluster) ResetTraffic() {
	c.CrossRackRead, c.CrossRackWritten = 0, 0
	c.LocalRead, c.LocalWritten = 0, 0
}

// Read returns an object's data, reconstructing through local and then
// network parities as needed (degraded read). The cluster state is not
// modified — reconstruction happens in buffers.
func (c *Cluster) Read(name string) ([]byte, error) {
	obj, ok := c.objects[name]
	if !ok {
		return nil, fmt.Errorf("cluster: no object %q", name)
	}
	out := make([]byte, 0, obj.size)
	for ns, meta := range obj.stripes {
		payloads, err := c.recoverNetStripe(obj.name, ns, meta, false)
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.cfg.Params.KN; i++ {
			out = append(out, payloads[i]...)
		}
	}
	return out[:obj.size], nil
}

// recoverNetStripe returns all kn+pn payloads of a network stripe,
// reconstructing as needed. If meter is false, traffic counters are left
// untouched (reads for user I/O are not repair traffic).
func (c *Cluster) recoverNetStripe(name string, ns int, meta netStripeMeta, meter bool) ([][]byte, error) {
	savedCR, savedCW, savedLR, savedLW := c.CrossRackRead, c.CrossRackWritten, c.LocalRead, c.LocalWritten
	p := c.cfg.Params
	shards := make([][]byte, p.NetworkWidth())
	for li := range meta.locals {
		payload, err := c.recoverLocalPayload(name, ns, li, meta.locals[li])
		if err == nil {
			shards[li] = payload
		}
	}
	if !meter {
		c.CrossRackRead, c.CrossRackWritten, c.LocalRead, c.LocalWritten = savedCR, savedCW, savedLR, savedLW
	}
	if err := c.netC.Reconstruct(shards); err != nil {
		return nil, ErrDataLoss
	}
	return shards, nil
}

// recoverLocalPayload assembles one local stripe's data payload, using
// local parity reconstruction if ≤ pl chunks are lost. Traffic is
// metered relative to the stripe's own rack.
func (c *Cluster) recoverLocalPayload(name string, ns, li int, lm localStripeMeta) ([]byte, error) {
	p := c.cfg.Params
	rack := c.layout.RackOfPool(lm.pool)
	chunks := make([][]byte, p.LocalWidth())
	missing := 0
	for ci, d := range lm.disks {
		if b, ok := c.readChunk(chunkKey{name, ns, li, ci}, d, rack); ok {
			chunks[ci] = b
		} else {
			missing++
		}
	}
	if missing > p.PL {
		return nil, ErrDataLoss
	}
	if missing > 0 {
		if err := c.locC.ReconstructData(chunks); err != nil {
			return nil, ErrDataLoss
		}
	}
	payload := make([]byte, 0, p.KL*c.cfg.ChunkBytes)
	for i := 0; i < p.KL; i++ {
		payload = append(payload, chunks[i]...)
	}
	return payload, nil
}

// VerifyAll re-reads every object and checks it against nothing being
// lost; it returns the first error encountered.
func (c *Cluster) VerifyAll(expected map[string][]byte) error {
	names := make([]string, 0, len(expected))
	for name := range expected {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := expected[name]
		got, err := c.Read(name)
		if err != nil {
			return fmt.Errorf("cluster: object %q: %w", name, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("cluster: object %q corrupted", name)
		}
	}
	return nil
}

// Repair method re-exported for caller convenience.
type Method = repair.Method

// Delete removes an object and frees its chunks from every disk.
func (c *Cluster) Delete(name string) error {
	obj, ok := c.objects[name]
	if !ok {
		return fmt.Errorf("cluster: no object %q", name)
	}
	for ns := range obj.stripes {
		meta := &obj.stripes[ns]
		for li := range meta.locals {
			for ci, d := range meta.locals[li].disks {
				delete(c.disks[d].chunks, chunkKey{name, ns, li, ci})
			}
		}
	}
	delete(c.objects, name)
	return nil
}

// Objects returns the stored object names in ascending order.
func (c *Cluster) Objects() []string {
	out := make([]string, 0, len(c.objects))
	for name := range c.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ObjectSize returns an object's user-data length.
func (c *Cluster) ObjectSize(name string) (int, error) {
	obj, ok := c.objects[name]
	if !ok {
		return 0, fmt.Errorf("cluster: no object %q", name)
	}
	return obj.size, nil
}
