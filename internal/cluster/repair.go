package cluster

import (
	"fmt"
	"sort"

	"mlec/internal/repair"
)

// stripeRef identifies one local stripe of one object.
type stripeRef struct {
	obj *object
	ns  int // network stripe index
	li  int // local index within the network stripe
}

// damage summarizes one local stripe's current chunk losses.
type damage struct {
	ref  stripeRef
	meta localStripeMeta
	lost []int // chunk indices whose disk lost the chunk
}

// scanDamage walks all stripes and groups damaged local stripes by pool.
func (c *Cluster) scanDamage() map[int][]damage {
	out := make(map[int][]damage)
	for _, obj := range c.sortedObjects() {
		for ns := range obj.stripes {
			meta := &obj.stripes[ns]
			for li := range meta.locals {
				lm := meta.locals[li]
				var lost []int
				for ci, d := range lm.disks {
					if c.disks[d].failed {
						lost = append(lost, ci)
					} else if _, ok := c.disks[d].chunks[chunkKey{obj.name, ns, li, ci}]; !ok {
						lost = append(lost, ci)
					}
				}
				if len(lost) > 0 {
					out[lm.pool] = append(out[lm.pool], damage{
						ref:  stripeRef{obj, ns, li},
						meta: lm,
						lost: lost,
					})
				}
			}
		}
	}
	return out
}

// CatastrophicPools returns the pools that currently host at least one
// lost local stripe (> pl lost chunks) — Table 1's "catastrophic
// (locally-unrecoverable) local pool".
func (c *Cluster) CatastrophicPools() []int {
	var pools []int
	for pool, ds := range c.scanDamage() {
		for _, d := range ds {
			if len(d.lost) > c.cfg.Params.PL {
				pools = append(pools, pool)
				break
			}
		}
	}
	sort.Ints(pools)
	return pools
}

// Repair restores all damage in the cluster: catastrophic pools are
// repaired with the given method (R_ALL…R_MIN), remaining locally-
// recoverable damage is repaired locally. Failed disks are replaced in
// place. Traffic meters record the data movement.
func (c *Cluster) Repair(method repair.Method) error {
	byPool := c.scanDamage()
	catastrophic := map[int]bool{}
	for pool, ds := range byPool {
		for _, d := range ds {
			if len(d.lost) > c.cfg.Params.PL {
				catastrophic[pool] = true
				break
			}
		}
	}
	// Replace failed disks up front so rebuilt chunks have a home. The
	// read paths below never read from a replaced-but-empty disk
	// because lost chunks were discarded with the failure.
	for i, d := range c.disks {
		if d.failed {
			c.ReplaceDisk(i)
		}
	}
	// Repair pools in ascending id order: the traffic meters accumulate
	// floats per repaired chunk, so repair order must be deterministic
	// for byte-identical meters run to run.
	for _, pool := range sortedKeys(catastrophic) {
		if err := c.repairCatastrophicPool(pool, byPool[pool], method); err != nil {
			return err
		}
	}
	// Locally-recoverable pools: plain local repair.
	for _, pool := range sortedKeys(byPool) {
		if catastrophic[pool] {
			continue
		}
		for _, d := range byPool[pool] {
			if err := c.repairLocalStripe(d); err != nil {
				return err
			}
		}
	}
	return nil
}

// repairCatastrophicPool dispatches on the repair method.
func (c *Cluster) repairCatastrophicPool(pool int, ds []damage, method repair.Method) error {
	switch method {
	case repair.RAll:
		return c.repairAll(pool, ds)
	case repair.RFCO:
		return c.repairFailedChunksOnly(ds)
	case repair.RHYB:
		return c.repairHybrid(ds)
	case repair.RMin:
		return c.repairMinimum(ds)
	default:
		return fmt.Errorf("cluster: unknown repair method %v", method)
	}
}

// repairAll rebuilds every local stripe that lives in the pool — damaged
// or not — from the network level, as a black-box RBOD replacement would.
func (c *Cluster) repairAll(pool int, ds []damage) error {
	_ = ds // R_ALL ignores damage detail by design: it cannot see it.
	// The pool hosts local stripes from potentially every object;
	// enumerate them all, in name order so the traffic meters accumulate
	// deterministically.
	for _, obj := range c.sortedObjects() {
		for ns := range obj.stripes {
			meta := &obj.stripes[ns]
			for li := range meta.locals {
				if meta.locals[li].pool != pool {
					continue
				}
				ref := stripeRef{obj, ns, li}
				if err := c.rebuildStripeViaNetwork(ref, meta.locals[li], allChunks(c.cfg.Params.LocalWidth())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func allChunks(w int) []int {
	out := make([]int, w)
	for i := range out {
		out[i] = i
	}
	return out
}

// repairFailedChunksOnly rebuilds exactly the lost chunks of each
// damaged stripe over the network.
func (c *Cluster) repairFailedChunksOnly(ds []damage) error {
	for _, d := range ds {
		if err := c.rebuildStripeViaNetwork(d.ref, d.meta, d.lost); err != nil {
			return err
		}
	}
	return nil
}

// repairHybrid: lost stripes via network, the rest locally.
func (c *Cluster) repairHybrid(ds []damage) error {
	for _, d := range ds {
		if len(d.lost) > c.cfg.Params.PL {
			if err := c.rebuildStripeViaNetwork(d.ref, d.meta, d.lost); err != nil {
				return err
			}
		} else if err := c.repairLocalStripe(d); err != nil {
			return err
		}
	}
	return nil
}

// repairMinimum: stage 1 rebuilds just enough chunks of each lost stripe
// over the network to make it locally recoverable (data chunks first);
// stage 2 finishes everything locally.
func (c *Cluster) repairMinimum(ds []damage) error {
	pl := c.cfg.Params.PL
	for _, d := range ds {
		if len(d.lost) > pl {
			need := len(d.lost) - pl
			// Pick lost data chunks first: network payloads only carry
			// data ranges; len(lost data) ≥ need always holds because
			// at most pl parity chunks exist.
			var viaNet []int
			for _, ci := range d.lost {
				if ci < c.cfg.Params.KL && len(viaNet) < need {
					viaNet = append(viaNet, ci)
				}
			}
			if len(viaNet) < need {
				return fmt.Errorf("cluster: internal: cannot select %d network chunks from %v", need, d.lost)
			}
			if err := c.rebuildStripeViaNetwork(d.ref, d.meta, viaNet); err != nil {
				return err
			}
			// Remaining losses are now ≤ pl.
			remaining := damage{ref: d.ref, meta: d.meta}
			sel := map[int]bool{}
			for _, ci := range viaNet {
				sel[ci] = true
			}
			for _, ci := range d.lost {
				if !sel[ci] {
					remaining.lost = append(remaining.lost, ci)
				}
			}
			if len(remaining.lost) > 0 {
				if err := c.repairLocalStripe(remaining); err != nil {
					return err
				}
			}
		} else if err := c.repairLocalStripe(d); err != nil {
			return err
		}
	}
	return nil
}

// rebuildStripeViaNetwork reconstructs the given chunk indices of one
// local stripe using network-level parity: for each data-chunk range it
// reads the aligned range from kn other members (shipping those bytes
// across racks), decodes, and writes the chunk into the stripe's rack
// (one cross-rack write per rebuilt byte). Lost parity chunks are then
// re-encoded inside the rack from the (now complete) data chunks.
func (c *Cluster) rebuildStripeViaNetwork(ref stripeRef, lm localStripeMeta, chunkIdxs []int) error {
	p := c.cfg.Params
	meta := &ref.obj.stripes[ref.ns]
	var dataIdxs, parityIdxs []int
	for _, ci := range chunkIdxs {
		if ci < p.KL {
			dataIdxs = append(dataIdxs, ci)
		} else {
			parityIdxs = append(parityIdxs, ci)
		}
	}
	if len(dataIdxs) > 0 {
		// Gather the aligned ranges of kn surviving members' payloads.
		shards := make([][]byte, p.NetworkWidth())
		have := 0
		for li := 0; li < p.NetworkWidth() && have < p.KN; li++ {
			if li == ref.li {
				continue
			}
			rng, err := c.memberRanges(ref.obj, ref.ns, li, meta.locals[li], dataIdxs)
			if err != nil {
				continue // member itself unrecoverable right now
			}
			c.CrossRackRead += float64(len(rng)) // shipped to the coordinator
			shards[li] = rng
			have++
		}
		if have < p.KN {
			return ErrDataLoss
		}
		if err := c.netC.Reconstruct(shards); err != nil {
			return ErrDataLoss
		}
		// shards[ref.li] now holds the concatenated rebuilt ranges.
		rebuilt := shards[ref.li]
		for i, ci := range dataIdxs {
			chunk := rebuilt[i*c.cfg.ChunkBytes : (i+1)*c.cfg.ChunkBytes]
			c.writeRebuiltChunk(chunkKey{ref.obj.name, ref.ns, ref.li, ci}, lm, ci, -1, chunk)
		}
	}
	if len(parityIdxs) > 0 {
		if err := c.reencodeParities(ref, lm, parityIdxs); err != nil {
			return err
		}
	}
	return nil
}

// memberRanges extracts the concatenated data ranges (per chunkIdxs) of
// one member local stripe, reconstructing locally inside the member's
// rack when needed.
func (c *Cluster) memberRanges(obj *object, ns, li int, lm localStripeMeta, chunkIdxs []int) ([]byte, error) {
	rack := c.layout.RackOfPool(lm.pool)
	out := make([]byte, 0, len(chunkIdxs)*c.cfg.ChunkBytes)
	var missing []int
	for _, ci := range chunkIdxs {
		if _, ok := c.readChunkPeek(chunkKey{obj.name, ns, li, ci}, lm.disks[ci]); !ok {
			missing = append(missing, ci)
		}
	}
	if len(missing) == 0 {
		for _, ci := range chunkIdxs {
			b, _ := c.readChunk(chunkKey{obj.name, ns, li, ci}, lm.disks[ci], rack)
			out = append(out, b...)
		}
		return out, nil
	}
	// Reconstruct the member's payload locally (degraded member).
	payload, err := c.recoverLocalPayload(obj.name, ns, li, lm)
	if err != nil {
		return nil, err
	}
	for _, ci := range chunkIdxs {
		out = append(out, payload[ci*c.cfg.ChunkBytes:(ci+1)*c.cfg.ChunkBytes]...)
	}
	return out, nil
}

// readChunkPeek checks chunk presence without metering.
func (c *Cluster) readChunkPeek(key chunkKey, from int) ([]byte, bool) {
	d := c.disks[from]
	if d.failed {
		return nil, false
	}
	b, ok := d.chunks[key]
	return b, ok
}

// reencodeParities rebuilds lost parity chunks inside the stripe's rack
// from its kl data chunks (local reads + local writes).
func (c *Cluster) reencodeParities(ref stripeRef, lm localStripeMeta, parityIdxs []int) error {
	p := c.cfg.Params
	rack := c.layout.RackOfPool(lm.pool)
	chunks := make([][]byte, p.LocalWidth())
	for ci := 0; ci < p.KL; ci++ {
		b, ok := c.readChunk(chunkKey{ref.obj.name, ref.ns, ref.li, ci}, lm.disks[ci], rack)
		if !ok {
			return fmt.Errorf("cluster: data chunk %d missing during parity re-encode", ci)
		}
		chunks[ci] = b
	}
	for ci := p.KL; ci < p.LocalWidth(); ci++ {
		chunks[ci] = make([]byte, c.cfg.ChunkBytes)
	}
	if err := c.locC.Encode(chunks); err != nil {
		return err
	}
	for _, ci := range parityIdxs {
		c.writeRebuiltChunk(chunkKey{ref.obj.name, ref.ns, ref.li, ci}, lm, ci, rack, chunks[ci])
	}
	return nil
}

// repairLocalStripe rebuilds ≤ pl lost chunks inside the rack using
// local parity (kl reads + writes, all intra-rack).
func (c *Cluster) repairLocalStripe(d damage) error {
	p := c.cfg.Params
	if len(d.lost) > p.PL {
		return fmt.Errorf("cluster: stripe with %d losses is not locally recoverable", len(d.lost))
	}
	rack := c.layout.RackOfPool(d.meta.pool)
	chunks := make([][]byte, p.LocalWidth())
	lostSet := map[int]bool{}
	for _, ci := range d.lost {
		lostSet[ci] = true
	}
	for ci := 0; ci < p.LocalWidth(); ci++ {
		if lostSet[ci] {
			continue
		}
		if b, ok := c.readChunk(chunkKey{d.ref.obj.name, d.ref.ns, d.ref.li, ci}, d.meta.disks[ci], rack); ok {
			chunks[ci] = b
		}
	}
	if err := c.locC.Reconstruct(chunks); err != nil {
		return ErrDataLoss
	}
	for _, ci := range d.lost {
		c.writeRebuiltChunk(chunkKey{d.ref.obj.name, d.ref.ns, d.ref.li, ci}, d.meta, ci, rack, chunks[ci])
	}
	return nil
}
