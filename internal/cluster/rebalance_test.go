package cluster

import (
	"bytes"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/repair"
)

// TestSpareSpaceRepairRedirects: after repairing a failed disk in a
// declustered pool, the rebuilt chunks live on surviving disks (spare
// space), the replaced disk stays empty, and all data remains readable.
func TestSpareSpaceRepairRedirects(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCD))
	objs := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := string(rune('a' + i))
		data := randomData(2*c.NetStripeDataBytes(), int64(i))
		if err := c.Write(name, data); err != nil {
			t.Fatal(err)
		}
		objs[name] = data
	}
	c.FailDisk(0)
	if err := c.Repair(repair.RHYB); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(objs); err != nil {
		t.Fatal(err)
	}
	// The replaced disk holds nothing; its old chunks moved to spares.
	if n := len(c.disks[0].chunks); n != 0 {
		t.Errorf("replaced Dp disk holds %d chunks, want 0 (spare-space repair)", n)
	}
	// No stripe may reference disk 0 anymore, and stripes stay on
	// distinct disks.
	for _, obj := range c.objects {
		for ns := range obj.stripes {
			for li := range obj.stripes[ns].locals {
				lm := obj.stripes[ns].locals[li]
				seen := map[int]bool{}
				for _, d := range lm.disks {
					if lm.pool == c.layout.PoolOfDisk(0) && d == 0 {
						t.Fatalf("stripe still references the failed disk")
					}
					if seen[d] {
						t.Fatalf("stripe references disk %d twice after repair", d)
					}
					seen[d] = true
				}
			}
		}
	}
}

// TestClusteredRepairReplacesInPlace: clustered pools keep the failed
// disk's identity (the spare takes its place), so the disk is refilled.
func TestClusteredRepairReplacesInPlace(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	data := randomData(4*c.NetStripeDataBytes(), 1)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	before := len(c.disks[0].chunks)
	if before == 0 {
		t.Fatal("disk 0 hosts nothing; test setup broken")
	}
	c.FailDisk(0)
	if err := c.Repair(repair.RHYB); err != nil {
		t.Fatal(err)
	}
	if got := len(c.disks[0].chunks); got != before {
		t.Errorf("replaced Cp disk holds %d chunks, want %d", got, before)
	}
}

func TestRebalanceAfterRepair(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCD))
	objs := map[string][]byte{}
	for i := 0; i < 16; i++ {
		name := string(rune('a' + i))
		data := randomData(2*c.NetStripeDataBytes(), int64(i))
		if err := c.Write(name, data); err != nil {
			t.Fatal(err)
		}
		objs[name] = data
	}
	c.FailDisk(0)
	if err := c.Repair(repair.RHYB); err != nil {
		t.Fatal(err)
	}
	pool := c.layout.PoolOfDisk(0)
	moved, err := c.RebalancePool(pool)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("rebalance moved nothing onto the empty replacement disk")
	}
	// Balance: max-min ≤ 1 unless constrained.
	load := c.PoolLoad(pool)
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 2 {
		t.Errorf("pool still unbalanced after rebalance: %v", load)
	}
	// Data integrity preserved, and a scrub stays clean.
	if err := c.VerifyAll(objs); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil || !rep.Clean() {
		t.Fatalf("scrub after rebalance: %+v, %v", rep, err)
	}
}

func TestRebalanceRejectsClustered(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if _, err := c.RebalancePool(0); err == nil {
		t.Error("rebalance accepted a clustered pool")
	}
	if _, err := c.RebalanceAll(); err == nil {
		t.Error("RebalanceAll accepted a clustered layout")
	}
}

func TestRebalanceAllIdempotent(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeDD))
	data := randomData(6*c.NetStripeDataBytes(), 3)
	if err := c.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RebalanceAll(); err != nil {
		t.Fatal(err)
	}
	// A second pass finds nothing left to move.
	moved, err := c.RebalanceAll()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("second rebalance moved %d chunks", moved)
	}
	got, err := c.Read("obj")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rebalance: %v", err)
	}
}
