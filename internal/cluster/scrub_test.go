package cluster

import (
	"testing"

	"mlec/internal/placement"
)

func TestScrubClean(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCD))
	if err := c.Write("obj", randomData(2*c.NetStripeDataBytes(), 1)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("pristine cluster failed scrub: %+v", rep)
	}
	if rep.LocalStripesChecked == 0 || rep.NetworkStripesChecked == 0 {
		t.Fatalf("scrub checked nothing: %+v", rep)
	}
}

func TestScrubDetectsLocalCorruption(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("obj", randomData(c.NetStripeDataBytes(), 2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a data chunk: its local stripe fails verification, and so
	// does the network stripe that contains it.
	if err := c.CorruptChunk("obj", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalParityMismatches != 1 {
		t.Errorf("local mismatches %d, want 1", rep.LocalParityMismatches)
	}
	if rep.NetworkMismatches != 1 {
		t.Errorf("network mismatches %d, want 1", rep.NetworkMismatches)
	}
}

func TestScrubDetectsParityOnlyCorruption(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("obj", randomData(c.NetStripeDataBytes(), 3)); err != nil {
		t.Fatal(err)
	}
	// Corrupt a local *parity* chunk: the local stripe mismatches, but
	// the network stripe (built from data payloads) stays consistent.
	if err := c.CorruptChunk("obj", 0, 0, c.cfg.Params.KL); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalParityMismatches != 1 || rep.NetworkMismatches != 0 {
		t.Errorf("report %+v, want exactly one local mismatch", rep)
	}
}

func TestScrubSkipsDegraded(t *testing.T) {
	// C/C placement is deterministic: the first network stripe's first
	// local stripe occupies disks 0..5 of rack 0.
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.Write("obj", randomData(c.NetStripeDataBytes(), 4)); err != nil {
		t.Fatal(err)
	}
	c.FailDisk(0)
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDegraded == 0 {
		t.Error("degraded stripes not skipped")
	}
	if !rep.Clean() {
		t.Errorf("degraded-but-uncorrupted cluster failed scrub: %+v", rep)
	}
}

func TestCorruptChunkValidation(t *testing.T) {
	c, _ := New(smallConfig(placement.SchemeCC))
	if err := c.CorruptChunk("missing", 0, 0, 0); err == nil {
		t.Error("missing object accepted")
	}
	if err := c.Write("obj", randomData(64, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.CorruptChunk("obj", 9, 0, 0); err == nil {
		t.Error("out-of-range stripe accepted")
	}
}
