package cluster

import "sort"

// sortedObjects returns the stored objects ordered by name — the
// deterministic iteration order for scans, scrubs and repairs, so
// damage lists, error identities and traffic-meter accumulation order
// never depend on map iteration.
func (c *Cluster) sortedObjects() []*object {
	names := make([]string, 0, len(c.objects))
	for name := range c.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	objs := make([]*object, len(names))
	for i, name := range names {
		objs[i] = c.objects[name]
	}
	return objs
}

// sortedKeys returns m's int keys in ascending order (pool ids, disk
// ids), the deterministic iteration order for repair dispatch.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
