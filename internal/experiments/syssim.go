package experiments

import (
	"context"
	"fmt"
	"io"

	"mlec/internal/failure"
	"mlec/internal/placement"
	"mlec/internal/render"
	"mlec/internal/repair"
	"mlec/internal/syssim"
)

// SysSimResult carries one full-system simulation per MLEC scheme.
type SysSimResult struct {
	Years  float64
	AFR    float64
	Method repair.Method
	Runs   map[placement.Scheme]syssim.Stats
}

// SysSim runs the full 57,600-disk datacenter simulator for every scheme
// — the paper's headline artifact ("over 50,000 disks") exercised
// end-to-end. At the default 1% AFR it measures fleet failure handling
// and catastrophic-pool incidence; data-loss events need the splitting
// estimator (they are too rare to observe directly, which is the point).
func SysSim(opts Options) (*SysSimResult, error) {
	return SysSimContext(context.Background(), opts)
}

// SysSimContext is SysSim under run control: cancellation or a deadline
// stops each scheme's simulation at the next event boundary and the
// partial runs report the span they actually covered (Stats.Partial).
func SysSimContext(ctx context.Context, opts Options) (*SysSimResult, error) {
	years := 25.0
	if opts.Quick {
		years = 5
	}
	ttf, err := failure.NewExponentialAFR(opts.afr())
	if err != nil {
		return nil, err
	}
	res := &SysSimResult{
		Years: years, AFR: opts.afr(), Method: repair.RMin,
		Runs: map[placement.Scheme]syssim.Stats{},
	}
	for _, s := range placement.AllSchemes {
		cfg := syssim.Config{
			Topo:            paperTopo(),
			Params:          paperParams(),
			Scheme:          s,
			Method:          repair.RMin,
			SegmentsPerDisk: 60,
			TTF:             ttf,
		}
		stats, err := syssim.RunContext(ctx, cfg, years, opts.Seed)
		if err != nil {
			return nil, err
		}
		res.Runs[s] = stats
	}
	return res, nil
}

// Render prints the per-scheme fleet statistics.
func (r *SysSimResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Full-system simulation: 57,600 disks, %.0f years, %.1f%% AFR, %v\n",
		r.Years, r.AFR*100, r.Method)
	rows := make([][]string, 0, len(r.Runs))
	for _, s := range placement.AllSchemes {
		st := r.Runs[s]
		rows = append(rows, []string{
			s.String(),
			fmt.Sprintf("%d", st.DiskFailures),
			fmt.Sprintf("%d", st.CatastrophicEvents),
			fmt.Sprintf("%d", st.DataLossEvents),
			render.Bytes(st.CrossRackRepairBytes),
		})
	}
	return render.Table(w, []string{
		"scheme", "disk failures", "catastrophic pools", "data-loss events", "network repair",
	}, rows)
}

func init() {
	register("syssim", "full-system simulation of the 57,600-disk datacenter (all schemes)",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := SysSimContext(ctx, opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
