package experiments

import (
	"context"
	"fmt"
	"io"

	"mlec/internal/failure"
	"mlec/internal/markov"
	"mlec/internal/mathx"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/render"
	"mlec/internal/repair"
	"mlec/internal/splitting"
)

// poolSimConfig builds the poolsim configuration for one local placement
// kind under the paper topology.
func poolSimConfig(local placement.Kind, opts Options) poolsim.Config {
	topo := paperTopo()
	params := paperParams()
	cfg := poolsim.Config{
		Width: params.LocalWidth(), Parity: params.PL,
		DiskCapacityBytes:   topo.DiskCapacityBytes,
		DiskRepairBW:        topo.DiskRepairBandwidth(),
		DetectionDelayHours: failure.DefaultDetectionDelayHours,
	}
	if local == placement.Clustered {
		cfg.Disks = params.LocalWidth()
		cfg.Clustered = true
		cfg.SegmentsPerDisk = 100
	} else {
		cfg.Disks = topo.DisksPerEnclosure
		cfg.SegmentsPerDisk = 240
		if opts.Quick {
			cfg.SegmentsPerDisk = 60
		}
	}
	return cfg
}

// stage1ByLocal estimates the catastrophic-pool behaviour for both local
// placement kinds. Quick mode uses the Markov R_ALL view with the
// analytic lost-stripe fraction; full mode runs the poolsim splitting
// estimator (the paper's stage 1).
func stage1ByLocal(ctx context.Context, opts Options) (map[placement.Kind]splitting.Stage1, error) {
	out := map[placement.Kind]splitting.Stage1{}
	params := paperParams()
	if opts.Quick {
		for _, kind := range []placement.Kind{placement.Clustered, placement.Declustered} {
			scheme := placement.Scheme{Network: placement.Clustered, Local: kind}
			l, err := placement.NewLayout(paperTopo(), params, scheme)
			if err != nil {
				return nil, err
			}
			m := markov.MLECRAllModel{Layout: l, LambdaPerHour: opts.lambda()}
			rate, err := m.CatRatePerPoolHour()
			if err != nil {
				return nil, err
			}
			s1 := splitting.Stage1FromSplit(poolSimConfig(kind, opts),
				poolsim.SplitResult{CatRatePerPoolHour: rate})
			out[kind] = s1
		}
		return out, nil
	}
	ttf, err := failure.NewExponentialAFR(opts.afr())
	if err != nil {
		return nil, err
	}
	for _, kind := range []placement.Kind{placement.Clustered, placement.Declustered} {
		cfg := poolSimConfig(kind, opts)
		res, err := poolsim.SplitContext(ctx, cfg, ttf, poolsim.SplitConfig{
			TrajectoriesPerLevel: 20000, Seed: opts.Seed,
			CheckpointPath: opts.checkpointPath("stage1-" + kind.String()),
		})
		if err != nil {
			return nil, err
		}
		if res.Partial {
			return nil, fmt.Errorf("experiments: stage-1 splitting for %v interrupted after %d levels (resume with the same checkpoint dir): %w",
				kind, len(res.LevelProbs), ctx.Err())
		}
		out[kind] = splitting.Stage1FromSplit(cfg, res)
	}
	return out, nil
}

// Fig7Result carries the catastrophic-local-failure probabilities.
type Fig7Result struct {
	// PerScheme maps each MLEC scheme to the annual system-wide
	// probability of at least one catastrophic local pool failure.
	PerScheme map[placement.Scheme]float64
}

// Fig7 estimates the probability of catastrophic local failure (§4.1.3).
// Fig7 is Fig7Context without cancellation.
func Fig7(opts Options) (*Fig7Result, error) {
	return Fig7Context(context.Background(), opts)
}

// Fig7Context is Fig7 under run control; the stage-1 splitting estimator
// checkpoints under opts.CheckpointDir and resumes deterministically.
func Fig7Context(ctx context.Context, opts Options) (*Fig7Result, error) {
	s1, err := stage1ByLocal(ctx, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{PerScheme: map[placement.Scheme]float64{}}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(paperTopo(), paperParams(), s)
		if err != nil {
			return nil, err
		}
		rate := s1[s.Local].CatRatePerPoolHour * float64(l.TotalLocalPools())
		res.PerScheme[s] = mathx.RateToAnnualPDL(rate)
	}
	return res, nil
}

// Render prints per-scheme probabilities.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 7: probability of catastrophic local failure (per system-year)")
	rows := make([][]string, 0, 4)
	for _, s := range placement.AllSchemes {
		rows = append(rows, []string{s.String(), fmt.Sprintf("%.3g", r.PerScheme[s])})
	}
	return render.Table(w, []string{"scheme", "P(catastrophic local failure)/yr"}, rows)
}

// Fig10Result carries the durability table.
type Fig10Result struct {
	Rows []splitting.Fig10Row
}

// Fig10 estimates system durability for the four schemes × four repair
// methods (§4.2.3). Fig10 is Fig10Context without cancellation.
func Fig10(opts Options) (*Fig10Result, error) {
	return Fig10Context(context.Background(), opts)
}

// Fig10Context is Fig10 under run control; the stage-1 splitting
// estimator checkpoints under opts.CheckpointDir and resumes
// deterministically.
func Fig10Context(ctx context.Context, opts Options) (*Fig10Result, error) {
	s1, err := stage1ByLocal(ctx, opts)
	if err != nil {
		return nil, err
	}
	layouts := map[placement.Scheme]*placement.Layout{}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(paperTopo(), paperParams(), s)
		if err != nil {
			return nil, err
		}
		layouts[s] = l
	}
	rows, err := splitting.Fig10(layouts, s1)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// Render prints durability in nines, matching the Figure 10 bars.
func (r *Fig10Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10: durability (nines of annual PDL) by scheme and repair method")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Scheme.String()}
		for _, m := range repair.AllMethods {
			cells = append(cells, fmt.Sprintf("%.1f", row.Results[int(m)].Nines))
		}
		rows = append(rows, cells)
	}
	return render.Table(w, []string{"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"}, rows)
}

func init() {
	register("fig7", "probability of catastrophic local failure per scheme",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig7Context(ctx, opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig10", "durability (nines) per scheme and repair method",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig10Context(ctx, opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
