package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/repair"
)

func quickOpts() Options { return Options{Quick: true, Seed: 7, AFR: 0.01} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "tab1", "fig5", "fig6", "tab2", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"sec514", "sec524",
	}
	have := map[string]bool{}
	for _, id := range List() {
		have[id] = true
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("nope", quickOpts(), &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1(t *testing.T) {
	r := Fig1(quickOpts())
	if len(r.Points) < 4 {
		t.Fatal("dataset too small")
	}
	if r.BackblazeGrowth < 10 {
		t.Errorf("Backblaze growth %.1f, expected ≫10×", r.BackblazeGrowth)
	}
	prevB, prevC := 0.0, 0.0
	for _, p := range r.Points {
		if p.BackblazeDisksK <= prevB || p.MaxCapacityTB <= prevC {
			t.Errorf("series not increasing at %d", p.Year)
		}
		prevB, prevC = p.BackblazeDisksK, p.MaxCapacityTB
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2022") {
		t.Error("render missing 2022 row")
	}
}

func TestTab1(t *testing.T) {
	r, err := Tab1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 4 {
		t.Fatalf("%d steps", len(r.Steps))
	}
	if r.Steps[0].Report.AffectedLocalStripes != 0 {
		t.Error("healthy step reports damage")
	}
	if r.Steps[2].Report.CatastrophicLocalPools != 1 {
		t.Errorf("step 3: %+v", r.Steps[2].Report)
	}
	if r.Steps[3].Report.LostNetworkStripes == 0 {
		t.Errorf("step 4 must lose network stripes: %+v", r.Steps[3].Report)
	}
}

func TestFig5QuickShape(t *testing.T) {
	r, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Grids) != 4 {
		t.Fatalf("%d grids", len(r.Grids))
	}
	// D/D must accumulate at least as much PDL mass as C/C (F#7).
	sum := func(s placement.Scheme) float64 {
		total := 0.0
		for _, row := range r.Grids[s].Cells {
			for _, cell := range row {
				if cell.PDL == cell.PDL { // skip NaN
					total += cell.PDL
				}
			}
		}
		return total
	}
	if sum(placement.SchemeDD) < sum(placement.SchemeCC) {
		t.Errorf("F#7: D/D mass %g below C/C %g", sum(placement.SchemeDD), sum(placement.SchemeCC))
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "Figure 5") != 4 {
		t.Error("render missing panels")
	}
}

func TestFig6Tab2(t *testing.T) {
	r, err := Fig6Tab2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"C/C", "D/D", "20 TB", "2.4 PB"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFig7Quick(t *testing.T) {
	r, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range placement.AllSchemes {
		p := r.PerScheme[s]
		if p <= 0 || p >= 1 {
			t.Errorf("%v: probability %g out of range", s, p)
		}
	}
	// Local-Dp schemes must beat local-Cp schemes (the Figure 7 story;
	// in quick mode via the Markov view the ordering still holds at
	// system level: fewer, more-slowly-failing pools... verify it).
	if r.PerScheme[placement.SchemeCD] >= r.PerScheme[placement.SchemeCC] {
		t.Logf("note: quick-mode Markov view: C/D %g vs C/C %g",
			r.PerScheme[placement.SchemeCD], r.PerScheme[placement.SchemeCC])
	}
}

func TestFig8Fig9Quick(t *testing.T) {
	r8, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r8.Rows {
		if !(row.Traffic[int(repair.RAll)] > row.Traffic[int(repair.RMin)]) {
			t.Errorf("%v: R_ALL not above R_MIN", row.Scheme)
		}
	}
	r9, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r9.Rows {
		if row.Analyses[int(repair.RAll)].NetworkRepairHours <= 0 {
			t.Errorf("%v: zero R_ALL network time", row.Scheme)
		}
	}
}

func TestFig10Quick(t *testing.T) {
	r, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Results[int(repair.RMin)].Nines < row.Results[int(repair.RAll)].Nines {
			t.Errorf("%v: R_MIN below R_ALL", row.Scheme)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	r, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 12 {
		t.Fatalf("%d cells", len(r.Cells))
	}
	// p=1 cells must out-run p=10 cells at the same k.
	byKP := map[[2]int]float64{}
	for _, c := range r.Cells {
		byKP[[2]int{c.K, c.P}] = c.BytesPerSec
	}
	if byKP[[2]int{10, 1}] <= byKP[[2]int{10, 10}] {
		t.Error("throughput not decreasing in p")
	}
}

func TestFig12Quick(t *testing.T) {
	r, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PanelA) == 0 || len(r.PanelB) == 0 {
		t.Fatal("empty panels")
	}
	for _, p := range append(append([]TradeoffPoint{}, r.PanelA...), r.PanelB...) {
		if p.Overhead < 0.25 || p.Overhead > 0.35 {
			t.Errorf("%s: overhead %.2f outside the ~30%% band", p.Label, p.Overhead)
		}
		if p.Nines <= 0 || p.BytesPerSec <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Label, p)
		}
	}
}

func TestFig14(t *testing.T) {
	r, err := Fig14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.RoundTripOK {
		t.Error("LRC local repair failed to restore the chunk")
	}
	if r.LocalRepairReads >= r.GlobalRepairReads {
		t.Error("local repair must read fewer chunks than global")
	}
}

func TestFig15Quick(t *testing.T) {
	r, err := Fig15(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("%d points", len(r.Points))
	}
}

func TestFig16Quick(t *testing.T) {
	r, err := Fig16(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Scattered cells (large x) must carry PDL mass; single-rack
	// columns must be zero.
	lastRow := r.Grid.Cells[len(r.Grid.Ys)-1]
	if lastRow[0].PDL != 0 && lastRow[0].PDL == lastRow[0].PDL {
		t.Errorf("single-rack LRC PDL %g, want 0", lastRow[0].PDL)
	}
}

func TestSec5Traffic(t *testing.T) {
	r, err := Sec5Traffic(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Comparison.MLECYearsPerTB < 1000 {
		t.Errorf("MLEC years/TB %g, want thousands", r.Comparison.MLECYearsPerTB)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "per day") {
		t.Error("render missing daily rows")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	for _, id := range List() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if err := Run(id, quickOpts(), &sb); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", id)
			}
		})
	}
}

func TestHeatmapCSVMode(t *testing.T) {
	opts := quickOpts()
	opts.CSV = true
	var sb strings.Builder
	if err := Run("fig16", opts, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# fig16") {
		t.Errorf("CSV output missing label header:\n%s", out[:80])
	}
	if !strings.Contains(out, "racks,failures,pdl") {
		t.Error("CSV header missing")
	}
}
