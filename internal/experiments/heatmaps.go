package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"mlec/internal/burst"
	"mlec/internal/placement"
	"mlec/internal/render"
)

// heatmapGrid returns the (x racks, y failures) axes used by the PDL
// heatmaps (Figures 5, 13, 16): the paper sweeps 1..60 racks and up to 60
// failures.
func heatmapGrid(opts Options) (xs, ys []int, trials int) {
	if opts.Quick {
		for x := 1; x <= 60; x += 10 {
			xs = append(xs, x)
		}
		for y := 12; y <= 60; y += 16 {
			ys = append(ys, y)
		}
		return xs, ys, 120
	}
	for x := 1; x <= 60; x += 2 {
		xs = append(xs, x)
	}
	for y := 4; y <= 60; y += 4 {
		ys = append(ys, y)
	}
	return xs, ys, 600
}

func renderGrid(w io.Writer, title string, g *burst.Grid) error {
	cells := make([][]float64, len(g.Ys))
	for iy := range g.Ys {
		cells[iy] = make([]float64, len(g.Xs))
		for ix := range g.Xs {
			cells[iy][ix] = g.Cells[iy][ix].PDL
			if g.Cells[iy][ix].Trials == 0 {
				cells[iy][ix] = math.NaN()
			}
		}
	}
	return render.Heatmap(w, g.Xs, g.Ys, cells, render.HeatmapOpts{
		Title: title, MinExp: -6, XLabel: "affected racks", YLabel: "failed disks",
	})
}

// Fig5Result holds the four MLEC PDL heatmaps.
type Fig5Result struct {
	Grids map[placement.Scheme]*burst.Grid
}

// Fig5 evaluates PDL under correlated failure bursts for the four MLEC
// schemes (§4.1.1). Fig5 is Fig5Context without cancellation.
func Fig5(opts Options) (*Fig5Result, error) {
	return Fig5Context(context.Background(), opts)
}

// Fig5Context is Fig5 under run control, checkpointing each scheme's
// grid separately under opts.CheckpointDir.
func Fig5Context(ctx context.Context, opts Options) (*Fig5Result, error) {
	xs, ys, trials := heatmapGrid(opts)
	res := &Fig5Result{Grids: map[placement.Scheme]*burst.Grid{}}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(paperTopo(), paperParams(), s)
		if err != nil {
			return nil, err
		}
		g, err := burst.HeatmapContext(ctx, burst.NewMLECEvaluator(l), xs, ys, trials, opts.Seed,
			opts.checkpointPath("fig5-"+s.String()))
		if err != nil {
			return nil, err
		}
		res.Grids[s] = g
	}
	return res, nil
}

// Render prints the four heatmaps in the paper's order.
func (r *Fig5Result) Render(w io.Writer) error {
	for _, s := range placement.AllSchemes {
		if err := renderGrid(w, fmt.Sprintf("Figure 5 (%v): MLEC PDL under correlated bursts", s), r.Grids[s]); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig13Result holds the four SLEC PDL heatmaps.
type Fig13Result struct {
	Params placement.SLECParams
	Grids  map[placement.SLECPlacement]*burst.Grid
}

// Fig13 evaluates burst PDL for the four SLEC placements with the
// paper's (7+3) code (§5.1.3). Fig13 is Fig13Context without
// cancellation.
func Fig13(opts Options) (*Fig13Result, error) {
	return Fig13Context(context.Background(), opts)
}

// Fig13Context is Fig13 under run control, checkpointing each
// placement's grid separately under opts.CheckpointDir.
func Fig13Context(ctx context.Context, opts Options) (*Fig13Result, error) {
	xs, ys, trials := heatmapGrid(opts)
	params := placement.SLECParams{K: 7, P: 3}
	res := &Fig13Result{Params: params, Grids: map[placement.SLECPlacement]*burst.Grid{}}
	for _, pl := range placement.AllSLECPlacements {
		l, err := placement.NewSLECLayout(paperTopo(), params, pl)
		if err != nil {
			return nil, err
		}
		g, err := burst.HeatmapContext(ctx, burst.NewSLECEvaluator(l), xs, ys, trials, opts.Seed,
			opts.checkpointPath("fig13-"+pl.String()))
		if err != nil {
			return nil, err
		}
		res.Grids[pl] = g
	}
	return res, nil
}

// Render prints the four heatmaps in the paper's order.
func (r *Fig13Result) Render(w io.Writer) error {
	for _, pl := range placement.AllSLECPlacements {
		if err := renderGrid(w, fmt.Sprintf("Figure 13 (%v %v): SLEC PDL under correlated bursts", pl, r.Params), r.Grids[pl]); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig16Result holds the LRC-Dp PDL heatmap.
type Fig16Result struct {
	Params placement.LRCParams
	Grid   *burst.Grid
}

// Fig16 evaluates burst PDL for the paper's (14,2,4) LRC-Dp (§5.2.3).
// Fig16 is Fig16Context without cancellation.
func Fig16(opts Options) (*Fig16Result, error) {
	return Fig16Context(context.Background(), opts)
}

// Fig16Context is Fig16 under run control.
func Fig16Context(ctx context.Context, opts Options) (*Fig16Result, error) {
	xs, ys, trials := heatmapGrid(opts)
	params := placement.LRCParams{K: 14, L: 2, R: 4}
	l, err := placement.NewLRCLayout(paperTopo(), params)
	if err != nil {
		return nil, err
	}
	g, err := burst.HeatmapContext(ctx, burst.NewLRCEvaluator(l, opts.Seed), xs, ys, trials, opts.Seed,
		opts.checkpointPath("fig16"))
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Params: params, Grid: g}, nil
}

// Render prints the heatmap.
func (r *Fig16Result) Render(w io.Writer) error {
	return renderGrid(w, fmt.Sprintf("Figure 16 (LRC-Dp %v): PDL under correlated bursts", r.Params), r.Grid)
}

// writeGridCSV emits one labelled grid in CSV form.
func writeGridCSV(w io.Writer, label string, g *burst.Grid) error {
	if _, err := fmt.Fprintf(w, "# %s\n", label); err != nil {
		return err
	}
	return g.WriteCSV(w)
}

func init() {
	register("fig5", "MLEC PDL heatmaps under correlated failure bursts (4 schemes)",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig5Context(ctx, opts)
			if err != nil {
				return err
			}
			if opts.CSV {
				for _, s := range placement.AllSchemes {
					if err := writeGridCSV(w, "fig5 "+s.String(), r.Grids[s]); err != nil {
						return err
					}
				}
				return nil
			}
			return r.Render(w)
		})
	register("fig13", "SLEC PDL heatmaps under correlated failure bursts (4 placements)",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig13Context(ctx, opts)
			if err != nil {
				return err
			}
			if opts.CSV {
				for _, pl := range placement.AllSLECPlacements {
					if err := writeGridCSV(w, "fig13 "+pl.String(), r.Grids[pl]); err != nil {
						return err
					}
				}
				return nil
			}
			return r.Render(w)
		})
	register("fig16", "LRC-Dp PDL heatmap under correlated failure bursts",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig16Context(ctx, opts)
			if err != nil {
				return err
			}
			if opts.CSV {
				return writeGridCSV(w, "fig16 LRC-Dp", r.Grid)
			}
			return r.Render(w)
		})
}
