// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver computes typed results and can render
// them as the rows/series the paper reports; cmd/mlecsim, the benchmark
// harness, and EXPERIMENTS.md all consume these drivers.
package experiments

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

// Options tunes experiment fidelity.
type Options struct {
	// Quick selects reduced grids/trials for benchmarks and CI. The
	// full setting reproduces the paper-scale study.
	Quick bool
	// Seed drives every stochastic component.
	Seed int64
	// AFR overrides the annual failure rate (default 0.01, the paper's
	// 1%).
	AFR float64
	// CSV switches renders that support it (the PDL heatmaps) from
	// ASCII art to machine-readable CSV.
	CSV bool
	// CheckpointDir, when non-empty, makes the Monte-Carlo experiments
	// (heatmaps, splitting stage 1, the full-system simulation driver)
	// checkpoint their estimator state there and resume interrupted
	// runs deterministically. Each experiment derives its own file
	// names, so one directory serves a whole campaign.
	CheckpointDir string
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Seed: 1, AFR: 0.01} }

func (o Options) afr() float64 {
	if o.AFR <= 0 || o.AFR >= 1 {
		return 0.01
	}
	return o.AFR
}

// lambda returns the per-hour failure rate implied by the AFR.
func (o Options) lambda() float64 { return o.afr() / 8760 }

// checkpointPath returns the checkpoint file for a named campaign, or
// "" (checkpointing disabled) when no CheckpointDir is set.
func (o Options) checkpointPath(name string) string {
	if o.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(o.CheckpointDir, name+".ckpt")
}

// Runner is the common shape of an experiment entry point. Runners
// observe ctx: the Monte-Carlo drivers stop at the next trial boundary
// on cancellation and render what they have (partial heatmap cells stay
// NaN); analytic drivers may finish their (cheap) computation.
type Runner func(ctx context.Context, opts Options, w io.Writer) error

// registry maps experiment ids to runners; populated by init() calls in
// the per-figure files.
var registry = map[string]Runner{}

var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// Run executes the experiment with the given id, rendering to w. Run is
// RunContext without cancellation.
func Run(id string, opts Options, w io.Writer) error {
	return RunContext(context.Background(), id, opts, w)
}

// RunContext executes the experiment under run control: cancellation or
// a deadline stops the Monte-Carlo engines at the next trial boundary
// and the driver renders the partial result it has.
func RunContext(ctx context.Context, id string, opts Options, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (try List())", id)
	}
	return r(ctx, opts, w)
}

// List returns the registered experiment ids in sorted order.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string { return descriptions[id] }

// paperTopo is the §3 datacenter.
func paperTopo() topology.Config { return topology.Default() }

// paperParams is the §3 (10+2)/(17+3) MLEC.
func paperParams() placement.Params { return placement.DefaultParams() }
