package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"mlec/internal/cluster"
	"mlec/internal/lrc"
	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/render"
	"mlec/internal/repair"
	"mlec/internal/traffic"
)

// Tab1Result demonstrates the Table 1 failure-mode taxonomy on a live
// cluster: a scripted failure sequence and the classification after each
// step.
type Tab1Result struct {
	Steps []Tab1Step
}

// Tab1Step is one failure-injection step.
type Tab1Step struct {
	Description string
	Report      cluster.FailureReport
}

// Tab1 injects an escalating failure sequence into a small C/C cluster
// and classifies the damage after each step.
func Tab1(opts Options) (*Tab1Result, error) {
	topo := paperTopo()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12
	cfg := cluster.Config{
		Topo:   topo,
		Params: placement.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme: placement.SchemeCC,
		Seed:   opts.Seed,
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 4*c.NetStripeDataBytes())
	rand.New(rand.NewSource(opts.Seed)).Read(data)
	if err := c.Write("demo", data); err != nil {
		return nil, err
	}
	res := &Tab1Result{}
	step := func(desc string) {
		res.Steps = append(res.Steps, Tab1Step{Description: desc, Report: c.Report()})
	}
	step("healthy")
	c.FailDisk(0)
	step("1 failed disk: affected, locally-recoverable local stripes")
	c.FailDisk(1)
	c.FailDisk(2)
	step("pl+1 failures in one pool: lost local stripes, catastrophic pool")
	dpr := topo.DisksPerRack()
	for _, d := range []int{dpr, dpr + 1, dpr + 2} {
		c.FailDisk(d)
	}
	step("pn+1 aligned catastrophic pools: lost network stripes (data loss)")
	return res, nil
}

// Render prints the classification table.
func (r *Tab1Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: MLEC failure modes, demonstrated on a live cluster")
	rows := make([][]string, 0, len(r.Steps))
	for _, s := range r.Steps {
		rep := s.Report
		rows = append(rows, []string{
			s.Description,
			fmt.Sprintf("%d", rep.FailedChunks),
			fmt.Sprintf("%d", rep.AffectedLocalStripes),
			fmt.Sprintf("%d", rep.LocallyRecoverable),
			fmt.Sprintf("%d", rep.LostLocalStripes),
			fmt.Sprintf("%d", rep.CatastrophicLocalPools),
			fmt.Sprintf("%d", rep.LostNetworkStripes),
		})
	}
	return render.Table(w, []string{
		"step", "failed chunks", "affected local", "locally recoverable",
		"lost local", "catastrophic pools", "lost network (data loss)",
	}, rows)
}

// Fig14Result demonstrates the (4,2,2) LRC layout of Figure 14.
type Fig14Result struct {
	Params placement.LRCParams
	// LocalRepairReads counts chunks read to repair one data chunk via
	// its local group (k/l = 2, vs k = 4 for a global repair).
	LocalRepairReads  int
	GlobalRepairReads int
	RoundTripOK       bool
}

// Fig14 encodes a (4,2,2) LRC stripe with the real codec, repairs a
// single failure through the local group, and reports the read costs.
func Fig14(opts Options) (*Fig14Result, error) {
	params := placement.LRCParams{K: 4, L: 2, R: 2}
	codec, err := lrc.New(params.K, params.L, params.R)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	shards := make([][]byte, codec.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, 1024)
		if i < params.K {
			rng.Read(shards[i])
		}
	}
	if err := codec.Encode(shards); err != nil {
		return nil, err
	}
	ref := append([]byte(nil), shards[0]...)
	shards[0] = nil
	ok := codec.LocalRepairable(shards, 0)
	if !ok {
		return nil, fmt.Errorf("fig14: single failure not locally repairable")
	}
	if err := codec.Reconstruct(shards); err != nil {
		return nil, err
	}
	return &Fig14Result{
		Params: params,
		// Local repair reads the group's surviving data chunk + the
		// group parity; a global repair would read k chunks.
		LocalRepairReads:  params.K/params.L - 1 + 1,
		GlobalRepairReads: params.K,
		RoundTripOK:       bytesEqual(shards[0], ref),
	}, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render describes the layout and repair costs.
func (r *Fig14Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 14: a %v LRC (k data, l local parities, r global parities)\n", r.Params)
	fmt.Fprintf(w, "  stripe: a1 a2 | a3 a4 | a12 a34 | ap aq — every chunk in a separate rack\n")
	fmt.Fprintf(w, "  single-failure repair reads %d chunks via the local group (vs %d via globals); round trip ok: %v\n",
		r.LocalRepairReads, r.GlobalRepairReads, r.RoundTripOK)
	return nil
}

// Sec5TrafficResult carries the §5.1.4/§5.2.4 repair-traffic comparison.
type Sec5TrafficResult struct {
	Comparison traffic.Comparison
}

// Sec5Traffic compares long-run cross-rack repair traffic: network SLEC
// vs LRC-Dp vs MLEC with R_MIN.
func Sec5Traffic(opts Options) (*Sec5TrafficResult, error) {
	topo := paperTopo()
	l, err := placement.NewLayout(topo, paperParams(), placement.SchemeCD)
	if err != nil {
		return nil, err
	}
	m := markov.MLECRAllModel{Layout: l, LambdaPerHour: opts.lambda()}
	catRate, err := m.CatRatePerPoolHour()
	if err != nil {
		return nil, err
	}
	cmp, err := traffic.Compare(topo,
		placement.SLECParams{K: 7, P: 3},
		placement.LRCParams{K: 14, L: 2, R: 4},
		l, repair.RMin, opts.lambda(), catRate)
	if err != nil {
		return nil, err
	}
	return &Sec5TrafficResult{Comparison: cmp}, nil
}

// Render prints the comparison.
func (r *Sec5TrafficResult) Render(w io.Writer) error {
	c := r.Comparison
	fmt.Fprintln(w, "§5.1.4 / §5.2.4: long-run cross-rack repair network traffic")
	rows := [][]string{
		{"network (7+3) SLEC", render.Bytes(c.NetworkSLECDaily) + " per day"},
		{"LRC-Dp (14,2,4)", render.Bytes(c.LRCDaily) + " per day"},
		{"MLEC C/D R_MIN", render.Bytes(c.MLECYearly) + " per year"},
		{"MLEC years per TB", fmt.Sprintf("%.3g", c.MLECYearsPerTB)},
	}
	return render.Table(w, []string{"system", "repair traffic"}, rows)
}

func init() {
	register("tab1", "failure-mode taxonomy demonstrated on a live cluster",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Tab1(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig14", "LRC (4,2,2) layout and local-repair demonstration",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig14(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("sec514", "repair network traffic: network SLEC vs MLEC",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Sec5Traffic(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("sec524", "repair network traffic: LRC vs MLEC",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Sec5Traffic(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
