package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mlec/internal/ecdur"
	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/render"
	"mlec/internal/repair"
	"mlec/internal/splitting"
	"mlec/internal/throughput"
)

// measureDur returns the per-cell throughput measurement budget.
func measureDur(opts Options) time.Duration {
	if opts.Quick {
		return 4 * time.Millisecond
	}
	return 40 * time.Millisecond
}

// Fig11Result carries the encoding-throughput heatmap.
type Fig11Result struct {
	Cells []throughput.Cell
}

// Fig11 measures single-goroutine RS encoding throughput over the paper's
// (k, p) grid (§5.1.1). Quick mode samples a sub-grid.
func Fig11(opts Options) (*Fig11Result, error) {
	var ks, ps []int
	if opts.Quick {
		ks = []int{2, 10, 26, 50}
		ps = []int{1, 4, 10}
	} else {
		for k := 2; k <= 50; k += 4 {
			ks = append(ks, k)
		}
		ps = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	cells, err := throughput.Fig11Grid(ks, ps, throughput.DefaultShardBytes, measureDur(opts))
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Cells: cells}, nil
}

// Render prints the grid as CSV-like rows (k, p, GB/s).
func (r *Fig11Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11: single-core encoding throughput for (k+p) SLEC")
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.K), fmt.Sprintf("%d", c.P),
			fmt.Sprintf("%.2f", c.BytesPerSec/1e9),
		})
	}
	return render.Table(w, []string{"k", "p", "GB/s"}, rows)
}

// TradeoffPoint is one configuration on a durability/throughput scatter.
type TradeoffPoint struct {
	Label       string
	Overhead    float64 // parity share of raw capacity
	Nines       float64
	BytesPerSec float64
}

// Fig12Result carries the MLEC-vs-SLEC tradeoff scatter (both panels).
type Fig12Result struct {
	// PanelA: C/C vs Loc-Cp-S / Net-Cp-S. PanelB: C/D vs Loc-Dp-S /
	// Net-Dp-S. All points sit near 30% parity overhead.
	PanelA, PanelB []TradeoffPoint
}

// mlecConfigs30 lists MLEC parameter pairs with ≈30% parity overhead that
// satisfy the paper topology's divisibility constraints.
var mlecConfigs30 = []placement.Params{
	{KN: 5, PN: 1, KL: 5, PL: 1},
	{KN: 5, PN: 1, KL: 10, PL: 2},
	{KN: 5, PN: 1, KL: 17, PL: 3},
	{KN: 10, PN: 2, KL: 10, PL: 2},
	{KN: 10, PN: 2, KL: 17, PL: 3},
	{KN: 17, PN: 3, KL: 17, PL: 3},
	{KN: 17, PN: 3, KL: 25, PL: 5},
	{KN: 10, PN: 2, KL: 34, PL: 6},
}

// slecConfigs30 lists ≈30%-overhead SLEC codes whose widths divide both
// the enclosure (120) and rack (60) counts.
var slecConfigs30 = []placement.SLECParams{
	{K: 7, P: 3}, {K: 14, P: 6}, {K: 21, P: 9}, {K: 28, P: 12}, {K: 41, P: 19},
}

// mlecTradeoffPoint evaluates one MLEC config: R_MIN durability via the
// splitting composition (Markov stage 1 — the R_ALL-visible rate — with
// the analytic lost-stripe fraction) and measured encoding throughput.
func mlecTradeoffPoint(params placement.Params, scheme placement.Scheme, opts Options) (TradeoffPoint, error) {
	l, err := placement.NewLayout(paperTopo(), params, scheme)
	if err != nil {
		return TradeoffPoint{}, err
	}
	m := markov.MLECRAllModel{Layout: l, LambdaPerHour: opts.lambda()}
	rate, err := m.CatRatePerPoolHour()
	if err != nil {
		return TradeoffPoint{}, err
	}
	cfg := poolsim.Config{
		Disks: l.LocalPoolSize(), Width: params.LocalWidth(), Parity: params.PL,
		Clustered:       scheme.Local == placement.Clustered,
		SegmentsPerDisk: 100, DiskCapacityBytes: paperTopo().DiskCapacityBytes,
		DiskRepairBW: paperTopo().DiskRepairBandwidth(), DetectionDelayHours: 0.5,
	}
	s1 := splitting.Stage1FromSplit(cfg, poolsim.SplitResult{CatRatePerPoolHour: rate})
	dur, err := splitting.Durability(l, repair.RMin, s1)
	if err != nil {
		return TradeoffPoint{}, err
	}
	tp, err := throughput.MeasureMLEC(params, throughput.DefaultShardBytes, measureDur(opts))
	if err != nil {
		return TradeoffPoint{}, err
	}
	return TradeoffPoint{
		Label:       fmt.Sprintf("%v %v", scheme, params),
		Overhead:    params.StorageOverhead(),
		Nines:       dur.Nines,
		BytesPerSec: tp,
	}, nil
}

// slecTradeoffPoint evaluates one SLEC config.
func slecTradeoffPoint(params placement.SLECParams, pl placement.SLECPlacement, opts Options) (TradeoffPoint, error) {
	r, err := ecdur.SLEC(paperTopo(), params, pl, opts.lambda())
	if err != nil {
		return TradeoffPoint{}, err
	}
	tp, err := throughput.MeasureRS(params.K, params.P, throughput.DefaultShardBytes, measureDur(opts))
	if err != nil {
		return TradeoffPoint{}, err
	}
	return TradeoffPoint{
		Label:       r.Label,
		Overhead:    float64(params.P) / float64(params.Width()),
		Nines:       r.Nines,
		BytesPerSec: tp,
	}, nil
}

// Fig12 builds the MLEC-vs-SLEC durability/throughput scatter (§5.1.2).
func Fig12(opts Options) (*Fig12Result, error) {
	res := &Fig12Result{}
	mlecCfgs := mlecConfigs30
	slecCfgs := slecConfigs30
	if opts.Quick {
		mlecCfgs = mlecCfgs[:3]
		slecCfgs = slecCfgs[:3]
	}
	for _, p := range mlecCfgs {
		a, err := mlecTradeoffPoint(p, placement.SchemeCC, opts)
		if err != nil {
			return nil, err
		}
		res.PanelA = append(res.PanelA, a)
		b, err := mlecTradeoffPoint(p, placement.SchemeCD, opts)
		if err != nil {
			return nil, err
		}
		res.PanelB = append(res.PanelB, b)
	}
	for _, p := range slecCfgs {
		for _, pl := range []placement.SLECPlacement{placement.LocalCp, placement.NetworkCp} {
			if _, err := placement.NewSLECLayout(paperTopo(), p, pl); err != nil {
				continue // width doesn't divide this placement's pools
			}
			pt, err := slecTradeoffPoint(p, pl, opts)
			if err != nil {
				return nil, err
			}
			res.PanelA = append(res.PanelA, pt)
		}
		for _, pl := range []placement.SLECPlacement{placement.LocalDp, placement.NetworkDp} {
			if _, err := placement.NewSLECLayout(paperTopo(), p, pl); err != nil {
				continue
			}
			pt, err := slecTradeoffPoint(p, pl, opts)
			if err != nil {
				return nil, err
			}
			res.PanelB = append(res.PanelB, pt)
		}
	}
	return res, nil
}

// Render prints both panels, 12a before 12b.
func (r *Fig12Result) Render(w io.Writer) error {
	panels := []struct {
		name string
		pts  []TradeoffPoint
	}{
		{"Figure 12a: C/C MLEC vs clustered SLEC", r.PanelA},
		{"Figure 12b: C/D MLEC vs declustered SLEC", r.PanelB},
	}
	for _, p := range panels {
		fmt.Fprintln(w, p.name)
		if err := renderPoints(w, p.pts); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func renderPoints(w io.Writer, pts []TradeoffPoint) error {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.0f%%", p.Overhead*100),
			fmt.Sprintf("%.1f", p.Nines),
			fmt.Sprintf("%.2f GB/s", p.BytesPerSec/1e9),
		})
	}
	return render.Table(w, []string{"config", "overhead", "durability (nines)", "encode throughput"}, rows)
}

// Fig15Result carries the MLEC-vs-LRC tradeoff scatter.
type Fig15Result struct {
	Points []TradeoffPoint
}

// lrcConfigs30 lists ≈30%-overhead LRCs ((l+r)/(k+l+r) ≈ 0.3).
var lrcConfigs30 = []placement.LRCParams{
	{K: 7, L: 1, R: 2},
	{K: 10, L: 2, R: 2},
	{K: 14, L: 2, R: 4},
	{K: 21, L: 3, R: 6},
	{K: 28, L: 4, R: 8},
}

// Fig15 builds the C/D-vs-LRC-Dp durability/throughput scatter (§5.2.2).
func Fig15(opts Options) (*Fig15Result, error) {
	res := &Fig15Result{}
	mlecCfgs := mlecConfigs30
	lrcCfgs := lrcConfigs30
	if opts.Quick {
		mlecCfgs = mlecCfgs[:3]
		lrcCfgs = lrcCfgs[:3]
	}
	for _, p := range mlecCfgs {
		pt, err := mlecTradeoffPoint(p, placement.SchemeCD, opts)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	for _, p := range lrcCfgs {
		r, err := ecdur.LRC(paperTopo(), p, opts.lambda())
		if err != nil {
			return nil, err
		}
		tp, err := throughput.MeasureLRC(p.K, p.L, p.R, throughput.DefaultShardBytes, measureDur(opts))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, TradeoffPoint{
			Label:       r.Label,
			Overhead:    float64(p.L+p.R) / float64(p.Width()),
			Nines:       r.Nines,
			BytesPerSec: tp,
		})
	}
	return res, nil
}

// Render prints the scatter.
func (r *Fig15Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 15: C/D MLEC vs LRC-Dp durability/throughput tradeoff")
	return renderPoints(w, r.Points)
}

func init() {
	register("fig11", "encoding throughput heatmap over (k, p)",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig11(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig12", "MLEC vs SLEC durability/throughput tradeoff at ~30% overhead",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig12(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig15", "MLEC vs LRC durability/throughput tradeoff at ~30% overhead",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig15(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
