package experiments

import (
	"context"
	"fmt"
	"io"

	"mlec/internal/bwmodel"
	"mlec/internal/placement"
	"mlec/internal/render"
	"mlec/internal/repair"
)

// Fig6Tab2Result carries the repair-size/bandwidth/time rows shared by
// Table 2 and Figure 6.
type Fig6Tab2Result struct {
	Rows []bwmodel.Row
}

// Fig6Tab2 evaluates single-disk and catastrophic-pool repair for the
// four MLEC schemes (§4.1.2).
func Fig6Tab2(_ Options) (*Fig6Tab2Result, error) {
	rows, err := bwmodel.Table2(paperTopo(), paperParams())
	if err != nil {
		return nil, err
	}
	return &Fig6Tab2Result{Rows: rows}, nil
}

// Render prints Table 2 with the Figure 6 repair times appended.
func (r *Fig6Tab2Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Table 2 + Figure 6: repair size, available repair bandwidth, repair time")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Scheme.String(),
			render.Bytes(row.DiskRepairBytes),
			fmt.Sprintf("%.0f MB/s", row.DiskRepairBW/1e6),
			render.Hours(row.DiskRepairHours),
			render.Bytes(row.PoolRepairBytes),
			fmt.Sprintf("%.0f MB/s", row.PoolRepairBW/1e6),
			render.Hours(row.PoolRepairHours),
		})
	}
	return render.Table(w, []string{
		"scheme", "disk size", "disk repair BW", "disk repair time",
		"pool size", "pool repair BW", "pool repair time (R_ALL)",
	}, rows)
}

// Fig8Row is one scheme's cross-rack traffic under the four methods.
type Fig8Row struct {
	Scheme  placement.Scheme
	Traffic [4]float64 // bytes, indexed by repair.Method
}

// Fig8Result carries Figure 8.
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 quantifies cross-rack repair traffic of the four repair methods on
// a catastrophic local pool failure (§4.2.1).
func Fig8(_ Options) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(paperTopo(), paperParams(), s)
		if err != nil {
			return nil, err
		}
		an := repair.NewAnalyzer(l)
		row := Fig8Row{Scheme: s}
		for _, m := range repair.AllMethods {
			a, err := an.AnalyzeBurst(m)
			if err != nil {
				return nil, err
			}
			row.Traffic[int(m)] = a.CrossRackTrafficBytes
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Figure 8 bars as a table.
func (r *Fig8Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 8: cross-rack repair traffic of one catastrophic local pool failure")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Scheme.String()}
		for _, m := range repair.AllMethods {
			cells = append(cells, render.Bytes(row.Traffic[int(m)]))
		}
		rows = append(rows, cells)
	}
	return render.Table(w, []string{"scheme", "R_ALL", "R_FCO", "R_HYB", "R_MIN"}, rows)
}

// Fig9Row is one scheme's repair-time breakdown under the four methods.
type Fig9Row struct {
	Scheme   placement.Scheme
	Analyses [4]repair.Analysis
}

// Fig9Result carries Figure 9.
type Fig9Result struct{ Rows []Fig9Row }

// Fig9 measures network-level and local repair time per method (§4.2.2).
func Fig9(_ Options) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(paperTopo(), paperParams(), s)
		if err != nil {
			return nil, err
		}
		an := repair.NewAnalyzer(l)
		row := Fig9Row{Scheme: s}
		for _, m := range repair.AllMethods {
			a, err := an.AnalyzeBurst(m)
			if err != nil {
				return nil, err
			}
			row.Analyses[int(m)] = a
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints network (-N) and local (-L) repair hours per method.
func (r *Fig9Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9: repair time of one catastrophic local pool failure")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Scheme.String()}
		for _, m := range repair.AllMethods {
			a := row.Analyses[int(m)]
			cells = append(cells, fmt.Sprintf("%s + %s local",
				render.Hours(a.NetworkRepairHours), render.Hours(a.LocalRepairHours)))
		}
		rows = append(rows, cells)
	}
	return render.Table(w, []string{"scheme", "R_ALL (net+local)", "R_FCO", "R_HYB", "R_MIN"}, rows)
}

func init() {
	register("tab2", "repair size and available repair bandwidth per MLEC scheme",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig6Tab2(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig6", "repair time under single-disk and catastrophic local failures",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig6Tab2(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig8", "cross-rack repair traffic of the four repair methods",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig8(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("fig9", "network/local repair time of the four repair methods",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := Fig9(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
