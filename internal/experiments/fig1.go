package experiments

import (
	"context"
	"fmt"
	"io"

	"mlec/internal/render"
)

// ScalingPoint is one year of the Figure 1 storage-scaling series.
type ScalingPoint struct {
	Year int
	// BackblazeDisksK and DOEDisksK are managed-disk counts in
	// thousands (panel a).
	BackblazeDisksK float64
	DOEDisksK       float64
	// MaxCapacityTB and AvgSoldTB are per-disk capacities (panel b).
	MaxCapacityTB float64
	AvgSoldTB     float64
}

// Fig1Dataset is the storage-scaling series digitized from the paper's
// Figure 1 (Backblaze fleet reports and US DOE laboratory systems; the
// annotated values 20/44/103/202 and 1.0/2.0/3.5 appear verbatim in the
// figure).
var Fig1Dataset = []ScalingPoint{
	{Year: 2010, BackblazeDisksK: 5, DOEDisksK: 5, MaxCapacityTB: 3, AvgSoldTB: 1.2},
	{Year: 2013, BackblazeDisksK: 20, DOEDisksK: 10, MaxCapacityTB: 6, AvgSoldTB: 2.2},
	{Year: 2016, BackblazeDisksK: 44, DOEDisksK: 20, MaxCapacityTB: 10, AvgSoldTB: 4.4},
	{Year: 2019, BackblazeDisksK: 103, DOEDisksK: 28, MaxCapacityTB: 16, AvgSoldTB: 8.0},
	{Year: 2022, BackblazeDisksK: 202, DOEDisksK: 35, MaxCapacityTB: 20, AvgSoldTB: 12.3},
}

// Fig1Result carries the series plus derived growth factors.
type Fig1Result struct {
	Points []ScalingPoint
	// BackblazeGrowth and CapacityGrowth are first→last multipliers —
	// the "scale keeps growing" motivation of §1.
	BackblazeGrowth float64
	CapacityGrowth  float64
}

// Fig1 returns the storage-scaling dataset.
func Fig1(_ Options) *Fig1Result {
	first, last := Fig1Dataset[0], Fig1Dataset[len(Fig1Dataset)-1]
	return &Fig1Result{
		Points:          Fig1Dataset,
		BackblazeGrowth: last.BackblazeDisksK / first.BackblazeDisksK,
		CapacityGrowth:  last.MaxCapacityTB / first.MaxCapacityTB,
	}
}

// Render writes the two panels as a table.
func (r *Fig1Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: storage scaling over the years")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Year),
			fmt.Sprintf("%.0f", p.BackblazeDisksK),
			fmt.Sprintf("%.1f", p.DOEDisksK),
			fmt.Sprintf("%.0f", p.MaxCapacityTB),
			fmt.Sprintf("%.1f", p.AvgSoldTB),
		})
	}
	if err := render.Table(w, []string{"year", "backblaze (K disks)", "US DOE (K disks)", "max TB/disk", "avg sold TB/disk"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "growth 2010→2022: %.0f× disks (Backblaze), %.1f× max capacity\n",
		r.BackblazeGrowth, r.CapacityGrowth)
	return err
}

func init() {
	register("fig1", "storage scaling dataset (disks per system, capacity per disk)",
		func(ctx context.Context, opts Options, w io.Writer) error { return Fig1(opts).Render(w) })
}
