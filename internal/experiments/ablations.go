package experiments

import (
	"context"
	"fmt"
	"io"

	"mlec/internal/burst"
	"mlec/internal/bwmodel"
	"mlec/internal/ecdur"
	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/render"
	"mlec/internal/repair"
	"mlec/internal/splitting"
	"mlec/internal/throughput"
)

// DetectionPoint is one row of the detection-time ablation.
type DetectionPoint struct {
	DetectionHours float64
	MLECNines      float64 // C/D with R_MIN
	LRCNines       float64 // (14,2,4) LRC-Dp
}

// AblationDetectionResult sweeps failure-detection time.
type AblationDetectionResult struct {
	Points []DetectionPoint
}

// AblationDetection explores the paper's stated future-work question
// (§5.2.2): with much faster failure detection (e.g. 1 minute), LRC-Dp's
// durability could approach or pass MLEC's, because both are bottlenecked
// by the detection floor once repair is optimized (§4.2.3 F#3).
func AblationDetection(opts Options) (*AblationDetectionResult, error) {
	l, err := placement.NewLayout(paperTopo(), paperParams(), placement.SchemeCD)
	if err != nil {
		return nil, err
	}
	m := markov.MLECRAllModel{Layout: l, LambdaPerHour: opts.lambda()}
	rate, err := m.CatRatePerPoolHour()
	if err != nil {
		return nil, err
	}
	s1 := splitting.Stage1FromSplit(poolSimConfig(placement.Declustered, opts),
		poolsim.SplitResult{CatRatePerPoolHour: rate})

	lrcParams := placement.LRCParams{K: 14, L: 2, R: 4}
	res := &AblationDetectionResult{}
	for _, det := range []float64{1.0 / 60, 5.0 / 60, 0.5, 2, 8} {
		md, err := splitting.DurabilityDetect(l, repair.RMin, s1, det)
		if err != nil {
			return nil, err
		}
		ld, err := ecdur.LRCDetect(paperTopo(), lrcParams, opts.lambda(), det)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DetectionPoint{
			DetectionHours: det,
			MLECNines:      md.Nines,
			LRCNines:       ld.Nines,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationDetectionResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: durability vs failure-detection time (C/D R_MIN vs LRC-Dp (14,2,4))")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			render.Hours(p.DetectionHours),
			fmt.Sprintf("%.1f", p.MLECNines),
			fmt.Sprintf("%.1f", p.LRCNines),
		})
	}
	return render.Table(w, []string{"detection", "MLEC C/D nines", "LRC-Dp nines"}, rows)
}

// PoolSizePoint is one row of the local-Dp pool-size ablation.
type PoolSizePoint struct {
	PoolDisks       int
	DiskRepairHours float64 // single-disk rebuild (faster in larger pools)
	BurstPDL        float64 // PDL of a 60-failure burst in pn+1 racks
	PoolRepairHours float64 // R_ALL catastrophic-pool rebuild (larger pools hurt)
}

// AblationPoolSizeResult sweeps the declustered pool size — the central
// C/D-vs-C/C tension of §4.1 (fast repair vs burst tolerance vs
// catastrophic-repair bill).
type AblationPoolSizeResult struct {
	Points []PoolSizePoint
}

// AblationPoolSize varies the enclosure (= local-Dp pool) size while
// holding the system at 57,600 disks.
func AblationPoolSize(opts Options) (*AblationPoolSizeResult, error) {
	trials := 400
	if opts.Quick {
		trials = 120
	}
	res := &AblationPoolSizeResult{}
	for _, poolDisks := range []int{40, 60, 120, 240} {
		topo := paperTopo()
		topo.DisksPerEnclosure = poolDisks
		topo.EnclosuresPerRack = 960 / poolDisks
		l, err := placement.NewLayout(topo, paperParams(), placement.SchemeCD)
		if err != nil {
			return nil, err
		}
		bm := bwmodel.New(l)
		r, err := burst.PDL(burst.NewMLECEvaluator(l), paperParams().PN+1, 60, trials, opts.Seed)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, PoolSizePoint{
			PoolDisks:       poolDisks,
			DiskRepairHours: bm.SingleDiskRepairHours(),
			BurstPDL:        r.PDL,
			PoolRepairHours: bm.PoolRepairHours(),
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationPoolSizeResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: local-Dp pool size (C/D scheme, 57,600 disks)")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.PoolDisks),
			render.Hours(p.DiskRepairHours),
			fmt.Sprintf("%.3g", p.BurstPDL),
			render.Hours(p.PoolRepairHours),
		})
	}
	return render.Table(w, []string{
		"pool disks", "single-disk repair", "burst PDL (x=pn+1, y=60)", "R_ALL pool repair",
	}, rows)
}

// StripeWidthPoint is one row of the local-stripe-width ablation.
type StripeWidthPoint struct {
	Params placement.Params
	// LostStripeFraction is the share of a 120-disk Dp pool's stripes
	// lost when pl+1 disks fail simultaneously — the quantity behind
	// R_HYB's savings (wider stripes intersect more failures).
	LostStripeFraction float64
	RHYBTrafficBytes   float64
	RMINTrafficBytes   float64
}

// AblationStripeWidthResult sweeps the local code width at fixed pool
// size.
type AblationStripeWidthResult struct {
	Points []StripeWidthPoint
}

// AblationStripeWidth varies the local (kl+pl) code inside the 120-disk
// declustered pool (the paper fixes (17+3)) and reports how the stripe
// width drives the lost-stripe fraction and therefore the advanced
// repair methods' network traffic.
func AblationStripeWidth(_ Options) (*AblationStripeWidthResult, error) {
	res := &AblationStripeWidthResult{}
	for _, local := range []struct{ kl, pl int }{
		{5, 1}, {10, 2}, {17, 3}, {25, 5}, {34, 6},
	} {
		params := paperParams()
		params.KL, params.PL = local.kl, local.pl
		l, err := placement.NewLayout(paperTopo(), params, placement.SchemeCD)
		if err != nil {
			return nil, err
		}
		an := repair.NewAnalyzer(l)
		prof := repair.BurstProfile(l, params.PL+1)
		hyb, err := an.AnalyzeBurst(repair.RHYB)
		if err != nil {
			return nil, err
		}
		min, err := an.AnalyzeBurst(repair.RMin)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, StripeWidthPoint{
			Params:             params,
			LostStripeFraction: prof[params.PL+1] / l.LocalStripesPerPool(),
			RHYBTrafficBytes:   hyb.CrossRackTrafficBytes,
			RMINTrafficBytes:   min.CrossRackTrafficBytes,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationStripeWidthResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: local stripe width vs lost-stripe fraction and repair traffic (C/D, 120-disk pools)")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Params.String(),
			fmt.Sprintf("%.3g", p.LostStripeFraction),
			render.Bytes(p.RHYBTrafficBytes),
			render.Bytes(p.RMINTrafficBytes),
		})
	}
	return render.Table(w, []string{"config", "lost-stripe fraction", "R_HYB traffic", "R_MIN traffic"}, rows)
}

func init() {
	register("ablation-detection", "durability vs failure-detection time (MLEC vs LRC)",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := AblationDetection(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("ablation-poolsize", "local-Dp pool size vs repair speed and burst PDL",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := AblationPoolSize(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	register("ablation-stripewidth", "local stripe width vs lost-stripe fraction and repair traffic",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := AblationStripeWidth(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}

// CorePoint is one row of the encoder-parallelism ablation.
type CorePoint struct {
	Workers     int
	BytesPerSec float64
	Speedup     float64 // vs 1 worker
}

// AblationCoresResult sweeps encoder goroutines.
type AblationCoresResult struct {
	Params placement.Params
	Points []CorePoint
}

// AblationCores measures multi-core encoding throughput for the paper's
// local (17+3) code — quantifying §5.1.2 F#2's remark that throughput can
// be bought with cores at the cost of "imperfect parallelism".
func AblationCores(opts Options) (*AblationCoresResult, error) {
	dur := measureDur(opts) * 3
	params := paperParams()
	res := &AblationCoresResult{Params: params}
	base := 0.0
	for _, workers := range []int{1, 2, 4, 8} {
		v, err := throughput.MeasureRSParallel(params.KL, params.PL, 1<<20, workers, dur)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			base = v
		}
		res.Points = append(res.Points, CorePoint{
			Workers: workers, BytesPerSec: v, Speedup: v / base,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationCoresResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Ablation: encoder parallelism for the (%d+%d) local code\n", r.Params.KL, r.Params.PL)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.2f GB/s", p.BytesPerSec/1e9),
			fmt.Sprintf("%.2f×", p.Speedup),
		})
	}
	return render.Table(w, []string{"workers", "throughput", "speedup"}, rows)
}

func init() {
	register("ablation-cores", "multi-core encoding throughput scaling",
		func(ctx context.Context, opts Options, w io.Writer) error {
			r, err := AblationCores(opts)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
}
