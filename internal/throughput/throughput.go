// Package throughput measures single-goroutine erasure-encoding
// throughput of the real codecs — the reproduction of the paper's
// Figure 11 (ISA-L on one Xeon core) and the throughput axes of
// Figures 12 and 15.
//
// Absolute numbers are below ISA-L's (pure Go, no SIMD), but the shape —
// throughput falling with p (parity work is O(k·p) per stripe) and with
// wide k (cache pressure), MLEC beating wide SLEC at equal durability —
// depends only on the arithmetic volume, which is identical.
package throughput

import (
	"fmt"
	"time"

	"mlec/internal/lrc"
	"mlec/internal/placement"
	"mlec/internal/rs"
)

// DefaultShardBytes is the shard size used by the measurements; with a
// (k+p) stripe this keeps the working set in the same cache regime the
// paper's 128 KiB chunks produce.
const DefaultShardBytes = 128 << 10

// encoder abstracts the two codecs for measurement.
type encoder interface {
	Encode(shards [][]byte) error
}

// measure runs enc.Encode in a loop for at least dur and returns the
// data-ingest throughput in bytes/second (k data shards per iteration).
func measure(enc encoder, shards [][]byte, dataShards, shardBytes int, dur time.Duration) (float64, error) {
	// Warm up once (builds tables into cache, faults pages).
	if err := enc.Encode(shards); err != nil {
		return 0, err
	}
	var iters int
	start := time.Now()
	var elapsed time.Duration
	for elapsed < dur {
		if err := enc.Encode(shards); err != nil {
			return 0, err
		}
		iters++
		elapsed = time.Since(start)
	}
	bytes := float64(iters) * float64(dataShards) * float64(shardBytes)
	return bytes / elapsed.Seconds(), nil
}

func makeShards(total, shardBytes int) [][]byte {
	shards := make([][]byte, total)
	for i := range shards {
		shards[i] = make([]byte, shardBytes)
		for j := range shards[i] {
			shards[i][j] = byte(i*31 + j)
		}
	}
	return shards
}

// MeasureRS returns the single-goroutine encoding throughput of a (k+p)
// Reed–Solomon code in bytes of data per second.
func MeasureRS(k, p, shardBytes int, dur time.Duration) (float64, error) {
	if p == 0 {
		return 0, fmt.Errorf("throughput: p=0 has nothing to encode")
	}
	codec, err := rs.New(k, p)
	if err != nil {
		return 0, err
	}
	return measure(codec, makeShards(k+p, shardBytes), k, shardBytes, dur)
}

// MeasureLRC returns the single-goroutine encoding throughput of a
// (k, l, r) LRC in bytes of data per second (both encoding stages).
func MeasureLRC(k, l, r, shardBytes int, dur time.Duration) (float64, error) {
	codec, err := lrc.New(k, l, r)
	if err != nil {
		return 0, err
	}
	return measure(codec, makeShards(codec.TotalShards(), shardBytes), k, shardBytes, dur)
}

// MeasureMLEC returns the end-to-end MLEC encoding throughput: every
// byte passes the network-level (kn+pn) encoder and then the local-level
// (kl+pl) encoder, so the ingest rates compose harmonically.
func MeasureMLEC(params placement.Params, shardBytes int, dur time.Duration) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	tn, err := MeasureRS(params.KN, params.PN, shardBytes, dur)
	if err != nil {
		return 0, fmt.Errorf("throughput: network level: %w", err)
	}
	tl, err := MeasureRS(params.KL, params.PL, shardBytes, dur)
	if err != nil {
		return 0, fmt.Errorf("throughput: local level: %w", err)
	}
	return Compose(tn, tl), nil
}

// Compose combines two pipeline stage throughputs: a byte spending
// 1/a + 1/b seconds total flows at the harmonic composition.
func Compose(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return 1 / (1/a + 1/b)
}

// Cell is one Figure 11 heatmap entry.
type Cell struct {
	K, P        int
	BytesPerSec float64
}

// Fig11Grid measures the (k, p) encoding-throughput heatmap. ks and ps
// select the grid; dur is the per-cell measurement budget.
func Fig11Grid(ks, ps []int, shardBytes int, dur time.Duration) ([]Cell, error) {
	cells := make([]Cell, 0, len(ks)*len(ps))
	for _, p := range ps {
		for _, k := range ks {
			v, err := MeasureRS(k, p, shardBytes, dur)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{K: k, P: p, BytesPerSec: v})
		}
	}
	return cells, nil
}

// MeasureRSParallel is MeasureRS with the encode split across `workers`
// goroutines — the paper's "more CPU cores" option for raising encoding
// throughput (§5.1.2 F#2). Scaling is imperfect (memory bandwidth and
// split overhead), which the ablation-cores experiment quantifies.
func MeasureRSParallel(k, p, shardBytes, workers int, dur time.Duration) (float64, error) {
	if p == 0 {
		return 0, fmt.Errorf("throughput: p=0 has nothing to encode")
	}
	codec, err := rs.New(k, p)
	if err != nil {
		return 0, err
	}
	shards := makeShards(k+p, shardBytes)
	if err := codec.EncodeParallel(shards, workers); err != nil {
		return 0, err
	}
	var iters int
	start := time.Now()
	var elapsed time.Duration
	for elapsed < dur {
		if err := codec.EncodeParallel(shards, workers); err != nil {
			return 0, err
		}
		iters++
		elapsed = time.Since(start)
	}
	return float64(iters) * float64(k) * float64(shardBytes) / elapsed.Seconds(), nil
}
