package throughput

import (
	"testing"
	"time"

	"mlec/internal/placement"
)

const testDur = 8 * time.Millisecond

func TestMeasureRSPositive(t *testing.T) {
	v, err := MeasureRS(10, 2, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("throughput %g", v)
	}
	// A table-based pure-Go codec should exceed this floor on any
	// machine, even under the race detector's ~10× instrumentation.
	if v < 5e6 {
		t.Errorf("suspiciously slow: %g B/s", v)
	}
}

func TestMoreParityLowerThroughput(t *testing.T) {
	// Figure 11's vertical trend: throughput falls as p grows. Parity
	// work per data byte is proportional to p, so p=8 must be several
	// times slower than p=1 — well beyond measurement noise.
	lo, err := MeasureRS(10, 8, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MeasureRS(10, 1, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 2*lo {
		t.Errorf("p=1 (%.0f MB/s) not ≫ p=8 (%.0f MB/s)", hi/1e6, lo/1e6)
	}
}

func TestMeasureRSErrors(t *testing.T) {
	if _, err := MeasureRS(10, 0, 1024, testDur); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := MeasureRS(0, 2, 1024, testDur); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCompose(t *testing.T) {
	if got := Compose(100, 100); got != 50 {
		t.Errorf("Compose(100,100) = %g", got)
	}
	if got := Compose(0, 100); got != 0 {
		t.Errorf("Compose(0,100) = %g", got)
	}
	// Composition is bounded by the slower stage.
	if got := Compose(10, 1000); got >= 10 {
		t.Errorf("Compose not below min: %g", got)
	}
}

func TestMeasureMLEC(t *testing.T) {
	params := placement.Params{KN: 4, PN: 1, KL: 4, PL: 1}
	mlec, err := MeasureMLEC(params, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	single, err := MeasureRS(4, 1, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if mlec <= 0 || mlec >= single {
		t.Errorf("MLEC throughput %g must be positive and below one stage's %g", mlec, single)
	}
}

func TestMeasureLRC(t *testing.T) {
	v, err := MeasureLRC(4, 2, 2, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatal("zero LRC throughput")
	}
	// LRC(4,2,2): 2 XOR locals + 2 RS globals; must be slower than a
	// plain (4+1) RS but faster than... at least positive and slower
	// than the single-parity code.
	rsv, err := MeasureRS(4, 1, 16<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if v >= rsv {
		t.Errorf("LRC (%g) should not beat (4+1) RS (%g)", v, rsv)
	}
	if _, err := MeasureLRC(5, 2, 2, 1024, testDur); err == nil {
		t.Error("k%l != 0 accepted")
	}
}

func TestFig11GridShape(t *testing.T) {
	cells, err := Fig11Grid([]int{2, 10}, []int{1, 4}, 8<<10, testDur)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.BytesPerSec <= 0 {
			t.Errorf("cell (%d,%d) zero throughput", c.K, c.P)
		}
	}
}

func TestMeasureRSParallel(t *testing.T) {
	// Correct throughput at 1 and many workers; multi-worker must not
	// be catastrophically slower (perfect scaling isn't asserted — CI
	// machines vary — only sanity).
	one, err := MeasureRSParallel(10, 4, 512<<10, 1, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MeasureRSParallel(10, 4, 512<<10, 4, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("(10+4) encode: 1 worker %.0f MB/s, 4 workers %.0f MB/s", one/1e6, many/1e6)
	if many < one/2 {
		t.Errorf("parallel encode collapsed: %g vs %g", many, one)
	}
	if _, err := MeasureRSParallel(10, 0, 1024, 2, time.Millisecond); err == nil {
		t.Error("p=0 accepted")
	}
}
