package failure

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace drives the trace parser with arbitrary input and checks
// its invariants: it never panics, every accepted event is finite and
// non-negative, the returned trace is sorted, and a write/re-parse
// round trip preserves the event sequence (times are serialized at
// fixed precision, so only the disk order is compared exactly).
func FuzzParseTrace(f *testing.F) {
	f.Add("0,1.5\n3,2.0\n")
	f.Add("# comment\n\n1, 0.25\n")
	f.Add("9,12")
	f.Add("1,NaN\n")
	f.Add("1,Inf\n")
	f.Add("-1,3\n")
	f.Add("1,-3\n")
	f.Add("a,b\n")
	f.Add("5,3,1\n")
	f.Add("2,1e308\n")
	f.Add("7,0.0000001\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseTrace(strings.NewReader(s))
		if err != nil {
			return
		}
		if !tr.Sorted() {
			t.Fatalf("ParseTrace returned an unsorted trace")
		}
		for _, e := range tr.Events {
			if e.Disk < 0 {
				t.Fatalf("accepted negative disk %d", e.Disk)
			}
			if !(e.TimeHours >= 0) { // also catches NaN
				t.Fatalf("accepted invalid time %v", e.TimeHours)
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		tr2, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized trace failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d != %d", len(tr2.Events), len(tr.Events))
		}
		// WriteTo emits times in non-decreasing order and rounding is
		// monotone, so ParseTrace must not have re-sorted: the disk
		// sequence survives exactly.
		for i := range tr.Events {
			if tr2.Events[i].Disk != tr.Events[i].Disk {
				t.Fatalf("round trip reordered events at %d: disk %d != %d",
					i, tr2.Events[i].Disk, tr.Events[i].Disk)
			}
		}
	})
}
