// Package failure provides the disk-failure sources used by the
// simulators: exponential arrivals parameterized by annual failure rate
// (the paper's long-term durability setup), Weibull arrivals (bathtub-ish
// wearout studies), and replayable failure traces — the synthetic stand-in
// for the operational traces referenced in the paper (§3 "based on
// distributions, rules, or real traces").
package failure

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// DefaultDetectionDelayHours is the paper's 30-minute failure detection
// time (§3).
const DefaultDetectionDelayHours = 0.5

// HoursPerYear converts AFR-style annual rates to the simulator's hour
// clock.
const HoursPerYear = 8760.0

// TTFDistribution samples times-to-failure in hours.
type TTFDistribution interface {
	// Sample draws a time-to-failure in hours using the provided RNG.
	Sample(rng *rand.Rand) float64
	// MeanHours returns the distribution mean, used by analytic models.
	MeanHours() float64
}

// Exponential is a memoryless TTF distribution specified by annual
// failure rate: P(fail within a year) = AFR.
type Exponential struct {
	// RatePerHour is the hazard rate λ.
	RatePerHour float64
}

// NewExponentialAFR converts an annual failure rate (e.g. 0.01 for 1%)
// into an exponential TTF distribution with λ = −ln(1−AFR)/8760.
func NewExponentialAFR(afr float64) (Exponential, error) {
	if afr <= 0 || afr >= 1 {
		return Exponential{}, fmt.Errorf("failure: AFR %g outside (0,1)", afr)
	}
	return Exponential{RatePerHour: -math.Log1p(-afr) / HoursPerYear}, nil
}

// MustExponentialAFR is NewExponentialAFR but panics on error.
func MustExponentialAFR(afr float64) Exponential {
	d, err := NewExponentialAFR(afr)
	if err != nil {
		panic(err)
	}
	return d
}

// AFR returns the implied annual failure rate.
func (e Exponential) AFR() float64 { return -math.Expm1(-e.RatePerHour * HoursPerYear) }

// Sample implements TTFDistribution.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() / e.RatePerHour }

// MeanHours implements TTFDistribution.
func (e Exponential) MeanHours() float64 { return 1 / e.RatePerHour }

// Weibull is a TTF distribution with shape k and scale λ (hours):
// shape < 1 models infant mortality, > 1 models wearout.
type Weibull struct {
	Shape, ScaleHours float64
}

// Sample implements TTFDistribution via inverse-CDF.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return w.ScaleHours * math.Pow(-math.Log(u), 1/w.Shape)
}

// MeanHours implements TTFDistribution: λ·Γ(1+1/k).
func (w Weibull) MeanHours() float64 {
	g, _ := math.Lgamma(1 + 1/w.Shape)
	return w.ScaleHours * math.Exp(g)
}

// Event is one failure in a trace.
type Event struct {
	Disk      int     // flat disk index
	TimeHours float64 // failure time since trace start
}

// Trace is a time-ordered list of disk failures.
type Trace struct {
	Events []Event
}

// Sorted reports whether events are in non-decreasing time order.
func (t *Trace) Sorted() bool {
	return sort.SliceIsSorted(t.Events, func(i, j int) bool {
		return t.Events[i].TimeHours < t.Events[j].TimeHours
	})
}

// Sort orders events by time.
func (t *Trace) Sort() {
	sort.Slice(t.Events, func(i, j int) bool {
		return t.Events[i].TimeHours < t.Events[j].TimeHours
	})
}

// GenerateTrace synthesizes a failure trace for `disks` disks over
// `years` years, drawing failure times from dist (each disk fails at most
// once per generated life; replacements re-enter with a fresh draw).
func GenerateTrace(disks int, years float64, dist TTFDistribution, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	horizon := years * HoursPerYear
	tr := &Trace{}
	for d := 0; d < disks; d++ {
		t := dist.Sample(rng)
		for t < horizon {
			tr.Events = append(tr.Events, Event{Disk: d, TimeHours: t})
			t += dist.Sample(rng)
		}
	}
	tr.Sort()
	return tr
}

// WriteTo serializes the trace as "disk,timeHours" lines.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	bw := bufio.NewWriter(w)
	for _, e := range t.Events {
		c, err := fmt.Fprintf(bw, "%d,%.6f\n", e.Disk, e.TimeHours)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ParseTrace reads the WriteTo format. Blank lines and lines starting
// with '#' are ignored.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("failure: trace line %d: want 'disk,timeHours', got %q", lineNo, line)
		}
		disk, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("failure: trace line %d: bad disk: %w", lineNo, err)
		}
		tm, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("failure: trace line %d: bad time: %w", lineNo, err)
		}
		// ParseFloat happily returns NaN and ±Inf for "NaN"/"Inf"
		// spellings, and NaN also slips through the tm < 0 check below
		// (every NaN comparison is false) — reject non-finite times
		// explicitly before they poison the event queue.
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return nil, fmt.Errorf("failure: trace line %d: non-finite time %q", lineNo, strings.TrimSpace(parts[1]))
		}
		if disk < 0 || tm < 0 {
			return nil, fmt.Errorf("failure: trace line %d: negative field", lineNo)
		}
		tr.Events = append(tr.Events, Event{Disk: disk, TimeHours: tm})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !tr.Sorted() {
		tr.Sort()
	}
	return tr, nil
}
