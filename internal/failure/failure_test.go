package failure

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestExponentialAFRRoundTrip(t *testing.T) {
	for _, afr := range []float64{0.005, 0.01, 0.02, 0.1} {
		d, err := NewExponentialAFR(afr)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.AFR(); math.Abs(got-afr) > 1e-12 {
			t.Errorf("AFR round trip %g → %g", afr, got)
		}
	}
	for _, bad := range []float64{0, 1, -0.1, 2} {
		if _, err := NewExponentialAFR(bad); err == nil {
			t.Errorf("AFR %g accepted", bad)
		}
	}
}

func TestExponentialSampleMean(t *testing.T) {
	d := MustExponentialAFR(0.01)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	mean := sum / n
	if rel := math.Abs(mean-d.MeanHours()) / d.MeanHours(); rel > 0.02 {
		t.Errorf("sample mean %g vs analytic %g (rel %g)", mean, d.MeanHours(), rel)
	}
	// 1% AFR → mean TTF ≈ 100 years.
	if y := d.MeanHours() / HoursPerYear; y < 99 || y > 101 {
		t.Errorf("mean TTF %g years, want ≈ 99.5", y)
	}
}

func TestWeibullSampleMean(t *testing.T) {
	w := Weibull{Shape: 1.5, ScaleHours: 1000}
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := w.Sample(rng)
		if v <= 0 {
			t.Fatal("non-positive sample")
		}
		sum += v
	}
	mean := sum / n
	if rel := math.Abs(mean-w.MeanHours()) / w.MeanHours(); rel > 0.02 {
		t.Errorf("sample mean %g vs analytic %g", mean, w.MeanHours())
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w := Weibull{Shape: 1, ScaleHours: 500}
	if math.Abs(w.MeanHours()-500) > 1e-9 {
		t.Errorf("shape-1 Weibull mean %g, want 500", w.MeanHours())
	}
}

func TestGenerateTrace(t *testing.T) {
	d := MustExponentialAFR(0.5) // high AFR for a dense trace
	tr := GenerateTrace(100, 2, d, 42)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	if !tr.Sorted() {
		t.Fatal("trace not sorted")
	}
	for _, e := range tr.Events {
		if e.Disk < 0 || e.Disk >= 100 {
			t.Fatalf("disk %d out of range", e.Disk)
		}
		if e.TimeHours < 0 || e.TimeHours >= 2*HoursPerYear {
			t.Fatalf("time %g out of range", e.TimeHours)
		}
	}
	// Expected count ≈ disks·years·rate·8760 ≈ 100·2·0.693 ≈ 139.
	if n := len(tr.Events); n < 80 || n > 220 {
		t.Errorf("trace has %d events, expected ≈139", n)
	}
	// Determinism.
	tr2 := GenerateTrace(100, 2, d, 42)
	if len(tr2.Events) != len(tr.Events) {
		t.Fatal("same seed, different trace")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	d := MustExponentialAFR(0.3)
	tr := GenerateTrace(50, 1, d, 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip %d events, want %d", len(back.Events), len(tr.Events))
	}
	for i := range back.Events {
		if back.Events[i].Disk != tr.Events[i].Disk {
			t.Fatalf("event %d disk mismatch", i)
		}
		if math.Abs(back.Events[i].TimeHours-tr.Events[i].TimeHours) > 1e-5 {
			t.Fatalf("event %d time mismatch", i)
		}
	}
}

func TestParseTraceComments(t *testing.T) {
	in := "# header\n\n3,10.5\n1,2.0\n"
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("parsed %d events", len(tr.Events))
	}
	// Must be sorted even though input wasn't.
	if tr.Events[0].Disk != 1 || tr.Events[1].Disk != 3 {
		t.Fatalf("events not sorted: %+v", tr.Events)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a,2\n", "1,b\n", "-1,2\n", "1,-2\n"} {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestParseTraceRejectsNonFinite(t *testing.T) {
	tests := []struct {
		name string
		in   string
		line int // expected line number in the error
	}{
		{"nan time", "1,NaN\n", 1},
		{"nan time lowercase", "1,nan\n", 1},
		{"positive inf time", "1,+Inf\n", 1},
		{"negative inf time", "1,-Inf\n", 1},
		{"bare inf time", "1,Inf\n", 1},
		{"overflowing time", "1,1e999\n", 1},
		{"nan after valid lines", "# header\n0,1.0\n2,NaN\n", 3},
		{"inf after blank line", "\n0,1.0\n\n2,Inf\n", 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input %q accepted", tc.in)
			}
			want := fmt.Sprintf("line %d", tc.line)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not name %s", err, want)
			}
		})
	}
}
