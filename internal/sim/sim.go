// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock in hours and a priority queue of scheduled
// events. Ties are broken by scheduling order, making runs with the same
// seed fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The callback runs with the clock set to
// the event's time and may schedule further events or cancel itself via
// the returned handle.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index; -1 when popped/cancelled
	callback func()
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue
}

// New returns an engine with the clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in hours.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay hours and returns a cancellable handle.
// It panics on negative delays — an event in the past indicates a logic
// error in the caller.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 {
		//lint:allow nakedpanic scheduling into the past is a caller logic error; error returns would infect every event callback
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	ev := &Event{time: e.now + delay, seq: e.seq, callback: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -2
}

// Step fires the next event. It returns false when the queue is empty.
//
//mlec:hot event drain path; allocation belongs in Schedule, not here
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.time
	ev.callback()
	return true
}

// RunUntil fires events until the clock would pass `until` or the queue
// drains; the clock is left at min(until, last event time ≥ now).
//
//mlec:hot event drain path
func (e *Engine) RunUntil(until float64) {
	// len(e.queue) rather than e.queue.Len(): the direct length read is
	// what lets both the hotbce value-range engine and the compiler's
	// prove pass eliminate the bounds check on the peek below (Step
	// mutates the queue, so the fact is re-established every iteration).
	for len(e.queue) > 0 {
		next := e.queue[0].time
		if next > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.queue.Len() }

// NextTime returns the time of the earliest scheduled event, or false
// when the queue is empty. Drivers that poll a context between events
// (syssim, the trace replayer) use it to run the engine in bounded
// chunks without overshooting a horizon.
func (e *Engine) NextTime() (float64, bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue[0].time, true
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//lint:allow floateq exact tie-break on identical event times; ties fall through to seq order
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
