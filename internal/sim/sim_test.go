package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []float64
	delays := []float64{5, 1, 3, 2, 4}
	for _, d := range delays {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	for e.Step() {
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(fired), len(delays))
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %g, want 5", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	for e.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	for e.Step() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after cancel")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelFromCallback(t *testing.T) {
	e := New()
	fired := false
	var later *Event
	e.Schedule(1, func() { e.Cancel(later) })
	later = e.Schedule(2, func() { fired = true })
	for e.Step() {
	}
	if fired {
		t.Fatal("event cancelled from a callback still fired")
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := New()
	var times []float64
	var tick func()
	n := 0
	tick = func() {
		times = append(times, e.Now())
		if n++; n < 5 {
			e.Schedule(2, tick)
		}
	}
	e.Schedule(1, tick)
	for e.Step() {
	}
	want := []float64{1, 3, 5, 7, 9}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("fired %d events by t=5.5, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("clock %g, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending %d, want 5", e.Pending())
	}
	e.RunUntil(100)
	if count != 10 || e.Now() != 100 {
		t.Fatalf("after drain: count=%d now=%g", count, e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestHeapStress(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(5))
	var events []*Event
	for i := 0; i < 2000; i++ {
		events = append(events, e.Schedule(rng.Float64()*100, func() {}))
	}
	// Cancel a random half.
	for _, i := range rng.Perm(2000)[:1000] {
		e.Cancel(events[i])
	}
	prev := -1.0
	fired := 0
	for e.Pending() > 0 {
		e.Step()
		if e.Now() < prev {
			t.Fatal("clock went backwards")
		}
		prev = e.Now()
		fired++
	}
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
}

// TestEngineOrderQuick: for any random schedule of events, firing order
// must be non-decreasing in time and stable for ties.
func TestEngineOrderQuick(t *testing.T) {
	if err := quick.Check(func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New()
		type rec struct {
			time float64
			seq  int
		}
		var fired []rec
		for i, d := range delays {
			tm := float64(d % 1000)
			i := i
			e.Schedule(tm, func() { fired = append(fired, rec{tm, i}) })
		}
		for e.Step() {
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].time < fired[i-1].time {
				return false
			}
			if fired[i].time == fired[i-1].time && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
