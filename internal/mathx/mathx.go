// Package mathx provides numerically stable combinatorial and probability
// helpers used by the burst-PDL dynamic programming, the splitting
// estimator, and the Markov durability models: log-domain binomial
// coefficients, hypergeometric distributions, Poisson overlap rates, and
// "nines" arithmetic.
package mathx

import "math"

// lgammaCacheSize bounds the factorial cache; larger arguments fall back
// to math.Lgamma directly.
const lgammaCacheSize = 1 << 16

var logFactCache []float64

func init() {
	logFactCache = make([]float64, lgammaCacheSize)
	for i := 2; i < lgammaCacheSize; i++ {
		logFactCache[i] = logFactCache[i-1] + math.Log(float64(i))
	}
}

// LogFactorial returns ln(n!). Negative arguments return NaN, following
// the math package's convention for domain errors (math.Sqrt(-1)).
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	if n < lgammaCacheSize {
		return logFactCache[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogChoose returns ln(C(n, k)), or -Inf when the coefficient is zero.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64 (may overflow to +Inf for huge
// arguments; use LogChoose in tail computations).
//
//mlec:unit count
func Choose(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	return math.Exp(LogChoose(n, k))
}

// HypergeomPMF returns P(X = x) where X counts successes in a draw of
// sample items, without replacement, from a population of size popSize
// containing succ successes.
func HypergeomPMF(x, succ, popSize, sample int) float64 {
	if x < 0 || x > succ || sample-x > popSize-succ || x > sample {
		return 0
	}
	lp := LogChoose(succ, x) + LogChoose(popSize-succ, sample-x) - LogChoose(popSize, sample)
	return math.Exp(lp)
}

// HypergeomTail returns P(X ≥ x) for the hypergeometric distribution
// described in HypergeomPMF.
func HypergeomTail(x, succ, popSize, sample int) float64 {
	if x <= 0 {
		return 1
	}
	hi := succ
	if sample < hi {
		hi = sample
	}
	s := 0.0
	for i := x; i <= hi; i++ {
		s += HypergeomPMF(i, succ, popSize, sample)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// OneMinusPow returns 1-(1-p)^n computed stably for tiny p and huge n
// (≈ -expm1(n·log1p(-p))).
func OneMinusPow(p float64, n float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return -math.Expm1(n * math.Log1p(-p))
}

// Log1MinusPow returns ln(1-(1-p)^n) where useful; callers needing the
// complement in log space.
func Log1MinusPow(p, n float64) float64 {
	return math.Log(OneMinusPow(p, n))
}

// Nines converts a probability of data loss into "number of nines" of
// durability: nines = -log10(pdl). PDL 0 maps to +Inf.
func Nines(pdl float64) float64 {
	if pdl <= 0 {
		return math.Inf(1)
	}
	if pdl >= 1 {
		return 0
	}
	return -math.Log10(pdl)
}

// PDLFromNines inverts Nines.
func PDLFromNines(n float64) float64 {
	if math.IsInf(n, 1) {
		return 0
	}
	return math.Pow(10, -n)
}

// PoissonOverlapRate returns the steady-state rate (events per unit time)
// at which at least r of m independent sources — each generating events at
// rate lambda with fixed duration w — are simultaneously active.
//
// Derivation: a "candidate overlap" completes when a new event arrives
// (total arrival rate m·λ) while at least r−1 of the remaining m−1 sources
// are active. Each other source is active with probability q = 1−e^(−λw)
// ≈ λw. So rate ≈ m·λ · P(Binomial(m−1, q) ≥ r−1). For the tiny q of
// durability analysis the binomial tail is dominated by its first term.
func PoissonOverlapRate(m int, lambda, w float64, r int) float64 {
	if r <= 0 {
		return math.Inf(1)
	}
	if r == 1 {
		return float64(m) * lambda
	}
	if m < r || lambda <= 0 || w <= 0 {
		return 0
	}
	q := -math.Expm1(-lambda * w) // P(a given other source is active)
	return float64(m) * lambda * BinomialTail(m-1, q, r-1)
}

// BinomialTail returns P(Binomial(n, p) ≥ k), computed in a numerically
// careful way for small p (sums ascending terms from k).
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	s := 0.0
	for i := k; i <= n; i++ {
		term := math.Exp(LogChoose(n, i) + float64(i)*lp + float64(n-i)*lq)
		s += term
		// For small p the series decays geometrically; stop once
		// terms stop mattering.
		if term < s*1e-15 {
			break
		}
	}
	if s > 1 {
		s = 1
	}
	return s
}

// RateToAnnualPDL converts an event rate per hour into the probability of
// at least one event in a year (8760 h): 1−e^(−rate·8760).
func RateToAnnualPDL(ratePerHour float64) float64 {
	return -math.Expm1(-ratePerHour * HoursPerYear)
}

// HoursPerYear is the conversion used throughout (365-day year, matching
// the paper's annualized metrics).
const HoursPerYear = 8760.0

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion with x successes out of n trials. Used to attach confidence
// intervals to Monte-Carlo PDL estimates.
func WilsonInterval(x, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(x) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
