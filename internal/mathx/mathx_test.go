package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m || d <= 1e-300
}

func TestLogFactorialSmall(t *testing.T) {
	facts := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, f := range facts {
		if got := math.Exp(LogFactorial(n)); !approxEqual(got, f, 1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %g, want %g", n, got, f)
		}
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{100, 65535, 65536, 100000} {
		lg, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); !approxEqual(got, lg, 1e-12) {
			t.Errorf("LogFactorial(%d) = %g, want %g", n, got, lg)
		}
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {0, 0, 1},
		{52, 5, 2598960}, {-1, 0, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); !approxEqual(got, c.want, 1e-10) {
			t.Errorf("Choose(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestPascalIdentityQuick(t *testing.T) {
	if err := quick.Check(func(n, k uint8) bool {
		N, K := int(n%60)+1, int(k%60)
		return approxEqual(Choose(N, K), Choose(N-1, K)+Choose(N-1, K-1), 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	for _, c := range []struct{ succ, pop, sample int }{
		{4, 120, 20}, {3, 20, 20}, {10, 100, 30},
	} {
		s := 0.0
		for x := 0; x <= c.sample; x++ {
			s += HypergeomPMF(x, c.succ, c.pop, c.sample)
		}
		if !approxEqual(s, 1, 1e-9) {
			t.Errorf("PMF sum for %+v = %g", c, s)
		}
	}
}

func TestHypergeomPaperStripeLossFraction(t *testing.T) {
	// DESIGN.md §4: in a 120-disk local-Dp pool with 4 failed disks, the
	// probability a 20-chunk stripe covers all 4 failed disks is
	// C(116,16)/C(120,20) ≈ 5.9e-4. This drives the R_HYB 3.1 TB figure.
	got := HypergeomPMF(4, 4, 120, 20)
	want := Choose(116, 16) / Choose(120, 20)
	if !approxEqual(got, want, 1e-9) {
		t.Fatalf("PMF(4;4,120,20) = %g, want %g", got, want)
	}
	if got < 5.5e-4 || got > 6.5e-4 {
		t.Fatalf("stripe-loss fraction %g out of expected range ~5.9e-4", got)
	}
}

func TestHypergeomTail(t *testing.T) {
	// Tail at 0 is 1; tail beyond max is 0; monotone non-increasing.
	prev := 1.0
	for x := 0; x <= 21; x++ {
		tail := HypergeomTail(x, 4, 120, 20)
		if tail > prev+1e-12 {
			t.Fatalf("tail not monotone at x=%d", x)
		}
		prev = tail
	}
	if HypergeomTail(5, 4, 120, 20) != 0 {
		t.Fatal("tail beyond succ must be 0")
	}
}

func TestOneMinusPow(t *testing.T) {
	if got := OneMinusPow(0.5, 1); !approxEqual(got, 0.5, 1e-12) {
		t.Errorf("OneMinusPow(0.5,1) = %g", got)
	}
	if got := OneMinusPow(0.5, 2); !approxEqual(got, 0.75, 1e-12) {
		t.Errorf("OneMinusPow(0.5,2) = %g", got)
	}
	// Tiny p, huge n: compare against expm1 identity.
	p, n := 1e-12, 1e9
	want := -math.Expm1(n * math.Log1p(-p))
	if got := OneMinusPow(p, n); !approxEqual(got, want, 1e-9) {
		t.Errorf("OneMinusPow tiny = %g, want %g", got, want)
	}
	if OneMinusPow(0, 10) != 0 || OneMinusPow(1, 10) != 1 {
		t.Error("boundary values wrong")
	}
}

func TestNinesRoundTrip(t *testing.T) {
	for _, pdl := range []float64{0.5, 1e-3, 1e-9, 1e-30} {
		n := Nines(pdl)
		if got := PDLFromNines(n); !approxEqual(got, pdl, 1e-9) {
			t.Errorf("round trip pdl=%g → nines=%g → %g", pdl, n, got)
		}
	}
	if !math.IsInf(Nines(0), 1) {
		t.Error("Nines(0) must be +Inf")
	}
	if Nines(1) != 0 || Nines(2) != 0 {
		t.Error("Nines(≥1) must be 0")
	}
	if PDLFromNines(math.Inf(1)) != 0 {
		t.Error("PDLFromNines(+Inf) must be 0")
	}
}

func TestBinomialTail(t *testing.T) {
	// Exact small case: n=3, p=0.5 → P(X≥2) = 0.5
	if got := BinomialTail(3, 0.5, 2); !approxEqual(got, 0.5, 1e-12) {
		t.Errorf("BinomialTail(3,0.5,2) = %g", got)
	}
	if BinomialTail(5, 0.3, 0) != 1 {
		t.Error("tail at 0 must be 1")
	}
	if BinomialTail(5, 0.3, 6) != 0 {
		t.Error("tail beyond n must be 0")
	}
	if BinomialTail(5, 0, 1) != 0 || BinomialTail(5, 1, 5) != 1 {
		t.Error("degenerate p values wrong")
	}
}

func TestPoissonOverlapRate(t *testing.T) {
	// r=1: any event counts → rate m·λ.
	if got := PoissonOverlapRate(10, 0.01, 5, 1); !approxEqual(got, 0.1, 1e-12) {
		t.Errorf("r=1 rate = %g", got)
	}
	// m < r: impossible.
	if PoissonOverlapRate(2, 0.01, 5, 3) != 0 {
		t.Error("m<r must be 0")
	}
	// First-order check against the standard two-overlap formula
	// m·λ·(m−1)·λ·w for tiny λw.
	m, lambda, w := 12, 1e-6, 10.0
	got := PoissonOverlapRate(m, lambda, w, 2)
	want := float64(m) * lambda * (1 - math.Pow(1-(-math.Expm1(-lambda*w)), float64(m-1)))
	if !approxEqual(got, want, 1e-6) {
		t.Errorf("2-overlap rate = %g, want ≈ %g", got, want)
	}
	// Monotonicity: more sources → higher rate; higher r → lower rate.
	if PoissonOverlapRate(20, lambda, w, 2) <= got {
		t.Error("rate must grow with m")
	}
	if PoissonOverlapRate(m, lambda, w, 3) >= got {
		t.Error("rate must shrink with r")
	}
}

func TestRateToAnnualPDL(t *testing.T) {
	if got := RateToAnnualPDL(0); got != 0 {
		t.Errorf("zero rate → %g", got)
	}
	// Tiny rates: PDL ≈ rate × 8760.
	r := 1e-12
	if got := RateToAnnualPDL(r); !approxEqual(got, r*8760, 1e-6) {
		t.Errorf("tiny-rate PDL = %g", got)
	}
	// Huge rates saturate at 1.
	if got := RateToAnnualPDL(100); !approxEqual(got, 1, 1e-12) {
		t.Errorf("huge-rate PDL = %g", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("empty sample must give [0,1]")
	}
	lo, hi = WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%g,%g] must contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%g,%g] too wide for n=100", lo, hi)
	}
	// Zero successes still has hi > 0 (rule-of-three-like behaviour).
	lo, hi = WilsonInterval(0, 1000)
	if lo > 1e-12 || hi <= 0 || hi > 0.01 {
		t.Errorf("zero-success interval [%g,%g]", lo, hi)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
}
