package rngsplit

import "testing"

func TestMixDeterministic(t *testing.T) {
	if Mix(42, 3) != Mix(42, 3) {
		t.Fatal("Mix is not a pure function")
	}
	if Derive(42, 3).Int63() != Derive(42, 3).Int63() {
		t.Fatal("Derive streams with equal (seed, id) diverge")
	}
}

func TestMixSeparatesIDs(t *testing.T) {
	// Derived seeds for consecutive ids must all be distinct and must not
	// share the master seed's low bits (the failure mode of seed+id).
	const seed = 7
	seen := make(map[int64]bool)
	for id := 0; id < 10000; id++ {
		v := Mix(seed, id)
		if seen[v] {
			t.Fatalf("Mix(%d, %d) collides with an earlier id", seed, id)
		}
		seen[v] = true
	}
}

func TestMixSeparatesSeeds(t *testing.T) {
	for id := 0; id < 100; id++ {
		if Mix(1, id) == Mix(2, id) {
			t.Fatalf("Mix(1, %d) == Mix(2, %d)", id, id)
		}
	}
}

func TestDerivedStreamsUncorrelated(t *testing.T) {
	// Crude independence check: the first draws of 1000 consecutive
	// worker streams should look uniform (mean ≈ 0.5). With seed+id
	// derivation the low-bit correlation makes this fail badly for
	// lagged pairs; with splitmix64 mixing it passes comfortably.
	const n = 1000
	sum := 0.0
	for id := 0; id < n; id++ {
		sum += Derive(123, id).Float64()
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("first-draw mean across streams = %g, want ≈0.5", mean)
	}
}
