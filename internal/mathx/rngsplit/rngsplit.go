// Package rngsplit derives per-worker pseudorandom streams from a single
// master seed. Monte-Carlo code in this repository fans trials out across
// goroutines; each worker needs its own *rand.Rand (sharing one is a data
// race, and locking one makes draw order depend on goroutine scheduling,
// destroying reproducibility). Deriving worker seeds by simple arithmetic
// (seed+workerID, seed^workerID) produces correlated low-bit patterns
// across streams; Derive instead mixes the pair through splitmix64 so
// adjacent worker IDs yield statistically unrelated sequences while
// remaining a pure function of (seed, workerID).
package rngsplit

import "math/rand"

// Mix returns a well-mixed derived seed for stream id under the master
// seed. It is splitmix64 applied to the pair: the id advances the
// splitmix64 counter from the seed, then the result is finalized with
// the fmix64 avalanche so that consecutive ids map to uncorrelated
// outputs. Mix is a pure function — the same (seed, id) always yields
// the same value on every platform.
func Mix(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Derive returns a fresh *rand.Rand seeded with Mix(seed, id). Each
// worker (or trial, or simulation domain) should get its own id; the
// returned generator must stay confined to one goroutine.
func Derive(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(Mix(seed, id)))
}
