package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// exp and log must be inverse bijections on [1,255].
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if v == 0 {
			t.Fatalf("Exp(%d) = 0", i)
		}
		if seen[v] {
			t.Fatalf("Exp(%d) = %d repeats", i, v)
		}
		seen[v] = true
		if Log(v) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, Log(v))
		}
	}
	if len(seen) != 255 {
		t.Fatalf("exp table covers %d values, want 255", len(seen))
	}
}

// slowMul multiplies via shift-and-add, independent of the tables.
func slowMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= Poly
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesSlowMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	// Commutativity and associativity of Mul, distributivity over Add.
	if err := quick.Check(func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * Inv(a) != 1 for a=%d", a)
		}
	}
}

func TestDiv(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%d,%d)*%d != %d", a, b, b, a)
			}
		}
	}
	if Div(0, 7) != 0 {
		t.Fatal("0/b != 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1, 0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestMulSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		src := make([]byte, n)
		rng.Read(src)
		for _, c := range []byte{0, 1, 2, 0x1d, 255} {
			dst := make([]byte, n)
			MulSlice(c, src, dst)
			for i := range src {
				if dst[i] != Mul(c, src[i]) {
					t.Fatalf("MulSlice c=%d n=%d idx=%d", c, n, i)
				}
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 9, 100} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		orig := append([]byte(nil), dst...)
		for _, c := range []byte{0, 1, 3, 200} {
			d2 := append([]byte(nil), orig...)
			MulAddSlice(c, src, d2)
			for i := range src {
				want := orig[i] ^ Mul(c, src[i])
				if d2[i] != want {
					t.Fatalf("MulAddSlice c=%d n=%d idx=%d got %d want %d", c, n, i, d2[i], want)
				}
			}
		}
	}
}

func TestXorSliceSelfInverse(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		orig := append([]byte(nil), b...)
		XorSlice(a, b)
		XorSlice(a, b)
		return bytes.Equal(b, orig)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"XorSlice":    func() { XorSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMulTableRow(t *testing.T) {
	row := MulTable(7)
	for b := 0; b < 256; b++ {
		if row[b] != Mul(7, byte(b)) {
			t.Fatalf("MulTable(7)[%d] mismatch", b)
		}
	}
}

func TestExpNegative(t *testing.T) {
	// Negative exponents denote inverse powers: Exp(-n) == Inv(Exp(n)).
	for n := 0; n < 300; n++ {
		if got, want := Exp(-n), Inv(Exp(n)); got != want {
			t.Fatalf("Exp(%d) = %d, want Inv(Exp(%d)) = %d", -n, got, n, want)
		}
	}
	if Exp(-255) != Exp(0) {
		t.Fatal("Exp is not periodic mod 255 for negative exponents")
	}
}
