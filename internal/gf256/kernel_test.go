package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// Scalar reference kernels: the one-byte-at-a-time definitions the
// word-wide slice-advance kernels must agree with on every length and
// alignment. The word kernels peel 8/16/32-byte chunks with distinct
// tail handling, so the properties below sweep all lengths 0–129 (every
// chunk-boundary remainder) and unaligned sub-slices of a shared
// backing array (every word-offset phase).

func refMulSlice(c byte, src, dst []byte) {
	for i := range src {
		dst[i] = Mul(c, src[i])
	}
}

func refMulAddSlice(c byte, src, dst []byte) {
	for i := range src {
		dst[i] ^= Mul(c, src[i])
	}
}

func refXorSlice(src, dst []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// kernelLengths is every length from 0 through 129: covers empty, all
// sub-word sizes, exact multiples of the 8/16/32-byte chunk widths, and
// every possible tail remainder after the widest chunk loop.
func kernelLengths() []int {
	ns := make([]int, 130)
	for i := range ns {
		ns[i] = i
	}
	return ns
}

// kernelCoeffs exercises the special-cased multipliers (0, 1) alongside
// generic ones, including the generator polynomial constant.
var kernelCoeffs = []byte{0, 1, 2, 3, Poly, 0x8e, 0xff}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range kernelCoeffs {
		for _, n := range kernelLengths() {
			src := make([]byte, n)
			rng.Read(src)
			want := make([]byte, n)
			got := make([]byte, n)
			refMulSlice(c, src, want)
			MulSlice(c, src, got)
			if !bytes.Equal(want, got) {
				t.Fatalf("MulSlice(c=%#x, n=%d) disagrees with scalar reference", c, n)
			}
		}
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range kernelCoeffs {
		for _, n := range kernelLengths() {
			src := make([]byte, n)
			rng.Read(src)
			want := make([]byte, n)
			rng.Read(want)
			got := append([]byte(nil), want...)
			refMulAddSlice(c, src, want)
			MulAddSlice(c, src, got)
			if !bytes.Equal(want, got) {
				t.Fatalf("MulAddSlice(c=%#x, n=%d) disagrees with scalar reference", c, n)
			}
		}
	}
}

func TestXorSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelLengths() {
		src := make([]byte, n)
		rng.Read(src)
		want := make([]byte, n)
		rng.Read(want)
		got := append([]byte(nil), want...)
		refXorSlice(src, want)
		XorSlice(src, got)
		if !bytes.Equal(want, got) {
			t.Fatalf("XorSlice(n=%d) disagrees with scalar reference", n)
		}
	}
}

// TestKernelsUnaligned runs the word kernels on sub-slices at every
// offset 0–8 of a shared backing array, so word loads land on every
// alignment phase, and verifies bytes outside the window are untouched.
func TestKernelsUnaligned(t *testing.T) {
	const pad = 16
	rng := rand.New(rand.NewSource(4))
	for off := 0; off <= 8; off++ {
		for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129} {
			backing := make([]byte, pad+off+n+pad)
			rng.Read(backing)
			srcBack := append([]byte(nil), backing...)
			rng.Read(srcBack)

			src := srcBack[pad+off : pad+off+n]
			frozen := append([]byte(nil), backing...)

			// XorSlice on the window.
			got := append([]byte(nil), backing...)
			want := append([]byte(nil), backing...)
			refXorSlice(src, want[pad+off:pad+off+n])
			XorSlice(src, got[pad+off:pad+off+n])
			if !bytes.Equal(want, got) {
				t.Fatalf("XorSlice(off=%d, n=%d) disagrees with scalar reference", off, n)
			}
			if !bytes.Equal(got[:pad+off], frozen[:pad+off]) || !bytes.Equal(got[pad+off+n:], frozen[pad+off+n:]) {
				t.Fatalf("XorSlice(off=%d, n=%d) wrote outside the window", off, n)
			}

			// MulAddSlice on the window.
			const c = 0x1d
			got = append([]byte(nil), backing...)
			want = append([]byte(nil), backing...)
			refMulAddSlice(c, src, want[pad+off:pad+off+n])
			MulAddSlice(c, src, got[pad+off:pad+off+n])
			if !bytes.Equal(want, got) {
				t.Fatalf("MulAddSlice(off=%d, n=%d) disagrees with scalar reference", off, n)
			}
			if !bytes.Equal(got[:pad+off], frozen[:pad+off]) || !bytes.Equal(got[pad+off+n:], frozen[pad+off+n:]) {
				t.Fatalf("MulAddSlice(off=%d, n=%d) wrote outside the window", off, n)
			}
		}
	}
}

func TestDualTableEntries(t *testing.T) {
	dt := NewDualTable(0x1d, 0x8e)
	for s := 0; s < 256; s++ {
		e := dt[s]
		if byte(e) != Mul(0x1d, byte(s)) || byte(e>>32) != Mul(0x8e, byte(s)) {
			t.Fatalf("DualTable entry %d = %#x inconsistent with Mul", s, e)
		}
		if e&^0x000000ff000000ff != 0 {
			t.Fatalf("DualTable entry %d = %#x has bits outside the two product lanes", s, e)
		}
	}
}

func TestMulAddDualMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, pair := range [][2]byte{{0, 0}, {1, 2}, {0x1d, 0x8e}, {0xff, 0x01}} {
		c1, c2 := pair[0], pair[1]
		dt := NewDualTable(c1, c2)
		for _, n := range kernelLengths() {
			src := make([]byte, n)
			rng.Read(src)
			w1 := make([]byte, n)
			w2 := make([]byte, n)
			rng.Read(w1)
			rng.Read(w2)
			g1 := append([]byte(nil), w1...)
			g2 := append([]byte(nil), w2...)
			refMulAddSlice(c1, src, w1)
			refMulAddSlice(c2, src, w2)
			MulAddDual(dt, src, g1, g2)
			if !bytes.Equal(w1, g1) || !bytes.Equal(w2, g2) {
				t.Fatalf("MulAddDual(c1=%#x, c2=%#x, n=%d) disagrees with scalar reference", c1, c2, n)
			}
		}
	}
}

func TestMulDualMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, pair := range [][2]byte{{0, 1}, {0x1d, 0x8e}, {0xfe, 0xff}} {
		c1, c2 := pair[0], pair[1]
		dt := NewDualTable(c1, c2)
		for _, n := range kernelLengths() {
			src := make([]byte, n)
			rng.Read(src)
			w1 := make([]byte, n)
			w2 := make([]byte, n)
			g1 := make([]byte, n)
			g2 := make([]byte, n)
			rng.Read(g1) // stale contents must be fully overwritten
			rng.Read(g2)
			refMulSlice(c1, src, w1)
			refMulSlice(c2, src, w2)
			MulDual(dt, src, g1, g2)
			if !bytes.Equal(w1, g1) || !bytes.Equal(w2, g2) {
				t.Fatalf("MulDual(c1=%#x, c2=%#x, n=%d) disagrees with scalar reference", c1, c2, n)
			}
		}
	}
}

func TestDualLengthMismatchPanics(t *testing.T) {
	dt := NewDualTable(2, 3)
	for _, fn := range []func(){
		func() { MulAddDual(dt, make([]byte, 4), make([]byte, 3), make([]byte, 4)) },
		func() { MulAddDual(dt, make([]byte, 4), make([]byte, 4), make([]byte, 5)) },
		func() { MulDual(dt, make([]byte, 4), make([]byte, 3), make([]byte, 4)) },
		func() { MulDual(dt, make([]byte, 4), make([]byte, 4), make([]byte, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}
