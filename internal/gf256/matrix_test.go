package gf256

import (
	"math/rand"
	"testing"
)

func randomNonSingular(t *testing.T, n int, rng *rand.Rand) *Matrix {
	t.Helper()
	for tries := 0; tries < 100; tries++ {
		m := NewMatrix(n, n)
		rng.Read(m.Data)
		if _, err := m.Invert(); err == nil {
			return m
		}
	}
	t.Fatal("could not generate a non-singular matrix")
	return nil
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if id.At(r, c) != want {
				t.Fatalf("Identity(4) at (%d,%d) = %d", r, c, id.At(r, c))
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(5, 5)
	rng.Read(m.Data)
	got := m.Mul(Identity(5))
	for i := range got.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("M·I != M")
		}
	}
	got = Identity(5).Mul(m)
	for i := range got.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatal("I·M != M")
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 5, 10, 17} {
		m := randomNonSingular(t, n, rng)
		inv, err := m.Invert()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod := m.Mul(inv)
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("n=%d: M·M⁻¹ != I", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	// Two identical rows → singular.
	for c := 0; c < 3; c++ {
		m.Set(0, c, byte(c+1))
		m.Set(1, c, byte(c+1))
		m.Set(2, c, byte(2*c+5))
	}
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("Invert singular: err = %v, want ErrSingular", err)
	}
}

func TestVandermondeSquareSubmatricesInvertible(t *testing.T) {
	// Any k consecutive... in fact any k distinct rows of a Vandermonde
	// matrix with distinct evaluation points are linearly independent.
	v := Vandermonde(8, 5)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		rows := rng.Perm(8)[:5]
		sub := NewMatrix(5, 5)
		for i, r := range rows {
			copy(sub.Row(i), v.Row(r))
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Vandermonde 5-row subset %v singular", rows)
		}
	}
}

func TestSubMatrix(t *testing.T) {
	m := Vandermonde(6, 6)
	s := m.SubMatrix(1, 4, 2, 5)
	if s.Rows != 3 || s.Cols != 3 {
		t.Fatalf("SubMatrix shape %dx%d", s.Rows, s.Cols)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if s.At(r, c) != m.At(r+1, c+2) {
				t.Fatalf("SubMatrix at (%d,%d)", r, c)
			}
		}
	}
}

func TestMatrixMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b, c := NewMatrix(4, 3), NewMatrix(3, 5), NewMatrix(5, 2)
	rng.Read(a.Data)
	rng.Read(b.Data)
	rng.Read(c.Data)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	for i := range left.Data {
		if left.Data[i] != right.Data[i] {
			t.Fatal("(AB)C != A(BC)")
		}
	}
}
