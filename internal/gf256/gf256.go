// Package gf256 implements arithmetic over the Galois field GF(2^8) used by
// the Reed–Solomon and LRC codecs.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage erasure codecs (including Intel ISA-L, which the paper benchmarks
// in Figure 11). Multiplication uses 256-entry log/exp tables; the hot
// slice kernels additionally use a per-multiplier 256-entry product table,
// which is the scalar analogue of the SIMD shuffle kernels in ISA-L.
package gf256

import "encoding/binary"

// Poly is the primitive polynomial generating the field, with the x^8 term
// removed (0x11d & 0xff plus the carry handling in genTables).
const Poly = 0x1d

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid a mod in Mul
	logTable [256]byte // log[x] = i such that g^i = x; log[0] is unused
	// mulTable[a] is the full product row a*b for all b. 64 KiB total;
	// rows are handed out by MulTable for the slice kernels.
	mulTable [256][256]byte
	// inverse[x] = x^-1; inverse[0] is 0 and must never be used.
	inverse [256]byte
)

func init() {
	genTables()
}

func genTables() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator (2) in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
		inverse[a] = expTable[255-la]
	}
}

// Add returns a+b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics if b is zero, mirroring the
// semantics of Go's built-in integer division.
func Div(a, b byte) byte {
	if b == 0 {
		//lint:allow nakedpanic division by zero mirrors built-in integer division semantics
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero,
// mirroring the semantics of Go's built-in integer division.
func Inv(a byte) byte {
	if a == 0 {
		//lint:allow nakedpanic inverse of zero mirrors built-in integer division semantics
		panic("gf256: inverse of zero")
	}
	return inverse[a]
}

// Exp returns g^n for the field generator g=2. n may be any integer;
// it is reduced mod 255 (the multiplicative group order), so negative
// exponents denote inverse powers: Exp(-n) == Inv(Exp(n)).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_g(a). It panics if a is zero (zero is not in the
// multiplicative group), mirroring built-in integer division semantics.
func Log(a byte) int {
	if a == 0 {
		//lint:allow nakedpanic log of zero mirrors built-in integer division semantics
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// MulTable returns the 256-entry product row for multiplier c, i.e.
// row[b] == Mul(c, b). The returned slice aliases an internal table and
// must not be modified.
func MulTable(c byte) *[256]byte { return &mulTable[c] }

// The slice kernels below are written in "slice-advance" form:
//
//	for len(src) >= N && len(dst) >= N { ... src, dst = src[N:], dst[N:] }
//
// rather than the indexed form `for i := 0; i+N <= len(src); i += N`.
// The compiler's prove pass eliminates every bounds check in the
// slice-advance form (constant indexes below N against a known minimum
// length), whereas the indexed form keeps a check per access; `mlecvet
// -compiler` verifies this against `-d=ssa/check_bce` output and the
// hotbce analyzer enforces it statically. Word loads and stores go
// through encoding/binary's little-endian views, which compile to
// single moves on little-endian targets and stay correct elsewhere.

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; they may alias exactly (but not partially overlap).
//
//mlec:hot per-byte codec kernel
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := &mulTable[c]
	// 16 bytes per iteration: byte loads feed the table row (always
	// in-bounds: a byte indexes a 256-entry array), products are
	// composed into two words and stored word-wide.
	for len(src) >= 16 && len(dst) >= 16 {
		v := uint64(mt[src[0]]) |
			uint64(mt[src[1]])<<8 |
			uint64(mt[src[2]])<<16 |
			uint64(mt[src[3]])<<24 |
			uint64(mt[src[4]])<<32 |
			uint64(mt[src[5]])<<40 |
			uint64(mt[src[6]])<<48 |
			uint64(mt[src[7]])<<56
		w := uint64(mt[src[8]]) |
			uint64(mt[src[9]])<<8 |
			uint64(mt[src[10]])<<16 |
			uint64(mt[src[11]])<<24 |
			uint64(mt[src[12]])<<32 |
			uint64(mt[src[13]])<<40 |
			uint64(mt[src[14]])<<48 |
			uint64(mt[src[15]])<<56
		binary.LittleEndian.PutUint64(dst, v)
		binary.LittleEndian.PutUint64(dst[8:], w)
		src, dst = src[16:], dst[16:]
	}
	for len(src) > 0 && len(dst) > 0 {
		dst[0] = mt[src[0]]
		src, dst = src[1:], dst[1:]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i — the fundamental
// encode kernel (one matrix coefficient applied to one data shard).
//
//mlec:hot per-byte codec kernel
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	mt := &mulTable[c]
	for len(src) >= 16 && len(dst) >= 16 {
		v := uint64(mt[src[0]]) |
			uint64(mt[src[1]])<<8 |
			uint64(mt[src[2]])<<16 |
			uint64(mt[src[3]])<<24 |
			uint64(mt[src[4]])<<32 |
			uint64(mt[src[5]])<<40 |
			uint64(mt[src[6]])<<48 |
			uint64(mt[src[7]])<<56
		w := uint64(mt[src[8]]) |
			uint64(mt[src[9]])<<8 |
			uint64(mt[src[10]])<<16 |
			uint64(mt[src[11]])<<24 |
			uint64(mt[src[12]])<<32 |
			uint64(mt[src[13]])<<40 |
			uint64(mt[src[14]])<<48 |
			uint64(mt[src[15]])<<56
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^v)
		binary.LittleEndian.PutUint64(dst[8:], binary.LittleEndian.Uint64(dst[8:])^w)
		src, dst = src[16:], dst[16:]
	}
	for len(src) > 0 && len(dst) > 0 {
		dst[0] ^= mt[src[0]]
		src, dst = src[1:], dst[1:]
	}
}

// XorSlice sets dst[i] ^= src[i] for all i, using word-wide XOR.
//
//mlec:hot per-byte codec kernel
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: XorSlice length mismatch")
	}
	// 32 bytes per iteration, then one word at a time, then bytes.
	for len(src) >= 32 && len(dst) >= 32 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst[8:], binary.LittleEndian.Uint64(dst[8:])^binary.LittleEndian.Uint64(src[8:]))
		binary.LittleEndian.PutUint64(dst[16:], binary.LittleEndian.Uint64(dst[16:])^binary.LittleEndian.Uint64(src[16:]))
		binary.LittleEndian.PutUint64(dst[24:], binary.LittleEndian.Uint64(dst[24:])^binary.LittleEndian.Uint64(src[24:]))
		src, dst = src[32:], dst[32:]
	}
	for len(src) >= 8 && len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		src, dst = src[8:], dst[8:]
	}
	for len(src) > 0 && len(dst) > 0 {
		dst[0] ^= src[0]
		src, dst = src[1:], dst[1:]
	}
}

// DualTable is a product table for a pair of multipliers (c1, c2):
// entry s holds Mul(c1,s) in bits 0–7 and Mul(c2,s) in bits 32–39. One
// byte lookup therefore yields both parity contributions, and because
// per-byte products are composed into a word by shifting 8 bits per
// source byte, the c1 products accumulate in the low half of the word
// and the c2 products in the high half without colliding. The table is
// 2 KiB — it stays L1-resident across a whole shard pass, unlike wider
// (two-bytes-per-lookup) tables whose 128 KiB footprint thrashes the
// cache as the encode loop cycles through k·p coefficients.
type DualTable [256]uint64

// NewDualTable builds the interleaved product table for (c1, c2).
func NewDualTable(c1, c2 byte) *DualTable {
	t := new(DualTable)
	t1, t2 := &mulTable[c1], &mulTable[c2]
	for s := 0; s < 256; s++ {
		t[s] = uint64(t1[s]) | uint64(t2[s])<<32
	}
	return t
}

// MulAddDual sets d1[i] ^= c1*src[i] and d2[i] ^= c2*src[i] where t is
// NewDualTable(c1, c2). src, d1, d2 must have equal lengths; d1 and d2
// must not overlap src or each other. One pass over src feeds two
// parity rows, halving table lookups and loop overhead per parity byte
// relative to two MulAddSlice passes.
//
//mlec:hot dual-parity codec kernel
func MulAddDual(t *DualTable, src, d1, d2 []byte) {
	if len(src) != len(d1) || len(src) != len(d2) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulAddDual length mismatch")
	}
	for len(src) >= 8 && len(d1) >= 8 && len(d2) >= 8 {
		a := t[src[0]] | t[src[1]]<<8 | t[src[2]]<<16 | t[src[3]]<<24
		b := t[src[4]] | t[src[5]]<<8 | t[src[6]]<<16 | t[src[7]]<<24
		// a, b each hold 4 c1-products (low 32 bits) and 4
		// c2-products (high 32 bits); recombine into one word per
		// destination.
		v := uint64(uint32(a)) | uint64(uint32(b))<<32
		w := a>>32 | b&0xffffffff00000000
		binary.LittleEndian.PutUint64(d1, binary.LittleEndian.Uint64(d1)^v)
		binary.LittleEndian.PutUint64(d2, binary.LittleEndian.Uint64(d2)^w)
		src, d1, d2 = src[8:], d1[8:], d2[8:]
	}
	for len(src) > 0 && len(d1) > 0 && len(d2) > 0 {
		e := t[src[0]]
		d1[0] ^= byte(e)
		d2[0] ^= byte(e >> 32)
		src, d1, d2 = src[1:], d1[1:], d2[1:]
	}
}

// MulDual sets d1[i] = c1*src[i] and d2[i] = c2*src[i] — the
// first-source variant of MulAddDual that overwrites instead of
// accumulating, saving the destination reads (and a separate zeroing
// pass) on the first column of an encode.
//
//mlec:hot dual-parity codec kernel
func MulDual(t *DualTable, src, d1, d2 []byte) {
	if len(src) != len(d1) || len(src) != len(d2) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulDual length mismatch")
	}
	for len(src) >= 8 && len(d1) >= 8 && len(d2) >= 8 {
		a := t[src[0]] | t[src[1]]<<8 | t[src[2]]<<16 | t[src[3]]<<24
		b := t[src[4]] | t[src[5]]<<8 | t[src[6]]<<16 | t[src[7]]<<24
		binary.LittleEndian.PutUint64(d1, uint64(uint32(a))|uint64(uint32(b))<<32)
		binary.LittleEndian.PutUint64(d2, a>>32|b&0xffffffff00000000)
		src, d1, d2 = src[8:], d1[8:], d2[8:]
	}
	for len(src) > 0 && len(d1) > 0 && len(d2) > 0 {
		e := t[src[0]]
		d1[0] = byte(e)
		d2[0] = byte(e >> 32)
		src, d1, d2 = src[1:], d1[1:], d2[1:]
	}
}
