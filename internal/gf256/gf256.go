// Package gf256 implements arithmetic over the Galois field GF(2^8) used by
// the Reed–Solomon and LRC codecs.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage erasure codecs (including Intel ISA-L, which the paper benchmarks
// in Figure 11). Multiplication uses 256-entry log/exp tables; the hot
// slice kernels additionally use a per-multiplier 256-entry product table,
// which is the scalar analogue of the SIMD shuffle kernels in ISA-L.
package gf256

// Poly is the primitive polynomial generating the field, with the x^8 term
// removed (0x11d & 0xff plus the carry handling in genTables).
const Poly = 0x1d

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid a mod in Mul
	logTable [256]byte // log[x] = i such that g^i = x; log[0] is unused
	// mulTable[a] is the full product row a*b for all b. 64 KiB total;
	// rows are handed out by MulTable for the slice kernels.
	mulTable [256][256]byte
	// inverse[x] = x^-1; inverse[0] is 0 and must never be used.
	inverse [256]byte
)

func init() {
	genTables()
}

func genTables() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator (2) in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(logTable[a])
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
		inverse[a] = expTable[255-la]
	}
}

// Add returns a+b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics if b is zero, mirroring the
// semantics of Go's built-in integer division.
func Div(a, b byte) byte {
	if b == 0 {
		//lint:allow nakedpanic division by zero mirrors built-in integer division semantics
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero,
// mirroring the semantics of Go's built-in integer division.
func Inv(a byte) byte {
	if a == 0 {
		//lint:allow nakedpanic inverse of zero mirrors built-in integer division semantics
		panic("gf256: inverse of zero")
	}
	return inverse[a]
}

// Exp returns g^n for the field generator g=2. n may be any integer;
// it is reduced mod 255 (the multiplicative group order), so negative
// exponents denote inverse powers: Exp(-n) == Inv(Exp(n)).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_g(a). It panics if a is zero (zero is not in the
// multiplicative group), mirroring built-in integer division semantics.
func Log(a byte) int {
	if a == 0 {
		//lint:allow nakedpanic log of zero mirrors built-in integer division semantics
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// MulTable returns the 256-entry product row for multiplier c, i.e.
// row[b] == Mul(c, b). The returned slice aliases an internal table and
// must not be modified.
func MulTable(c byte) *[256]byte { return &mulTable[c] }

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; they may alias.
//
//mlec:hot per-byte codec kernel
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := &mulTable[c]
	// 8-way unroll: keeps the table row hot and exposes ILP.
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		dst[i+0] = mt[src[i+0]]
		dst[i+1] = mt[src[i+1]]
		dst[i+2] = mt[src[i+2]]
		dst[i+3] = mt[src[i+3]]
		dst[i+4] = mt[src[i+4]]
		dst[i+5] = mt[src[i+5]]
		dst[i+6] = mt[src[i+6]]
		dst[i+7] = mt[src[i+7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] = mt[src[i]]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i — the fundamental
// encode kernel (one matrix coefficient applied to one data shard).
//
//mlec:hot per-byte codec kernel
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(src, dst)
		return
	}
	mt := &mulTable[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		dst[i+0] ^= mt[src[i+0]]
		dst[i+1] ^= mt[src[i+1]]
		dst[i+2] ^= mt[src[i+2]]
		dst[i+3] ^= mt[src[i+3]]
		dst[i+4] ^= mt[src[i+4]]
		dst[i+5] ^= mt[src[i+5]]
		dst[i+6] ^= mt[src[i+6]]
		dst[i+7] ^= mt[src[i+7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}

// XorSlice sets dst[i] ^= src[i] for all i, using word-wide XOR.
//
//mlec:hot per-byte codec kernel
func XorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		//lint:allow nakedpanic hot-kernel precondition; the bounds-check analogue for mismatched shard geometry
		panic("gf256: XorSlice length mismatch")
	}
	i := 0
	// Word-at-a-time via manual 8-byte chunks. encoding/binary would
	// work too, but direct indexing lets the compiler eliminate bounds
	// checks after the explicit guard.
	for ; i+8 <= len(src); i += 8 {
		dst[i+0] ^= src[i+0]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
