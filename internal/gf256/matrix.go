package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte // len == Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix. It panics on non-positive
// shapes: every caller derives shapes from already-validated code
// parameters, so a bad shape is a corrupted-invariant bug, not an input
// error.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		//lint:allow nakedpanic shapes derive from validated code parameters; a bad shape is a corrupted invariant
		panic(fmt.Sprintf("gf256: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns the matrix product m·other. Mismatched inner dimensions
// panic: operand shapes derive from validated code parameters.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		//lint:allow nakedpanic shapes derive from validated code parameters; a mismatch is a corrupted invariant
		panic(fmt.Sprintf("gf256: matrix size mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		mr := m.Row(r)
		or := out.Row(r)
		for k := 0; k < m.Cols; k++ {
			a := mr[k]
			if a == 0 {
				continue
			}
			mt := &mulTable[a]
			ok := other.Row(k)
			for c := range or {
				or[c] ^= mt[ok[c]]
			}
		}
	}
	return out
}

// SubMatrix returns the rectangle [r0, r1) × [c0, c1) as a new matrix.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// ErrSingular is returned when a matrix inversion fails because the matrix
// is singular (which would indicate a non-MDS code construction).
var ErrSingular = errors.New("gf256: matrix is singular")

// Invert returns the inverse of a square matrix using Gauss–Jordan
// elimination. It returns ErrSingular for singular matrices and a
// shape error for non-square ones.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	out := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(out, pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		if pv := work.At(col, col); pv != 1 {
			inv := Inv(pv)
			MulSlice(inv, work.Row(col), work.Row(col))
			MulSlice(inv, out.Row(col), out.Row(col))
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			MulAddSlice(f, work.Row(col), work.Row(r))
			MulAddSlice(f, out.Row(col), out.Row(r))
		}
	}
	return out, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Vandermonde returns the rows×cols matrix with element (r, c) = g^(r·c).
// Used as the seed for the systematic Reed–Solomon encoding matrix.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Exp(r*c))
		}
	}
	return m
}
