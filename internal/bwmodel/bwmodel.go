// Package bwmodel is the analytic available-repair-bandwidth and
// repair-time model behind the paper's Table 2 and Figure 6.
//
// The model follows Section 4.1.2: repair throughput is bounded by
// whichever resource saturates first — participating disks' repair I/O or
// participating racks' cross-rack repair bandwidth — where every repaired
// byte costs k reads plus 1 write on the binding resource.
//
// With the paper's defaults (disk repair bw d = 40 MB/s, rack repair bw
// r = 250 MB/s):
//
//	single-disk, local-Cp:  spare-disk write bound        → d = 40 MB/s
//	single-disk, local-Dp:  (D−1)·d spread over kl+1 I/Os → 119·40/18 ≈ 264 MB/s
//	pool, network-Cp (R_ALL): rebuilt rack ingress        → r = 250 MB/s
//	pool, network-Dp (R_ALL): all racks, kn+1 crossings   → 60·250/11 ≈ 1363 MB/s
package bwmodel

import (
	"fmt"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

// Model evaluates repair bandwidth and repair time for an MLEC layout.
type Model struct {
	Layout *placement.Layout
}

// New returns a model over the given layout.
func New(l *placement.Layout) *Model { return &Model{Layout: l} }

// SingleDiskRepairBandwidth returns the available repair bandwidth
// (bytes/s of reconstructed data) when repairing one failed disk locally.
func (m *Model) SingleDiskRepairBandwidth() float64 {
	topo := m.Layout.Topo
	d := topo.DiskRepairBandwidth()
	if m.Layout.Scheme.Local == placement.Clustered {
		// Reads come from kl surviving disks, writes go to one spare:
		// the spare's write bandwidth binds (reads deliver kl·d/kl = d
		// too — the pipeline is balanced at d).
		return d
	}
	// Declustered: all surviving pool disks both read and write spare
	// space. Aggregate repair I/O = (D−1)·d; each repaired byte consumes
	// kl reads + 1 write.
	surv := float64(m.Layout.LocalPoolSize() - 1)
	return surv * d / float64(m.Layout.Params.KL+1)
}

// SingleDiskRepairBytes returns the data volume of a single-disk repair.
func (m *Model) SingleDiskRepairBytes() float64 {
	return m.Layout.Topo.DiskCapacityBytes
}

// PoolRepairBandwidth returns the available repair bandwidth (bytes/s of
// reconstructed data) for rebuilding a catastrophic local pool over the
// network, as R_ALL does.
func (m *Model) PoolRepairBandwidth() float64 {
	topo := m.Layout.Topo
	r := topo.RackRepairBandwidth()
	if m.Layout.Scheme.Network == placement.Clustered {
		// All rebuilt data funnels into the single rack that hosts the
		// replacement pool: its cross-rack ingress binds.
		return r
	}
	// Declustered: rebuilt data spreads to spare space across all racks
	// and reads come from everywhere. Each repaired byte crosses racks
	// kn+1 times (kn reads + 1 write); all racks' repair bandwidth
	// participates.
	racks := float64(topo.Racks)
	return racks * r / float64(m.Layout.Params.KN+1)
}

// PoolRepairBytes returns the data volume R_ALL must reconstruct: the
// whole local pool.
func (m *Model) PoolRepairBytes() float64 { return m.Layout.LocalPoolDataBytes() }

// SingleDiskRepairHours returns the single-disk rebuild time in hours.
func (m *Model) SingleDiskRepairHours() float64 {
	return m.SingleDiskRepairBytes() / m.SingleDiskRepairBandwidth() / 3600
}

// PoolRepairHours returns the catastrophic-pool (R_ALL) rebuild time in
// hours.
func (m *Model) PoolRepairHours() float64 {
	return m.PoolRepairBytes() / m.PoolRepairBandwidth() / 3600
}

// Row is one line of Table 2.
type Row struct {
	Scheme placement.Scheme

	DiskRepairBytes float64 // single-disk repair size
	DiskRepairBW    float64 // bytes/s
	DiskRepairHours float64

	PoolRepairBytes float64 // catastrophic local pool repair size
	PoolRepairBW    float64 // bytes/s
	PoolRepairHours float64
}

// Table2 evaluates all four MLEC schemes under the given topology and
// parameters, reproducing Table 2 and both panels of Figure 6.
func Table2(topo topology.Config, params placement.Params) ([]Row, error) {
	rows := make([]Row, 0, len(placement.AllSchemes))
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(topo, params, s)
		if err != nil {
			return nil, fmt.Errorf("bwmodel: %v: %w", s, err)
		}
		m := New(l)
		rows = append(rows, Row{
			Scheme:          s,
			DiskRepairBytes: m.SingleDiskRepairBytes(),
			DiskRepairBW:    m.SingleDiskRepairBandwidth(),
			DiskRepairHours: m.SingleDiskRepairHours(),
			PoolRepairBytes: m.PoolRepairBytes(),
			PoolRepairBW:    m.PoolRepairBandwidth(),
			PoolRepairHours: m.PoolRepairHours(),
		})
	}
	return rows, nil
}

// DegradedPoolRepairBandwidth returns the local repair bandwidth of a
// local pool that currently has `failed` failed disks — used by the
// hybrid repair methods that finish a catastrophic pool's repair locally.
func (m *Model) DegradedPoolRepairBandwidth(failed int) float64 {
	topo := m.Layout.Topo
	d := topo.DiskRepairBandwidth()
	if m.Layout.Scheme.Local == placement.Clustered {
		// Rebuilding `failed` disks onto `failed` spares in parallel;
		// the spares' aggregate write bandwidth binds.
		if failed < 1 {
			failed = 1
		}
		return float64(failed) * d
	}
	surv := float64(m.Layout.LocalPoolSize() - failed)
	if surv < float64(m.Layout.Params.KL) {
		surv = float64(m.Layout.Params.KL)
	}
	return surv * d / float64(m.Layout.Params.KL+1)
}
