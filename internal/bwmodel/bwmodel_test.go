package bwmodel

import (
	"math"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b)) }

// TestTable2MatchesPaper verifies the model reproduces the paper's Table 2
// exactly (disk sizes and bandwidths in the stated units).
func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(topology.Default(), placement.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		scheme     placement.Scheme
		diskTB     float64
		diskBWMBs  float64
		poolTB     float64
		poolBWMBs  float64
		bwTolerant float64
	}{
		{placement.SchemeCC, 20, 40, 400, 250, 0.01},
		{placement.SchemeCD, 20, 264, 2400, 250, 0.01},
		{placement.SchemeDC, 20, 40, 400, 1363, 0.01},
		{placement.SchemeDD, 20, 264, 2400, 1363, 0.01},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.Scheme != w.scheme {
			t.Fatalf("row %d scheme %v, want %v", i, r.Scheme, w.scheme)
		}
		if got := r.DiskRepairBytes / 1e12; got != w.diskTB {
			t.Errorf("%v disk size %g TB, want %g", w.scheme, got, w.diskTB)
		}
		if got := r.DiskRepairBW / 1e6; !approx(got, w.diskBWMBs, w.bwTolerant) {
			t.Errorf("%v disk BW %.1f MB/s, want %g", w.scheme, got, w.diskBWMBs)
		}
		if got := r.PoolRepairBytes / 1e12; got != w.poolTB {
			t.Errorf("%v pool size %g TB, want %g", w.scheme, got, w.poolTB)
		}
		if got := r.PoolRepairBW / 1e6; !approx(got, w.poolBWMBs, w.bwTolerant) {
			t.Errorf("%v pool BW %.1f MB/s, want %g", w.scheme, got, w.poolBWMBs)
		}
	}
}

// TestFigure6Findings encodes the four findings of §4.1.2.
func TestFigure6Findings(t *testing.T) {
	rows, err := Table2(topology.Default(), placement.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[placement.Scheme]Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	cc, cd := byScheme[placement.SchemeCC], byScheme[placement.SchemeCD]
	dc, dd := byScheme[placement.SchemeDC], byScheme[placement.SchemeDD]

	// F#1: local-Dp single-disk repair ≈ 6× faster than local-Cp.
	ratio := cc.DiskRepairHours / cd.DiskRepairHours
	if ratio < 5.5 || ratio > 7.5 {
		t.Errorf("F#1: Cp/Dp single-disk time ratio = %.2f, want ≈ 6.6", ratio)
	}
	if dc.DiskRepairHours != cc.DiskRepairHours || dd.DiskRepairHours != cd.DiskRepairHours {
		t.Error("F#1: single-disk repair must depend only on the local level")
	}

	// F#2: C/D takes the longest for a catastrophic local failure.
	for _, r := range []Row{cc, dc, dd} {
		if cd.PoolRepairHours <= r.PoolRepairHours {
			t.Errorf("F#2: C/D pool repair (%.0f h) not the longest vs %v (%.0f h)",
				cd.PoolRepairHours, r.Scheme, r.PoolRepairHours)
		}
	}

	// F#3: D/C is the fastest, ≈5× the C/C rate.
	for _, r := range []Row{cc, cd, dd} {
		if dc.PoolRepairHours >= r.PoolRepairHours {
			t.Errorf("F#3: D/C pool repair (%.0f h) not the fastest vs %v (%.0f h)",
				dc.PoolRepairHours, r.Scheme, r.PoolRepairHours)
		}
	}
	if sp := dc.PoolRepairBW / cc.PoolRepairBW; sp < 4.5 || sp > 6 {
		t.Errorf("F#3: D/C speedup over C/C = %.2f, want ≈ 5.45", sp)
	}

	// F#4: D/D faster than C/D, slower than D/C, slightly slower than C/C.
	if !(dd.PoolRepairHours < cd.PoolRepairHours) {
		t.Error("F#4: D/D must beat C/D")
	}
	if !(dd.PoolRepairHours > dc.PoolRepairHours) {
		t.Error("F#4: D/D must be slower than D/C")
	}
	if !(dd.PoolRepairHours > cc.PoolRepairHours) {
		t.Error("F#4: D/D must be slightly slower than C/C")
	}
	if r := dd.PoolRepairHours / cc.PoolRepairHours; r > 1.5 {
		t.Errorf("F#4: D/D vs C/C ratio %.2f should be 'slight'", r)
	}
}

func TestRepairHoursAbsolute(t *testing.T) {
	// Sanity: C/C pool = 400 TB at 250 MB/s ≈ 444 h; C/D = 2400 TB at
	// 250 MB/s ≈ 2667 h (the paper's ~3K h bar).
	rows, _ := Table2(topology.Default(), placement.DefaultParams())
	byScheme := map[placement.Scheme]Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if h := byScheme[placement.SchemeCC].PoolRepairHours; !approx(h, 444.4, 0.01) {
		t.Errorf("C/C pool repair %.1f h, want ≈444", h)
	}
	if h := byScheme[placement.SchemeCD].PoolRepairHours; !approx(h, 2666.7, 0.01) {
		t.Errorf("C/D pool repair %.1f h, want ≈2667", h)
	}
	if h := byScheme[placement.SchemeCC].DiskRepairHours; !approx(h, 138.9, 0.01) {
		t.Errorf("C/C disk repair %.1f h, want ≈139", h)
	}
	if h := byScheme[placement.SchemeCD].DiskRepairHours; !approx(h, 21.0, 0.02) {
		t.Errorf("C/D disk repair %.1f h, want ≈21", h)
	}
}

func TestDegradedPoolRepairBandwidth(t *testing.T) {
	topo := topology.Default()
	params := placement.DefaultParams()

	lc := New(placement.MustNewLayout(topo, params, placement.SchemeCC))
	// 3 spares being written in parallel → 3·40 MB/s.
	if got := lc.DegradedPoolRepairBandwidth(3); got != 120e6 {
		t.Errorf("Cp degraded bw = %g", got)
	}
	if got := lc.DegradedPoolRepairBandwidth(0); got != 40e6 {
		t.Errorf("Cp degraded bw floor = %g", got)
	}

	ld := New(placement.MustNewLayout(topo, params, placement.SchemeCD))
	// 4 failed of 120 → 116 survivors × 40 / 18.
	want := 116.0 * 40e6 / 18
	if got := ld.DegradedPoolRepairBandwidth(4); !approx(got, want, 1e-9) {
		t.Errorf("Dp degraded bw = %g, want %g", got, want)
	}
	// Never drops below the kl floor.
	if got := ld.DegradedPoolRepairBandwidth(119); got < 17*40e6/18 {
		t.Errorf("Dp degraded bw floor violated: %g", got)
	}
}

func TestModelScalesWithTopology(t *testing.T) {
	// Doubling rack count doubles the network-declustered pool repair
	// bandwidth but leaves network-clustered untouched.
	topo := topology.Default()
	topo2 := topo
	topo2.Racks = 120
	p := placement.DefaultParams()
	bw1 := New(placement.MustNewLayout(topo, p, placement.SchemeDC)).PoolRepairBandwidth()
	bw2 := New(placement.MustNewLayout(topo2, p, placement.SchemeDC)).PoolRepairBandwidth()
	if !approx(bw2, 2*bw1, 1e-9) {
		t.Errorf("D/C bw did not double: %g vs %g", bw1, bw2)
	}
	cb1 := New(placement.MustNewLayout(topo, p, placement.SchemeCC)).PoolRepairBandwidth()
	cb2 := New(placement.MustNewLayout(topo2, p, placement.SchemeCC)).PoolRepairBandwidth()
	if cb1 != cb2 {
		t.Errorf("C/C bw changed with rack count: %g vs %g", cb1, cb2)
	}
}
