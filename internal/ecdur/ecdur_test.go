package ecdur

import (
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

const lambda = 0.01 / 8760

func slecNines(t *testing.T, k, p int, pl placement.SLECPlacement) float64 {
	t.Helper()
	r, err := SLEC(topology.Default(), placement.SLECParams{K: k, P: p}, pl, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return r.Nines
}

func TestMoreParityMoreNines(t *testing.T) {
	for _, pl := range placement.AllSLECPlacements {
		// Keep divisibility: widths 10, 12, 15, 20 divide 120 and 60.
		n2 := slecNines(t, 8, 2, pl)
		n4 := slecNines(t, 8, 4, pl)
		if n4 <= n2 {
			t.Errorf("%v: p=4 (%f nines) not above p=2 (%f)", pl, n4, n2)
		}
	}
}

func TestDurabilityInRange(t *testing.T) {
	for _, pl := range placement.AllSLECPlacements {
		n := slecNines(t, 7, 3, pl)
		if n < 3 || n > 60 {
			t.Errorf("%v (7+3): %f nines implausible", pl, n)
		}
		t.Logf("%v (7+3): %.1f nines", pl, n)
	}
}

// TestDeclusteredRepairHelps: under independent failures, declustered
// placements repair faster and have low coverage probability, giving more
// nines than clustered at the same code (§4.1.3 logic, SLEC edition).
func TestDeclusteredRepairHelps(t *testing.T) {
	cp := slecNines(t, 7, 3, placement.LocalCp)
	dp := slecNines(t, 7, 3, placement.LocalDp)
	if dp <= cp {
		t.Errorf("Loc-Dp (%f) must beat Loc-Cp (%f) on independent failures", dp, cp)
	}
}

func TestSLECValidation(t *testing.T) {
	if _, err := SLEC(topology.Default(), placement.SLECParams{K: 8, P: 3}, placement.LocalCp, lambda); err == nil {
		t.Error("non-dividing width accepted")
	}
}

func TestLRCDurability(t *testing.T) {
	r, err := LRC(topology.Default(), placement.LRCParams{K: 14, L: 2, R: 4}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nines < 5 || r.Nines > 60 {
		t.Errorf("LRC (14,2,4): %f nines implausible", r.Nines)
	}
	t.Logf("LRC-Dp (14,2,4): %.1f nines", r.Nines)
	// More global parities → more nines.
	r2, err := LRC(topology.Default(), placement.LRCParams{K: 14, L: 2, R: 2}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Nines >= r.Nines {
		t.Errorf("r=2 (%f) should be below r=4 (%f)", r2.Nines, r.Nines)
	}
}

// bruteFatalFraction enumerates every m-subset and applies the MR
// criterion directly — ground truth for the counting DP.
func bruteFatalFraction(p placement.LRCParams, m int) float64 {
	w := p.Width()
	total, fatal := 0, 0
	idx := make([]int, m)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == m {
			total++
			if !p.Recoverable(append([]int(nil), idx...), 0) {
				fatal++
			}
			return
		}
		for i := start; i < w; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	if total == 0 {
		return 0
	}
	return float64(fatal) / float64(total)
}

// TestFatalPatternFractionDPvsBrute cross-validates the counting DP
// against exhaustive enumeration on every pattern size of small codes.
func TestFatalPatternFractionDPvsBrute(t *testing.T) {
	for _, p := range []placement.LRCParams{
		{K: 4, L: 2, R: 2},
		{K: 6, L: 2, R: 3},
		{K: 6, L: 3, R: 2},
		{K: 10, L: 2, R: 2},
	} {
		for m := 0; m <= p.Width() && m <= 8; m++ {
			got := fatalPatternFraction(p, m)
			want := bruteFatalFraction(p, m)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%v m=%d: DP %g vs brute %g", p, m, got, want)
			}
		}
	}
}

func TestFatalPatternFraction(t *testing.T) {
	p := placement.LRCParams{K: 4, L: 2, R: 2}
	// m = r+1 = 3: never fatal for the MR code.
	if f := fatalPatternFraction(p, 3); f > 1e-12 {
		t.Errorf("3-failure fatal fraction %g, want 0", f)
	}
	// m = r+2 = 4: some patterns fatal (e.g. 3 in one group + 1 global).
	f := fatalPatternFraction(p, 4)
	if f <= 0 || f >= 1 {
		t.Errorf("4-failure fatal fraction %g outside (0,1)", f)
	}
	// m = l+r+1 = 5: always fatal (up to float rounding in the DP).
	if f := fatalPatternFraction(p, 5); f < 1-1e-9 {
		t.Errorf("5-failure fatal fraction %g, want 1", f)
	}
}

// TestCascadeDetectionFloor: shrinking the detection delay is what
// unlocks declustered durability; conversely the 30-minute floor caps it
// (§5.2.2 F#2). We verify the cascade is sensitive to the cohort windows
// by checking that more stripes per cohort (bigger pool data) can only
// lower durability.
func TestCascadeMoreDataLowerDurability(t *testing.T) {
	topo := topology.Default()
	big := topo
	big.DiskCapacityBytes *= 4
	small, err := SLEC(topo, placement.SLECParams{K: 8, P: 2}, placement.LocalDp, lambda)
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := SLEC(big, placement.SLECParams{K: 8, P: 2}, placement.LocalDp, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Nines > small.Nines {
		t.Errorf("4× disk capacity raised durability: %f vs %f nines", bigger.Nines, small.Nines)
	}
}
