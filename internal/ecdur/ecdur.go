// Package ecdur estimates the long-term (independent-failure) durability
// of the non-MLEC code families the paper compares against in Section 5:
// the four SLEC placements and the declustered LRC. MLEC durability comes
// from the splitting package; this package supplies the SLEC/LRC sides of
// Figures 12 and 15.
//
// Two models are used, matching the structure of the placements:
//
//   - Clustered local pools (Loc-Cp): the classic birth–death Markov
//     chain per pool (internal/markov) — every stripe spans every pool
//     disk, so disk-level state is exact.
//
//   - Declustered placements (Loc-Dp, Net-Cp within its rack group,
//     Net-Dp, LRC-Dp): a level cascade that mirrors the priority
//     repairer. At level j (a stripe with j dead chunks exists), the
//     exposure window W_j is the time to rebuild the level-j cohort
//     (tiny for j ≥ 2 — priority repair — so the 30-minute detection
//     delay floors it, the effect behind §5.2.2 F#2), and the next
//     failure escalates only if it hits one of the n_j cohort stripes:
//
//     rate ≈ D·λ · Π_{j=1}^{p} [ (D−j)·λ·W_j · h_j ] · fatal
//
//     with n_j from the hypergeometric stripe-intersection law at true
//     chunk granularity, h_j = 1−(1−(w−j)/(D−j))^{n_j}, and `fatal` the
//     fraction of patterns the code cannot decode (1 for MDS SLEC,
//     the MR-criterion fraction for LRC).
package ecdur

import (
	"fmt"

	"mlec/internal/failure"
	"mlec/internal/markov"
	"mlec/internal/mathx"
	"mlec/internal/placement"
	"mlec/internal/topology"
)

// Result is one durability estimate.
type Result struct {
	Label     string
	AnnualPDL float64
	Nines     float64
}

// cascadeInput describes one declustered "pool" for the level cascade.
type cascadeInput struct {
	Disks      int     // D: disks the pool's stripes draw from
	Width      int     // w: chunks per stripe
	Tolerance  int     // p: max dead chunks a stripe survives
	Stripes    float64 // stripes in the pool (true chunk granularity)
	ChunkBytes float64
	// RepairBW returns the pool repair bandwidth (bytes/s of rebuilt
	// data) with f disks under repair.
	RepairBW func(f int) float64
	// FirstWindowHours is the level-1 exposure (one disk's rebuild).
	FirstWindowHours float64
	// FatalFraction is P(pattern undecodable | a stripe reached
	// Tolerance+1 dead chunks); 1 for MDS codes.
	FatalFraction float64
	Lambda        float64 // per-disk failure rate per hour
	// DetectionHours floors every exposure window (default 0.5).
	DetectionHours float64
}

// cascadeRate returns the pool's data-loss rate per hour.
func cascadeRate(in cascadeInput) float64 {
	D, w, p := in.Disks, in.Width, in.Tolerance
	rate := float64(D) * in.Lambda
	for j := 1; j <= p; j++ {
		// Exposure window of the level-j cohort.
		var wj float64
		if j == 1 {
			wj = in.FirstWindowHours
		} else {
			nj := in.Stripes * mathx.HypergeomPMF(j, j, D, w)
			volume := nj * float64(j) * in.ChunkBytes
			wj = volume / in.RepairBW(j) / 3600
		}
		wj += in.DetectionHours
		// Next failure during the window…
		pArrive := float64(D-j) * in.Lambda * wj
		if pArrive > 1 {
			pArrive = 1
		}
		// …hitting one of the cohort stripes.
		nj := in.Stripes * mathx.HypergeomPMF(j, j, D, w)
		hit := mathx.OneMinusPow(float64(w-j)/float64(D-j), nj)
		rate *= pArrive * hit
	}
	return rate * in.FatalFraction
}

// SLEC estimates the annual system PDL of a (k+p) SLEC under the given
// placement with independent failures at the per-hour rate lambda.
func SLEC(topo topology.Config, params placement.SLECParams, pl placement.SLECPlacement, lambda float64) (Result, error) {
	return SLECDetect(topo, params, pl, lambda, failure.DefaultDetectionDelayHours)
}

// SLECDetect is SLEC with an explicit failure-detection delay — the knob
// behind the paper's §5.2.2 discussion of 1-minute detection.
func SLECDetect(topo topology.Config, params placement.SLECParams, pl placement.SLECPlacement, lambda, detectHours float64) (Result, error) {
	l, err := placement.NewSLECLayout(topo, params, pl)
	if err != nil {
		return Result{}, err
	}
	k, p := params.K, params.P
	d := topo.DiskRepairBandwidth()
	label := fmt.Sprintf("%v %v", pl, params)

	var ratePerHour float64
	switch pl {
	case placement.LocalCp:
		chain := markov.SLECPool(params.Width(), p, lambda, topo.DiskCapacityBytes,
			func(f int) float64 { return float64(f) * d })
		r, err := chain.LossRatePerHour()
		if err != nil {
			return Result{}, err
		}
		ratePerHour = r * float64(l.TotalPools())

	case placement.LocalDp:
		D := topo.DisksPerEnclosure
		bw := func(f int) float64 {
			surv := D - f
			if surv < k {
				surv = k
			}
			return float64(surv) * d / float64(k+1)
		}
		in := cascadeInput{
			Disks: D, Width: params.Width(), Tolerance: p,
			Stripes: l.StripesPerPool(), ChunkBytes: topo.ChunkSizeBytes,
			RepairBW:         bw,
			FirstWindowHours: topo.DiskCapacityBytes / bw(1) / 3600,
			FatalFraction:    1, Lambda: lambda, DetectionHours: detectHours,
		}
		ratePerHour = cascadeRate(in) * float64(l.TotalPools())

	case placement.NetworkCp:
		// Declustered within each rack group; repairs write to spares
		// across the group's racks: group cross-rack budget over k+1
		// crossings, capped by participating disks.
		groupRacks := params.Width()
		bwv := float64(groupRacks) * topo.RackRepairBandwidth() / float64(k+1)
		if max := float64(l.PoolSize()-1) * d / float64(k+1); bwv > max {
			bwv = max
		}
		in := cascadeInput{
			Disks: l.PoolSize(), Width: params.Width(), Tolerance: p,
			Stripes: l.StripesPerPool(), ChunkBytes: topo.ChunkSizeBytes,
			RepairBW:         func(int) float64 { return bwv },
			FirstWindowHours: topo.DiskCapacityBytes / bwv / 3600,
			FatalFraction:    1, Lambda: lambda, DetectionHours: detectHours,
		}
		ratePerHour = cascadeRate(in) * float64(l.TotalPools())

	default: // NetworkDp
		bwv := float64(topo.Racks) * topo.RackRepairBandwidth() / float64(k+1)
		if max := float64(topo.TotalDisks()-1) * d / float64(k+1); bwv > max {
			bwv = max
		}
		in := cascadeInput{
			Disks: topo.TotalDisks(), Width: params.Width(), Tolerance: p,
			Stripes: l.TotalStripes(), ChunkBytes: topo.ChunkSizeBytes,
			RepairBW:         func(int) float64 { return bwv },
			FirstWindowHours: topo.DiskCapacityBytes / bwv / 3600,
			FatalFraction:    1, Lambda: lambda, DetectionHours: detectHours,
		}
		ratePerHour = cascadeRate(in)
	}

	pdl := mathx.RateToAnnualPDL(ratePerHour)
	return Result{Label: label, AnnualPDL: pdl, Nines: mathx.Nines(pdl)}, nil
}

// LRC estimates the annual system PDL of a (k,l,r) LRC-Dp layout. The
// cascade's stripe tolerance is r+1 dead chunks (any r+1 failures decode
// under the MR criterion); the final arrival is fatal for the
// MR-rejected fraction of (r+2)-patterns.
func LRC(topo topology.Config, params placement.LRCParams, lambda float64) (Result, error) {
	return LRCDetect(topo, params, lambda, failure.DefaultDetectionDelayHours)
}

// LRCDetect is LRC with an explicit failure-detection delay.
func LRCDetect(topo topology.Config, params placement.LRCParams, lambda, detectHours float64) (Result, error) {
	l, err := placement.NewLRCLayout(topo, params)
	if err != nil {
		return Result{}, err
	}
	groupReads := params.K / params.L
	d := topo.DiskRepairBandwidth()
	bwv := float64(topo.Racks) * topo.RackRepairBandwidth() / float64(groupReads+1)
	if max := float64(topo.TotalDisks()-1) * d / float64(groupReads+1); bwv > max {
		bwv = max
	}
	in := cascadeInput{
		Disks: topo.TotalDisks(), Width: params.Width(), Tolerance: params.R + 1,
		Stripes: l.TotalStripes(), ChunkBytes: topo.ChunkSizeBytes,
		RepairBW:         func(int) float64 { return bwv },
		FirstWindowHours: topo.DiskCapacityBytes / bwv / 3600,
		FatalFraction:    fatalPatternFraction(params, params.R+2),
		Lambda:           lambda,
		DetectionHours:   detectHours,
	}
	rate := cascadeRate(in)
	pdl := mathx.RateToAnnualPDL(rate)
	return Result{
		Label:     fmt.Sprintf("LRC-Dp %v", params),
		AnnualPDL: pdl,
		Nines:     mathx.Nines(pdl),
	}, nil
}

// fatalPatternFraction returns the fraction of m-subsets of stripe slots
// whose loss is unrecoverable under the MR criterion, counted exactly by
// dynamic programming over groups: a pattern with g_i losses in group i
// (data + local parity, k/l+1 slots) and gf lost globals is fatal iff
// Σ max(0, g_i−1) + gf > r. Enumerating subsets directly would cost
// C(width, m) — prohibitive for wide codes.
func fatalPatternFraction(p placement.LRCParams, m int) float64 {
	groupSlots := p.K/p.L + 1
	capEx := p.R + 1 // absorb any excess beyond the fatal threshold
	// dp[used][excess] = weighted ways over groups processed so far.
	dp := make([][]float64, m+1)
	for i := range dp {
		dp[i] = make([]float64, capEx+1)
	}
	dp[0][0] = 1
	for g := 0; g < p.L; g++ {
		next := make([][]float64, m+1)
		for i := range next {
			next[i] = make([]float64, capEx+1)
		}
		for used := 0; used <= m; used++ {
			for ex := 0; ex <= capEx; ex++ {
				v := dp[used][ex]
				if v == 0 {
					continue
				}
				maxTake := groupSlots
				if used+maxTake > m {
					maxTake = m - used
				}
				for take := 0; take <= maxTake; take++ {
					exc := 0
					if take > 1 {
						exc = take - 1
					}
					ne := ex + exc
					if ne > capEx {
						ne = capEx
					}
					next[used+take][ne] += v * mathx.Choose(groupSlots, take)
				}
			}
		}
		dp = next
	}
	// Append global-parity losses and count fatal combinations.
	fatal := 0.0
	for used := 0; used <= m; used++ {
		gf := m - used
		if gf > p.R {
			continue // cannot lose more globals than exist
		}
		ways := mathx.Choose(p.R, gf)
		for ex := 0; ex <= capEx; ex++ {
			if ex+gf > p.R {
				fatal += dp[used][ex] * ways
			}
		}
	}
	total := mathx.Choose(p.Width(), m)
	if total == 0 {
		return 0
	}
	return fatal / total
}
