package faultinject

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// EnvVar is the environment hook equivalent to the -chaos flag: a
// chaos spec in MLEC_CHAOS arms the same plan in any CLI without
// editing its command line — useful for chaos CI wrappers. The flag,
// when set, wins over the environment.
const EnvVar = "MLEC_CHAOS"

// CLIFlags carries the chaos debug flag every CLI exposes. Bind before
// flag.Parse, Activate after argument validation; the returned stop
// function disarms the plan (idempotent).
type CLIFlags struct {
	Spec string // -chaos: injection spec, "" = consult MLEC_CHAOS, then off
}

// BindCLIFlags registers -chaos on fs.
func BindCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.Spec, "chaos", "",
		"arm the deterministic fault-injection plan (debug; e.g. 'poolsim.worker:panic:p=0.1'; env "+EnvVar+")")
	return f
}

// Activate parses and arms the spec (flag first, MLEC_CHAOS fallback)
// and announces the armed rules on errw so a chaos run is never
// mistaken for a clean one. With no spec it arms nothing and the
// returned stop is a no-op.
func (f *CLIFlags) Activate(errw io.Writer) (func(), error) {
	spec := f.Spec
	if spec == "" {
		spec = os.Getenv(EnvVar)
	}
	plan, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return func() {}, nil
	}
	Enable(plan)
	fmt.Fprintf(errw, "chaos: %d rule(s) armed, seed %d:\n", len(plan.rules), plan.Seed)
	for _, r := range plan.Rules() {
		fmt.Fprintf(errw, "chaos:   %s\n", describeRule(r))
	}
	return Disable, nil
}

func describeRule(r Rule) string {
	trigger := "every hit"
	switch {
	case r.Prob > 0:
		trigger = fmt.Sprintf("p=%g per stream", r.Prob)
	case r.Nth > 0:
		trigger = fmt.Sprintf("hit #%d", r.Nth)
	case r.Every > 0:
		trigger = fmt.Sprintf("every %d hits", r.Every)
	}
	s := fmt.Sprintf("%s: %s (%s", r.Point, r.Kind, trigger)
	if r.Count > 0 {
		s += fmt.Sprintf(", max %d", r.Count)
	}
	if r.Kind == KindDelay {
		s += fmt.Sprintf(", %v", r.Delay)
	}
	if r.Kind == KindWriteError && r.Bytes > 0 {
		s += fmt.Sprintf(", after %d bytes", r.Bytes)
	}
	return s + ")"
}
