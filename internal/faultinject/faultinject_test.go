package faultinject

import (
	"bytes"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"
)

// arm parses and enables spec for the duration of the test.
func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Enable(p)
	t.Cleanup(Disable)
	return p
}

func TestParseGrammar(t *testing.T) {
	good := []struct {
		spec string
		want func(t *testing.T, p *Plan)
	}{
		{"a.b:panic", func(t *testing.T, p *Plan) {
			r := p.Rules()[0]
			if r.Kind != KindPanic || r.Prob != 0 || r.Nth != 0 {
				t.Errorf("rule = %+v", r)
			}
		}},
		{"a.b:error:p=0.25,count=3;seed=42", func(t *testing.T, p *Plan) {
			r := p.Rules()[0]
			if r.Prob != 0.25 || r.Count != 3 || p.Seed != 42 {
				t.Errorf("rule = %+v seed = %d", r, p.Seed)
			}
		}},
		{"a:writeerr:nth=2,bytes=16; b:delay:ms=5", func(t *testing.T, p *Plan) {
			rs := p.Rules()
			if len(rs) != 2 {
				t.Fatalf("rules = %+v", rs)
			}
			if rs[0].Nth != 2 || rs[0].Bytes != 16 {
				t.Errorf("writeerr rule = %+v", rs[0])
			}
			if rs[1].Kind != KindDelay || rs[1].Delay != 5*time.Millisecond {
				t.Errorf("delay rule = %+v", rs[1])
			}
		}},
	}
	for _, tc := range good {
		p, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		tc.want(t, p)
	}

	bad := []string{
		"a.b",                   // no kind
		"a.b:explode",           // unknown kind
		"a.b:panic:p=2",         // probability out of range
		"a.b:panic:p=0.1,nth=3", // two triggers
		"a.b:panic:wat",         // not key=value
		"a.b:panic:zzz=1",       // unknown parameter
		"seed=x",                // bad seed
		"a:panic;a:error",       // duplicate point
		"seed=5",                // arms no rules
		":panic",                // empty point
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}

	// Empty spec: disabled, not an error.
	if p, err := Parse("  "); err != nil || p != nil {
		t.Errorf("Parse(empty) = %v, %v; want nil, nil", p, err)
	}
}

func TestFireDisabledIsInert(t *testing.T) {
	Disable()
	if err := Fire("any.point", 7); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := Fire("any.point", 7); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("disabled Fire allocates %v per call, want 0", allocs)
	}
}

func TestNthTrigger(t *testing.T) {
	arm(t, "pt:error:nth=3")
	for hit := 1; hit <= 5; hit++ {
		err := Fire("pt", 0)
		if (hit == 3) != (err != nil) {
			t.Errorf("hit %d: err = %v", hit, err)
		}
		if err != nil {
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Point != "pt" || ie.Kind != KindError {
				t.Errorf("hit %d: error %v is not a typed injection", hit, err)
			}
		}
	}
}

func TestEveryAndCount(t *testing.T) {
	arm(t, "pt:error:every=2,count=2")
	var fires []int
	for hit := 1; hit <= 10; hit++ {
		if Fire("pt", 0) != nil {
			fires = append(fires, hit)
		}
	}
	if len(fires) != 2 || fires[0] != 2 || fires[1] != 4 {
		t.Errorf("fires at hits %v, want [2 4]", fires)
	}
}

// TestProbDeterminismAndOncePerStream pins the two properties the
// self-healing determinism argument rests on: the cursed-stream set is
// a pure function of (seed, point, stream), and a cursed stream fires
// only on its first hit, so its retry runs clean.
func TestProbDeterminismAndOncePerStream(t *testing.T) {
	const spec = "pt:error:p=0.3;seed=9"
	cursed := func() map[int64]bool {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		Enable(p)
		defer Disable()
		out := map[int64]bool{}
		for s := int64(0); s < 2000; s++ {
			if Fire("pt", s) != nil {
				out[s] = true
			}
		}
		return out
	}
	a, b := cursed(), cursed()
	if len(a) == 0 {
		t.Fatal("p=0.3 cursed no streams out of 2000")
	}
	frac := float64(len(a)) / 2000
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("cursed fraction %.3f far from p=0.3", frac)
	}
	if len(a) != len(b) {
		t.Fatalf("two identical plans cursed %d vs %d streams", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Fatalf("stream %d cursed in one run but not the other", s)
		}
	}

	// Second hit of a cursed stream must not fire (the retry is clean).
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	Enable(p)
	defer Disable()
	var s0 int64 = -1
	for s := range a {
		s0 = s
		break
	}
	if Fire("pt", s0) == nil {
		t.Fatalf("stream %d: first hit did not fire", s0)
	}
	for retry := 0; retry < 3; retry++ {
		if err := Fire("pt", s0); err != nil {
			t.Fatalf("stream %d retry %d fired again: %v", s0, retry, err)
		}
	}
}

func TestPanicKindPanicsTyped(t *testing.T) {
	arm(t, "pt:panic:nth=1")
	defer func() {
		r := recover()
		ie, ok := r.(*InjectedError)
		if !ok || ie.Kind != KindPanic || ie.Stream != 11 {
			t.Errorf("recovered %v, want *InjectedError{KindPanic, stream 11}", r)
		}
	}()
	_ = Fire("pt", 11)
	t.Fatal("Fire did not panic")
}

func TestWriterPartialAndFailedWrites(t *testing.T) {
	arm(t, "wp:writeerr:nth=1,bytes=4")
	var sink bytes.Buffer
	w := Writer("wp", 0, &sink)
	n, err := w.Write([]byte("abcdefgh"))
	if n != 4 || err == nil {
		t.Fatalf("torn write: n=%d err=%v, want 4 bytes then an error", n, err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Kind != KindWriteError {
		t.Fatalf("error %v is not a typed write injection", err)
	}
	if sink.String() != "abcd" {
		t.Fatalf("sink holds %q, want the partial prefix", sink.String())
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("writer recovered after injected failure")
	}

	// nth=1 already consumed: the next Writer call passes through.
	var clean bytes.Buffer
	w2 := Writer("wp", 0, &clean)
	if n, err := w2.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("second writer faulted: n=%d err=%v", n, err)
	}
	if _, isFaulty := w2.(*faultyWriter); isFaulty {
		t.Fatal("untriggered Writer returned a faulty writer")
	}

	// Fire never serves writeerr rules.
	if err := Fire("wp", 0); err != nil {
		t.Fatalf("Fire served a writeerr rule: %v", err)
	}
}

func TestDelayKindSleepsAndReturnsNil(t *testing.T) {
	arm(t, "dp:delay:nth=1,ms=1")
	if err := Fire("dp", 0); err != nil {
		t.Fatalf("delay returned %v", err)
	}
}

func TestFlagsActivate(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := BindCLIFlags(fs)
	if err := fs.Parse([]string{"-chaos", "pt:panic:p=0.5"}); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	stop, err := f.Activate(&errw)
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Activate did not arm the plan")
	}
	if !strings.Contains(errw.String(), "chaos:") || !strings.Contains(errw.String(), "pt") {
		t.Errorf("announcement missing from stderr: %q", errw.String())
	}
	stop()
	if Enabled() {
		t.Fatal("stop did not disarm the plan")
	}

	// Environment hook: the flag empty, MLEC_CHAOS set.
	t.Setenv(EnvVar, "env.pt:error:nth=1")
	f2 := &CLIFlags{}
	stop2, err := f2.Activate(&errw)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if !Enabled() {
		t.Fatal("MLEC_CHAOS did not arm the plan")
	}
	if err := Fire("env.pt", 0); err == nil {
		t.Fatal("env-armed rule did not fire")
	}

	// A malformed spec is a usage error, not a silent no-op.
	f3 := &CLIFlags{Spec: "broken"}
	if _, err := f3.Activate(&errw); err == nil {
		t.Fatal("Activate accepted a malformed spec")
	}
}
