// End-to-end proof of the self-healing determinism contract (the chaos
// CI matrix; make chaos runs exactly these tests):
//
//  1. A fixed-seed campaign with injected worker panics (≥10% of worker
//     streams) and an injected checkpoint-write failure produces stdout
//     byte-identical to the fault-free run — every fault healed by
//     stream re-runs and save retries, none visible in the results.
//  2. A campaign resumed after its newest checkpoint is deliberately
//     corrupted falls back to the previous generation, loudly, and
//     still converges to the byte-identical result.
//
// The binaries are built with -race so the healing paths are exercised
// under the race detector. With CHAOS_REPORT set, each case appends a
// verdict line to that file (the CI artifact).
package faultinject_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func chaosRepoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

var (
	chaosBuildOnce sync.Once
	chaosBuildDir  string
	chaosBuildErr  error
)

// buildRaceBinaries compiles mlecdur and mlecburst with -race once per
// test process.
func buildRaceBinaries(t *testing.T) string {
	t.Helper()
	chaosBuildOnce.Do(func() {
		root := chaosRepoRoot(t)
		chaosBuildDir, chaosBuildErr = os.MkdirTemp("", "chaos-e2e-*")
		if chaosBuildErr != nil {
			return
		}
		for _, name := range []string{"mlecdur", "mlecburst"} {
			cmd := exec.Command("go", "build", "-race", "-o", filepath.Join(chaosBuildDir, name), "./cmd/"+name)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				chaosBuildErr = fmt.Errorf("building %s -race: %v\n%s", name, err, out)
				return
			}
		}
	})
	if chaosBuildErr != nil {
		t.Fatal(chaosBuildErr)
	}
	return chaosBuildDir
}

func runChaosBinary(t *testing.T, bin string, args ...string) (stdout, stderr []byte) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", filepath.Base(bin), args, err, errb.String())
	}
	return out.Bytes(), errb.Bytes()
}

var chaosReportMu sync.Mutex

// reportChaos appends one verdict line to $CHAOS_REPORT, the artifact
// the chaos CI job uploads.
func reportChaos(t *testing.T, format string, args ...any) {
	t.Helper()
	path := os.Getenv("CHAOS_REPORT")
	if path == "" {
		return
	}
	chaosReportMu.Lock()
	defer chaosReportMu.Unlock()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("CHAOS_REPORT: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, format+"\n", args...)
}

// TestChaosMatrixByteIdentity runs the fault matrix: each case runs a
// campaign fault-free, then again with the chaos plan armed, and the
// two stdouts must match byte for byte.
func TestChaosMatrixByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs -race binaries")
	}
	bins := buildRaceBinaries(t)
	cases := []struct {
		name       string
		bin        string
		args       []string
		chaos      string
		checkpoint string // flag name when the case needs a checkpoint path
	}{
		{
			// ≥10% of splitting worker streams panic on first attempt,
			// and the first checkpoint write attempt fails mid-stream.
			name:       "mlecdur_worker_panics_and_ckpt_writeerr",
			bin:        "mlecdur",
			args:       []string{"-scheme", "D/D", "-sim", "-trajectories", "600", "-seed", "7"},
			chaos:      "poolsim.worker:panic:p=0.25;runctl.checkpoint.write:writeerr:nth=1,bytes=8;seed=11",
			checkpoint: "-checkpoint",
		},
		{
			name:       "mlecburst_batch_panics_and_ckpt_writeerr",
			bin:        "mlecburst",
			args:       []string{"-scheme", "D/D", "-x", "3", "-y", "40", "-trials", "2000", "-seed", "5"},
			chaos:      "burst.batch:panic:p=0.15;runctl.checkpoint.write:writeerr:nth=1;seed=13",
			checkpoint: "-checkpoint",
		},
		{
			// Injected worker errors (not panics) heal the same way.
			name:  "mlecdur_worker_errors",
			bin:   "mlecdur",
			args:  []string{"-scheme", "C/D", "-sim", "-trajectories", "600", "-seed", "9"},
			chaos: "poolsim.worker:error:p=0.2;seed=17",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bin := filepath.Join(bins, tc.bin)
			cleanArgs := append([]string(nil), tc.args...)
			if tc.checkpoint != "" {
				cleanArgs = append(cleanArgs, tc.checkpoint, filepath.Join(t.TempDir(), "clean.ckpt"))
			}
			clean, _ := runChaosBinary(t, bin, cleanArgs...)

			chaosArgs := append([]string(nil), tc.args...)
			if tc.checkpoint != "" {
				chaosArgs = append(chaosArgs, tc.checkpoint, filepath.Join(t.TempDir(), "chaos.ckpt"))
			}
			chaosArgs = append(chaosArgs, "-chaos", tc.chaos)
			healed, stderrOut := runChaosBinary(t, bin, chaosArgs...)

			if !bytes.Equal(clean, healed) {
				reportChaos(t, "FAIL %s: healed stdout diverged from fault-free run", tc.name)
				t.Fatalf("healed chaos run diverged from the fault-free run.\nclean:\n%s\nchaos:\n%s\nstderr:\n%s",
					clean, healed, stderrOut)
			}
			if !bytes.Contains(stderrOut, []byte("chaos:")) {
				t.Errorf("chaos announcement missing from stderr:\n%s", stderrOut)
			}
			reportChaos(t, "PASS %s: %s %v under %q byte-identical to fault-free run",
				tc.name, tc.bin, tc.args, tc.chaos)
		})
	}
}

// TestChaosCheckpointCorruptionFallback corrupts the newest checkpoint
// generation of a finished campaign and re-runs the identical command:
// the resume must fall back to the previous generation, loudly, re-run
// the lost tail, and converge to the byte-identical result.
func TestChaosCheckpointCorruptionFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs -race binaries")
	}
	bins := buildRaceBinaries(t)
	bin := filepath.Join(bins, "mlecdur")
	ckpt := filepath.Join(t.TempDir(), "dur.ckpt")
	args := []string{"-scheme", "D/D", "-sim", "-trajectories", "600", "-seed", "7", "-checkpoint", ckpt}

	baseline, _ := runChaosBinary(t, bin, args...)
	prev := ckpt + ".1"
	if _, err := os.Stat(prev); err != nil {
		t.Fatalf("campaign with multiple checkpoint saves left no previous generation: %v", err)
	}

	// Flip a byte in the middle of the newest generation; the gzip CRC
	// turns that into a detected corruption on load.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, stderrOut := runChaosBinary(t, bin, args...)
	if !bytes.Contains(stderrOut, []byte("resuming from previous generation")) {
		reportChaos(t, "FAIL corruption_fallback: no fallback warning on stderr")
		t.Fatalf("fallback warning missing from stderr:\n%s", stderrOut)
	}
	if !bytes.Equal(baseline, resumed) {
		reportChaos(t, "FAIL corruption_fallback: resumed stdout diverged")
		t.Fatalf("resume after corruption diverged from the uninterrupted run.\nbaseline:\n%s\nresumed:\n%s",
			baseline, resumed)
	}
	reportChaos(t, "PASS corruption_fallback: corrupt newest generation healed via %s, byte-identical convergence", prev)
}
