// Package faultinject is a deterministic, seeded fault-injection
// harness for the run-control layer and the Monte-Carlo engines.
//
// The paper's premise is that at data-center scale failures are the
// steady state, not the exception (Rashmi et al. measure tens of
// unavailability events per day in a single Facebook warehouse). A
// campaign runner that models such systems should itself survive
// faults, and the only way to trust that it does is to inject them on
// purpose, deterministically, in CI. This package provides the
// injection half of that loop; internal/runctl provides the healing
// half (stream re-runs, checkpoint generations, the stall watchdog).
//
// # Injection points
//
// Code under test names its fault sites ("poolsim.worker",
// "runctl.checkpoint.write") and calls Fire (or wraps a writer in
// Writer) at each one. A site costs one atomic pointer load when no
// plan is armed — the same inertness discipline obs.Trace.Emit
// follows — so sites stay in production code unconditionally, and the
// CLI inertness byte-comparison test proves a chaos-less run is
// byte-identical with the sites compiled in.
//
// # Determinism
//
// Probability triggers are pure functions of (plan seed, point name,
// stream id, per-stream hit index) via splitmix64 — never of wall
// clock, scheduling, or map order — so a fixed-seed chaos run injects
// the same faults at the same streams on every host. A probability
// rule fires at most once per (point, stream): the first hit of a
// cursed stream faults, its retry (the same stream, hit two) runs
// clean, which is what lets runctl's K-attempt stream re-runs converge
// to byte-identical results with certainty instead of with probability.
// Count caps (`count=N`) bound total fires; nth/every triggers consult
// a global per-point hit counter for single-threaded sites such as
// checkpoint saves.
//
// # Spec grammar
//
// Plans are parsed from the -chaos CLI flag or the MLEC_CHAOS
// environment variable:
//
//	spec   := item (';' item)*
//	item   := 'seed=' INT | rule
//	rule   := point ':' kind (':' param (',' param)*)?
//	kind   := 'panic' | 'error' | 'delay' | 'writeerr'
//	param  := 'p=' FLOAT | 'nth=' INT | 'every=' INT |
//	          'count=' INT | 'ms=' INT | 'bytes=' INT
//
// Example: inject a panic into ~15% of worker streams and fail the
// first checkpoint write once:
//
//	-chaos 'poolsim.worker:panic:p=0.15;runctl.checkpoint.write:writeerr:nth=1'
package faultinject

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlec/internal/obs"
)

// Kind is the fault a rule injects at its point.
type Kind int

const (
	// KindPanic panics with an *InjectedError; the containment and
	// retry machinery in runctl must convert it back into forward
	// progress.
	KindPanic Kind = iota
	// KindError returns an *InjectedError from Fire for the caller to
	// propagate like any worker failure.
	KindError
	// KindDelay sleeps for the rule's duration and returns nil — a
	// latency fault that must never change a fixed-seed result, only
	// scheduling.
	KindDelay
	// KindWriteError arms Writer: the wrapped writer accepts the rule's
	// byte budget and then fails, modeling torn or failed writes.
	KindWriteError
)

// String names the kind the way the spec grammar spells it.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindWriteError:
		return "writeerr"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// InjectedError marks a fault this package manufactured, so handling
// layers (and test assertions) can tell injected faults from real ones.
type InjectedError struct {
	Point  string
	Kind   Kind
	Stream int64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s (stream %d)", e.Kind, e.Point, e.Stream)
}

// Rule is one armed fault: a point, a kind, and a trigger. Exactly one
// of Prob, Nth, Every selects the trigger; all zero means every hit.
type Rule struct {
	Point string
	Kind  Kind
	// Prob fires on the first hit of a (point, stream) pair with this
	// probability, decided by a pure function of (seed, point, stream).
	Prob float64
	// Nth fires on exactly the nth hit of the point (1-based, counted
	// across all streams).
	Nth int
	// Every fires on every every-th hit of the point.
	Every int
	// Count caps total fires of this rule; 0 = unbounded.
	Count int
	// Delay is the sleep for KindDelay (default 10ms).
	Delay time.Duration
	// Bytes is how many bytes a KindWriteError writer accepts before
	// failing (default 0: the first write fails outright).
	Bytes int
}

// ruleState is the mutable half of an armed rule.
type ruleState struct {
	rule Rule

	mu sync.Mutex
	//mlec:guardedby mu
	hits int64 // global hit counter (nth/every triggers)
	//mlec:guardedby mu
	fired int // fires so far (count cap)
	//mlec:guardedby mu
	stream map[int64]int64 // per-stream hit counts (prob trigger)
}

// Plan is an immutable set of armed rules plus the decision seed.
type Plan struct {
	Seed  int64
	rules map[string]*ruleState
}

// Rules returns the plan's rules sorted by point name, for reporting.
func (p *Plan) Rules() []Rule {
	points := make([]string, 0, len(p.rules))
	for pt := range p.rules {
		points = append(points, pt)
	}
	sort.Strings(points)
	out := make([]Rule, 0, len(points))
	for _, pt := range points {
		out = append(out, p.rules[pt].rule)
	}
	return out
}

// active is the armed plan; nil means disabled. The nil fast path is
// the package's inertness guarantee: one atomic load, no branches into
// rule state, no allocation.
var active atomic.Pointer[Plan]

// Enable arms the plan process-wide. Enabling nil disables injection.
func Enable(p *Plan) {
	if p != nil && len(p.rules) == 0 {
		p = nil
	}
	active.Store(p)
}

// Disable disarms injection; every Fire/Writer site reverts to the
// one-atomic-load no-op.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// injectedC ticks faultinject_injected_total{kind=...} per fire. Cells
// are resolved lazily but cached so repeated fires stay cheap.
var (
	injectedMu sync.Mutex
	//mlec:guardedby injectedMu
	injectedC = map[Kind]*obs.Counter{}
)

func recordFire(point string, kind Kind, stream int64) {
	injectedMu.Lock()
	c := injectedC[kind]
	if c == nil {
		c = obs.Default.Counter(fmt.Sprintf("faultinject_injected_total{kind=%q}", kind))
		injectedC[kind] = c
	}
	injectedMu.Unlock()
	c.Inc()
	obs.Trace.Emit(obs.TraceEvent{
		Kind: obs.EvFaultInjected,
		Note: fmt.Sprintf("%s %s stream=%d", point, kind, stream),
	})
}

// trigger decides whether this hit of the rule fires. It owns all
// mutable rule state; decisions are deterministic given the hit order
// of single-threaded sites and, for probability rules, deterministic
// per (seed, point, stream) regardless of scheduling.
func (rs *ruleState) trigger(seed int64, stream int64) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.hits++
	fire := false
	switch {
	case rs.rule.Nth > 0:
		fire = rs.hits == int64(rs.rule.Nth)
	case rs.rule.Every > 0:
		fire = rs.hits%int64(rs.rule.Every) == 0
	case rs.rule.Prob > 0:
		if rs.stream == nil {
			rs.stream = make(map[int64]int64)
		}
		rs.stream[stream]++
		// Only the first hit of a stream can fire: a cursed stream's
		// re-run is clean, which is what makes runctl's retries
		// converge deterministically.
		fire = rs.stream[stream] == 1 && unitProb(seed, rs.rule.Point, stream) < rs.rule.Prob
	default:
		fire = true
	}
	if fire && rs.rule.Count > 0 && rs.fired >= rs.rule.Count {
		fire = false
	}
	if fire {
		rs.fired++
	}
	return fire
}

// Fire consults the armed plan for point. With no plan, no rule for
// the point, or an untriggered hit it returns nil; KindError returns
// an *InjectedError; KindDelay sleeps and returns nil; KindPanic
// panics with an *InjectedError. Stream keys probability decisions —
// pass the same splitmix64 stream id the surrounding work is derived
// from so the fault lands on a reproducible stream.
//
//mlec:cold chaos instrumentation; the disabled fast path is one atomic load and armed plans are never a steady-state production configuration
func Fire(point string, stream int64) error {
	plan := active.Load()
	if plan == nil {
		return nil
	}
	rs := plan.rules[point]
	if rs == nil || rs.rule.Kind == KindWriteError {
		return nil
	}
	if !rs.trigger(plan.Seed, stream) {
		return nil
	}
	recordFire(point, rs.rule.Kind, stream)
	switch rs.rule.Kind {
	case KindPanic:
		//lint:allow nakedpanic injecting a worker panic is this package's contract; runctl's containment converts it back into an error
		panic(&InjectedError{Point: point, Kind: KindPanic, Stream: stream})
	case KindDelay:
		time.Sleep(rs.rule.Delay)
		return nil
	default:
		return &InjectedError{Point: point, Kind: KindError, Stream: stream}
	}
}

// Writer wraps w with the point's writeerr rule. When the rule
// triggers (decided once per Writer call, which counts as one hit) the
// returned writer accepts the rule's byte budget and then fails every
// subsequent Write with an *InjectedError — a torn write when the
// budget is positive, a failed write when it is zero. Without an armed
// matching rule, w is returned unchanged.
//
//mlec:cold chaos instrumentation on checkpoint-save paths; disabled fast path is one atomic load
func Writer(point string, stream int64, w io.Writer) io.Writer {
	plan := active.Load()
	if plan == nil {
		return w
	}
	rs := plan.rules[point]
	if rs == nil || rs.rule.Kind != KindWriteError {
		return w
	}
	if !rs.trigger(plan.Seed, stream) {
		return w
	}
	recordFire(point, KindWriteError, stream)
	return &faultyWriter{
		w:      w,
		remain: rs.rule.Bytes,
		err:    &InjectedError{Point: point, Kind: KindWriteError, Stream: stream},
	}
}

// faultyWriter passes through remain bytes, then fails permanently.
type faultyWriter struct {
	w      io.Writer
	remain int
	err    error
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	if fw.remain <= 0 {
		return 0, fw.err
	}
	if len(p) <= fw.remain {
		n, err := fw.w.Write(p)
		fw.remain -= n
		return n, err
	}
	n, err := fw.w.Write(p[:fw.remain])
	fw.remain -= n
	if err != nil {
		return n, err
	}
	return n, fw.err
}

// unitProb maps (seed, point, stream) to a uniform probability in
// [0, 1) via splitmix64 over the fowler-noll-vo hash of the point name
// — a pure function, so the set of cursed streams is a property of the
// plan, not of the host or the schedule.
//
//mlec:unit prob
func unitProb(seed int64, point string, stream int64) float64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= fnvPrime
	}
	x := uint64(seed) ^ h ^ uint64(stream)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Parse builds a plan from a chaos spec (see the package comment for
// the grammar). An empty spec yields a nil plan (injection disabled).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1, rules: make(map[string]*ruleState)}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(item, "seed="); ok {
			s, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", rest, err)
			}
			p.Seed = s
			continue
		}
		r, err := parseRule(item)
		if err != nil {
			return nil, err
		}
		if _, dup := p.rules[r.Point]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for point %q", r.Point)
		}
		p.rules[r.Point] = &ruleState{rule: r}
	}
	if len(p.rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q arms no rules", spec)
	}
	return p, nil
}

func parseRule(item string) (Rule, error) {
	parts := strings.SplitN(item, ":", 3)
	if len(parts) < 2 || parts[0] == "" {
		return Rule{}, fmt.Errorf("faultinject: rule %q is not point:kind[:params]", item)
	}
	r := Rule{Point: parts[0], Delay: 10 * time.Millisecond}
	switch parts[1] {
	case "panic":
		r.Kind = KindPanic
	case "error":
		r.Kind = KindError
	case "delay":
		r.Kind = KindDelay
	case "writeerr":
		r.Kind = KindWriteError
	default:
		return Rule{}, fmt.Errorf("faultinject: rule %q has unknown kind %q (want panic|error|delay|writeerr)", item, parts[1])
	}
	if len(parts) < 3 {
		return r, nil
	}
	triggers := 0
	for _, param := range strings.Split(parts[2], ",") {
		param = strings.TrimSpace(param)
		key, val, found := strings.Cut(param, "=")
		if !found {
			return Rule{}, fmt.Errorf("faultinject: rule %q: parameter %q is not key=value", item, param)
		}
		switch key {
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: p=%q must be a probability in [0,1]", item, val)
			}
			r.Prob = f
			triggers++
		case "nth":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: nth=%q must be a positive integer", item, val)
			}
			r.Nth = n
			triggers++
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: every=%q must be a positive integer", item, val)
			}
			r.Every = n
			triggers++
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: count=%q must be a positive integer", item, val)
			}
			r.Count = n
		case "ms":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: ms=%q must be a non-negative integer", item, val)
			}
			r.Delay = time.Duration(n) * time.Millisecond
		case "bytes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("faultinject: rule %q: bytes=%q must be a non-negative integer", item, val)
			}
			r.Bytes = n
		default:
			return Rule{}, fmt.Errorf("faultinject: rule %q: unknown parameter %q", item, key)
		}
	}
	if triggers > 1 {
		return Rule{}, fmt.Errorf("faultinject: rule %q mixes p/nth/every; pick one trigger", item)
	}
	return r, nil
}
