// Package lrc implements an Azure-style (k, l, r) Locally Repairable Code
// (Huang et al., ATC '12), the comparison code of the paper's Section 5.2.
//
// A (k,l,r) LRC splits the k data chunks into l equal local groups and, in
// the first stage, computes one XOR local parity per group; in the second
// stage it computes r global parities from all k data chunks using
// Reed–Solomon rows. Total chunks per stripe: k + l + r.
//
// Decodability follows the Maximally Recoverable property of the Azure
// construction for the configurations the paper uses: any single failure
// inside a group repairs locally from k/l + 1 chunks; larger failure sets
// decode through the combined parity system when the information-flow
// condition holds. This implementation realizes decode by solving the
// linear system over GF(2^8) restricted to the surviving chunks, so a
// pattern is recoverable exactly when the survivor equations have full
// rank — which the tests compare against the combinatorial criterion.
package lrc

import (
	"errors"
	"fmt"

	"mlec/internal/gf256"
)

// Codec is a (k, l, r) locally repairable codec. Shard layout:
//
//	[0, k)          data chunks, group g holds chunks [g·k/l, (g+1)·k/l)
//	[k, k+l)        local parities, one per group
//	[k+l, k+l+r)    global parities
type Codec struct {
	k, l, r   int
	groupSize int
	// rows is the (l+r)×k generator block for all parities:
	// rows[0:l] local parity rows (XOR masks over the group),
	// rows[l:l+r] global parity rows (Vandermonde-derived, MDS w.r.t.
	// the data chunks).
	rows *gf256.Matrix
}

var (
	// ErrUnrecoverable is returned when the erasure pattern exceeds the
	// code's recovery capability (survivor system is rank-deficient).
	ErrUnrecoverable = errors.New("lrc: erasure pattern not recoverable")
	// ErrShardSize mirrors rs.ErrShardSize.
	ErrShardSize = errors.New("lrc: inconsistent shard sizes")
)

// New returns a (k, l, r) codec. k must be divisible by l.
func New(k, l, r int) (*Codec, error) {
	if k <= 0 || l <= 0 || r < 0 {
		return nil, fmt.Errorf("lrc: invalid parameters k=%d l=%d r=%d", k, l, r)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("lrc: k=%d not divisible by l=%d", k, l)
	}
	if k+l+r > 256 {
		return nil, fmt.Errorf("lrc: stripe width %d exceeds 256", k+l+r)
	}
	c := &Codec{k: k, l: l, r: r, groupSize: k / l}
	c.rows = gf256.NewMatrix(l+r, k)
	// Local parities: XOR over each group.
	for g := 0; g < l; g++ {
		for j := g * c.groupSize; j < (g+1)*c.groupSize; j++ {
			c.rows.Set(g, j, 1)
		}
	}
	// Global parities: the parity rows of a systematic (k + r) RS code.
	// This gives the global parities the MDS property over data chunks
	// and, together with the XOR locals, the recoverability profile of
	// the Azure LRC for the paper's configurations.
	if r > 0 {
		v := gf256.Vandermonde(k+r, k)
		top := v.SubMatrix(0, k, 0, k)
		topInv, err := top.Invert()
		if err != nil {
			return nil, fmt.Errorf("lrc: construction failure: %w", err)
		}
		full := v.Mul(topInv)
		for gi := 0; gi < r; gi++ {
			copy(c.rows.Row(l+gi), full.Row(k+gi))
		}
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(k, l, r int) *Codec {
	c, err := New(k, l, r)
	if err != nil {
		panic(err)
	}
	return c
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// LocalGroups returns l.
func (c *Codec) LocalGroups() int { return c.l }

// GlobalParities returns r.
func (c *Codec) GlobalParities() int { return c.r }

// TotalShards returns k+l+r.
func (c *Codec) TotalShards() int { return c.k + c.l + c.r }

// GroupSize returns k/l, the number of data chunks per local group.
func (c *Codec) GroupSize() int { return c.groupSize }

// GroupOf returns the local group of data shard i, or -1 for parities.
func (c *Codec) GroupOf(i int) int {
	if i < 0 || i >= c.k {
		return -1
	}
	return i / c.groupSize
}

// StorageOverhead returns (l+r)/k, the parity capacity overhead.
func (c *Codec) StorageOverhead() float64 {
	return float64(c.l+c.r) / float64(c.k)
}

func (c *Codec) checkShards(shards [][]byte, wantAll bool) (int, error) {
	if len(shards) != c.TotalShards() {
		return 0, fmt.Errorf("lrc: got %d shards, want %d", len(shards), c.TotalShards())
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if wantAll {
				return 0, fmt.Errorf("lrc: shard %d is nil", i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size <= 0 {
		return 0, ErrUnrecoverable
	}
	return size, nil
}

// Encode fills shards[k:k+l+r] from shards[0:k].
func (c *Codec) Encode(shards [][]byte) error {
	if _, err := c.checkShards(shards, true); err != nil {
		return err
	}
	for pi := 0; pi < c.l+c.r; pi++ {
		row := c.rows.Row(pi)
		out := shards[c.k+pi]
		for i := range out {
			out[i] = 0
		}
		for di := 0; di < c.k; di++ {
			if row[di] != 0 {
				gf256.MulAddSlice(row[di], shards[di], out)
			}
		}
	}
	return nil
}

// Verify reports whether all parities are consistent with the data.
func (c *Codec) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for pi := 0; pi < c.l+c.r; pi++ {
		row := c.rows.Row(pi)
		for i := range buf {
			buf[i] = 0
		}
		for di := 0; di < c.k; di++ {
			if row[di] != 0 {
				gf256.MulAddSlice(row[di], shards[di], buf)
			}
		}
		for i := range buf {
			if buf[i] != shards[c.k+pi][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// LocalRepairable reports whether missing shard idx can be repaired purely
// within its local group (exactly one missing chunk among the group's data
// chunks plus its local parity).
func (c *Codec) LocalRepairable(shards [][]byte, idx int) bool {
	g := -1
	switch {
	case idx < 0 || idx >= c.k+c.l:
		return false // global parities have no local group
	case idx < c.k:
		g = idx / c.groupSize
	default:
		g = idx - c.k
	}
	missing := 0
	for j := g * c.groupSize; j < (g+1)*c.groupSize; j++ {
		if shards[j] == nil {
			missing++
		}
	}
	if shards[c.k+g] == nil {
		missing++
	}
	return missing == 1 && shards[idx] == nil
}

// Reconstruct rebuilds all missing shards. It first applies local-group
// XOR repairs (cheap), then solves the residual global system. Returns
// ErrUnrecoverable when the pattern exceeds the code's capability.
func (c *Codec) Reconstruct(shards [][]byte) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	// Phase 1: iterated local repairs. Repairing one group can never
	// unlock another (groups are disjoint), but a single pass suffices.
	for g := 0; g < c.l; g++ {
		c.tryLocalRepair(shards, g, size)
	}
	// Phase 2: global solve for whatever remains.
	if !anyMissing(shards) {
		return nil
	}
	return c.globalSolve(shards, size)
}

// tryLocalRepair repairs the single missing chunk of group g if exactly
// one of (group data chunks + local parity) is missing.
func (c *Codec) tryLocalRepair(shards [][]byte, g, size int) {
	lo, hi := g*c.groupSize, (g+1)*c.groupSize
	missing := -1
	count := 0
	for j := lo; j < hi; j++ {
		if shards[j] == nil {
			missing, count = j, count+1
		}
	}
	if shards[c.k+g] == nil {
		missing, count = c.k+g, count+1
	}
	if count != 1 {
		return
	}
	out := make([]byte, size)
	for j := lo; j < hi; j++ {
		if j != missing {
			gf256.XorSlice(shards[j], out)
		}
	}
	if missing != c.k+g {
		gf256.XorSlice(shards[c.k+g], out)
	}
	shards[missing] = out
}

func anyMissing(shards [][]byte) bool {
	for _, s := range shards {
		if s == nil {
			return true
		}
	}
	return false
}

// globalSolve recovers missing data chunks by Gaussian elimination over
// the survivor parity equations, then recomputes missing parities.
func (c *Codec) globalSolve(shards [][]byte, size int) error {
	// Unknowns: missing data chunks.
	var unknowns []int
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			unknowns = append(unknowns, i)
		}
	}
	if len(unknowns) > 0 {
		// Equations: each surviving parity p gives
		// Σ_j row[j]·data_j = p, i.e.
		// Σ_{j missing} row[j]·x_j = p + Σ_{j present} row[j]·data_j.
		type eq struct {
			coef []byte // per unknown
			rhs  []byte
		}
		var eqs []eq
		for pi := 0; pi < c.l+c.r; pi++ {
			if shards[c.k+pi] == nil {
				continue
			}
			row := c.rows.Row(pi)
			coef := make([]byte, len(unknowns))
			relevant := false
			for ui, u := range unknowns {
				coef[ui] = row[u]
				if row[u] != 0 {
					relevant = true
				}
			}
			if !relevant {
				continue
			}
			rhs := append([]byte(nil), shards[c.k+pi]...)
			for j := 0; j < c.k; j++ {
				if shards[j] != nil && row[j] != 0 {
					gf256.MulAddSlice(row[j], shards[j], rhs)
				}
			}
			eqs = append(eqs, eq{coef, rhs})
		}
		// Gaussian elimination on the coefficient rows, applying the
		// same operations to the RHS data slices.
		rowIdx := 0
		pivots := make([]int, 0, len(unknowns))
		for col := 0; col < len(unknowns) && rowIdx < len(eqs); col++ {
			// Find pivot.
			p := -1
			for r := rowIdx; r < len(eqs); r++ {
				if eqs[r].coef[col] != 0 {
					p = r
					break
				}
			}
			if p == -1 {
				continue
			}
			eqs[rowIdx], eqs[p] = eqs[p], eqs[rowIdx]
			// Normalize.
			if v := eqs[rowIdx].coef[col]; v != 1 {
				inv := gf256.Inv(v)
				gf256.MulSlice(inv, eqs[rowIdx].coef, eqs[rowIdx].coef)
				gf256.MulSlice(inv, eqs[rowIdx].rhs, eqs[rowIdx].rhs)
			}
			// Eliminate from all other rows.
			for r := 0; r < len(eqs); r++ {
				if r == rowIdx {
					continue
				}
				f := eqs[r].coef[col]
				if f == 0 {
					continue
				}
				gf256.MulAddSlice(f, eqs[rowIdx].coef, eqs[r].coef)
				gf256.MulAddSlice(f, eqs[rowIdx].rhs, eqs[r].rhs)
			}
			pivots = append(pivots, col)
			rowIdx++
		}
		if len(pivots) < len(unknowns) {
			return ErrUnrecoverable
		}
		for i, col := range pivots {
			shards[unknowns[col]] = eqs[i].rhs
		}
	}
	// All data present now: recompute missing parities.
	for pi := 0; pi < c.l+c.r; pi++ {
		if shards[c.k+pi] != nil {
			continue
		}
		row := c.rows.Row(pi)
		out := make([]byte, size)
		for di := 0; di < c.k; di++ {
			if row[di] != 0 {
				gf256.MulAddSlice(row[di], shards[di], out)
			}
		}
		shards[c.k+pi] = out
	}
	return nil
}
