package lrc

import (
	"bytes"
	"math/rand"
	"testing"
)

func newFilled(t *testing.T, k, l, r, size int, seed int64) (*Codec, [][]byte) {
	t.Helper()
	c := MustNew(k, l, r)
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return c, shards
}

func cloneWithErasures(ref [][]byte, lost []int) [][]byte {
	shards := make([][]byte, len(ref))
	for i := range ref {
		shards[i] = append([]byte(nil), ref[i]...)
	}
	for _, l := range lost {
		shards[l] = nil
	}
	return shards
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, l, r int
		ok      bool
	}{
		{4, 2, 2, true}, {14, 2, 4, true}, {12, 3, 2, true},
		{5, 2, 2, false}, // k not divisible by l
		{0, 1, 1, false}, {4, 0, 2, false}, {4, 2, -1, false},
		{250, 5, 10, false}, // too wide
	}
	for _, c := range cases {
		_, err := New(c.k, c.l, c.r)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d) err=%v want ok=%v", c.k, c.l, c.r, err, c.ok)
		}
	}
}

func TestPaperLayout422(t *testing.T) {
	// Figure 14: a (4,2,2) LRC. Chunks: a1 a2 a3 a4 | a12 a34 | ap aq
	c := MustNew(4, 2, 2)
	if c.TotalShards() != 8 {
		t.Fatalf("TotalShards = %d, want 8", c.TotalShards())
	}
	if c.GroupSize() != 2 {
		t.Fatalf("GroupSize = %d, want 2", c.GroupSize())
	}
	for i, want := range []int{0, 0, 1, 1, -1, -1, -1, -1} {
		if g := c.GroupOf(i); g != want {
			t.Errorf("GroupOf(%d) = %d, want %d", i, g, want)
		}
	}
	if got := c.StorageOverhead(); got != 1.0 {
		t.Errorf("StorageOverhead = %v, want 1.0", got)
	}
}

func TestLocalParityIsGroupXOR(t *testing.T) {
	_, shards := newFilled(t, 4, 2, 2, 64, 20)
	for i := range shards[0] {
		if shards[4][i] != shards[0][i]^shards[1][i] {
			t.Fatal("local parity 0 is not XOR of group 0")
		}
		if shards[5][i] != shards[2][i]^shards[3][i] {
			t.Fatal("local parity 1 is not XOR of group 1")
		}
	}
}

func TestSingleFailureLocalRepair(t *testing.T) {
	c, ref := newFilled(t, 14, 2, 4, 128, 21)
	for idx := 0; idx < c.DataShards()+c.LocalGroups(); idx++ {
		shards := cloneWithErasures(ref, []int{idx})
		if !c.LocalRepairable(shards, idx) {
			t.Fatalf("shard %d should be locally repairable", idx)
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if !bytes.Equal(shards[idx], ref[idx]) {
			t.Fatalf("shard %d mismatch after local repair", idx)
		}
	}
}

func TestGlobalParityNotLocallyRepairable(t *testing.T) {
	c, ref := newFilled(t, 4, 2, 2, 32, 22)
	shards := cloneWithErasures(ref, []int{6})
	if c.LocalRepairable(shards, 6) {
		t.Fatal("global parity must not be locally repairable")
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[6], ref[6]) {
		t.Fatal("global parity mismatch")
	}
}

func TestRplus1FailuresRecoverable(t *testing.T) {
	// Azure LRC tolerates any r+1 failures (it is Maximally
	// Recoverable; r+1 arbitrary failures are information-
	// theoretically decodable for these configs).
	c, ref := newFilled(t, 6, 2, 2, 64, 23)
	n := c.TotalShards()
	count := 0
	var rec func(start int, lost []int)
	rec = func(start int, lost []int) {
		if len(lost) == 3 { // r+1 = 3
			shards := cloneWithErasures(ref, lost)
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("lost %v: %v", lost, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], ref[i]) {
					t.Fatalf("lost %v: shard %d mismatch", lost, i)
				}
			}
			count++
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(lost, i))
		}
	}
	rec(0, nil)
	if count == 0 {
		t.Fatal("no patterns enumerated")
	}
}

func TestInformationTheoreticLimit(t *testing.T) {
	// Any l+r+1 failures must be unrecoverable (more erasures than
	// parities), e.g. 5 failures for (4,2,2).
	c, ref := newFilled(t, 4, 2, 2, 32, 24)
	shards := cloneWithErasures(ref, []int{0, 1, 2, 3, 4})
	if err := c.Reconstruct(shards); err != ErrUnrecoverable {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestUnrecoverablePattern(t *testing.T) {
	// Whole group 0 (2 data + its local parity) plus both globals is 5
	// failures; but a sharper case: 2 data of group 0 + local parity 0
	// + 1 global = 4 failures with only 1 remaining global to cover 2
	// unknowns → unrecoverable.
	c, ref := newFilled(t, 4, 2, 2, 32, 25)
	shards := cloneWithErasures(ref, []int{0, 1, 4, 6})
	if err := c.Reconstruct(shards); err != ErrUnrecoverable {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestFourFailuresSpreadRecoverable(t *testing.T) {
	// (4,2,2) has 4 parities; the Azure LRC recovers "most" 4-failure
	// patterns — specifically those where each group's deficit is
	// coverable. 1 data per group + both globals works.
	c, ref := newFilled(t, 4, 2, 2, 32, 26)
	shards := cloneWithErasures(ref, []int{0, 2, 6, 7})
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], ref[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestVerify(t *testing.T) {
	c, shards := newFilled(t, 12, 3, 2, 64, 27)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
	shards[3][10] ^= 1
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify after corruption = %v, %v", ok, err)
	}
}

func TestPaperConfig1424RandomErasures(t *testing.T) {
	// The paper's (14,2,4) LRC from §5.2.3: tolerate any 4 random
	// erasures... actually r+1=5 arbitrary failures are recoverable for
	// Azure MR-LRC; check random 5-subsets decode or match the rank
	// criterion.
	c, ref := newFilled(t, 14, 2, 4, 64, 28)
	rng := rand.New(rand.NewSource(29))
	n := c.TotalShards()
	recovered, failed := 0, 0
	for trial := 0; trial < 300; trial++ {
		lost := rng.Perm(n)[:5]
		shards := cloneWithErasures(ref, lost)
		err := c.Reconstruct(shards)
		if err == nil {
			recovered++
			for i := range shards {
				if !bytes.Equal(shards[i], ref[i]) {
					t.Fatalf("lost %v: shard %d mismatch", lost, i)
				}
			}
		} else {
			failed++
		}
	}
	// For (14,2,4) nearly all 5-failure patterns are recoverable; at
	// minimum the majority must be.
	if recovered == 0 {
		t.Fatal("no 5-failure pattern recovered")
	}
	t.Logf("(14,2,4): %d/%d 5-failure patterns recovered", recovered, recovered+failed)
}

func TestZeroGlobalParities(t *testing.T) {
	// (k, l, 0) degenerates to per-group RAID5.
	c, ref := newFilled(t, 6, 3, 0, 32, 30)
	shards := cloneWithErasures(ref, []int{0, 2, 4}) // one per group
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], ref[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
	// Two failures in one group: unrecoverable without globals.
	shards = cloneWithErasures(ref, []int{0, 1})
	if err := c.Reconstruct(shards); err != ErrUnrecoverable {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}
