// Package markov implements the paper's fourth evaluation strategy (§3):
// birth–death Markov-chain durability models, used to cross-verify the
// simulation and splitting estimators for the simplest repair method
// (R_ALL), exactly as the paper does.
//
// The SLEC model is the classic (n, p) chain: state f counts concurrently
// failed devices, failures arrive at (n−f)·λ, repair completes at μ(f),
// and state p+1 absorbs (data loss). The MLEC model iterates it: the
// local chain's absorption rate becomes the "disk" failure rate of a
// network-level chain whose devices are local pools (the paper: "treating
// a local pool like a disk").
package markov

import (
	"fmt"
	"math"

	"mlec/internal/bwmodel"
	"mlec/internal/mathx"
	"mlec/internal/placement"
)

// Chain is a birth–death absorption model over states 0..p+1.
type Chain struct {
	// N is the device count; P the parity tolerance (absorb at P+1).
	N, P int
	// LambdaPerHour is the per-device failure rate.
	LambdaPerHour float64
	// RepairRate returns the state-f repair completion rate μ_f (events
	// per hour, moving f → f−1), f in [1, P].
	RepairRate func(f int) float64
}

// MTTDLHours returns the expected hours from the pristine state to
// absorption (first data-loss event), by solving the first-passage
// tridiagonal system T_f = (1 + β_f·T_{f+1} + μ_f·T_{f−1})/(β_f+μ_f).
func (c Chain) MTTDLHours() (float64, error) {
	if c.N <= 0 || c.P < 0 || c.P >= c.N {
		return 0, fmt.Errorf("markov: bad chain N=%d P=%d", c.N, c.P)
	}
	if c.LambdaPerHour <= 0 {
		return 0, fmt.Errorf("markov: lambda = %g", c.LambdaPerHour)
	}
	n := c.P + 1 // unknown states 0..P; T_{P+1} = 0
	beta := make([]float64, n)
	mu := make([]float64, n)
	for f := 0; f < n; f++ {
		beta[f] = float64(c.N-f) * c.LambdaPerHour
		if f > 0 {
			mu[f] = c.RepairRate(f)
			if mu[f] < 0 {
				return 0, fmt.Errorf("markov: negative repair rate at state %d", f)
			}
		}
	}
	// Thomas algorithm on the tridiagonal system:
	//   (β_f+μ_f)·T_f − β_f·T_{f+1} − μ_f·T_{f−1} = 1.
	// Forward sweep expressing T_f = a_f + b_f·T_{f+1}. The naive
	// denominator β_f + μ_f·(1−b_{f−1}) cancels catastrophically when
	// μ ≫ β (exactly the durability regime), so track the complement
	// c_f = 1−b_f directly: c_f = μ_f·c_{f−1}/(β_f + μ_f·c_{f−1}).
	a := make([]float64, n)
	b := make([]float64, n)
	// State 0: β_0·T_0 − β_0·T_1 = 1 → T_0 = 1/β_0 + T_1.
	a[0] = 1 / beta[0]
	b[0] = 1
	comp := 0.0 // complement 1 − b[f−1]
	for f := 1; f < n; f++ {
		denom := beta[f] + mu[f]*comp
		if denom <= 0 {
			return 0, fmt.Errorf("markov: singular chain at state %d", f)
		}
		a[f] = (1 + mu[f]*a[f-1]) / denom
		b[f] = beta[f] / denom
		comp = mu[f] * comp / denom
	}
	// Back-substitute with T_{P+1} = 0.
	t := a[n-1]
	for f := n - 2; f >= 0; f-- {
		t = a[f] + b[f]*t
	}
	return t, nil
}

// Generator returns the chain's (P+2)×(P+2) generator matrix Q over
// states 0..P+1: Q[f][f+1] is the failure rate β_f = (N−f)·λ,
// Q[f][f−1] the repair rate μ_f, diagonals the negated row sums, and
// the absorbing row P+1 is all zeros. Every row sums to zero exactly up
// to the one rounding in the diagonal negation, which the tests pin to
// an ulp-scaled tolerance.
func (c Chain) Generator() ([][]float64, error) {
	if c.N <= 0 || c.P < 0 || c.P >= c.N {
		return nil, fmt.Errorf("markov: bad chain N=%d P=%d", c.N, c.P)
	}
	if c.LambdaPerHour <= 0 {
		return nil, fmt.Errorf("markov: lambda = %g", c.LambdaPerHour)
	}
	n := c.P + 2
	q := make([][]float64, n)
	for f := range q {
		q[f] = make([]float64, n)
	}
	for f := 0; f <= c.P; f++ {
		beta := float64(c.N-f) * c.LambdaPerHour
		diag := beta
		q[f][f+1] = beta
		if f > 0 {
			mu := c.RepairRate(f)
			if mu < 0 {
				return nil, fmt.Errorf("markov: negative repair rate at state %d", f)
			}
			q[f][f-1] = mu
			diag += mu
		}
		q[f][f] = -diag
	}
	return q, nil
}

// TransientProbs returns the state-occupancy distribution π(t) after
// tHours, starting from the pristine state, by uniformization: with
// qmax ≥ max_f |Q[f][f]|, the DTMC P = I + Q/qmax is stochastic and
// π(t) = Σ_k Pois(qmax·t; k) · π₀·P^k. Long horizons are split into
// steps with qmax·τ ≤ 32 so the leading Poisson weight e^(−qmax·τ)
// never underflows; within a step the series is truncated once the
// accumulated Poisson mass is within an ulp of 1.
func (c Chain) TransientProbs(tHours float64) ([]float64, error) {
	q, err := c.Generator()
	if err != nil {
		return nil, err
	}
	if tHours < 0 {
		return nil, fmt.Errorf("markov: negative horizon %g", tHours)
	}
	n := len(q)
	pi := make([]float64, n)
	pi[0] = 1
	qmax := 0.0
	for f := range q {
		if -q[f][f] > qmax {
			qmax = -q[f][f]
		}
	}
	if qmax == 0 || tHours == 0 {
		return pi, nil
	}
	// The uniformized DTMC: p[i][j] = I + Q/qmax, rows sum to 1.
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		for j := range p[i] {
			p[i][j] = q[i][j] / qmax
		}
		p[i][i] += 1
	}
	steps := int(math.Ceil(qmax * tHours / 32))
	tau := tHours / float64(steps)
	for s := 0; s < steps; s++ {
		pi = uniformStep(pi, p, qmax*tau)
	}
	return pi, nil
}

// uniformStep advances the distribution by one uniformized interval of
// dimensionless length a = qmax·τ ≤ 32.
func uniformStep(pi []float64, p [][]float64, a float64) []float64 {
	n := len(pi)
	out := make([]float64, n)
	v := make([]float64, n)
	next := make([]float64, n)
	copy(v, pi)
	w := math.Exp(-a)
	cum := 0.0
	// Poisson tail bound: a + 40·sqrt(a) terms leave mass ≪ 1 ulp.
	kcap := int(a+40*math.Sqrt(a+1)) + 60
	for k := 0; k <= kcap; k++ {
		for i := range out {
			out[i] += w * v[i]
		}
		cum += w
		if cum >= 1-1e-16 {
			break
		}
		// v ← v·P (row vector times the stochastic matrix).
		for j := range next {
			next[j] = 0
		}
		for i := range v {
			if v[i] == 0 {
				continue
			}
			for j := range next {
				next[j] += v[i] * p[i][j]
			}
		}
		v, next = next, v
		w *= a / float64(k+1)
	}
	// Renormalize to unit mass: both the series truncation and the
	// rounding of each v·P under-weight the distribution by ~1 ulp, and
	// without this the deficit compounds across the thousands of steps
	// a long horizon takes.
	mass := 0.0
	for _, p := range out {
		mass += p
	}
	for i := range out {
		out[i] /= mass
	}
	return out
}

// LossRatePerHour returns the long-run data-loss event rate ≈ 1/MTTDL.
func (c Chain) LossRatePerHour() (float64, error) {
	mttdl, err := c.MTTDLHours()
	if err != nil {
		return 0, err
	}
	return 1 / mttdl, nil
}

// AnnualPDL returns P(loss within a year) = 1 − e^(−8760/MTTDL).
func (c Chain) AnnualPDL() (float64, error) {
	rate, err := c.LossRatePerHour()
	if err != nil {
		return 0, err
	}
	return mathx.RateToAnnualPDL(rate), nil
}

// SLECPool builds the chain for one SLEC pool: n devices, p parities,
// per-disk failure rate λ, disk capacity and a state-dependent repair
// bandwidth (bytes/s). μ_f = bw(f)/(remaining bytes of one disk) — the
// standard "repair one device at a time" convention.
func SLECPool(n, p int, lambdaPerHour, diskBytes float64, bw func(f int) float64) Chain {
	return Chain{
		N: n, P: p, LambdaPerHour: lambdaPerHour,
		RepairRate: func(f int) float64 {
			return bw(f) / diskBytes * 3600
		},
	}
}

// MLECRAll models an MLEC system under R_ALL: a local chain per pool
// (absorption = catastrophic pool), iterated into a network chain whose
// devices are the kn+pn local pools of one network pool. Returns the
// system-wide annual PDL (network-pool PDL scaled by pool count) for
// network-clustered schemes; for network-declustered schemes the network
// chain spans all pools with tolerance pn (any pn+1 concurrent
// catastrophic pools lose data under R_ALL's pool-is-lost view).
type MLECRAllModel struct {
	Layout        *placement.Layout
	LambdaPerHour float64 // per-disk failure rate
}

// LocalPoolChain returns the chain of one local pool.
func (m MLECRAllModel) LocalPoolChain() Chain {
	l := m.Layout
	cfgBW := func(f int) float64 {
		return bwmodel.New(l).DegradedPoolRepairBandwidth(f)
	}
	// Repair one disk's bytes per completion; the degraded bandwidth
	// already accounts for parallel spares / declustered spread.
	return SLECPool(l.LocalPoolSize(), l.Params.PL, m.LambdaPerHour,
		l.Topo.DiskCapacityBytes, cfgBW)
}

// CatRatePerPoolHour returns the local chain's absorption rate — the
// R_ALL-visible catastrophic-pool rate (no priority-repair or stripe-
// coverage discounts; those are what the simulator adds on top).
func (m MLECRAllModel) CatRatePerPoolHour() (float64, error) {
	return m.LocalPoolChain().LossRatePerHour()
}

// SystemAnnualPDL returns the system-wide annual probability of data
// loss under R_ALL.
func (m MLECRAllModel) SystemAnnualPDL() (float64, error) {
	l := m.Layout
	catRate, err := m.CatRatePerPoolHour()
	if err != nil {
		return 0, err
	}
	repairHours := bwmodel.New(l).PoolRepairHours()
	poolRepairRate := 1 / repairHours

	if l.Scheme.Network == placement.Clustered {
		net := Chain{
			N: l.Params.NetworkWidth(), P: l.Params.PN, LambdaPerHour: catRate,
			RepairRate: func(f int) float64 { return poolRepairRate },
		}
		rate, err := net.LossRatePerHour()
		if err != nil {
			return 0, err
		}
		return mathx.RateToAnnualPDL(rate * float64(l.TotalNetworkPools())), nil
	}
	// Network-declustered: any pn+1 concurrent catastrophic pools
	// (in distinct racks; the distinct-rack correction is ≈1 at scale)
	// lose data under R_ALL. Use the Poisson overlap rate across all
	// pools with window = pool repair time.
	rate := mathx.PoissonOverlapRate(l.TotalLocalPools(), catRate, repairHours, l.Params.PN+1)
	return mathx.RateToAnnualPDL(rate), nil
}
