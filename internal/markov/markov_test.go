package markov

import (
	"math"
	"math/rand"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestRAID5ClosedForm: for n disks, p=1, constant μ ≫ λ, the classic
// approximation MTTDL ≈ μ/(n(n−1)λ²) must hold.
func TestRAID5ClosedForm(t *testing.T) {
	n := 8
	lambda := 1e-6
	mu := 1e-2
	c := Chain{N: n, P: 1, LambdaPerHour: lambda, RepairRate: func(int) float64 { return mu }}
	got, err := c.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (float64(n) * float64(n-1) * lambda * lambda)
	if !approx(got, want, 0.02) {
		t.Fatalf("MTTDL %g, want ≈ %g", got, want)
	}
}

// TestChainMonteCarlo validates the first-passage solution against a
// direct simulation of the birth–death process.
func TestChainMonteCarlo(t *testing.T) {
	c := Chain{
		N: 6, P: 2, LambdaPerHour: 0.01,
		RepairRate: func(f int) float64 { return 0.05 * float64(f) },
	}
	want, err := c.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 30000
	var sum float64
	for i := 0; i < trials; i++ {
		tHours, f := 0.0, 0
		for f <= c.P {
			beta := float64(c.N-f) * c.LambdaPerHour
			mu := 0.0
			if f > 0 {
				mu = c.RepairRate(f)
			}
			tHours += rng.ExpFloat64() / (beta + mu)
			if rng.Float64() < beta/(beta+mu) {
				f++
			} else {
				f--
			}
		}
		sum += tHours
	}
	got := sum / trials
	if !approx(got, want, 0.03) {
		t.Fatalf("analytic %g vs simulated %g", want, got)
	}
}

func TestChainValidation(t *testing.T) {
	bad := []Chain{
		{N: 0, P: 0, LambdaPerHour: 1},
		{N: 5, P: -1, LambdaPerHour: 1},
		{N: 5, P: 5, LambdaPerHour: 1},
		{N: 5, P: 1, LambdaPerHour: 0},
	}
	for i, c := range bad {
		c.RepairRate = func(int) float64 { return 1 }
		if _, err := c.MTTDLHours(); err == nil {
			t.Errorf("bad chain %d accepted", i)
		}
	}
}

func TestMoreParityMoreMTTDL(t *testing.T) {
	mttdl := func(p int) float64 {
		c := Chain{N: 20, P: p, LambdaPerHour: 1e-6,
			RepairRate: func(int) float64 { return 1e-2 }}
		v, err := c.MTTDLHours()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	prev := 0.0
	for p := 0; p <= 4; p++ {
		v := mttdl(p)
		if v <= prev {
			t.Fatalf("MTTDL(p=%d)=%g not greater than p=%d", p, v, p-1)
		}
		prev = v
	}
}

func TestFasterRepairMoreMTTDL(t *testing.T) {
	mttdl := func(mu float64) float64 {
		c := Chain{N: 10, P: 2, LambdaPerHour: 1e-5,
			RepairRate: func(int) float64 { return mu }}
		v, _ := c.MTTDLHours()
		return v
	}
	if !(mttdl(1e-2) > mttdl(1e-3)) {
		t.Fatal("faster repair must raise MTTDL")
	}
}

func TestMLECRAllSystemPDL(t *testing.T) {
	topo := topology.Default()
	params := placement.DefaultParams()
	lambda := 0.01 / 8760 // ≈1% AFR

	pdls := map[placement.Scheme]float64{}
	for _, s := range placement.AllSchemes {
		l := placement.MustNewLayout(topo, params, s)
		m := MLECRAllModel{Layout: l, LambdaPerHour: lambda}
		pdl, err := m.SystemAnnualPDL()
		if err != nil {
			t.Fatal(err)
		}
		if pdl <= 0 || pdl >= 1 {
			t.Fatalf("%v: PDL %g out of range", s, pdl)
		}
		pdls[s] = pdl
		t.Logf("%v R_ALL annual PDL = %.3g", s, pdl)
	}
	// Under R_ALL's pool-is-lost view, network-declustered placement
	// is strictly worse: any pn+1 catastrophic pools lose data vs only
	// aligned ones (Findings #6/#7 in their R_ALL form).
	if pdls[placement.SchemeDC] <= pdls[placement.SchemeCC] {
		t.Errorf("D/C (%g) must exceed C/C (%g) under R_ALL", pdls[placement.SchemeDC], pdls[placement.SchemeCC])
	}
	if pdls[placement.SchemeDD] <= pdls[placement.SchemeCD] {
		t.Errorf("D/D (%g) must exceed C/D (%g) under R_ALL", pdls[placement.SchemeDD], pdls[placement.SchemeCD])
	}
}

func TestMLECLocalChainRates(t *testing.T) {
	topo := topology.Default()
	params := placement.DefaultParams()
	lambda := 0.01 / 8760

	cp := MLECRAllModel{Layout: placement.MustNewLayout(topo, params, placement.SchemeCC), LambdaPerHour: lambda}
	dp := MLECRAllModel{Layout: placement.MustNewLayout(topo, params, placement.SchemeCD), LambdaPerHour: lambda}
	cpRate, err := cp.CatRatePerPoolHour()
	if err != nil {
		t.Fatal(err)
	}
	dpRate, err := dp.CatRatePerPoolHour()
	if err != nil {
		t.Fatal(err)
	}
	// Per pool, the 120-disk Dp pool fails more often than the 20-disk
	// Cp pool *in the R_ALL/Markov view* (no stripe-coverage discount):
	// more disks, and tolerance is still pl arbitrary failures.
	if dpRate <= cpRate {
		t.Errorf("Markov per-pool rates: Dp %g should exceed Cp %g", dpRate, cpRate)
	}
	t.Logf("Markov catastrophic rates: Cp %.3g/h, Dp %.3g/h", cpRate, dpRate)
}
