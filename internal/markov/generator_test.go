package markov

import (
	"math"
	"testing"
)

// generatorCases covers the chain shapes the repository actually uses:
// the RAID5 closed-form chain, a deeper state-dependent-repair chain,
// and a durability-regime chain where μ ≫ λ by eight orders of
// magnitude (the catastrophic-cancellation regime MTTDLHours guards
// against).
func generatorCases() []Chain {
	return []Chain{
		{N: 8, P: 1, LambdaPerHour: 1e-6, RepairRate: func(int) float64 { return 1e-2 }},
		{N: 6, P: 2, LambdaPerHour: 0.01, RepairRate: func(f int) float64 { return 0.05 * float64(f) }},
		{N: 24, P: 3, LambdaPerHour: 2.3e-6, RepairRate: func(f int) float64 { return 0.25 * float64(f) }},
		{N: 100, P: 4, LambdaPerHour: 1e-9, RepairRate: func(int) float64 { return 10 }},
	}
}

// ulpAt returns the spacing of float64 values at magnitude m.
func ulpAt(m float64) float64 {
	return math.Nextafter(math.Abs(m), math.Inf(1)) - math.Abs(m)
}

// TestGeneratorRowsSumToZero checks conservation: every generator row
// must sum to zero within an ulp-scaled tolerance (the diagonal is the
// one rounded value; summing ≤3 terms adds at most a few ulp of the
// largest entry).
func TestGeneratorRowsSumToZero(t *testing.T) {
	for ci, c := range generatorCases() {
		q, err := c.Generator()
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(q) != c.P+2 {
			t.Fatalf("case %d: generator is %d×, want %d×", ci, len(q), c.P+2)
		}
		for f, row := range q {
			if len(row) != c.P+2 {
				t.Fatalf("case %d row %d: %d columns, want %d", ci, f, len(row), c.P+2)
			}
			sum, largest := 0.0, 0.0
			for _, v := range row {
				sum += v
				if math.Abs(v) > largest {
					largest = math.Abs(v)
				}
			}
			if tol := 4 * ulpAt(largest); math.Abs(sum) > tol {
				t.Errorf("case %d row %d sums to %g, want 0 within %g", ci, f, sum, tol)
			}
		}
	}
}

// TestGeneratorStructure pins the birth–death shape: super-diagonal
// failure rates, sub-diagonal repair rates, an all-zero absorbing row,
// and nothing outside the three bands.
func TestGeneratorStructure(t *testing.T) {
	c := generatorCases()[1]
	q, err := c.Generator()
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= c.P; f++ {
		if want := float64(c.N-f) * c.LambdaPerHour; q[f][f+1] != want {
			t.Errorf("Q[%d][%d] = %g, want β=%g", f, f+1, q[f][f+1], want)
		}
		if f > 0 {
			if want := c.RepairRate(f); q[f][f-1] != want {
				t.Errorf("Q[%d][%d] = %g, want μ=%g", f, f-1, q[f][f-1], want)
			}
		}
		for j := range q[f] {
			if j < f-1 || j > f+1 {
				if q[f][j] != 0 {
					t.Errorf("Q[%d][%d] = %g outside the tridiagonal band", f, j, q[f][j])
				}
			}
		}
	}
	for j, v := range q[c.P+1] {
		if v != 0 {
			t.Errorf("absorbing row entry Q[%d][%d] = %g, want 0", c.P+1, j, v)
		}
	}
}

// TestTransientProbsInUnitInterval checks that every transient state
// probability stays in [0,1] and the distribution keeps (almost) unit
// mass across horizons spanning the single-step and the long-horizon
// multi-step uniformization paths.
func TestTransientProbsInUnitInterval(t *testing.T) {
	horizons := []float64{0, 0.5, 24, 8760, 2e5}
	for ci, c := range generatorCases() {
		for _, h := range horizons {
			pi, err := c.TransientProbs(h)
			if err != nil {
				t.Fatalf("case %d t=%g: %v", ci, h, err)
			}
			mass := 0.0
			for f, p := range pi {
				if p < 0 || p > 1 {
					t.Errorf("case %d t=%g: π[%d] = %g outside [0,1]", ci, h, f, p)
				}
				mass += p
			}
			if math.Abs(mass-1) > 1e-12 {
				t.Errorf("case %d t=%g: total mass %g, want 1", ci, h, mass)
			}
		}
	}
}

// TestTransientAgreesWithMTTDL cross-checks the two solvers: for an
// exponentially-distributed absorption time the transient absorption
// probability at one MTTDL must be ≈ 1−1/e. The chain mixes far faster
// than it absorbs, so the exponential approximation is tight.
func TestTransientAgreesWithMTTDL(t *testing.T) {
	c := generatorCases()[0]
	mttdl, err := c.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.TransientProbs(mttdl)
	if err != nil {
		t.Fatal(err)
	}
	if want := -math.Expm1(-1); !approx(pi[c.P+1], want, 0.02) {
		t.Fatalf("absorption probability at one MTTDL = %g, want ≈ %g", pi[c.P+1], want)
	}
}

// TestTransientMonotoneAbsorption: absorption probability never
// decreases with the horizon.
func TestTransientMonotoneAbsorption(t *testing.T) {
	c := generatorCases()[1]
	prev := -1.0
	for _, h := range []float64{0, 10, 100, 1000, 10000} {
		pi, err := c.TransientProbs(h)
		if err != nil {
			t.Fatal(err)
		}
		if pi[c.P+1] < prev {
			t.Fatalf("absorption probability fell from %g to %g at t=%g", prev, pi[c.P+1], h)
		}
		prev = pi[c.P+1]
	}
}
