package repair

import (
	"errors"
	"math"
	"testing"

	"mlec/internal/placement"
	"mlec/internal/topology"
)

func analyzer(t *testing.T, s placement.Scheme) *Analyzer {
	t.Helper()
	l, err := placement.NewLayout(topology.Default(), placement.DefaultParams(), s)
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalyzer(l)
}

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func burst(t *testing.T, a *Analyzer, m Method) Analysis {
	t.Helper()
	an, err := a.AnalyzeBurst(m)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestBurstProfileClustered(t *testing.T) {
	l := placement.MustNewLayout(topology.Default(), placement.DefaultParams(), placement.SchemeCC)
	prof := BurstProfile(l, 4)
	if len(prof) != 1 {
		t.Fatalf("Cp profile has %d entries, want 1", len(prof))
	}
	if got := prof[4]; got != l.LocalStripesPerPool() {
		t.Fatalf("Cp profile[4] = %g, want all %g stripes", got, l.LocalStripesPerPool())
	}
}

func TestBurstProfileDeclustered(t *testing.T) {
	l := placement.MustNewLayout(topology.Default(), placement.DefaultParams(), placement.SchemeCD)
	prof := BurstProfile(l, 4)
	// Total failed chunks must equal 4 disks' worth of chunks.
	var chunks float64
	for j, n := range prof {
		chunks += float64(j) * n
	}
	want := 4 * l.Topo.ChunksPerDisk()
	if !approx(chunks, want, 1e-9) {
		t.Fatalf("profile accounts for %g failed chunks, want %g", chunks, want)
	}
	// Lost stripes (j=4) are a tiny fraction ≈ 5.9e-4 of all stripes.
	frac := prof[4] / l.LocalStripesPerPool()
	if frac < 5.5e-4 || frac > 6.5e-4 {
		t.Fatalf("lost-stripe fraction %g, want ≈5.9e-4", frac)
	}
}

func TestBurstProfileZeroFailures(t *testing.T) {
	l := placement.MustNewLayout(topology.Default(), placement.DefaultParams(), placement.SchemeCC)
	if prof := BurstProfile(l, 0); len(prof) != 0 {
		t.Fatalf("zero-failure profile not empty: %v", prof)
	}
}

// TestFigure8Traffic checks the cross-rack traffic of Figure 8, whose
// values the paper states explicitly: R_ALL 4,400 TB (*/C) and 26,400 TB
// (*/D); R_FCO 880 TB; R_HYB 3.1 TB for */D; R_MIN ≥4× below R_HYB.
func TestFigure8Traffic(t *testing.T) {
	const TB = 1e12
	for _, s := range []placement.Scheme{placement.SchemeCC, placement.SchemeDC} {
		a := analyzer(t, s)
		if got := burst(t, a, RAll).CrossRackTrafficBytes / TB; !approx(got, 4400, 1e-6) {
			t.Errorf("%v R_ALL traffic %g TB, want 4400", s, got)
		}
		if got := burst(t, a, RFCO).CrossRackTrafficBytes / TB; !approx(got, 880, 1e-6) {
			t.Errorf("%v R_FCO traffic %g TB, want 880", s, got)
		}
		// Cp: R_HYB degenerates to R_FCO under a simultaneous burst.
		if got := burst(t, a, RHYB).CrossRackTrafficBytes / TB; !approx(got, 880, 1e-6) {
			t.Errorf("%v R_HYB traffic %g TB, want 880", s, got)
		}
		// R_MIN repairs 1 of 4 failed chunks per stripe → 220 TB.
		if got := burst(t, a, RMin).CrossRackTrafficBytes / TB; !approx(got, 220, 1e-6) {
			t.Errorf("%v R_MIN traffic %g TB, want 220", s, got)
		}
	}
	for _, s := range []placement.Scheme{placement.SchemeCD, placement.SchemeDD} {
		a := analyzer(t, s)
		if got := burst(t, a, RAll).CrossRackTrafficBytes / TB; !approx(got, 26400, 1e-6) {
			t.Errorf("%v R_ALL traffic %g TB, want 26400", s, got)
		}
		if got := burst(t, a, RFCO).CrossRackTrafficBytes / TB; !approx(got, 880, 1e-6) {
			t.Errorf("%v R_FCO traffic %g TB, want 880", s, got)
		}
		// The paper's 3.1 TB figure.
		if got := burst(t, a, RHYB).CrossRackTrafficBytes / TB; got < 2.8 || got > 3.4 {
			t.Errorf("%v R_HYB traffic %g TB, want ≈3.1", s, got)
		}
		hyb := burst(t, a, RHYB).CrossRackTrafficBytes
		min := burst(t, a, RMin).CrossRackTrafficBytes
		if ratio := hyb / min; ratio < 3.9 {
			t.Errorf("%v R_HYB/R_MIN traffic ratio %g, want ≥ 4", s, ratio)
		}
	}
}

// TestFigure9RepairTime checks the findings of §4.2.2.
func TestFigure9RepairTime(t *testing.T) {
	// F#1: R_FCO cuts the network repair time 5–30× vs R_ALL.
	for _, c := range []struct {
		s        placement.Scheme
		minRatio float64
		maxRatio float64
	}{
		{placement.SchemeCC, 4.5, 6}, // 444 h → 89 h  (~5×)
		{placement.SchemeCD, 25, 35}, // 2667 h → 89 h (~30×)
		{placement.SchemeDC, 4.5, 6}, // 81 h → 16 h   (~5×)
		{placement.SchemeDD, 25, 35}, // 489 h → 16 h  (~30×)
	} {
		a := analyzer(t, c.s)
		all := burst(t, a, RAll)
		fco := burst(t, a, RFCO)
		ratio := all.NetworkRepairHours / fco.NetworkRepairHours
		if ratio < c.minRatio || ratio > c.maxRatio {
			t.Errorf("F#1 %v: R_ALL/R_FCO net time ratio %.1f, want [%g,%g]",
				c.s, ratio, c.minRatio, c.maxRatio)
		}
		if all.LocalRepairHours != 0 || fco.LocalRepairHours != 0 {
			t.Errorf("F#1 %v: R_ALL/R_FCO must not use local repair", c.s)
		}
	}

	// F#2: on C/D, R_HYB trades network time for local time and lands
	// near R_FCO's total.
	cd := analyzer(t, placement.SchemeCD)
	fco := burst(t, cd, RFCO)
	hyb := burst(t, cd, RHYB)
	if hyb.NetworkRepairHours >= fco.NetworkRepairHours/10 {
		t.Errorf("F#2: C/D R_HYB network stage %.1f h not ≪ R_FCO %.1f h",
			hyb.NetworkRepairHours, fco.NetworkRepairHours)
	}
	if hyb.LocalRepairHours == 0 {
		t.Error("F#2: C/D R_HYB must induce local repair time")
	}
	if r := hyb.TotalHours / fco.TotalHours; r < 0.7 || r > 1.3 {
		t.Errorf("F#2: C/D R_HYB total %.1f h vs R_FCO %.1f h (ratio %.2f), want similar",
			hyb.TotalHours, fco.TotalHours, r)
	}

	// F#3: R_MIN minimizes the network stage everywhere but can take
	// longer in total (clearly visible on */C).
	for _, s := range placement.AllSchemes {
		a := analyzer(t, s)
		min := burst(t, a, RMin)
		for _, m := range []Method{RAll, RFCO, RHYB} {
			if other := burst(t, a, m); min.NetworkRepairHours > other.NetworkRepairHours+1e-9 {
				t.Errorf("F#3 %v: R_MIN network stage %.2f h exceeds %v's %.2f h",
					s, min.NetworkRepairHours, m, other.NetworkRepairHours)
			}
		}
	}
	cc := analyzer(t, placement.SchemeCC)
	if burst(t, cc, RMin).TotalHours <= burst(t, cc, RFCO).TotalHours {
		t.Error("F#3: C/C R_MIN total must exceed R_FCO total")
	}
}

func TestTrafficConservation(t *testing.T) {
	// Network + local repaired bytes must cover exactly the failed
	// bytes for R_FCO, R_HYB and R_MIN (R_ALL intentionally over-repairs).
	for _, s := range placement.AllSchemes {
		a := analyzer(t, s)
		failedBytes := 4 * a.Layout.Topo.DiskCapacityBytes
		for _, m := range []Method{RFCO, RHYB, RMin} {
			an := burst(t, a, m)
			if got := an.NetworkRepairBytes + an.LocalRepairBytes; !approx(got, failedBytes, 1e-9) {
				t.Errorf("%v %v repairs %g bytes, want %g", s, m, got, failedBytes)
			}
		}
		if an := burst(t, a, RAll); an.NetworkRepairBytes < failedBytes {
			t.Errorf("%v R_ALL repairs less than the failed bytes", s)
		}
	}
}

func TestCatastrophicWindowOrdering(t *testing.T) {
	// The exposure window must shrink monotonically R_ALL ≥ R_FCO ≥
	// R_HYB ≥ R_MIN for every scheme — the mechanism behind Figure 10's
	// durability gains.
	for _, s := range placement.AllSchemes {
		a := analyzer(t, s)
		prev := math.Inf(1)
		for _, m := range AllMethods {
			w, err := a.CatastrophicWindowHours(m)
			if err != nil {
				t.Fatalf("%v %v: %v", s, m, err)
			}
			if w > prev+1e-9 {
				t.Errorf("%v: window grew from %v at %v", s, prev, m)
			}
			prev = w
		}
	}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{RAll: "R_ALL", RFCO: "R_FCO", RHYB: "R_HYB", RMin: "R_MIN"}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("%d String = %q, want %q", int(m), m.String(), w)
		}
	}
}

func TestAnalyzeProfileGeneral(t *testing.T) {
	// A partially-repaired Cp pool: only half the stripes still have 4
	// failures, the rest have 2 (the long-term durability scenario of
	// §4.2.3 F#2). R_HYB must now beat R_FCO even on */C.
	a := analyzer(t, placement.SchemeCC)
	stripes := a.Layout.LocalStripesPerPool()
	prof := StripeProfile{4: stripes / 2, 2: stripes / 2}
	fco, err := a.AnalyzeProfile(RFCO, 4, prof)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := a.AnalyzeProfile(RHYB, 4, prof)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.CrossRackTrafficBytes >= fco.CrossRackTrafficBytes {
		t.Error("R_HYB must reduce traffic when some stripes are locally recoverable")
	}
	min, err := a.AnalyzeProfile(RMin, 4, prof)
	if err != nil {
		t.Fatal(err)
	}
	if min.CrossRackTrafficBytes >= hyb.CrossRackTrafficBytes {
		t.Error("R_MIN must reduce traffic below R_HYB")
	}
}

func TestAnalyzeProfileUnknownMethod(t *testing.T) {
	a := analyzer(t, placement.SchemeCC)
	if _, err := a.AnalyzeProfile(Method(99), 4, StripeProfile{}); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("AnalyzeProfile(Method(99)) error = %v, want ErrUnknownMethod", err)
	}
}
