// Package repair implements the paper's four local-pool repair methods
// (Section 2.4) and quantifies their cross-rack network traffic (Figure 8)
// and repair time (Figure 9) for a catastrophic local pool failure.
//
//	R_ALL — rebuild the entire local pool over the network; needs no
//	        cross-level visibility (black-box RBODs).
//	R_FCO — rebuild only the failed chunks over the network; needs the
//	        local level to report failed-chunk lists.
//	R_HYB — rebuild only lost local stripes over the network; repair the
//	        locally-recoverable remainder locally.
//	R_MIN — stage 1 rebuilds just enough chunks (f−pl per lost stripe)
//	        over the network to make every stripe locally recoverable;
//	        stage 2 finishes locally.
//
// Accounting: every byte reconstructed over the network costs kn reads
// from other racks plus 1 write, i.e. (kn+1)× the repaired volume in
// cross-rack traffic, consistent with the R_ALL/Table 2 derivations in
// bwmodel.
package repair

import (
	"errors"
	"fmt"
	"sort"

	"mlec/internal/bwmodel"
	"mlec/internal/mathx"
	"mlec/internal/placement"
)

// ErrUnknownMethod is returned when a Method value is outside the four
// defined repair methods.
var ErrUnknownMethod = errors.New("repair: unknown method")

// Method enumerates the four repair methods.
type Method int

const (
	RAll Method = iota
	RFCO
	RHYB
	RMin
)

// String renders the paper's labels.
func (m Method) String() string {
	switch m {
	case RAll:
		return "R_ALL"
	case RFCO:
		return "R_FCO"
	case RHYB:
		return "R_HYB"
	case RMin:
		return "R_MIN"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// AllMethods lists the methods in the paper's presentation order.
var AllMethods = []Method{RAll, RFCO, RHYB, RMin}

// StripeProfile describes the failure state of one local pool as the
// number of local stripes having exactly j failed chunks, for j ≥ 1.
// Counts are float64 because analytic profiles are expectations.
type StripeProfile map[int]float64

// sortedFailureCounts returns the profile's failure counts j in
// ascending order. Expectation sums iterate this instead of the map so
// float accumulation order — and with it the last ULP of every derived
// statistic — is identical run to run.
func (p StripeProfile) sortedFailureCounts() []int {
	js := make([]int, 0, len(p))
	for j := range p {
		js = append(js, j)
	}
	sort.Ints(js)
	return js
}

// BurstProfile returns the stripe profile of a local pool that just lost
// `failed` disks simultaneously (the paper's catastrophic-failure
// injection: failed = pl+1).
//
// Clustered pools: every stripe spans all pool disks, so every stripe has
// exactly `failed` failed chunks. Declustered pools: a stripe's failed
// chunk count is hypergeometric over the pool.
func BurstProfile(l *placement.Layout, failed int) StripeProfile {
	prof := StripeProfile{}
	stripes := l.LocalStripesPerPool()
	w := l.Params.LocalWidth()
	if l.Scheme.Local == placement.Clustered {
		if failed > 0 {
			j := failed
			if j > w {
				j = w
			}
			prof[j] = stripes
		}
		return prof
	}
	d := l.LocalPoolSize()
	for j := 1; j <= failed && j <= w; j++ {
		if n := stripes * mathx.HypergeomPMF(j, failed, d, w); n > 0 {
			prof[j] = n
		}
	}
	return prof
}

// Analysis holds the per-method cost breakdown for repairing one
// catastrophic local pool.
type Analysis struct {
	Method Method
	Scheme placement.Scheme

	// NetworkRepairBytes is the volume reconstructed via network-level
	// parity computation.
	NetworkRepairBytes float64
	// LocalRepairBytes is the volume reconstructed via local parities.
	LocalRepairBytes float64
	// CrossRackTrafficBytes = NetworkRepairBytes × (kn+1).
	CrossRackTrafficBytes float64
	// NetworkRepairHours and LocalRepairHours are the two repair stages'
	// durations; TotalHours is their sum (the stages are sequential:
	// local repair needs the network stage's output).
	NetworkRepairHours float64
	LocalRepairHours   float64
	TotalHours         float64
}

// Analyzer evaluates repair methods for one layout.
type Analyzer struct {
	Layout *placement.Layout
	Model  *bwmodel.Model
}

// NewAnalyzer returns an analyzer over the layout.
func NewAnalyzer(l *placement.Layout) *Analyzer {
	return &Analyzer{Layout: l, Model: bwmodel.New(l)}
}

// AnalyzeBurst evaluates a method against the paper's catastrophic
// injection: pl+1 simultaneous disk failures in one local pool.
func (a *Analyzer) AnalyzeBurst(m Method) (Analysis, error) {
	failed := a.Layout.Params.PL + 1
	return a.AnalyzeProfile(m, failed, BurstProfile(a.Layout, failed))
}

// AnalyzeProfile evaluates a method against an arbitrary pool failure
// state: `failedDisks` disks down with the given stripe profile. It
// returns ErrUnknownMethod for a Method outside the defined four.
func (a *Analyzer) AnalyzeProfile(m Method, failedDisks int, prof StripeProfile) (Analysis, error) {
	l := a.Layout
	chunk := l.Topo.ChunkSizeBytes
	pl := l.Params.PL

	var netBytes, locBytes float64
	switch m {
	case RAll:
		// Rebuild the whole pool regardless of what actually failed.
		netBytes = l.LocalPoolDataBytes()
	case RFCO:
		// Every failed chunk is rebuilt over the network.
		for _, j := range prof.sortedFailureCounts() {
			netBytes += prof[j] * float64(j) * chunk
		}
	case RHYB:
		// Lost stripes (> pl failures) over the network, the rest
		// locally.
		for _, j := range prof.sortedFailureCounts() {
			n := prof[j]
			if j > pl {
				netBytes += n * float64(j) * chunk
			} else {
				locBytes += n * float64(j) * chunk
			}
		}
	case RMin:
		// Stage 1: j−pl chunks per lost stripe over the network.
		// Stage 2: everything else locally.
		for _, j := range prof.sortedFailureCounts() {
			n := prof[j]
			if j > pl {
				netBytes += n * float64(j-pl) * chunk
				locBytes += n * float64(pl) * chunk
			} else {
				locBytes += n * float64(j) * chunk
			}
		}
	default:
		return Analysis{}, fmt.Errorf("%w: %v", ErrUnknownMethod, m)
	}

	netBW := a.Model.PoolRepairBandwidth()
	locBW := a.Model.DegradedPoolRepairBandwidth(failedDisks)
	an := Analysis{
		Method:                m,
		Scheme:                l.Scheme,
		NetworkRepairBytes:    netBytes,
		LocalRepairBytes:      locBytes,
		CrossRackTrafficBytes: netBytes * float64(l.Params.KN+1),
		NetworkRepairHours:    netBytes / netBW / 3600,
	}
	if locBytes > 0 {
		an.LocalRepairHours = locBytes / locBW / 3600
	}
	an.TotalHours = an.NetworkRepairHours + an.LocalRepairHours
	return an, nil
}

// CatastrophicWindowHours returns the duration for which the pool remains
// in the catastrophic (locally-unrecoverable) state under each method —
// the exposure window that drives network-level durability (Section
// 4.2.3). The pool exits the catastrophic state as soon as the network
// stage has restored every lost stripe to ≤ pl failures, so for R_HYB and
// R_MIN this is just the network stage; for R_ALL and R_FCO the pool is
// exposed until the network repair finishes.
func (a *Analyzer) CatastrophicWindowHours(m Method) (float64, error) {
	an, err := a.AnalyzeBurst(m)
	if err != nil {
		return 0, err
	}
	return an.NetworkRepairHours, nil
}
