package render

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapBasic(t *testing.T) {
	var sb strings.Builder
	xs := []int{1, 2, 3}
	ys := []int{10, 20}
	cells := [][]float64{
		{1e-6, 1e-3, 1},          // y=10
		{math.NaN(), 1e-1, 1e-2}, // y=20
	}
	err := Heatmap(&sb, xs, ys, cells, HeatmapOpts{
		Title: "test", MinExp: -6, XLabel: "racks", YLabel: "failures",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Error("title missing")
	}
	// y=20 row rendered first (top-down).
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  20 |") {
		t.Errorf("first data row %q, want y=20", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  10 |") {
		t.Errorf("second data row %q, want y=10", lines[2])
	}
	// PDL=1 renders the hottest glyph.
	if !strings.ContainsRune(lines[2], '@') {
		t.Errorf("hot cell missing in %q", lines[2])
	}
}

func TestHeatmapGlyphs(t *testing.T) {
	if g := glyph(math.NaN(), -6); g != ' ' {
		t.Errorf("NaN glyph %q", g)
	}
	if g := glyph(0, -6); g != '0' {
		t.Errorf("zero glyph %q", g)
	}
	if g := glyph(1, -6); g != '@' {
		t.Errorf("one glyph %q", g)
	}
	// Monotone: hotter values get later glyphs.
	prev := -1
	for _, v := range []float64{1e-7, 1e-5, 1e-3, 1e-1, 1} {
		idx := strings.IndexByte(string(heatChars), glyph(v, -6))
		if idx < prev {
			t.Errorf("glyph ordering broken at %g", v)
		}
		prev = idx
	}
}

func TestHeatmapShapeErrors(t *testing.T) {
	var sb strings.Builder
	if err := Heatmap(&sb, []int{1}, []int{1, 2}, [][]float64{{1}}, HeatmapOpts{}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if err := Heatmap(&sb, []int{1, 2}, []int{1}, [][]float64{{1}}, HeatmapOpts{}); err == nil {
		t.Error("column count mismatch accepted")
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	// All rows align: same column start for the second column.
	idx := strings.Index(lines[0], "long-header")
	if strings.Index(lines[2], "1") != idx {
		t.Errorf("columns misaligned:\n%s", sb.String())
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"x", "y"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "x,y\n1,2\n" {
		t.Errorf("CSV output %q", sb.String())
	}
}

func TestBytes(t *testing.T) {
	cases := map[float64]string{
		5:       "5 B",
		2e3:     "2 KB",
		3.5e6:   "3.5 MB",
		4e9:     "4 GB",
		4.4e12:  "4.4 TB",
		2.64e16: "26.4 PB",
	}
	for v, want := range cases {
		if got := Bytes(v); got != want {
			t.Errorf("Bytes(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestHours(t *testing.T) {
	cases := map[float64]string{
		0.5:   "30 min",
		3:     "3 h",
		72:    "3 days",
		8760:  "1 years",
		87600: "10 years",
	}
	for v, want := range cases {
		if got := Hours(v); got != want {
			t.Errorf("Hours(%g) = %q, want %q", v, got, want)
		}
	}
}
