// Package render formats experiment output: log-scale ASCII heatmaps
// (the terminal analogue of the paper's PDL figures), aligned tables, and
// CSV emitters for external plotting.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// HeatmapOpts controls heatmap rendering.
type HeatmapOpts struct {
	// Title is printed above the grid.
	Title string
	// MinExp is the log10 floor: values ≤ 10^MinExp render as the
	// lowest bucket. The paper's figures use −6.
	MinExp float64
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// heatChars maps bucket index (cold→hot) to a glyph; NaN renders blank.
var heatChars = []byte(" .:-=+*#%@")

// Heatmap renders a grid of probabilities (rows indexed by ys, columns by
// xs) as a log-scale ASCII heatmap. Values are bucketed between 10^MinExp
// and 1; NaN cells (undefined, e.g. y < x) are blank.
func Heatmap(w io.Writer, xs, ys []int, cells [][]float64, opts HeatmapOpts) error {
	if opts.MinExp >= 0 {
		opts.MinExp = -6
	}
	if len(cells) != len(ys) {
		return fmt.Errorf("render: %d rows for %d ys", len(cells), len(ys))
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.Title); err != nil {
			return err
		}
	}
	// Rows top-down from the largest y (matching the paper's figures).
	for iy := len(ys) - 1; iy >= 0; iy-- {
		row := cells[iy]
		if len(row) != len(xs) {
			return fmt.Errorf("render: row %d has %d cells for %d xs", iy, len(row), len(xs))
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%4d |", ys[iy])
		for _, v := range row {
			b.WriteByte(glyph(v, opts.MinExp))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	// X axis: tick labels every 10 columns.
	var b strings.Builder
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", len(xs)))
	b.WriteByte('\n')
	axis := make([]byte, len(xs))
	for i := range axis {
		axis[i] = ' '
	}
	for i := 0; i < len(xs); i += 10 {
		s := fmt.Sprintf("%d", xs[i])
		for j := 0; j < len(s) && i+j < len(axis); j++ {
			axis[i+j] = s[j]
		}
	}
	b.WriteString("      ")
	b.Write(axis)
	b.WriteByte('\n')
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "      x: %s, y: %s; scale: log10(PDL) in [%g, 0], ' '=undefined\n",
			opts.XLabel, opts.YLabel, opts.MinExp)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func glyph(v, minExp float64) byte {
	if math.IsNaN(v) {
		return heatChars[0]
	}
	if v <= 0 {
		return '0'
	}
	lg := math.Log10(v)
	if lg >= 0 {
		return heatChars[len(heatChars)-1]
	}
	frac := 1 - lg/minExp // 0 at minExp, 1 at 0
	if frac < 0 {
		frac = 0
	}
	idx := 1 + int(frac*float64(len(heatChars)-2))
	if idx >= len(heatChars) {
		idx = len(heatChars) - 1
	}
	return heatChars[idx]
}

// Table renders rows with aligned columns. headers may be nil.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, 0)
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if headers != nil {
		grow(headers)
	}
	for _, r := range rows {
		grow(r)
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if headers != nil {
		if err := writeRow(headers); err != nil {
			return err
		}
		var b strings.Builder
		for i := range headers {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes rows as comma-separated values with a header line.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	if headers != nil {
		if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Bytes renders a byte count in human units (decimal, as the paper uses).
func Bytes(v float64) string {
	switch {
	case v >= 1e15:
		return fmt.Sprintf("%.3g PB", v/1e15)
	case v >= 1e12:
		return fmt.Sprintf("%.3g TB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.3g GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3g MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3g KB", v/1e3)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// Hours renders a duration in hours with sensible units.
func Hours(h float64) string {
	switch {
	case h >= 24*365:
		return fmt.Sprintf("%.3g years", h/(24*365))
	case h >= 48:
		return fmt.Sprintf("%.3g days", h/24)
	case h >= 1:
		return fmt.Sprintf("%.3g h", h)
	default:
		return fmt.Sprintf("%.3g min", h*60)
	}
}
