// Package splitting implements stage 2 of the paper's splitting
// methodology (§3): composing the stage-1 catastrophic-local-pool rate
// (from poolsim, or the Markov model for R_ALL verification) with the
// network level to estimate system durability — the paper's Figure 10 and
// the durability axes of Figures 12 and 15.
//
// Composition: catastrophic pool events arrive per pool at rate λ and
// keep the pool in the catastrophic state for a repair-method-dependent
// window W (repair.CatastrophicWindowHours plus detection). Data is lost
// when p_n+1 pools overlap in the catastrophic state within one network
// pool (network-clustered) or across distinct racks (network-
// declustered), and the overlapping pools' actually-lost stripes align
// into one network stripe — probability 1 under R_ALL's whole-pool view,
// and the exact Poisson-binomial/hypergeometric value when the repairer
// knows the lost chunks (R_FCO and better).
package splitting

import (
	"fmt"

	"mlec/internal/burst"
	"mlec/internal/failure"
	"mlec/internal/mathx"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/repair"
)

// Stage1 summarizes the local-pool behaviour feeding the network level.
type Stage1 struct {
	// CatRatePerPoolHour is the catastrophic-event rate of one pool.
	CatRatePerPoolHour float64
	// FailedDisksAtCat is the typical number of failed disks at the
	// catastrophic instant (pl+1 unless samples say otherwise).
	FailedDisksAtCat int
	// LostStripeFraction is φ: the fraction of the pool's stripes that
	// are actually lost at the catastrophic instant.
	LostStripeFraction float64
}

// Stage1FromSplit derives Stage1 from a poolsim splitting run.
func Stage1FromSplit(cfg poolsim.Config, res poolsim.SplitResult) Stage1 {
	s := Stage1{
		CatRatePerPoolHour: res.CatRatePerPoolHour,
		FailedDisksAtCat:   cfg.Parity + 1,
	}
	if len(res.Samples) > 0 {
		var fd, lost float64
		for _, smp := range res.Samples {
			fd += float64(smp.FailedDisks)
			lost += float64(smp.LostStripes)
		}
		s.FailedDisksAtCat = int(fd/float64(len(res.Samples)) + 0.5)
		s.LostStripeFraction = lost / float64(len(res.Samples)) / float64(cfg.Stripes())
	} else {
		s.LostStripeFraction = analyticPhi(cfg, s.FailedDisksAtCat)
	}
	if s.LostStripeFraction <= 0 {
		s.LostStripeFraction = analyticPhi(cfg, s.FailedDisksAtCat)
	}
	return s
}

// analyticPhi is the burst-injection φ at true chunk granularity.
func analyticPhi(cfg poolsim.Config, failed int) float64 {
	if cfg.Clustered {
		return 1
	}
	return mathx.HypergeomTail(cfg.Parity+1, failed, cfg.Disks, cfg.Width)
}

// Stage1Analytic derives Stage1 from the R_ALL Markov view: catastrophic
// means pl+1 concurrent failures and the whole pool counts as lost.
func Stage1Analytic(catRatePerPoolHour float64, pl int) Stage1 {
	return Stage1{
		CatRatePerPoolHour: catRatePerPoolHour,
		FailedDisksAtCat:   pl + 1,
		LostStripeFraction: 1,
	}
}

// Result is one durability estimate.
type Result struct {
	Scheme placement.Scheme
	Method repair.Method

	CatRatePerPoolHour float64
	WindowHours        float64 // catastrophic-state duration per event
	LossGivenOverlap   float64 // P(lost network stripe | pn+1 overlap)
	LossRatePerHour    float64
	AnnualPDL          float64
	Nines              float64
}

// Durability composes stage 1 with the network level for one scheme and
// repair method, using the paper's 30-minute detection delay.
func Durability(l *placement.Layout, method repair.Method, s1 Stage1) (Result, error) {
	return DurabilityDetect(l, method, s1, failure.DefaultDetectionDelayHours)
}

// DurabilityDetect is Durability with an explicit failure-detection
// delay — the ablation knob of §4.2.3 F#3 and §5.2.2.
func DurabilityDetect(l *placement.Layout, method repair.Method, s1 Stage1, detectHours float64) (Result, error) {
	if s1.CatRatePerPoolHour < 0 {
		return Result{}, fmt.Errorf("splitting: negative catastrophic rate")
	}
	if detectHours < 0 {
		return Result{}, fmt.Errorf("splitting: negative detection delay")
	}
	an := repair.NewAnalyzer(l)
	netWindow, err := an.CatastrophicWindowHours(method)
	if err != nil {
		return Result{}, err
	}
	window := netWindow + detectHours

	// φ visible to the network repairer: R_ALL cannot see inside the
	// pool and must treat everything as lost.
	phi := s1.LostStripeFraction
	if method == repair.RAll {
		phi = 1
	}
	pn := l.Params.PN
	phis := make([]float64, pn+1)
	for i := range phis {
		phis[i] = phi
	}
	var lossGivenOverlap float64
	var overlapRate float64
	if l.Scheme.Network == placement.Clustered {
		lossGivenOverlap = burst.LossGivenAlignedCatPools(l, phis)
		perPool := mathx.PoissonOverlapRate(l.Params.NetworkWidth(), s1.CatRatePerPoolHour, window, pn+1)
		overlapRate = perPool * float64(l.TotalNetworkPools())
	} else {
		lossGivenOverlap = burst.LossGivenScatteredCatPools(l, phis)
		overlapRate = mathx.PoissonOverlapRate(l.TotalLocalPools(), s1.CatRatePerPoolHour, window, pn+1)
		// Distinct-rack correction: the pn+1 overlapping pools must sit
		// in different racks for a network stripe to touch them all.
		overlapRate *= distinctRackFactor(l, pn+1)
	}
	lossRate := overlapRate * lossGivenOverlap
	return Result{
		Scheme:             l.Scheme,
		Method:             method,
		CatRatePerPoolHour: s1.CatRatePerPoolHour,
		WindowHours:        window,
		LossGivenOverlap:   lossGivenOverlap,
		LossRatePerHour:    lossRate,
		AnnualPDL:          mathx.RateToAnnualPDL(lossRate),
		Nines:              mathx.Nines(mathx.RateToAnnualPDL(lossRate)),
	}, nil
}

// distinctRackFactor returns P(m uniformly chosen distinct pools sit in m
// distinct racks).
func distinctRackFactor(l *placement.Layout, m int) float64 {
	total := l.TotalLocalPools()
	ppr := l.LocalPoolsPerRack()
	p := 1.0
	for i := 1; i < m; i++ {
		// After picking i pools in i distinct racks, the next pool must
		// avoid those racks' remaining pools.
		avoid := float64(i * (ppr - 1))
		p *= 1 - avoid/float64(total-i)
	}
	return p
}

// Fig10Row pairs a scheme with its per-method durability results.
type Fig10Row struct {
	Scheme  placement.Scheme
	Results [4]Result // indexed by repair.Method
}

// Fig10 computes durability for all four schemes × four repair methods.
// Stage-1 rates are estimated once per local placement kind (clustered/
// declustered pools behave identically across network schemes).
func Fig10(layouts map[placement.Scheme]*placement.Layout,
	stage1ByLocal map[placement.Kind]Stage1) ([]Fig10Row, error) {
	rows := make([]Fig10Row, 0, len(placement.AllSchemes))
	for _, s := range placement.AllSchemes {
		l, ok := layouts[s]
		if !ok {
			return nil, fmt.Errorf("splitting: missing layout for %v", s)
		}
		s1, ok := stage1ByLocal[s.Local]
		if !ok {
			return nil, fmt.Errorf("splitting: missing stage-1 for local kind %v", s.Local)
		}
		row := Fig10Row{Scheme: s}
		for _, m := range repair.AllMethods {
			r, err := Durability(l, m, s1)
			if err != nil {
				return nil, err
			}
			row.Results[int(m)] = r
		}
		rows = append(rows, row)
	}
	return rows, nil
}
