package splitting

import (
	"math"
	"testing"

	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

func layouts(t *testing.T) map[placement.Scheme]*placement.Layout {
	t.Helper()
	topo := topology.Default()
	params := placement.DefaultParams()
	m := map[placement.Scheme]*placement.Layout{}
	for _, s := range placement.AllSchemes {
		l, err := placement.NewLayout(topo, params, s)
		if err != nil {
			t.Fatal(err)
		}
		m[s] = l
	}
	return m
}

// stage1Fixture supplies plausible stage-1 numbers without running the
// pool simulator: Markov-style rates with the analytic φ.
func stage1Fixture(t *testing.T) map[placement.Kind]Stage1 {
	t.Helper()
	ls := layouts(t)
	lambda := 0.01 / 8760
	out := map[placement.Kind]Stage1{}

	cp := markov.MLECRAllModel{Layout: ls[placement.SchemeCC], LambdaPerHour: lambda}
	cpRate, err := cp.CatRatePerPoolHour()
	if err != nil {
		t.Fatal(err)
	}
	out[placement.Clustered] = Stage1{
		CatRatePerPoolHour: cpRate, FailedDisksAtCat: 4, LostStripeFraction: 1,
	}

	dp := markov.MLECRAllModel{Layout: ls[placement.SchemeCD], LambdaPerHour: lambda}
	dpRate, err := dp.CatRatePerPoolHour()
	if err != nil {
		t.Fatal(err)
	}
	out[placement.Declustered] = Stage1{
		CatRatePerPoolHour: dpRate, FailedDisksAtCat: 4,
		LostStripeFraction: 5.9e-4, // hypergeometric φ(4) for (17+3) over 120
	}
	return out
}

// TestFig10MethodOrdering: durability must improve monotonically
// R_ALL → R_FCO → R_HYB → R_MIN for every scheme (§4.2.3).
func TestFig10MethodOrdering(t *testing.T) {
	rows, err := Fig10(layouts(t), stage1Fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		prev := -math.MaxFloat64
		for _, m := range repair.AllMethods {
			n := row.Results[int(m)].Nines
			if n < prev-1e-9 {
				t.Errorf("%v: nines dropped at %v (%.2f < %.2f)", row.Scheme, m, n, prev)
			}
			prev = n
		}
	}
}

// TestFig10FindingGains checks the magnitude bands of §4.2.3 F#1–F#3:
// R_FCO gains 0.9–6.6 nines over R_ALL (largest in D/D), R_HYB adds
// 0.6–4.1 (largest in */D), R_MIN adds up to ~1.2 (largest in C/C).
func TestFig10FindingGains(t *testing.T) {
	rows, err := Fig10(layouts(t), stage1Fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[placement.Scheme]Fig10Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	gain := func(s placement.Scheme, from, to repair.Method) float64 {
		return byScheme[s].Results[int(to)].Nines - byScheme[s].Results[int(from)].Nines
	}

	// F#1: R_FCO's biggest win is on D/D (window shrink × chunk
	// knowledge), far exceeding its C/C win.
	ddGain := gain(placement.SchemeDD, repair.RAll, repair.RFCO)
	ccGain := gain(placement.SchemeCC, repair.RAll, repair.RFCO)
	t.Logf("F#1 R_ALL→R_FCO: C/C +%.1f, D/D +%.1f nines", ccGain, ddGain)
	if ddGain <= ccGain {
		t.Errorf("F#1: D/D gain (%.1f) must exceed C/C gain (%.1f)", ddGain, ccGain)
	}
	if ccGain < 0.3 || ccGain > 3 {
		t.Errorf("F#1: C/C gain %.1f outside the paper's ≈0.9-nine band", ccGain)
	}
	if ddGain < 3 || ddGain > 10 {
		t.Errorf("F#1: D/D gain %.1f outside the paper's ≈6.6-nine band", ddGain)
	}

	// F#2: R_HYB's gain is most apparent on */D.
	cdHyb := gain(placement.SchemeCD, repair.RFCO, repair.RHYB)
	ccHyb := gain(placement.SchemeCC, repair.RFCO, repair.RHYB)
	t.Logf("F#2 R_FCO→R_HYB: C/C +%.2f, C/D +%.2f nines", ccHyb, cdHyb)
	if cdHyb <= ccHyb {
		t.Errorf("F#2: C/D hybrid gain (%.2f) must exceed C/C's (%.2f)", cdHyb, ccHyb)
	}
	if cdHyb < 0.5 || cdHyb > 6 {
		t.Errorf("F#2: C/D hybrid gain %.2f outside the paper's ≈4-nine band", cdHyb)
	}

	// F#3: R_MIN's extra gain is largest on C/C and small on */D.
	ccMin := gain(placement.SchemeCC, repair.RHYB, repair.RMin)
	cdMin := gain(placement.SchemeCD, repair.RHYB, repair.RMin)
	t.Logf("F#3 R_HYB→R_MIN: C/C +%.2f, C/D +%.2f nines", ccMin, cdMin)
	if ccMin <= cdMin {
		t.Errorf("F#3: C/C R_MIN gain (%.2f) must exceed C/D's (%.2f)", ccMin, cdMin)
	}
	if ccMin < 0.1 || ccMin > 2 {
		t.Errorf("F#3: C/C R_MIN gain %.2f outside the paper's ≈1.2-nine band", ccMin)
	}
}

// TestFig10FinalOrdering: with all optimizations (R_MIN), C/D and D/D
// provide the best durability and D/C the worst (§4.2.3 F#4).
func TestFig10FinalOrdering(t *testing.T) {
	rows, err := Fig10(layouts(t), stage1Fixture(t))
	if err != nil {
		t.Fatal(err)
	}
	nines := map[placement.Scheme]float64{}
	for _, r := range rows {
		nines[r.Scheme] = r.Results[int(repair.RMin)].Nines
		t.Logf("%v R_MIN durability: %.1f nines", r.Scheme, nines[r.Scheme])
	}
	worst := placement.SchemeDC
	for s, n := range nines {
		if n < nines[worst] {
			worst = s
			_ = s
		}
	}
	if worst != placement.SchemeDC {
		t.Errorf("F#4: worst scheme is %v, want D/C", worst)
	}
	if !(nines[placement.SchemeCD] > nines[placement.SchemeCC]) {
		t.Errorf("F#4: C/D (%.1f) must beat C/C (%.1f)", nines[placement.SchemeCD], nines[placement.SchemeCC])
	}
	if !(nines[placement.SchemeDD] > nines[placement.SchemeDC]) {
		t.Errorf("F#4: D/D (%.1f) must beat D/C (%.1f)", nines[placement.SchemeDD], nines[placement.SchemeDC])
	}
}

// TestRAllMatchesMarkov: under R_ALL with Markov stage-1 inputs, the
// stage-2 composition must land within ~1.5 orders of magnitude of the
// pure Markov system model — the paper's model-vs-simulation
// cross-verification (§6.2).
func TestRAllMatchesMarkov(t *testing.T) {
	ls := layouts(t)
	s1 := stage1Fixture(t)
	lambda := 0.01 / 8760
	for _, s := range []placement.Scheme{placement.SchemeCC, placement.SchemeCD} {
		r, err := Durability(ls[s], repair.RAll, s1[s.Local])
		if err != nil {
			t.Fatal(err)
		}
		m := markov.MLECRAllModel{Layout: ls[s], LambdaPerHour: lambda}
		pdl, err := m.SystemAnnualPDL()
		if err != nil {
			t.Fatal(err)
		}
		lr := math.Log10(r.AnnualPDL / pdl)
		t.Logf("%v R_ALL: splitting PDL %.3g vs Markov %.3g (Δ %.2f orders)", s, r.AnnualPDL, pdl, lr)
		if math.Abs(lr) > 1.5 {
			t.Errorf("%v: splitting and Markov disagree by %.1f orders", s, lr)
		}
	}
}

func TestStage1FromSplit(t *testing.T) {
	cfg := poolsim.Config{
		Disks: 8, Width: 8, Parity: 2, Clustered: true,
		SegmentsPerDisk: 16, DiskCapacityBytes: 1e12, DiskRepairBW: 5e6,
		DetectionDelayHours: 0.5,
	}
	res := poolsim.SplitResult{CatRatePerPoolHour: 1e-7}
	s1 := Stage1FromSplit(cfg, res)
	if s1.CatRatePerPoolHour != 1e-7 {
		t.Error("rate not propagated")
	}
	if s1.FailedDisksAtCat != 3 {
		t.Errorf("FailedDisksAtCat = %d, want pl+1 = 3", s1.FailedDisksAtCat)
	}
	if s1.LostStripeFraction != 1 {
		t.Errorf("clustered φ = %g, want 1", s1.LostStripeFraction)
	}
	// With samples, the measured φ is used.
	res.Samples = []poolsim.CatSample{
		{FailedDisks: 3, LostStripes: 4},
		{FailedDisks: 3, LostStripes: 6},
	}
	s1 = Stage1FromSplit(cfg, res)
	wantPhi := 5.0 / float64(cfg.Stripes())
	if math.Abs(s1.LostStripeFraction-wantPhi) > 1e-12 {
		t.Errorf("sampled φ = %g, want %g", s1.LostStripeFraction, wantPhi)
	}
}

func TestDistinctRackFactor(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeDD)
	f := distinctRackFactor(l, 3)
	if f <= 0.9 || f > 1 {
		t.Errorf("distinct-rack factor %g, want slightly below 1", f)
	}
	// More pools required → lower factor.
	if distinctRackFactor(l, 5) >= f {
		t.Error("factor must decrease with overlap size")
	}
}

func TestDurabilityWindowMonotone(t *testing.T) {
	// Faster catastrophic-exit (smaller window) must never hurt.
	ls := layouts(t)
	s1 := stage1Fixture(t)[placement.Clustered]
	r1, err := Durability(ls[placement.SchemeCC], repair.RAll, s1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Durability(ls[placement.SchemeCC], repair.RMin, s1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.WindowHours >= r1.WindowHours {
		t.Error("R_MIN window must be smaller than R_ALL's")
	}
	if r2.AnnualPDL > r1.AnnualPDL {
		t.Error("smaller window must not raise PDL")
	}
}
