// Package traffic computes long-run expected cross-rack repair network
// traffic — the paper's Sections 5.1.4 and 5.2.4 (described in text, no
// figure): network SLEC needs hundreds of TB of repair traffic per day,
// LRC less (local-group reads), while MLEC needs a few TB per *thousands
// of years* because only catastrophic local pools touch the network.
package traffic

import (
	"fmt"

	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

// hoursPerDay and related constants for rate conversions.
const (
	hoursPerDay  = 24.0
	hoursPerYear = 8760.0
)

// failuresPerHour returns the system-wide disk failure arrival rate.
func failuresPerHour(topo topology.Config, lambdaPerHour float64) float64 {
	return float64(topo.TotalDisks()) * lambdaPerHour
}

// NetworkSLECDailyBytes returns the expected cross-rack repair traffic
// per day of a network-placed (k+p) SLEC: every disk failure pulls k
// chunk-reads across racks and writes 1 rebuilt chunk, per repaired byte.
func NetworkSLECDailyBytes(topo topology.Config, params placement.SLECParams, lambdaPerHour float64) (float64, error) {
	if params.K <= 0 || params.P < 0 {
		return 0, fmt.Errorf("traffic: bad SLEC params %v", params)
	}
	perFailure := topo.DiskCapacityBytes * float64(params.K+1)
	return failuresPerHour(topo, lambdaPerHour) * hoursPerDay * perFailure, nil
}

// LocalSLECDailyBytes returns 0: local SLEC repairs never cross racks.
// (It exists so comparison tables can enumerate all placements.)
func LocalSLECDailyBytes(topology.Config, placement.SLECParams, float64) float64 { return 0 }

// LRCDailyBytes returns the expected cross-rack repair traffic per day of
// an LRC-Dp layout: the dominant single-failure repairs read the k/l
// surviving chunks of the local group and write 1 — all across racks,
// since LRC-Dp scatters every chunk to a distinct rack (§5.2.4).
func LRCDailyBytes(topo topology.Config, params placement.LRCParams, lambdaPerHour float64) (float64, error) {
	if params.K <= 0 || params.L <= 0 || params.K%params.L != 0 {
		return 0, fmt.Errorf("traffic: bad LRC params %v", params)
	}
	groupReads := params.K / params.L // group size reads per repaired chunk
	perFailure := topo.DiskCapacityBytes * float64(groupReads+1)
	return failuresPerHour(topo, lambdaPerHour) * hoursPerDay * perFailure, nil
}

// MLECYearlyBytes returns the expected cross-rack repair traffic per YEAR
// of an MLEC system: catastrophic pools arrive at catRatePerPoolHour per
// pool and each costs the repair method's cross-rack traffic. Ordinary
// disk failures repair inside the enclosure and contribute nothing.
func MLECYearlyBytes(l *placement.Layout, method repair.Method, catRatePerPoolHour float64) (float64, error) {
	if catRatePerPoolHour < 0 {
		return 0, fmt.Errorf("traffic: negative catastrophic rate")
	}
	an := repair.NewAnalyzer(l)
	burst, err := an.AnalyzeBurst(method)
	if err != nil {
		return 0, err
	}
	eventsPerYear := catRatePerPoolHour * float64(l.TotalLocalPools()) * hoursPerYear
	return eventsPerYear * burst.CrossRackTrafficBytes, nil
}

// Comparison is the §5.1.4/§5.2.4 summary table.
type Comparison struct {
	NetworkSLECDaily float64 // bytes/day
	LRCDaily         float64 // bytes/day
	MLECYearly       float64 // bytes/year
	// MLECYearsPerTB reports how many years MLEC takes to generate one
	// TB of cross-rack repair traffic (the "thousands of years" claim).
	MLECYearsPerTB float64
}

// Compare builds the summary for the given configurations.
func Compare(topo topology.Config, slec placement.SLECParams, lrcp placement.LRCParams,
	l *placement.Layout, method repair.Method, lambdaPerHour, catRatePerPoolHour float64) (Comparison, error) {
	var c Comparison
	var err error
	if c.NetworkSLECDaily, err = NetworkSLECDailyBytes(topo, slec, lambdaPerHour); err != nil {
		return c, err
	}
	if c.LRCDaily, err = LRCDailyBytes(topo, lrcp, lambdaPerHour); err != nil {
		return c, err
	}
	if c.MLECYearly, err = MLECYearlyBytes(l, method, catRatePerPoolHour); err != nil {
		return c, err
	}
	if c.MLECYearly > 0 {
		c.MLECYearsPerTB = 1e12 / c.MLECYearly
	}
	return c, nil
}
