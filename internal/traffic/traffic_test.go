package traffic

import (
	"testing"

	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

const lambda = 0.01 / 8760 // ≈1% AFR per hour

// TestNetworkSLECHundredsOfTBPerDay reproduces §5.1.4's headline: a (7+3)
// network SLEC on the paper's datacenter needs hundreds of TB of
// cross-rack repair traffic every day.
func TestNetworkSLECHundredsOfTBPerDay(t *testing.T) {
	topo := topology.Default()
	daily, err := NetworkSLECDailyBytes(topo, placement.SLECParams{K: 7, P: 3}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	tb := daily / 1e12
	t.Logf("network (7+3) SLEC: %.0f TB/day", tb)
	if tb < 100 || tb > 1000 {
		t.Errorf("daily traffic %.0f TB outside the paper's 'hundreds of TB' band", tb)
	}
}

// TestMLECFewTBPerThousandsOfYears reproduces the MLEC side of §5.1.4.
func TestMLECFewTBPerThousandsOfYears(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeCD)
	m := markov.MLECRAllModel{Layout: l, LambdaPerHour: lambda}
	catRate, err := m.CatRatePerPoolHour()
	if err != nil {
		t.Fatal(err)
	}
	yearly, err := MLECYearlyBytes(l, repair.RMin, catRate)
	if err != nil {
		t.Fatal(err)
	}
	yearsPerTB := 1e12 / yearly
	t.Logf("MLEC C/D R_MIN: %.3g TB/year → %.3g years per TB", yearly/1e12, yearsPerTB)
	if yearsPerTB < 1000 {
		t.Errorf("MLEC needs %g years per TB; the paper claims thousands", yearsPerTB)
	}
}

// TestLRCLessThanNetworkSLEC: §5.2.4 — LRC's local groups reduce repair
// traffic below network SLEC, but it remains substantial daily traffic.
func TestLRCLessThanNetworkSLEC(t *testing.T) {
	topo := topology.Default()
	slec, err := NetworkSLECDailyBytes(topo, placement.SLECParams{K: 14, P: 6}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	lrcd, err := LRCDailyBytes(topo, placement.LRCParams{K: 14, L: 2, R: 4}, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if lrcd >= slec {
		t.Errorf("LRC daily (%g) must be below equal-width network SLEC (%g)", lrcd, slec)
	}
	if lrcd < 1e12 {
		t.Errorf("LRC daily traffic %g suspiciously small — every repair crosses racks", lrcd)
	}
}

func TestLocalSLECZero(t *testing.T) {
	if got := LocalSLECDailyBytes(topology.Default(), placement.SLECParams{K: 7, P: 3}, lambda); got != 0 {
		t.Errorf("local SLEC cross-rack traffic %g, want 0", got)
	}
}

func TestCompare(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeCD)
	m := markov.MLECRAllModel{Layout: l, LambdaPerHour: lambda}
	catRate, _ := m.CatRatePerPoolHour()
	// Equal-width comparison: (14+6) network SLEC reads k=14 chunks per
	// repair, the (14,2,4) LRC only its 7-chunk local group.
	c, err := Compare(topo, placement.SLECParams{K: 14, P: 6}, placement.LRCParams{K: 14, L: 2, R: 4},
		l, repair.RMin, lambda, catRate)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.NetworkSLECDaily > c.LRCDaily && c.LRCDaily > 0) {
		t.Error("ordering NetworkSLEC > LRC > 0 violated")
	}
	if c.MLECYearsPerTB <= 0 {
		t.Error("MLECYearsPerTB not computed")
	}
	// MLEC's yearly traffic must be absurdly below SLEC's daily.
	if c.MLECYearly >= c.NetworkSLECDaily {
		t.Error("MLEC yearly traffic should be far below SLEC daily")
	}
}

func TestValidation(t *testing.T) {
	topo := topology.Default()
	if _, err := NetworkSLECDailyBytes(topo, placement.SLECParams{K: 0, P: 3}, lambda); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := LRCDailyBytes(topo, placement.LRCParams{K: 5, L: 2, R: 1}, lambda); err == nil {
		t.Error("k%l!=0 accepted")
	}
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeCC)
	if _, err := MLECYearlyBytes(l, repair.RAll, -1); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestMethodReducesTraffic: better repair methods reduce MLEC's long-run
// traffic in proportion to their per-event traffic.
func TestMethodReducesTraffic(t *testing.T) {
	topo := topology.Default()
	l := placement.MustNewLayout(topo, placement.DefaultParams(), placement.SchemeCD)
	prev := -1.0
	for _, m := range []repair.Method{repair.RMin, repair.RHYB, repair.RFCO, repair.RAll} {
		y, err := MLECYearlyBytes(l, m, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if y <= prev {
			t.Errorf("%v yearly traffic %g not above the better method's %g", m, y, prev)
		}
		prev = y
	}
}
