package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func TestFingerprintIgnoresObsFlags(t *testing.T) {
	campaign := []string{"-seed", "42", "-pools", "16", "-hours", "1000"}
	base := FingerprintArgs(campaign)
	if base == "" || len(base) != 16 {
		t.Fatalf("fingerprint = %q, want 16 hex chars", base)
	}
	instrumented := [][]string{
		append(append([]string{}, campaign...), "-obs", "127.0.0.1:0"),
		append(append([]string{}, campaign...), "-trace-out", "/tmp/t.jsonl", "-span-out", "/tmp/s.jsonl"),
		append(append([]string{}, campaign...), "-run-report=/tmp/r.json", "-profile-dir=/tmp/prof"),
		append([]string{"-progress", "25ms"}, campaign...),
		append([]string{"--obs=127.0.0.1:0"}, campaign...),
	}
	for _, args := range instrumented {
		if got := FingerprintArgs(args); got != base {
			t.Errorf("args %v fingerprint %s, want %s (obs flags must not steer identity)", args, got, base)
		}
	}
	// Campaign-defining flags DO change the fingerprint.
	if got := FingerprintArgs([]string{"-seed", "43", "-pools", "16", "-hours", "1000"}); got == base {
		t.Error("different seed produced identical fingerprint")
	}
}

func TestBuildRunReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("syssim_events_total").Add(1000)
	r.Counter("burst_pdl_trials_total").Add(500)
	r.Counter("runctl_checkpoint_saves_total").Add(3)
	r.Counter("runctl_stream_retries_total").Add(2)
	ev := r.Meter("syssim_events_per_sec")
	ev.addAt(5_000_000, 900)
	by := r.Meter("syssim_repair_bytes_per_sec")
	by.addAt(5_000_000, 1e9) // byte meters must not feed the event peak

	args := []string{"-seed", "7", "-run-report", "/tmp/r.json"}
	rep := BuildRunReport("mlecdur", args, 7, 1500*time.Millisecond, r)
	if rep.Schema != RunReportSchema || rep.Tool != "mlecdur" || rep.Seed != 7 {
		t.Fatalf("report identity %+v", rep)
	}
	if rep.ConfigFingerprint != FingerprintArgs(args) {
		t.Fatal("fingerprint mismatch")
	}
	if rep.WallSeconds != 1.5 {
		t.Fatalf("WallSeconds = %g", rep.WallSeconds)
	}
	if rep.EventsSimulated != 1500 {
		t.Fatalf("EventsSimulated = %d, want 1500 (sum of engine event counters)", rep.EventsSimulated)
	}
	if rep.PeakEventsPerSec != 900 {
		t.Fatalf("PeakEventsPerSec = %g, want 900 (bytes meters excluded)", rep.PeakEventsPerSec)
	}
	if rep.CheckpointSaves != 3 || rep.StreamRetries != 2 {
		t.Fatalf("counter pulls %+v", rep)
	}
	if rep.PeakHeapBytes == 0 || rep.GoVersion == "" {
		t.Fatalf("runtime fields missing: %+v", rep)
	}
	if len(rep.Meters) != 2 {
		t.Fatalf("Meters = %+v, want both meters embedded", rep.Meters)
	}
}

func TestRunReportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("syssim_events_total").Add(10)
	rep := BuildRunReport("mlecburst", []string{"-seed", "1"}, 1, time.Second, r)
	path := t.TempDir() + "/RUNREPORT.json"
	if err := WriteRunReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRunReport(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("own report does not parse: %v", err)
	}
	if got.Tool != rep.Tool || got.EventsSimulated != rep.EventsSimulated ||
		got.ConfigFingerprint != rep.ConfigFingerprint {
		t.Fatalf("round trip lost fields: %+v vs %+v", got, rep)
	}
}

func TestParseRunReportRejects(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":"mlec-run-report/v0","tool":"x","args":[],"config_fingerprint":"a","seed":1,"go_version":"go","goos":"linux","goarch":"amd64","wall_seconds":1,"events_simulated":0,"peak_events_per_sec":0,"peak_heap_bytes":1,"total_alloc_bytes":1,"num_gc":0,"checkpoint_saves":0,"checkpoint_loads":0,"stream_retries":0,"stream_heals":0,"counters":{}}`,
		"missing tool":  `{"schema":"mlec-run-report/v1","tool":"","args":[],"config_fingerprint":"a","seed":1,"go_version":"go","goos":"linux","goarch":"amd64","wall_seconds":1,"events_simulated":0,"peak_events_per_sec":0,"peak_heap_bytes":1,"total_alloc_bytes":1,"num_gc":0,"checkpoint_saves":0,"checkpoint_loads":0,"stream_retries":0,"stream_heals":0,"counters":{}}`,
		"unknown field": `{"schema":"mlec-run-report/v1","tool":"x","bogus":1}`,
		"not json":      `banana`,
	}
	for name, doc := range cases {
		if _, err := ParseRunReport(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted %q", name, doc)
		}
	}
}
