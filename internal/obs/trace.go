package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// Trace event kinds. All times are simulated hours — the recorder
// never stamps wall-clock time, so a fixed-seed run produces an
// identical trace on any host.
const (
	EvFailure        = "failure"         // a disk failed
	EvRepairStart    = "repair_start"    // a repair began (local or network)
	EvRepairEnd      = "repair_end"      // a repair completed
	EvPoolCat        = "pool_cat"        // a pool crossed into catastrophic state
	EvPoolHeal       = "pool_heal"       // a catastrophic pool fully re-protected
	EvCheckpoint     = "checkpoint"      // a run-control checkpoint was saved
	EvLevelPromotion = "level_promotion" // a splitting run advanced one level

	// Fault-tolerance events (see internal/faultinject and the
	// self-healing paths in internal/runctl).
	EvFaultInjected      = "fault_injected"      // the chaos harness fired a rule
	EvStreamRetry        = "stream_retry"        // a failed worker stream is being re-run
	EvCheckpointFallback = "checkpoint_fallback" // a corrupt checkpoint fell back a generation
	EvStall              = "stall"               // the watchdog saw live workers make no progress
)

// eventKindDescriptions is the single source of truth for the kinds
// the tree emits: ParseTraceEvents validates against it, and
// `mlectrace events` renders its summaries from it. Adding an Ev*
// constant without a row here makes every trace containing it
// unparseable, which is how the set stays in sync.
var eventKindDescriptions = map[string]string{
	EvFailure:            "disk failed",
	EvRepairStart:        "repair began",
	EvRepairEnd:          "repair completed",
	EvPoolCat:            "pool went catastrophic",
	EvPoolHeal:           "pool fully re-protected",
	EvCheckpoint:         "checkpoint saved",
	EvLevelPromotion:     "splitting run advanced one level",
	EvFaultInjected:      "chaos harness fired a rule",
	EvStreamRetry:        "failed worker stream re-run",
	EvCheckpointFallback: "corrupt checkpoint fell back a generation",
	EvStall:              "watchdog saw live workers make no progress",
}

// KnownEventKinds returns every event kind the tree emits with its
// one-line description, keyed by kind.
func KnownEventKinds() map[string]string {
	out := make(map[string]string, len(eventKindDescriptions))
	for k, v := range eventKindDescriptions {
		out[k] = v
	}
	return out
}

// TraceEvent is one JSONL record of a simulated-time trace. Unused
// fields stay at their zero values and are omitted from the encoding;
// Seq is a process-wide sequence number assigned at emission so
// cmd/mlectrace can detect truncated or interleaved files.
type TraceEvent struct {
	Seq    uint64  `json:"seq"`
	T      float64 `json:"t"` // simulated hours
	Kind   string  `json:"kind"`
	Pool   int     `json:"pool,omitempty"`
	Disk   int     `json:"disk,omitempty"`
	Level  int     `json:"level,omitempty"`
	Method string  `json:"method,omitempty"`
	Bytes  float64 `json:"bytes,omitempty"`
	Note   string  `json:"note,omitempty"`
}

// traceFlushThreshold bounds the recorder's in-memory buffer: once the
// pending encoded bytes pass it, they are flushed to the sink inside
// the emitting call. There is no background drain goroutine, so a
// trace file's content is a deterministic function of the event
// sequence alone.
const traceFlushThreshold = 64 * 1024

// Recorder buffers trace events and writes them as JSONL. The zero
// value is a disabled recorder whose Emit is a single atomic load —
// cheap enough to leave emission sites unconditioned.
type Recorder struct {
	on atomic.Bool

	mu sync.Mutex
	//mlec:guardedby mu
	sink io.Writer
	//mlec:guardedby mu
	buf bytes.Buffer
	//mlec:guardedby mu
	seq uint64
	//mlec:guardedby mu
	err error // first write/encode error; emission stops on it
}

// Trace is the process-wide recorder; -trace-out starts it.
var Trace = &Recorder{}

// Start begins recording to sink. It returns an error if the recorder
// is already running.
func (r *Recorder) Start(sink io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.on.Load() {
		return fmt.Errorf("obs: trace recorder already started")
	}
	r.sink = sink
	r.buf.Reset()
	r.seq = 0
	r.err = nil
	r.on.Store(true)
	return nil
}

// Emit records one event. When the recorder is off this is one atomic
// load and no allocation; engines therefore call it unconditionally.
func (r *Recorder) Emit(ev TraceEvent) {
	if !r.on.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.on.Load() || r.err != nil {
		return
	}
	r.seq++
	ev.Seq = r.seq
	b, err := json.Marshal(ev)
	if err != nil {
		r.err = err
		return
	}
	r.buf.Write(b)
	r.buf.WriteByte('\n')
	if r.buf.Len() >= traceFlushThreshold {
		r.flushLocked()
	}
}

func (r *Recorder) flushLocked() {
	if r.err != nil || r.sink == nil || r.buf.Len() == 0 {
		return
	}
	_, err := r.sink.Write(r.buf.Bytes())
	r.buf.Reset()
	if err != nil {
		r.err = err
	}
}

// Stop flushes pending events, disables the recorder and returns the
// first error encountered over its lifetime (encoding or sink writes).
// The sink itself is owned by the caller (the CLI closes the file).
func (r *Recorder) Stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.on.Load() {
		return nil
	}
	r.flushLocked()
	r.on.Store(false)
	r.sink = nil
	return r.err
}

// Enabled reports whether the recorder is running.
func (r *Recorder) Enabled() bool { return r.on.Load() }

// ParseTraceEvents reads a JSONL trace, validating that every line
// decodes, that kinds are known, and that sequence numbers increase
// strictly — the schema contract cmd/mlectrace relies on.
func ParseTraceEvents(rd io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if _, known := eventKindDescriptions[ev.Kind]; !known {
			return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineNo, ev.Kind)
		}
		if ev.Seq <= lastSeq {
			return nil, fmt.Errorf("trace: line %d: sequence %d not increasing (after %d)",
				lineNo, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
