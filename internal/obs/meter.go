package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Windowed wall-clock throughput meters. A Meter turns an engine's
// event counter increments into an events/sec (or bytes/sec) reading
// without the engine ever reading the clock itself: the engine calls
// Add from its hot loop, the meter timestamps the sample here, inside
// obs, behind the sanctioned walltime-analyzer exemption.
//
// Like every other metric cell in this package the Meter is inert by
// construction: Add is lock-free, allocation-free, and write-only, so
// it can sit on a `//mlec:hot` event loop (hotalloc's transitive-hotness
// sweep reaches it from syssim's RunContext) without perturbing the
// simulation or serializing workers.

// meterWindow is the trailing window Rate averages over, in seconds.
const meterWindow = 10

// meterBucket accumulates one wall-clock second of samples. sec is the
// unix second the bucket currently represents (0 = never used); sum
// holds the bucket total as float64 bits.
type meterBucket struct {
	sec atomic.Int64
	sum atomic.Uint64
}

// Meter is a windowed throughput meter: a ring of per-second buckets
// plus a running total and a high-water mark of the busiest completed
// second. All state is atomic — concurrent Add from many worker
// goroutines is the normal case.
type Meter struct {
	total    atomic.Uint64 // float64 bits: lifetime sum of Add values
	peak     atomic.Uint64 // float64 bits: max sum of any retired one-second bucket
	firstSec atomic.Int64  // unix second of the first Add; 0 = no samples yet
	buckets  [meterWindow]meterBucket
}

// Add records v events (or bytes) as having happened now.
func (m *Meter) Add(v float64) { m.addAt(time.Now().Unix(), v) }

// addAt is Add with an explicit clock, the deterministic seam the unit
// tests drive.
func (m *Meter) addAt(sec int64, v float64) {
	m.firstSec.CompareAndSwap(0, sec)
	b := &m.buckets[uint64(sec)%meterWindow]
	for {
		cur := b.sec.Load()
		if cur >= sec {
			// Current second, or a sample from a goroutine whose clock
			// read is a rotation behind: fold into the live bucket —
			// off by at most one second, and never lost from total.
			break
		}
		if b.sec.CompareAndSwap(cur, sec) {
			// This Add retires the bucket's previous second: fold its
			// sum into the peak high-water mark and start fresh.
			old := math.Float64frombits(b.sum.Swap(0))
			if cur != 0 {
				m.foldPeak(old)
			}
			break
		}
	}
	addFloatBits(&b.sum, v)
	addFloatBits(&m.total, v)
}

// foldPeak raises the peak high-water mark to v if v exceeds it.
func (m *Meter) foldPeak(v float64) {
	for {
		cur := m.peak.Load()
		if v <= math.Float64frombits(cur) {
			return
		}
		if m.peak.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// addFloatBits atomically adds v to a float64 stored as bits.
func addFloatBits(cell *atomic.Uint64, v float64) {
	for {
		cur := cell.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if cell.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Total returns the lifetime sum of everything Added.
func (m *Meter) Total() float64 { return math.Float64frombits(m.total.Load()) }

// Rate returns the per-second rate averaged over the trailing window
// (shortened to the meter's actual lifetime while it is younger than
// the window). Zero before the first sample.
func (m *Meter) Rate() float64 { return m.rateAt(time.Now().Unix()) }

func (m *Meter) rateAt(now int64) float64 {
	first := m.firstSec.Load()
	if first == 0 {
		return 0
	}
	lo := now - meterWindow + 1
	var sum float64
	for i := range m.buckets {
		sec := m.buckets[i].sec.Load()
		if sec >= lo && sec <= now {
			sum += math.Float64frombits(m.buckets[i].sum.Load())
		}
	}
	window := float64(meterWindow)
	if lifetime := float64(now-first) + 1; lifetime < window {
		window = lifetime
	}
	if window < 1 {
		window = 1
	}
	return sum / window
}

// Peak returns the largest one-second tally the meter has seen: the
// max over retired buckets, and over live buckets still accumulating
// (a partial second's tally is a lower bound on what that second will
// total, so including it only ever under-reports the true peak).
func (m *Meter) Peak() float64 {
	p := math.Float64frombits(m.peak.Load())
	for i := range m.buckets {
		if m.buckets[i].sec.Load() == 0 {
			continue
		}
		if s := math.Float64frombits(m.buckets[i].sum.Load()); s > p {
			p = s
		}
	}
	return p
}

// MeterSnapshot is a meter's point-in-time reading, the JSON form used
// by /progress and embedded in run reports.
type MeterSnapshot struct {
	Name       string  `json:"name"`
	Total      float64 `json:"total"`
	RatePerSec float64 `json:"rate_per_sec"`
	PeakPerSec float64 `json:"peak_per_sec"`
}

// MeterSnapshots returns every registered meter's reading, sorted by
// canonical name.
func (r *Registry) MeterSnapshots() []MeterSnapshot {
	var out []MeterSnapshot
	for _, kv := range SortedSnapshot(r.copyMetrics()) {
		if m, ok := kv.Value.(*Meter); ok {
			out = append(out, MeterSnapshot{
				Name:       canonicalName(kv.Key),
				Total:      m.Total(),
				RatePerSec: m.Rate(),
				PeakPerSec: m.Peak(),
			})
		}
	}
	return out
}
