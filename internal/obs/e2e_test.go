// End-to-end proof of the package's load-bearing claim: observability
// is inert. A fixed-seed engine run must produce byte-identical stdout
// with every obs feature enabled or disabled, and the HTTP endpoint
// must serve a page the strict Prometheus parser accepts. make
// obs-smoke runs exactly these tests.
package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mlec/internal/obs"
)

// repoRoot locates the module root from this file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildBinaries compiles mlecdur and mlecburst once per test process.
func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		root := repoRoot(t)
		buildDir, buildErr = os.MkdirTemp("", "obs-e2e-*")
		if buildErr != nil {
			return
		}
		for _, name := range []string{"mlecdur", "mlecburst"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, name), "./cmd/"+name)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

func runBinary(t *testing.T, bin string, args ...string) (stdout, stderr []byte) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr:\n%s", filepath.Base(bin), args, err, errb.String())
	}
	return out.Bytes(), errb.Bytes()
}

// TestCLIInertness is the byte-identity check ISSUE 5 demands, extended
// with the PR 10 surface: the same seed with and without the full
// observability stack (-obs, -progress, -trace-out, -span-out,
// -run-report, -profile-dir) must print the same bytes to stdout.
func TestCLIInertness(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t)
	cases := []struct {
		bin   string
		args  []string
		chaos string
	}{
		{"mlecdur", []string{"-scheme", "D/D", "-sim", "-trajectories", "1000", "-seed", "7"},
			"poolsim.worker:panic:p=0.2;seed=3"},
		{"mlecburst", []string{"-scheme", "D/D", "-x", "3", "-y", "40", "-trials", "3000", "-seed", "5"},
			"burst.batch:panic:p=0.2;seed=3"},
	}
	for _, tc := range cases {
		t.Run(tc.bin, func(t *testing.T) {
			bin := filepath.Join(bins, tc.bin)
			plain, _ := runBinary(t, bin, tc.args...)
			dir := t.TempDir()
			tracePath := filepath.Join(dir, "run.trace")
			spanPath := filepath.Join(dir, "run.spans")
			reportPath := filepath.Join(dir, "run.report.json")
			profileDir := filepath.Join(dir, "profiles")
			instrumented := append(append([]string(nil), tc.args...),
				"-obs", "127.0.0.1:0", "-trace-out", tracePath, "-progress", "25ms",
				"-span-out", spanPath, "-run-report", reportPath, "-profile-dir", profileDir)
			observed, stderrOut := runBinary(t, bin, instrumented...)
			if !bytes.Equal(plain, observed) {
				t.Fatalf("observability changed a fixed-seed run's stdout.\nplain:\n%s\nobserved:\n%s",
					plain, observed)
			}
			// Inertness extends to the fault-tolerance counters: a chaos
			// run under full instrumentation — injected worker panics
			// healed by stream retries, fault/retry counters ticking —
			// must still print the fault-free run's bytes.
			chaotic := append(append([]string(nil), tc.args...),
				"-chaos", tc.chaos, "-obs", "127.0.0.1:0", "-progress", "25ms")
			healed, chaosErr := runBinary(t, bin, chaotic...)
			if !bytes.Equal(plain, healed) {
				t.Fatalf("healed chaos run changed a fixed-seed run's stdout.\nplain:\n%s\nchaos:\n%s",
					plain, healed)
			}
			if !strings.Contains(string(chaosErr), "chaos:") {
				t.Errorf("chaos announcement missing from stderr:\n%s", chaosErr)
			}
			if !strings.Contains(string(stderrOut), "obs: serving metrics on http://") {
				t.Errorf("endpoint announcement missing from stderr:\n%s", stderrOut)
			}
			f, err := os.Open(tracePath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			evs, err := obs.ParseTraceEvents(f)
			if err != nil {
				t.Fatalf("trace file does not parse: %v", err)
			}
			if tc.bin == "mlecdur" {
				promotions := 0
				for _, ev := range evs {
					if ev.Kind == obs.EvLevelPromotion {
						promotions++
					}
				}
				if promotions == 0 {
					t.Errorf("splitting run emitted no level_promotion events (%d events total)", len(evs))
				}
			}
			// The PR 10 artifacts must all be well-formed: the span file
			// through the strict span parser, the run report through its
			// schema validator, and the profile dir must hold the pprof
			// pair.
			sf, err := os.Open(spanPath)
			if err != nil {
				t.Fatal(err)
			}
			defer sf.Close()
			recs, err := obs.ParseSpans(sf)
			if err != nil {
				t.Fatalf("span file does not parse: %v", err)
			}
			if len(recs) == 0 {
				t.Error("instrumented run recorded no spans")
			}
			rf, err := os.Open(reportPath)
			if err != nil {
				t.Fatal(err)
			}
			defer rf.Close()
			rep, err := obs.ParseRunReport(rf)
			if err != nil {
				t.Fatalf("run report does not parse: %v", err)
			}
			if rep.Tool != tc.bin {
				t.Errorf("run report tool = %q, want %q", rep.Tool, tc.bin)
			}
			if rep.EventsSimulated <= 0 {
				t.Errorf("run report events_simulated = %d, want > 0", rep.EventsSimulated)
			}
			// The fingerprint must cover only the physics flags: the
			// plain and instrumented invocations describe the same run.
			if want := obs.FingerprintArgs(tc.args); rep.ConfigFingerprint != want {
				t.Errorf("run report fingerprint %q differs from the plain invocation's %q",
					rep.ConfigFingerprint, want)
			}
			for _, prof := range []string{"cpu.pprof", "heap.pprof"} {
				if fi, err := os.Stat(filepath.Join(profileDir, prof)); err != nil {
					t.Errorf("-profile-dir lacks %s: %v", prof, err)
				} else if fi.Size() == 0 {
					t.Errorf("%s is empty", prof)
				}
			}
		})
	}
}

// TestEndpointServes starts a long run with -obs, scrapes /metrics and
// /metrics.json while it works, and validates both payloads.
func TestEndpointServes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildBinaries(t)
	cmd := exec.Command(filepath.Join(bins, "mlecburst"),
		"-x", "3", "-y", "40", "-trials", "50000000", "-seed", "1", "-obs", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "obs: serving metrics on http://"); ok {
				addrCh <- strings.TrimSuffix(rest, "/metrics")
				return
			}
		}
		close(addrCh)
	}()
	var addr string
	select {
	case a, ok := <-addrCh:
		if !ok {
			t.Fatal("endpoint announcement never appeared on stderr")
		}
		addr = a
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the endpoint announcement")
	}

	// The engine registers its metrics as it starts; poll until the
	// burst counter shows up (every page served meanwhile must parse).
	deadline := time.Now().Add(30 * time.Second)
	for {
		page := httpGet(t, "http://"+addr+"/metrics")
		prom, err := obs.ParsePrometheus(bytes.NewReader(page))
		if err != nil {
			t.Fatalf("/metrics does not parse: %v\npage:\n%s", err, page)
		}
		if _, ok := prom.Types["burst_pdl_trials_total"]; ok {
			// The throughput meter rides the same page: the strict
			// parser must see it as a gauge next to its counter.
			if kind, ok := prom.Types["burst_pdl_trials_per_sec"]; !ok {
				t.Errorf("/metrics lacks the burst_pdl_trials_per_sec meter; types: %v", prom.Types)
			} else if kind != "gauge" {
				t.Errorf("burst_pdl_trials_per_sec exposed as %q, want gauge", kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed burst_pdl_trials_total; types: %v", prom.Types)
		}
		time.Sleep(50 * time.Millisecond)
	}

	jsonPage := httpGet(t, "http://"+addr+"/metrics.json")
	var points []obs.MetricPoint
	if err := json.Unmarshal(jsonPage, &points); err != nil {
		t.Fatalf("/metrics.json does not decode: %v\npage:\n%s", err, jsonPage)
	}
	if len(points) == 0 {
		t.Error("/metrics.json is empty")
	}

	progPage := httpGet(t, "http://"+addr+"/progress")
	var page obs.ProgressPage
	if err := json.Unmarshal(progPage, &page); err != nil {
		t.Fatalf("/progress does not decode: %v\npage:\n%s", err, progPage)
	}
	if len(page.Meters) == 0 {
		t.Errorf("/progress reports no throughput meters\npage:\n%s", progPage)
	}
	for _, m := range page.Meters {
		if m.Name == "burst_pdl_trials_per_sec" && m.Total <= 0 {
			t.Errorf("trials meter total = %g, want > 0", m.Total)
		}
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	t.Fatalf("GET %s never succeeded: %v", url, lastErr)
	return nil
}
