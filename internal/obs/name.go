package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Metric names follow the Prometheus grammar: a bare metric name
// (`syssim_events_total`) or a name with an inline label block
// (`syssim_repair_bytes_total{method="R_ALL"}`). The full string is the
// registry key, so two label sets of the same base metric are two
// independent atomic cells — labelled hot-path updates stay lock-free.
//
// Label values are written in the Prometheus text-format wire encoding:
// `\\` for a backslash, `\"` for a quote, `\n` for a newline. splitName
// decodes them and formatLabels re-encodes through the one shared
// escaper, so the text exposition, the JSON snapshot, and the strict
// parser in promparse.go can never disagree about a hostile value.

// validName reports whether name is a bare metric name or a name with a
// well-formed label block.
func validName(name string) bool {
	base, labels, ok := splitName(name)
	if !ok || !validBareName(base) {
		return false
	}
	for _, l := range labels {
		if !validLabelName(l.Key) {
			return false
		}
	}
	return true
}

func mustValidName(name string) {
	if !validName(name) {
		//lint:allow nakedpanic metric names are compile-time instrumentation constants; a malformed one is a programmer error
		panic(fmt.Sprintf("obs: malformed metric name %q", name))
	}
}

// splitName splits a metric name into its base and parsed label pairs,
// decoding the wire escapes in label values. Bare names return an empty
// label slice.
func splitName(name string) (base string, labels []Label, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil, true
	}
	base = name[:i]
	labels, rest, ok := scanLabelBlock(name[i:])
	if !ok || rest != "" {
		return "", nil, false
	}
	return base, labels, true
}

// scanLabelBlock parses a leading `{k="v",...}` block (label values in
// wire encoding, decoded here) and returns the parsed pairs plus
// whatever follows the closing brace. It is the single label-block
// scanner in the package: splitName and the exposition-format parser in
// promparse.go both delegate here, so a value that renders must re-parse.
func scanLabelBlock(s string) (labels []Label, rest string, ok bool) {
	if len(s) == 0 || s[0] != '{' {
		return nil, "", false
	}
	p := 1
	if p < len(s) && s[p] == '}' {
		return nil, s[p+1:], true
	}
	for {
		eq := strings.IndexByte(s[p:], '=')
		if eq < 0 {
			return nil, "", false
		}
		key := strings.TrimSpace(s[p : p+eq])
		p += eq + 1
		if p >= len(s) || s[p] != '"' {
			return nil, "", false
		}
		p++
		val, np, ok := scanQuotedValue(s, p)
		if !ok {
			return nil, "", false
		}
		p = np
		labels = append(labels, Label{Key: key, Value: val})
		if p >= len(s) {
			return nil, "", false
		}
		switch s[p] {
		case ',':
			p++
		case '}':
			return labels, s[p+1:], true
		default:
			return nil, "", false
		}
	}
}

// scanQuotedValue decodes a wire-encoded label value starting just past
// its opening quote at s[start], returning the decoded value and the
// index just past the closing quote. Raw newlines and unknown escapes
// are rejected — the encoder never produces them.
func scanQuotedValue(s string, start int) (val string, next int, ok bool) {
	var b strings.Builder
	for p := start; p < len(s); p++ {
		switch s[p] {
		case '"':
			return b.String(), p + 1, true
		case '\n':
			return "", 0, false
		case '\\':
			if p+1 >= len(s) {
				return "", 0, false
			}
			p++
			switch s[p] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, false
			}
		default:
			b.WriteByte(s[p])
		}
	}
	return "", 0, false
}

// escapeLabelValue encodes a label value for the text wire format —
// the one escaper every exposition path shares (Prometheus text via
// formatLabels, the JSON snapshot via canonicalName).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Label is one key="value" pair of a metric name's label block. Value
// holds the decoded (unescaped) value.
type Label struct {
	Key   string
	Value string
}

func validBareName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	for _, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// formatLabels renders label pairs plus any extras (the histogram `le`
// label) as a canonical `{k="v",...}` block, keys sorted and values
// wire-escaped through escapeLabelValue; empty input renders as the
// empty string.
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// canonicalName renders a registry key in canonical form — base name
// plus sorted, re-escaped label block — so the JSON snapshot and the
// text exposition emit byte-identical series names. Malformed keys
// (impossible for registered metrics, which are validated at creation)
// come back unchanged.
func canonicalName(key string) string {
	base, labels, ok := splitName(key)
	if !ok {
		return key
	}
	return base + formatLabels(labels)
}
