package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Metric names follow the Prometheus grammar: a bare metric name
// (`syssim_events_total`) or a name with an inline label block
// (`syssim_repair_bytes_total{method="R_ALL"}`). The full string is the
// registry key, so two label sets of the same base metric are two
// independent atomic cells — labelled hot-path updates stay lock-free.

// validName reports whether name is a bare metric name or a name with a
// well-formed label block.
func validName(name string) bool {
	base, labels, ok := splitName(name)
	if !ok || !validBareName(base) {
		return false
	}
	for _, l := range labels {
		if !validLabelName(l.Key) || strings.ContainsAny(l.Value, `"\`+"\n") {
			return false
		}
	}
	return true
}

func mustValidName(name string) {
	if !validName(name) {
		//lint:allow nakedpanic metric names are compile-time instrumentation constants; a malformed one is a programmer error
		panic(fmt.Sprintf("obs: malformed metric name %q", name))
	}
}

// splitName splits a metric name into its base and parsed label pairs.
// Bare names return an empty label slice.
func splitName(name string) (base string, labels []Label, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil, true
	}
	if !strings.HasSuffix(name, "}") {
		return "", nil, false
	}
	base = name[:i]
	body := name[i+1 : len(name)-1]
	if body == "" {
		return base, nil, true
	}
	for _, part := range strings.Split(body, ",") {
		k, v, found := strings.Cut(part, "=")
		if !found || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", nil, false
		}
		labels = append(labels, Label{Key: strings.TrimSpace(k), Value: v[1 : len(v)-1]})
	}
	return base, labels, true
}

// Label is one key="value" pair of a metric name's label block.
type Label struct {
	Key   string
	Value string
}

func validBareName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	for _, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// formatLabels renders label pairs plus any extras (the histogram `le`
// label) as a canonical `{k="v",...}` block, keys sorted; empty input
// renders as the empty string.
func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
