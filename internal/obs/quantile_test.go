package obs

import (
	"math"
	"testing"
)

// Quantile interpolation at the clamp boundaries: q outside [0,1], the
// empty histogram, a single populated bucket, and the overflow bucket.
// The contract under test: estimates never escape [Min, Max], q=0 lands
// on Min, q=1 on Max, and the empty histogram reports NaN rather than
// inventing a number.
func TestHistogramQuantileClamps(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := newHistogram([]float64{1, 10})
		for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
			if v := h.Quantile(q); !math.IsNaN(v) {
				t.Errorf("empty histogram Quantile(%g) = %g, want NaN", q, v)
			}
		}
	})

	t.Run("q clamps to [0,1]", func(t *testing.T) {
		h := newHistogram([]float64{10, 20, 30})
		h.Observe(5)
		h.Observe(15)
		h.Observe(25)
		if v := h.Quantile(-3); v != h.Quantile(0) {
			t.Errorf("Quantile(-3) = %g, Quantile(0) = %g; q<0 must clamp to 0", v, h.Quantile(0))
		}
		if v := h.Quantile(7); v != h.Quantile(1) {
			t.Errorf("Quantile(7) = %g, Quantile(1) = %g; q>1 must clamp to 1", v, h.Quantile(1))
		}
		if v := h.Quantile(0); v != h.Min() {
			t.Errorf("Quantile(0) = %g, want Min %g", v, h.Min())
		}
		if v := h.Quantile(1); v != h.Max() {
			t.Errorf("Quantile(1) = %g, want Max %g", v, h.Max())
		}
	})

	t.Run("single bucket interpolates between Min and Max", func(t *testing.T) {
		h := newHistogram([]float64{100})
		h.Observe(10)
		h.Observe(30)
		// Both observations share the one bucket, so lo/hi clamp to the
		// observed Min/Max, not the bucket bounds [0, 100].
		if v := h.Quantile(0.5); v != 20 {
			t.Errorf("Quantile(0.5) = %g, want 20 (midpoint of observed [10,30])", v)
		}
		for _, q := range []float64{0, 0.25, 0.75, 1} {
			v := h.Quantile(q)
			if v < 10 || v > 30 {
				t.Errorf("Quantile(%g) = %g escapes observed range [10,30]", q, v)
			}
		}
	})

	t.Run("single observation", func(t *testing.T) {
		h := newHistogram([]float64{1, 10})
		h.Observe(5)
		for _, q := range []float64{0, 0.5, 1} {
			if v := h.Quantile(q); v != 5 {
				t.Errorf("Quantile(%g) = %g, want 5 (the only observation)", q, v)
			}
		}
	})

	t.Run("overflow bucket reports Max", func(t *testing.T) {
		h := newHistogram([]float64{1})
		h.Observe(0.5)
		h.Observe(1e6) // overflow
		if v := h.Quantile(1); v != 1e6 {
			t.Errorf("Quantile(1) = %g, want observed max 1e6, not an invented bound", v)
		}
		if v := h.Quantile(0.99); v != 1e6 {
			t.Errorf("Quantile(0.99) in overflow = %g, want Max", v)
		}
	})
}
