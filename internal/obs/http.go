package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability HTTP mux:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   the same registry as a JSON snapshot
//	/progress       active progress tasks + throughput meters, JSON
//	/debug/pprof/*  the standard net/http/pprof pages
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written, so the only
			// place left to report a scrape failure is the registry
			// itself, where the next scrape will surface it.
			reg.Counter("obs_http_write_errors_total").Inc()
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ProgressPage{Tasks: Progress.Snapshots(), Meters: reg.MeterSnapshots()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ProgressPage is the JSON document served at /progress: the active
// progress tasks plus every registered throughput meter's reading.
type ProgressPage struct {
	Tasks  []TaskSnapshot  `json:"tasks"`
	Meters []MeterSnapshot `json:"meters,omitempty"`
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0" to let the kernel pick a port) serving reg.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 10 * time.Second}
	//lint:allow barego the observability endpoint outlives any one run and owns no simulation state; runctl cannot host it because runctl imports obs
	go func() { _ = srv.Serve(ln) }() //lint:allow goleak Server.Close closes the listener, which makes srv.Serve return; the join point is the Close call, not a channel the analyzer can see

	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
