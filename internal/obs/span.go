package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Causal wall-clock spans. A Span measures the wall time of one phase of
// a run — a splitting level, a checkpoint save, a worker stream, a whole
// campaign — and records, on End, one JSONL line carrying its begin/end
// offsets and its parent's id, so cmd/mlectrace can rebuild the tree and
// roll up where the wall time went.
//
// Spans are deliberately a separate stream from the Recorder's
// simulated-time trace: trace events are deterministic facts of the
// simulation (byte-identical across hosts for a fixed seed), while spans
// are wall-clock measurements that differ on every run. Mixing them
// would destroy the trace's fixed-seed byte-identity, so they never
// share a file or a schema. Spans live behind the same sanctioned
// walltime-analyzer exemption as the progress tracker: wall-clock
// readings happen only inside this package, and nothing here is ever
// read back by simulation code.

// SpanRecord is one JSONL record of a span file. Times are wall-clock
// milliseconds since the recorder started; Parent is 0 for root spans.
type SpanRecord struct {
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	BeginMS float64 `json:"begin_ms"`
	EndMS   float64 `json:"end_ms"`
	Note    string  `json:"note,omitempty"`
}

// Dur returns the span's wall duration in milliseconds.
func (r SpanRecord) Dur() float64 { return r.EndMS - r.BeginMS }

// SpanRecorder writes ended spans as JSONL. The zero value is a
// disabled recorder whose StartSpan is a single atomic load and no
// allocation — emission sites stay unconditioned, which is what keeps
// the span machinery inert when off.
type SpanRecorder struct {
	on  atomic.Bool
	ids atomic.Uint64

	mu sync.Mutex
	//mlec:guardedby mu
	sink io.Writer
	//mlec:guardedby mu
	epoch time.Time
	//mlec:guardedby mu
	err error // first write/encode error; emission stops on it
}

// Spans is the process-wide span recorder; -span-out starts it.
var Spans = &SpanRecorder{}

// Start begins recording to sink. It returns an error if the recorder
// is already running.
func (r *SpanRecorder) Start(sink io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.on.Load() {
		return fmt.Errorf("obs: span recorder already started")
	}
	r.sink = sink
	r.epoch = time.Now()
	r.err = nil
	r.ids.Store(0)
	r.on.Store(true)
	return nil
}

// Stop disables the recorder and returns the first error encountered
// over its lifetime. Spans still open at Stop are simply never written;
// the sink itself is owned by the caller (the CLI closes the file).
func (r *SpanRecorder) Stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.on.Load() {
		return nil
	}
	r.on.Store(false)
	r.sink = nil
	return r.err
}

// Enabled reports whether the recorder is running.
func (r *SpanRecorder) Enabled() bool { return r.on.Load() }

// Span is one in-flight wall-clock measurement. A nil *Span is valid
// everywhere — it is what StartSpan returns while the recorder is off,
// and Child/End on it stay no-ops — so instrumentation sites need no
// enabled-checks of their own.
type Span struct {
	rec    *SpanRecorder
	id     uint64
	parent uint64
	name   string
	begin  time.Time
}

// StartSpan opens a root span. Returns nil (a no-op span) when the
// recorder is off.
func StartSpan(name string) *Span { return Spans.start(name, 0) }

// Child opens a span parented under s. Calling Child on a nil span
// opens a root span instead, so helpers can parent under "whatever the
// caller measured" without caring whether the caller measured at all.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return Spans.start(name, 0)
	}
	return s.rec.start(name, s.id)
}

func (r *SpanRecorder) start(name string, parent uint64) *Span {
	if !r.on.Load() {
		return nil
	}
	return &Span{rec: r, id: r.ids.Add(1), parent: parent, name: name, begin: time.Now()}
}

// End closes the span and writes its record. End on a nil span is a
// no-op; End is not idempotent (ending twice writes twice), so each
// span must be ended exactly once.
func (s *Span) End() { s.EndNote("") }

// EndNote is End with a free-form annotation attached to the record.
func (s *Span) EndNote(note string) {
	if s == nil {
		return
	}
	end := time.Now()
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.on.Load() || r.err != nil {
		return
	}
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		BeginMS: float64(s.begin.Sub(r.epoch)) / float64(time.Millisecond),
		EndMS:   float64(end.Sub(r.epoch)) / float64(time.Millisecond),
		Note:    note,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		r.err = err
		return
	}
	b = append(b, '\n')
	if _, err := r.sink.Write(b); err != nil {
		r.err = err
	}
}

// ParseSpans reads a JSONL span file, validating that every line
// decodes, ids are positive and unique, parents precede their children
// (a parent id is always smaller — parents start first), names are
// non-empty, and every span ends at or after it begins — the schema
// contract `mlectrace spans` relies on. Records appear in End order,
// which is not begin order; callers sort as needed.
func ParseSpans(rd io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("spans: line %d: %w", lineNo, err)
		}
		if rec.ID == 0 {
			return nil, fmt.Errorf("spans: line %d: span id 0", lineNo)
		}
		if seen[rec.ID] {
			return nil, fmt.Errorf("spans: line %d: duplicate span id %d", lineNo, rec.ID)
		}
		seen[rec.ID] = true
		if rec.Parent >= rec.ID {
			return nil, fmt.Errorf("spans: line %d: span %d has parent %d (parents start first, so parent < id)",
				lineNo, rec.ID, rec.Parent)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("spans: line %d: span %d has no name", lineNo, rec.ID)
		}
		if rec.EndMS < rec.BeginMS {
			return nil, fmt.Errorf("spans: line %d: span %d ends (%g ms) before it begins (%g ms)",
				lineNo, rec.ID, rec.EndMS, rec.BeginMS)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spans: %w", err)
	}
	return out, nil
}
