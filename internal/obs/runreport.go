package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"strings"
	"time"
)

// Per-run performance reports. A RunReport is the persisted record of
// one CLI invocation's performance envelope — what campaign ran (config
// fingerprint, seed), how long it took, how many events it simulated,
// how fast it peaked, and how much heap it used — written by the
// -run-report flag so that runs can be compared across commits without
// re-deriving anything from logs. cmd/mlecperf builds its
// BENCH_engines.json trajectory from exactly these readings.

// RunReportSchema versions the report format; ParseRunReport rejects
// anything else.
const RunReportSchema = "mlec-run-report/v1"

// RunReport is the versioned JSON document -run-report emits.
type RunReport struct {
	Schema            string   `json:"schema"`
	Tool              string   `json:"tool"`
	Args              []string `json:"args"`
	ConfigFingerprint string   `json:"config_fingerprint"`
	Seed              int64    `json:"seed"`
	GoVersion         string   `json:"go_version"`
	GOOS              string   `json:"goos"`
	GOARCH            string   `json:"goarch"`
	CPUModel          string   `json:"cpu_model,omitempty"`

	WallSeconds      float64 `json:"wall_seconds"`
	EventsSimulated  int64   `json:"events_simulated"`
	PeakEventsPerSec float64 `json:"peak_events_per_sec"`

	// Heap readings from runtime.ReadMemStats at report time: HeapSys
	// as the peak (the high-water mark of heap claimed from the OS),
	// TotalAlloc as cumulative allocation volume.
	PeakHeapBytes   uint64 `json:"peak_heap_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`

	CheckpointSaves int64 `json:"checkpoint_saves"`
	CheckpointLoads int64 `json:"checkpoint_loads"`
	StreamRetries   int64 `json:"stream_retries"`
	StreamHeals     int64 `json:"stream_heals"`

	Counters map[string]int64 `json:"counters"`
	Meters   []MeterSnapshot  `json:"meters,omitempty"`

	ProfileDir string `json:"profile_dir,omitempty"`
}

// engineEventCounters are the one-per-simulated-event counters of the
// three Monte-Carlo engines; EventsSimulated is their sum. (poolsim
// counts trajectories and burst counts trials — each is that engine's
// unit of simulated work.)
var engineEventCounters = []string{
	"syssim_events_total",
	"poolsim_split_trajectories_total",
	"burst_pdl_trials_total",
}

// obsOnlyFlags are the flags excluded from the config fingerprint:
// observability may observe but never steer, so the same campaign
// measured with a different instrumentation setup must fingerprint
// identically.
var obsOnlyFlags = []string{
	"obs", "progress", "trace-out", "span-out", "run-report", "profile-dir",
}

// FingerprintArgs hashes the campaign-defining argument list (FNV-1a,
// observability flags stripped) into a short stable hex token.
func FingerprintArgs(args []string) string {
	h := fnv.New64a()
	skipNext := false
	for _, a := range args {
		if skipNext {
			skipNext = false
			continue
		}
		if name, hasValue, isObs := classifyFlag(a); isObs {
			skipNext = !hasValue && name != ""
			continue
		}
		_, _ = h.Write([]byte(a))
		_, _ = h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// classifyFlag reports whether arg is one of the observability-only
// flags, and whether it carries its value inline (-flag=value).
func classifyFlag(arg string) (name string, hasValue bool, isObs bool) {
	if !strings.HasPrefix(arg, "-") {
		return "", false, false
	}
	body := strings.TrimPrefix(strings.TrimPrefix(arg, "-"), "-")
	name, _, hasValue = strings.Cut(body, "=")
	for _, f := range obsOnlyFlags {
		if name == f {
			return name, hasValue, true
		}
	}
	return name, hasValue, false
}

// BuildRunReport assembles a report from the process's current state:
// the registry's counters and meters, plus a runtime.ReadMemStats
// snapshot. The caller supplies the campaign identity (tool, args,
// seed) and the measured wall time.
func BuildRunReport(tool string, args []string, seed int64, wall time.Duration, reg *Registry) RunReport {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	counters := reg.CounterValues()
	rep := RunReport{
		Schema:            RunReportSchema,
		Tool:              tool,
		Args:              args,
		ConfigFingerprint: FingerprintArgs(args),
		Seed:              seed,
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		CPUModel:          CPUModel(),
		WallSeconds:       wall.Seconds(),
		PeakHeapBytes:     ms.HeapSys,
		TotalAllocBytes:   ms.TotalAlloc,
		NumGC:             ms.NumGC,
		CheckpointSaves:   counters["runctl_checkpoint_saves_total"],
		CheckpointLoads:   counters["runctl_checkpoint_loads_total"],
		StreamRetries:     counters["runctl_stream_retries_total"],
		StreamHeals:       counters["runctl_stream_heals_total"],
		Counters:          counters,
		Meters:            reg.MeterSnapshots(),
	}
	for _, name := range engineEventCounters {
		rep.EventsSimulated += counters[name]
	}
	for _, m := range rep.Meters {
		// Byte-volume meters measure the same work in a different unit;
		// only event meters feed the headline peak.
		if strings.Contains(m.Name, "bytes") {
			continue
		}
		if m.PeakPerSec > rep.PeakEventsPerSec {
			rep.PeakEventsPerSec = m.PeakPerSec
		}
	}
	return rep
}

// WriteRunReport writes rep as indented JSON to path.
func WriteRunReport(path string, rep RunReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("run report: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("run report: %w", err)
	}
	return nil
}

// ParseRunReport decodes and validates a run report document.
func ParseRunReport(rd io.Reader) (RunReport, error) {
	var rep RunReport
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return RunReport{}, fmt.Errorf("run report: %w", err)
	}
	if rep.Schema != RunReportSchema {
		return RunReport{}, fmt.Errorf("run report: schema %q, want %q", rep.Schema, RunReportSchema)
	}
	if rep.Tool == "" {
		return RunReport{}, fmt.Errorf("run report: missing tool")
	}
	if rep.WallSeconds < 0 {
		return RunReport{}, fmt.Errorf("run report: negative wall_seconds %g", rep.WallSeconds)
	}
	return rep, nil
}

// CPUModel extracts the processor model from /proc/cpuinfo; throughput
// numbers are not comparable across CPUs, so every performance record
// names the one it ran on. Returns "" where the file or field is
// unavailable.
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, value, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}
