// Package obs is the stdlib-only observability layer shared by every
// Monte-Carlo engine in this repository: an atomic metrics registry
// (counters, gauges, fixed-bucket histograms with quantile snapshots), a
// structured progress tracker (ETA, trials/sec, splitting-level
// occupancy, CI width), and a simulated-time trace recorder emitting
// JSONL events. The cmd/ binaries expose all three through -obs (an
// HTTP endpoint serving Prometheus text, a JSON snapshot, and pprof),
// -progress (periodic stderr rendering) and -trace-out (the JSONL file
// cmd/mlectrace reads back).
//
// # Inertness
//
// The load-bearing invariant is that observability is provably inert:
// instrumentation may observe a run but never steer it. Concretely,
//
//   - metric updates are lock-free atomic adds that no engine ever reads
//     back into a decision;
//   - progress tasks are plain atomic tallies, rendered only by an
//     opt-in reporter goroutine writing to stderr;
//   - trace emission is gated on a single atomic bool and records only
//     simulated-time facts the engine already computed;
//   - nothing in this package touches an RNG stream, an event queue, or
//     any value that flows into statistics.
//
// Fixed-seed mlecdur/mlecburst outputs are therefore byte-identical
// with observability on or off — enforced by the end-to-end test in
// this package and by `make obs-smoke`.
//
// # Relationship to the mlecvet suite
//
// This package is the one sanctioned place where wall-clock readings
// may land (progress rates, ETAs, level wall-time histograms): the
// walltime analyzer lets simulation packages pass wall-clock-derived
// values into package obs, and the ctxpoll analyzer exempts obs's own
// pump loops, because neither path can reach simulation state. See
// internal/lint/walltime.go and internal/lint/ctxpoll.go.
//
// obs sits below runctl in the import graph (runctl feeds its worker
// gauges and checkpoint counters from here), so it must not import any
// other mlec package.
package obs

import (
	"fmt"
	"sync"
)

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry, or the package-level Default shared by the engines.
type Registry struct {
	mu sync.Mutex
	//mlec:guardedby mu
	metrics map[string]any // *Counter | *FloatCounter | *Gauge | *FloatGauge | *Histogram | *Meter
}

// Default is the process-wide registry every engine instruments. CLI
// endpoints and checkpoint snapshots read from it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// lookup returns the metric registered under name, creating it with
// mk() under the registry lock when absent. A name registered with a
// different metric kind is a programmer error at instrumentation time.
func (r *Registry) lookup(name string, kind string, mk func() any) any {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if metricKind(m) != kind {
			//lint:allow nakedpanic registering one metric name as two kinds is a programmer error at instrumentation time, like sim.Schedule's negative delay
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s",
				name, metricKind(m), kind))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

func metricKind(m any) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *FloatCounter:
		return "floatcounter"
	case *Gauge:
		return "gauge"
	case *FloatGauge:
		return "floatgauge"
	case *Histogram:
		return "histogram"
	case *Meter:
		return "meter"
	}
	return fmt.Sprintf("%T", m)
}

// Counter returns the counter registered under name, creating it if
// needed. The name may carry a Prometheus label block:
// `repair_bytes_total{method="R_MIN"}`.
func (r *Registry) Counter(name string) *Counter {
	return r.lookup(name, "counter", func() any { return &Counter{} }).(*Counter)
}

// FloatCounter returns the float counter registered under name.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	return r.lookup(name, "floatcounter", func() any { return &FloatCounter{} }).(*FloatCounter)
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	return r.lookup(name, "gauge", func() any { return &Gauge{} }).(*Gauge)
}

// FloatGauge returns the float gauge registered under name.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	return r.lookup(name, "floatgauge", func() any { return &FloatGauge{} }).(*FloatGauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (strictly increasing; an implicit
// overflow bucket catches everything above the last bound). Bounds are
// fixed at first registration; later calls return the existing
// histogram regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	return r.lookup(name, "histogram", func() any { return newHistogram(bounds) }).(*Histogram)
}

// Meter returns the throughput meter registered under name. By
// convention meter names end in `_per_sec`; the text exposition renders
// the windowed rate as a gauge under that name.
func (r *Registry) Meter(name string) *Meter {
	return r.lookup(name, "meter", func() any { return &Meter{} }).(*Meter)
}

// CounterValues snapshots every integer counter, keyed by full metric
// name. The map is built key-addressed, so its content is independent
// of map iteration order; runctl embeds it in checkpoint envelopes.
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for name, m := range r.metrics {
		if c, ok := m.(*Counter); ok {
			out[name] = c.Value()
		}
	}
	return out
}

// MergeCounters folds a saved CounterValues snapshot back into the
// registry: each named counter is raised to at least its saved value
// (never lowered), so a run resumed from a checkpoint in a fresh
// process reports cumulative totals instead of restarting from zero.
// Names registered as a non-counter kind are skipped — checkpoint data
// is input, not an instrumentation contract.
func (r *Registry) MergeCounters(vals map[string]int64) {
	for name, v := range vals {
		if !validName(name) {
			continue
		}
		r.mu.Lock()
		m, ok := r.metrics[name]
		if !ok {
			m = &Counter{}
			r.metrics[name] = m
		}
		r.mu.Unlock()
		if c, ok := m.(*Counter); ok {
			c.mergeFloor(v)
		}
	}
}
