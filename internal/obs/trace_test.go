package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	var sink bytes.Buffer
	rec := &Recorder{}
	if rec.Enabled() {
		t.Fatal("zero-value recorder reports enabled")
	}
	if err := rec.Start(&sink); err != nil {
		t.Fatal(err)
	}
	if err := rec.Start(&sink); err == nil {
		t.Fatal("second Start did not error")
	}
	rec.Emit(TraceEvent{T: 1.5, Kind: EvFailure, Pool: 2, Disk: 17})
	rec.Emit(TraceEvent{T: 1.5, Kind: EvRepairStart, Pool: 2, Method: "local", Bytes: 4e9})
	rec.Emit(TraceEvent{T: 9.25, Kind: EvRepairEnd, Pool: 2, Method: "local", Bytes: 4e9})
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTraceEvents(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if evs[0].Kind != EvFailure || evs[0].Disk != 17 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[2].T != 9.25 || evs[2].Bytes != 4e9 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	// Stopped recorder: emissions are dropped, Stop is idempotent.
	before := sink.Len()
	rec.Emit(TraceEvent{Kind: EvFailure})
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != before {
		t.Fatal("emission after Stop reached the sink")
	}
}

func TestRecorderOffIsNoop(t *testing.T) {
	rec := &Recorder{}
	rec.Emit(TraceEvent{Kind: EvFailure}) // must not panic or buffer
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderRestartResetsSequence(t *testing.T) {
	var first, second bytes.Buffer
	rec := &Recorder{}
	if err := rec.Start(&first); err != nil {
		t.Fatal(err)
	}
	rec.Emit(TraceEvent{Kind: EvCheckpoint})
	rec.Emit(TraceEvent{Kind: EvCheckpoint})
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Start(&second); err != nil {
		t.Fatal(err)
	}
	rec.Emit(TraceEvent{Kind: EvCheckpoint})
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTraceEvents(&second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("restarted recorder events = %+v, want one event with seq 1", evs)
	}
}

func TestRecorderFlushesAtThreshold(t *testing.T) {
	var sink bytes.Buffer
	rec := &Recorder{}
	if err := rec.Start(&sink); err != nil {
		t.Fatal(err)
	}
	long := strings.Repeat("x", 1024)
	for i := 0; i < traceFlushThreshold/1024+2; i++ {
		rec.Emit(TraceEvent{Kind: EvCheckpoint, Note: long})
	}
	if sink.Len() == 0 {
		t.Fatal("buffer never flushed despite crossing the threshold")
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestParseTraceRejects(t *testing.T) {
	bad := map[string]string{
		"unknown kind":   `{"seq":1,"t":0,"kind":"made_up"}`,
		"repeated seq":   "{\"seq\":1,\"kind\":\"failure\"}\n{\"seq\":1,\"kind\":\"failure\"}",
		"decreasing seq": "{\"seq\":2,\"kind\":\"failure\"}\n{\"seq\":1,\"kind\":\"failure\"}",
		"zero seq":       `{"seq":0,"kind":"failure"}`,
		"not json":       "this is not json",
	}
	for name, in := range bad {
		if _, err := ParseTraceEvents(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	evs, err := ParseTraceEvents(strings.NewReader("\n\n{\"seq\":3,\"kind\":\"pool_heal\"}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank lines must be skipped: %v %v", evs, err)
	}
}
