package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterWindowedRate(t *testing.T) {
	var m Meter
	base := int64(1_000_000)
	// 100 events/sec for 5 seconds.
	for s := int64(0); s < 5; s++ {
		m.addAt(base+s, 100)
	}
	if got := m.Total(); got != 500 {
		t.Fatalf("Total = %g, want 500", got)
	}
	// Lifetime (5s) is shorter than the window: rate averages over it.
	if got := m.rateAt(base + 4); got != 100 {
		t.Fatalf("rate over 5s lifetime = %g, want 100", got)
	}
	// Fill the rest of the window, then go idle: samples age out.
	for s := int64(5); s < meterWindow; s++ {
		m.addAt(base+s, 100)
	}
	if got := m.rateAt(base + meterWindow - 1); got != 100 {
		t.Fatalf("rate over full window = %g, want 100", got)
	}
	if got := m.rateAt(base + 2*meterWindow); got != 0 {
		t.Fatalf("rate after idle window = %g, want 0 (stale buckets must age out)", got)
	}
}

func TestMeterPeak(t *testing.T) {
	var m Meter
	base := int64(2_000_000)
	m.addAt(base, 10)
	m.addAt(base+1, 400) // the busy second
	m.addAt(base+1, 100)
	m.addAt(base+2, 50)
	// All three buckets are still live; peak scans them directly.
	if got := m.Peak(); got != 500 {
		t.Fatalf("live peak = %g, want 500", got)
	}
	// Rotate the busy second's bucket out (same ring slot, window later)
	// and confirm the peak survived the retirement fold.
	m.addAt(base+1+meterWindow, 1)
	if got := m.Peak(); got != 500 {
		t.Fatalf("peak after rotation = %g, want 500", got)
	}
	if got := m.Total(); got != 561 {
		t.Fatalf("Total = %g, want 561", got)
	}
}

func TestMeterZero(t *testing.T) {
	var m Meter
	if m.Rate() != 0 || m.Peak() != 0 || m.Total() != 0 {
		t.Fatalf("zero meter reads %g/%g/%g, want 0/0/0", m.Rate(), m.Peak(), m.Total())
	}
}

// TestMeterConcurrentWriters hammers one meter from many goroutines
// across a rotating second boundary — the -race proof (obs is in
// RACE_PKGS) that Add is safe from every worker at once, and that no
// sample is lost from the lifetime total.
func TestMeterConcurrentWriters(t *testing.T) {
	var m Meter
	const (
		workers = 8
		perSec  = 1000
		seconds = 4
	)
	base := int64(3_000_000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := int64(0); s < seconds; s++ {
				for i := 0; i < perSec; i++ {
					m.addAt(base+s, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	want := float64(workers * perSec * seconds)
	if got := m.Total(); got != want {
		t.Fatalf("Total = %g, want %g (samples lost under contention)", got, want)
	}
	if got := m.rateAt(base + seconds - 1); got != want/seconds {
		t.Fatalf("rate = %g, want %g", got, want/seconds)
	}
	if got := m.Peak(); got < want/seconds {
		t.Fatalf("peak = %g, want >= %g", got, want/seconds)
	}
}

// TestMeterAddAllocFree pins the hot-path contract hotalloc enforces
// transitively: engines call Add from `//mlec:hot` event loops.
func TestMeterAddAllocFree(t *testing.T) {
	var m Meter
	allocs := testing.AllocsPerRun(1000, func() { m.Add(1) })
	if allocs != 0 {
		t.Fatalf("Meter.Add allocates %.1f/op, want 0", allocs)
	}
}

func TestMeterExpositions(t *testing.T) {
	r := NewRegistry()
	m := r.Meter("syssim_events_per_sec")
	// The expositions read Rate() against the real clock, so the sample
	// must land in the live window.
	base := time.Now().Unix()
	m.addAt(base, 250)

	// Text: the windowed rate rides the wire as a gauge and the page
	// stays parseable by the strict parser.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("meter page does not parse: %v\npage:\n%s", err, buf.String())
	}
	if p.Types["syssim_events_per_sec"] != "gauge" {
		t.Fatalf("meter TYPE = %q, want gauge", p.Types["syssim_events_per_sec"])
	}
	if v, ok := p.Sample("syssim_events_per_sec"); !ok || v <= 0 {
		t.Fatalf("meter sample = %v %v, want positive rate", v, ok)
	}

	// JSON: a MeterPoint with total/rate/peak.
	pts := r.Snapshot()
	if len(pts) != 1 || pts[0].Kind != "meter" {
		t.Fatalf("snapshot = %+v, want one meter point", pts)
	}
	mp, ok := pts[0].Value.(MeterPoint)
	if !ok {
		t.Fatalf("meter point is %T", pts[0].Value)
	}
	if mp.Total != 250 || mp.PeakPerSec != 250 {
		t.Fatalf("meter point %+v, want total=250 peak=250", mp)
	}

	// /progress page: MeterSnapshots carries the canonical name.
	snaps := r.MeterSnapshots()
	if len(snaps) != 1 || snaps[0].Name != "syssim_events_per_sec" || snaps[0].Total != 250 {
		t.Fatalf("MeterSnapshots = %+v", snaps)
	}

	// Render: the rates line appears after task lines.
	var out strings.Builder
	(&Tracker{}).Render(&out, r)
	if !strings.Contains(out.String(), "rates syssim_events_per_sec") {
		t.Fatalf("Render output %q lacks meter rates line", out.String())
	}
}
