package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line of a Prometheus text exposition.
type PromSample struct {
	Series string // full series name including any label block
	Value  float64
}

// PromText is the parsed form of a Prometheus text page.
type PromText struct {
	Types   map[string]string // base metric name -> declared type
	Samples []PromSample      // in page order
}

// ParsePrometheus parses (and thereby validates) the subset of the
// Prometheus text exposition format this package emits: `# TYPE` lines,
// optional `# HELP`/comment lines, and `series value` samples. It
// rejects malformed series names, unparseable values, duplicate series,
// and samples whose base metric has no preceding # TYPE declaration —
// strict enough for make obs-smoke to catch format regressions.
func ParsePrometheus(rd io.Reader) (*PromText, error) {
	out := &PromText{Types: make(map[string]string)}
	seen := make(map[string]bool)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom parse: line %d: unknown type %q", lineNo, kind)
				}
				if _, dup := out.Types[name]; dup {
					return nil, fmt.Errorf("prom parse: line %d: duplicate # TYPE for %s", lineNo, name)
				}
				out.Types[name] = kind
			}
			continue
		}
		series, val, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom parse: line %d: %w", lineNo, err)
		}
		base, _, ok := splitName(series)
		if !ok {
			return nil, fmt.Errorf("prom parse: line %d: malformed series %q", lineNo, series)
		}
		if typeOfBase(out.Types, base) == "" {
			return nil, fmt.Errorf("prom parse: line %d: sample %s has no # TYPE", lineNo, series)
		}
		if seen[series] {
			return nil, fmt.Errorf("prom parse: line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		out.Samples = append(out.Samples, PromSample{Series: series, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom parse: %w", err)
	}
	return out, nil
}

// parsePromSample splits a sample line into its series and value. The
// series may contain spaces, commas, quotes and escaped specials inside
// the label block; the end of the block is found with the same
// quote-aware scanner splitName uses, so anything formatLabels emits is
// cut at the right brace.
func parsePromSample(line string) (string, float64, error) {
	cut := len(line)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		_, rest, ok := scanLabelBlock(line[i:])
		if !ok {
			return "", 0, fmt.Errorf("sample %q: malformed label block", line)
		}
		cut = len(line) - len(rest)
	} else if i := strings.IndexByte(line, ' '); i >= 0 {
		cut = i
	}
	series := line[:cut]
	rest := strings.TrimSpace(line[cut:])
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", 0, fmt.Errorf("sample %q has no value", line)
	}
	// A second field would be a timestamp; this package never emits one
	// but the format allows it.
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return series, val, nil
}

// typeOfBase resolves the declared type covering a series base name:
// exact match first, then the histogram sub-series suffixes.
func typeOfBase(types map[string]string, base string) string {
	if t, ok := types[base]; ok {
		return t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if root, ok := strings.CutSuffix(base, suffix); ok {
			if t := types[root]; t == "histogram" || t == "summary" {
				return t
			}
		}
	}
	return ""
}

// Sample returns the value of the named series and whether it exists.
func (p *PromText) Sample(series string) (float64, bool) {
	for _, s := range p.Samples {
		if s.Series == series {
			return s.Value, true
		}
	}
	return 0, false
}
