package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// resetSpans points the package recorder at a fresh buffer and returns
// it; the cleanup stops the recorder so tests stay independent.
func resetSpans(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := Spans.Start(&buf); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = Spans.Stop() })
	return &buf
}

func TestSpanDisabledIsNil(t *testing.T) {
	if Spans.Enabled() {
		t.Fatal("recorder enabled at test start")
	}
	s := StartSpan("campaign")
	if s != nil {
		t.Fatalf("StartSpan with recorder off = %v, want nil", s)
	}
	// The whole nil API must be callable without panicking or writing.
	c := s.Child("level")
	c.End()
	s.EndNote("done")
	allocs := testing.AllocsPerRun(100, func() {
		sp := StartSpan("x")
		sp.Child("y").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpanRecordRoundTrip(t *testing.T) {
	buf := resetSpans(t)
	root := StartSpan("campaign")
	child := root.Child("level")
	grand := child.Child("stream")
	grand.End()
	child.EndNote("level 3")
	root.End()
	if err := Spans.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output does not parse: %v\nfile:\n%s", err, buf.String())
	}
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	// Records land in End order: stream, level, campaign.
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rootRec, childRec, grandRec := byName["campaign"], byName["level"], byName["stream"]
	if rootRec.Parent != 0 {
		t.Fatalf("root parent = %d, want 0", rootRec.Parent)
	}
	if childRec.Parent != rootRec.ID || grandRec.Parent != childRec.ID {
		t.Fatalf("parent chain broken: %+v", recs)
	}
	if childRec.Note != "level 3" {
		t.Fatalf("note = %q", childRec.Note)
	}
	for _, r := range recs {
		if r.Dur() < 0 {
			t.Fatalf("span %s has negative duration", r.Name)
		}
	}
	// Parents begin no later than children and end no earlier.
	if childRec.BeginMS < rootRec.BeginMS || childRec.EndMS > rootRec.EndMS {
		t.Fatalf("child [%g,%g] escapes root [%g,%g]",
			childRec.BeginMS, childRec.EndMS, rootRec.BeginMS, rootRec.EndMS)
	}
}

// TestSpanChildOfNilIsRoot covers the helper contract: a child of a nil
// span (parent site not instrumented, or recorder was off when the
// parent would have started) becomes a root span.
func TestSpanChildOfNilIsRoot(t *testing.T) {
	buf := resetSpans(t)
	var parent *Span
	c := parent.Child("orphan")
	c.End()
	if err := Spans.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Parent != 0 || recs[0].Name != "orphan" {
		t.Fatalf("got %+v, want one root span named orphan", recs)
	}
}

func TestSpanConcurrentEnd(t *testing.T) {
	buf := resetSpans(t)
	root := StartSpan("pool")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("stream")
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if err := Spans.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent spans do not parse: %v", err)
	}
	if len(recs) != 17 {
		t.Fatalf("got %d spans, want 17", len(recs))
	}
}

func TestParseSpansRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        "banana\n",
		"zero id":         `{"id":0,"name":"x","begin_ms":0,"end_ms":1}` + "\n",
		"duplicate id":    `{"id":1,"name":"x","begin_ms":0,"end_ms":1}` + "\n" + `{"id":1,"name":"y","begin_ms":0,"end_ms":1}` + "\n",
		"self parent":     `{"id":1,"parent":1,"name":"x","begin_ms":0,"end_ms":1}` + "\n",
		"forward parent":  `{"id":1,"parent":2,"name":"x","begin_ms":0,"end_ms":1}` + "\n",
		"missing name":    `{"id":1,"begin_ms":0,"end_ms":1}` + "\n",
		"ends before beg": `{"id":1,"name":"x","begin_ms":5,"end_ms":1}` + "\n",
	}
	for name, file := range cases {
		if _, err := ParseSpans(strings.NewReader(file)); err == nil {
			t.Errorf("%s: parser accepted %q", name, file)
		}
	}
	ok := `{"id":1,"name":"a","begin_ms":0,"end_ms":2}` + "\n\n" + `{"id":2,"parent":1,"name":"b","begin_ms":1,"end_ms":2}` + "\n"
	if _, err := ParseSpans(strings.NewReader(ok)); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
}
