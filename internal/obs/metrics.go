package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use. All methods are safe for concurrent use and
// lock-free; engines on hot paths pay one atomic add per update.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (callers pass non-negative
// deltas; monotonicity is a convention, not enforced on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// mergeFloor raises the counter to at least v via CAS, used when
// restoring a checkpointed snapshot: a counter that already advanced
// past the snapshot (same-process resume) is left alone, so merging is
// idempotent and never double-counts.
func (c *Counter) mergeFloor(v int64) {
	for {
		cur := c.v.Load()
		if cur >= v || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Gauge is an integer metric that can go up and down (live workers,
// queue depth, current splitting level). The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatCounter is a monotonically increasing float metric (repair
// bytes, simulated hours). Adds are CAS loops on the float's bits.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add increments the counter by delta.
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// FloatGauge is a float metric holding the most recent observation of
// some evolving quantity (entry occupancy, CI width).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, or in the implicit overflow
// bucket past the last bound. Everything is atomic; Observe is a bucket
// scan plus three CAS updates, cheap enough for per-level (not
// per-trial) instrumentation sites.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, immutable after construction
	bkts   []atomic.Int64
	over   atomic.Int64
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits
	minB   atomic.Uint64 // float64 bits; +Inf when empty
	maxB   atomic.Uint64 // float64 bits; -Inf when empty
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			//lint:allow nakedpanic histogram bounds are compile-time instrumentation constants; a bad set is a programmer error
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		bkts:   make([]atomic.Int64, len(bounds)),
	}
	h.minB.Store(math.Float64bits(math.Inf(1)))
	h.maxB.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	if idx == len(h.bounds) {
		h.over.Add(1)
	} else {
		h.bkts[idx].Add(1)
	}
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minB.Load()
		if math.Float64frombits(old) <= v || h.minB.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxB.Load()
		if math.Float64frombits(old) >= v || h.maxB.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Min returns the smallest observation, or +Inf when empty.
func (h *Histogram) Min() float64 { return math.Float64frombits(h.minB.Load()) }

// Max returns the largest observation, or -Inf when empty.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxB.Load()) }

// Quantile returns an estimate of the q-quantile (q in [0,1]) from the
// bucket counts: NaN on an empty histogram, linear interpolation within
// the selected bucket clamped to the observed [Min, Max] range (a
// single observation therefore returns exactly that observation), and
// the observed Max when the quantile lands in the overflow bucket,
// whose width is otherwise unbounded.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	var cum int64
	for i := range h.bkts {
		cnt := h.bkts[i].Load()
		if cnt == 0 {
			continue
		}
		if float64(cum+cnt) >= target {
			lo := h.Min()
			if i > 0 {
				lo = math.Max(lo, h.bounds[i-1])
			}
			hi := math.Min(h.Max(), h.bounds[i])
			if hi < lo {
				hi = lo
			}
			within := (target - float64(cum)) / float64(cnt)
			return lo + (hi-lo)*within
		}
		cum += cnt
	}
	// The quantile falls in the overflow bucket: report the observed
	// max rather than inventing an upper bound.
	return h.Max()
}

// snapshotBuckets returns the per-bucket cumulative counts in bound
// order plus the overflow count — the exposition-side view.
func (h *Histogram) snapshotBuckets() (bounds []float64, cumulative []int64, over int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.bkts))
	var cum int64
	for i := range h.bkts {
		cum += h.bkts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative, h.over.Load()
}
