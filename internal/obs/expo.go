package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// KV is one key/value pair of a SortedSnapshot.
type KV[V any] struct {
	Key   string
	Value V
}

// SortedSnapshot copies a string-keyed map into a slice sorted by key.
// Every exposition path in this package (and any engine code that
// renders a map) iterates through it instead of ranging the map
// directly, so output order is deterministic and mlecvet's maporder
// analyzer stays clean by construction.
func SortedSnapshot[V any](m map[string]V) []KV[V] {
	out := make([]KV[V], 0, len(m))
	for k, v := range m {
		out = append(out, KV[V]{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MetricPoint is one metric in a JSON snapshot. Value is an int64 for
// counters and gauges, a float64 for their float variants, and a
// HistogramPoint for histograms.
type MetricPoint struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value any    `json:"value"`
}

// HistogramPoint is a histogram's snapshot in JSON form. Quantiles are
// the 0.5/0.9/0.99 estimates; Min/Max are omitted (and the quantiles
// null) when the histogram is empty.
type HistogramPoint struct {
	N       int64     `json:"n"`
	Sum     float64   `json:"sum"`
	Min     *float64  `json:"min,omitempty"`
	Max     *float64  `json:"max,omitempty"`
	Q50     *float64  `json:"q50,omitempty"`
	Q90     *float64  `json:"q90,omitempty"`
	Q99     *float64  `json:"q99,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // cumulative, one per bound
	Over    int64     `json:"over"`    // observations above the last bound
}

// MeterPoint is a meter's snapshot in JSON form.
type MeterPoint struct {
	Total      float64 `json:"total"`
	RatePerSec float64 `json:"rate_per_sec"`
	PeakPerSec float64 `json:"peak_per_sec"`
}

// Snapshot returns every metric as a name-sorted slice, the JSON form
// served at /metrics.json.
func (r *Registry) Snapshot() []MetricPoint {
	metrics := r.copyMetrics()
	points := make([]MetricPoint, 0, len(metrics))
	for _, kv := range SortedSnapshot(metrics) {
		// canonicalName routes the label values through the same escaper
		// the text exposition uses, so /metrics and /metrics.json can
		// never render one series under two spellings.
		pt := MetricPoint{Name: canonicalName(kv.Key), Kind: metricKind(kv.Value)}
		switch m := kv.Value.(type) {
		case *Counter:
			pt.Value = m.Value()
		case *Gauge:
			pt.Value = m.Value()
		case *FloatCounter:
			pt.Value = m.Value()
		case *FloatGauge:
			pt.Value = m.Value()
		case *Histogram:
			hp := HistogramPoint{N: m.N(), Sum: m.Sum()}
			hp.Bounds, hp.Buckets, hp.Over = m.snapshotBuckets()
			if hp.N > 0 {
				fp := func(v float64) *float64 { return &v }
				hp.Min, hp.Max = fp(m.Min()), fp(m.Max())
				hp.Q50, hp.Q90, hp.Q99 = fp(m.Quantile(0.5)), fp(m.Quantile(0.9)), fp(m.Quantile(0.99))
			}
			pt.Value = hp
		case *Meter:
			pt.Value = MeterPoint{Total: m.Total(), RatePerSec: m.Rate(), PeakPerSec: m.Peak()}
		}
		points = append(points, pt)
	}
	return points
}

// copyMetrics snapshots the metric map under the lock so exposition
// never holds it while formatting.
func (r *Registry) copyMetrics() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.metrics))
	for k, v := range r.metrics {
		out[k] = v
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per base metric
// name, histograms expanded into cumulative _bucket{le=...} series plus
// _sum and _count. Output is fully deterministic: metrics sort by name,
// label blocks are canonicalized with sorted keys.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]string)   // base name -> prometheus type
	lines := make(map[string][]string) // base name -> rendered sample lines
	for _, kv := range SortedSnapshot(r.copyMetrics()) {
		base, labels, ok := splitName(kv.Key)
		if !ok {
			continue // registry names are validated at creation; defensive
		}
		switch m := kv.Value.(type) {
		case *Counter:
			typed[base] = "counter"
			lines[base] = append(lines[base],
				fmt.Sprintf("%s%s %d", base, formatLabels(labels), m.Value()))
		case *Gauge:
			typed[base] = "gauge"
			lines[base] = append(lines[base],
				fmt.Sprintf("%s%s %d", base, formatLabels(labels), m.Value()))
		case *FloatCounter:
			typed[base] = "counter"
			lines[base] = append(lines[base],
				fmt.Sprintf("%s%s %s", base, formatLabels(labels), formatFloat(m.Value())))
		case *FloatGauge:
			typed[base] = "gauge"
			lines[base] = append(lines[base],
				fmt.Sprintf("%s%s %s", base, formatLabels(labels), formatFloat(m.Value())))
		case *Histogram:
			typed[base] = "histogram"
			bounds, cumulative, over := m.snapshotBuckets()
			n := m.N()
			for i, b := range bounds {
				lines[base] = append(lines[base], fmt.Sprintf("%s_bucket%s %d",
					base, formatLabels(labels, Label{Key: "le", Value: formatFloat(b)}), cumulative[i]))
			}
			_ = over // +Inf bucket is the total count by the cumulative convention
			lines[base] = append(lines[base], fmt.Sprintf("%s_bucket%s %d",
				base, formatLabels(labels, Label{Key: "le", Value: "+Inf"}), n))
			lines[base] = append(lines[base],
				fmt.Sprintf("%s_sum%s %s", base, formatLabels(labels), formatFloat(m.Sum())))
			lines[base] = append(lines[base],
				fmt.Sprintf("%s_count%s %d", base, formatLabels(labels), n))
		case *Meter:
			// A meter's windowed rate is a gauge on the wire; Total and
			// Peak ride only the JSON snapshot and /progress.
			typed[base] = "gauge"
			lines[base] = append(lines[base],
				fmt.Sprintf("%s%s %s", base, formatLabels(labels), formatFloat(m.Rate())))
		}
	}
	for _, kv := range SortedSnapshot(lines) {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", kv.Key, typed[kv.Key]); err != nil {
			return err
		}
		for _, line := range kv.Value {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a float sample the way Prometheus expects:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
