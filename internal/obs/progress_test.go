package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestProgressTaskLifecycle(t *testing.T) {
	tr := &Tracker{}
	task := tr.StartTask("unit.test", 100)
	defer task.Finish() // Finish removes from Progress, not tr; harmless
	task.Add(25)
	task.SetLevel(2, 6)
	task.SetOccupancy(0.4)
	task.SetCIWidth(0.01)
	task.SetNote("warming")
	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "unit.test" || s.Done != 25 || s.Goal != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Level != 2 || s.MaxLevel != 6 || s.Occupancy != 0.4 || s.CIWidth != 0.01 || s.Note != "warming" {
		t.Fatalf("snapshot detail %+v", s)
	}
	tr.remove(task)
	if got := tr.Snapshots(); len(got) != 0 {
		t.Fatalf("after remove: %d snapshots", len(got))
	}
}

func TestProgressRender(t *testing.T) {
	tr := &Tracker{}
	reg := NewRegistry()
	reg.Gauge("runctl_pool_workers_live").Set(4)

	var idle bytes.Buffer
	tr.Render(&idle, reg)
	if !strings.Contains(idle.String(), "idle") || !strings.Contains(idle.String(), "workers live 4") {
		t.Fatalf("idle render %q", idle.String())
	}

	task := tr.StartTask("render.test", 10)
	task.Add(5)
	task.SetLevel(1, 3)
	var out bytes.Buffer
	tr.Render(&out, reg)
	line := out.String()
	for _, frag := range []string{"render.test", "5/10", "50.0%", "level 1/3", "workers live 4"} {
		if !strings.Contains(line, frag) {
			t.Errorf("render %q missing %q", line, frag)
		}
	}
	tr.remove(task)
}

func TestFormatShort(t *testing.T) {
	for v, want := range map[float64]string{
		2:         "2",
		150:       "150",
		2500:      "2.5k",
		3_200_000: "3.2M",
	} {
		if got := formatShort(v); got != want {
			t.Errorf("formatShort(%v) = %q, want %q", v, got, want)
		}
	}
}
