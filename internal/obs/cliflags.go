package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// CLIFlags carries the observability flags every Monte-Carlo CLI
// exposes. Bind them before flag.Parse, then Activate after argument
// validation; the returned stop function flushes and shuts everything
// down and must run before the process exits (including error paths
// that call os.Exit, which skip defers).
type CLIFlags struct {
	Endpoint   string        // -obs: HTTP listen address, "" = off
	Every      time.Duration // -progress: render interval, 0 = off
	TraceOut   string        // -trace-out: JSONL trace path, "" = off
	SpanOut    string        // -span-out: JSONL wall-clock span path, "" = off
	RunReport  string        // -run-report: RUNREPORT.json path, "" = off
	ProfileDir string        // -profile-dir: pprof cpu+heap capture dir, "" = off

	tool string // basename of the binary, recorded in run reports
	seed int64  // campaign seed, recorded in run reports via SetSeed
}

// BindCLIFlags registers the observability flags on fs.
func BindCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{tool: filepath.Base(fs.Name())}
	fs.StringVar(&f.Endpoint, "obs", "",
		"serve observability HTTP endpoint on this address (/metrics, /metrics.json, /debug/pprof)")
	fs.DurationVar(&f.Every, "progress", 0,
		"render a progress report to stderr at this interval (0 disables)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a simulated-time JSONL event trace to this file")
	fs.StringVar(&f.SpanOut, "span-out", "",
		"write wall-clock causal spans (JSONL) to this file (read back by mlectrace spans)")
	fs.StringVar(&f.RunReport, "run-report", "",
		"write a versioned per-run performance report (JSON) to this file at exit")
	fs.StringVar(&f.ProfileDir, "profile-dir", "",
		"capture pprof cpu.pprof + heap.pprof profiles into this directory")
	return f
}

// SetSeed records the campaign seed for the run report; call it after
// flag parsing, before the run.
func (f *CLIFlags) SetSeed(seed int64) { f.seed = seed }

// Activate starts whatever the parsed flags ask for: the HTTP endpoint
// (its resolved address is announced on errw), the trace and span
// recorders, the progress reporter, and CPU profiling. The returned
// stop function is idempotent, reports recorder errors to errw, and —
// because it marks the end of the measured run — finalizes the wall
// clock, writes the heap profile, and emits the run report.
// Observability failing to start is a usage error, not a reason to
// corrupt a long run, so Activate fails fast before any engine work
// begins.
func (f *CLIFlags) Activate(errw io.Writer) (func(), error) {
	var (
		srv        *Server
		traceFile  *os.File
		spanFile   *os.File
		cpuProfile *os.File
		quit       chan struct{}
		ticked     chan struct{}
		reported   bool
	)
	begin := time.Now()
	stop := func() {
		if cpuProfile != nil {
			pprof.StopCPUProfile()
			if err := cpuProfile.Close(); err != nil {
				fmt.Fprintf(errw, "obs: profile: %v\n", err)
			}
			cpuProfile = nil
			writeHeapProfile(filepath.Join(f.ProfileDir, "heap.pprof"), errw)
		}
		if f.RunReport != "" && !reported {
			reported = true
			rep := BuildRunReport(f.tool, os.Args[1:], f.seed, time.Since(begin), Default)
			rep.ProfileDir = f.ProfileDir
			if err := WriteRunReport(f.RunReport, rep); err != nil {
				fmt.Fprintf(errw, "obs: %v\n", err)
			}
		}
		if quit != nil {
			close(quit)
			<-ticked
			quit = nil
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(errw, "obs: endpoint: %v\n", err)
			}
			srv = nil
		}
		if traceFile != nil {
			if err := Trace.Stop(); err != nil {
				fmt.Fprintf(errw, "obs: trace: %v\n", err)
			}
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(errw, "obs: trace: %v\n", err)
			}
			traceFile = nil
		}
		if spanFile != nil {
			if err := Spans.Stop(); err != nil {
				fmt.Fprintf(errw, "obs: spans: %v\n", err)
			}
			if err := spanFile.Close(); err != nil {
				fmt.Fprintf(errw, "obs: spans: %v\n", err)
			}
			spanFile = nil
		}
	}

	if f.TraceOut != "" {
		var err error
		traceFile, err = os.Create(f.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := Trace.Start(traceFile); err != nil {
			_ = traceFile.Close()
			return nil, err
		}
	}
	if f.SpanOut != "" {
		var err error
		spanFile, err = os.Create(f.SpanOut)
		if err != nil {
			stop()
			return nil, fmt.Errorf("obs: spans: %w", err)
		}
		if err := Spans.Start(spanFile); err != nil {
			_ = spanFile.Close()
			spanFile = nil
			stop()
			return nil, err
		}
	}
	if f.ProfileDir != "" {
		if err := os.MkdirAll(f.ProfileDir, 0o755); err != nil {
			stop()
			return nil, fmt.Errorf("obs: profile: %w", err)
		}
		var err error
		cpuProfile, err = os.Create(filepath.Join(f.ProfileDir, "cpu.pprof"))
		if err != nil {
			stop()
			return nil, fmt.Errorf("obs: profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuProfile); err != nil {
			_ = cpuProfile.Close()
			cpuProfile = nil
			stop()
			return nil, fmt.Errorf("obs: profile: %w", err)
		}
	}
	if f.Endpoint != "" {
		var err error
		srv, err = Serve(f.Endpoint, Default)
		if err != nil {
			stop()
			return nil, fmt.Errorf("obs: endpoint: %w", err)
		}
		fmt.Fprintf(errw, "obs: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	if f.Every > 0 {
		quit = make(chan struct{})
		ticked = make(chan struct{})
		interval := f.Every
		//lint:allow barego the progress reporter is a pure observer on a wall-clock ticker; it cannot ride a runctl pool because runctl imports obs
		go func() {
			defer close(ticked)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-quit:
					return
				case <-tick.C:
					Progress.Render(errw, Default)
				}
			}
		}()
	}
	return stop, nil
}

// writeHeapProfile captures an up-to-date heap profile to path,
// reporting failures to errw (profiling is best-effort at shutdown).
func writeHeapProfile(path string, errw io.Writer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(errw, "obs: profile: %v\n", err)
		return
	}
	runtime.GC() // fold recently freed memory out of the profile
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		fmt.Fprintf(errw, "obs: profile: %v\n", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(errw, "obs: profile: %v\n", err)
	}
}
