package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLIFlags carries the three observability flags every Monte-Carlo CLI
// exposes. Bind them before flag.Parse, then Activate after argument
// validation; the returned stop function flushes and shuts everything
// down and must run before the process exits (including error paths
// that call os.Exit, which skip defers).
type CLIFlags struct {
	Endpoint string        // -obs: HTTP listen address, "" = off
	Every    time.Duration // -progress: render interval, 0 = off
	TraceOut string        // -trace-out: JSONL trace path, "" = off
}

// BindCLIFlags registers -obs, -progress and -trace-out on fs.
func BindCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.StringVar(&f.Endpoint, "obs", "",
		"serve observability HTTP endpoint on this address (/metrics, /metrics.json, /debug/pprof)")
	fs.DurationVar(&f.Every, "progress", 0,
		"render a progress report to stderr at this interval (0 disables)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a simulated-time JSONL event trace to this file")
	return f
}

// Activate starts whatever the parsed flags ask for: the HTTP endpoint
// (its resolved address is announced on errw), the trace recorder, and
// the progress reporter. The returned stop function is idempotent and
// reports the first trace-write error to errw. Observability failing
// to start is a usage error, not a reason to corrupt a long run, so
// Activate fails fast before any engine work begins.
func (f *CLIFlags) Activate(errw io.Writer) (func(), error) {
	var (
		srv       *Server
		traceFile *os.File
		quit      chan struct{}
		ticked    chan struct{}
	)
	stop := func() {
		if quit != nil {
			close(quit)
			<-ticked
			quit = nil
		}
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(errw, "obs: endpoint: %v\n", err)
			}
			srv = nil
		}
		if traceFile != nil {
			if err := Trace.Stop(); err != nil {
				fmt.Fprintf(errw, "obs: trace: %v\n", err)
			}
			if err := traceFile.Close(); err != nil {
				fmt.Fprintf(errw, "obs: trace: %v\n", err)
			}
			traceFile = nil
		}
	}

	if f.TraceOut != "" {
		var err error
		traceFile, err = os.Create(f.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := Trace.Start(traceFile); err != nil {
			_ = traceFile.Close()
			return nil, err
		}
	}
	if f.Endpoint != "" {
		var err error
		srv, err = Serve(f.Endpoint, Default)
		if err != nil {
			stop()
			return nil, fmt.Errorf("obs: endpoint: %w", err)
		}
		fmt.Fprintf(errw, "obs: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	if f.Every > 0 {
		quit = make(chan struct{})
		ticked = make(chan struct{})
		interval := f.Every
		//lint:allow barego the progress reporter is a pure observer on a wall-clock ticker; it cannot ride a runctl pool because runctl imports obs
		go func() {
			defer close(ticked)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-quit:
					return
				case <-tick.C:
					Progress.Render(errw, Default)
				}
			}
		}()
	}
	return stop, nil
}
