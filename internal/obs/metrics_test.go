package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAddInc(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterMergeFloor(t *testing.T) {
	var c Counter
	c.Add(7)
	c.mergeFloor(100)
	if got := c.Value(); got != 100 {
		t.Fatalf("after raise: Value = %d, want 100", got)
	}
	c.mergeFloor(5)
	if got := c.Value(); got != 100 {
		t.Fatalf("merge must never lower: Value = %d, want 100", got)
	}
	c.mergeFloor(100)
	if got := c.Value(); got != 100 {
		t.Fatalf("merge is idempotent: Value = %d, want 100", got)
	}
}

func TestFloatCounterAndGauge(t *testing.T) {
	var fc FloatCounter
	fc.Add(1.5)
	fc.Add(2.25)
	if got := fc.Value(); got != 3.75 {
		t.Fatalf("FloatCounter = %v, want 3.75", got)
	}
	var fg FloatGauge
	fg.Set(0.125)
	if got := fg.Value(); got != 0.125 {
		t.Fatalf("FloatGauge = %v, want 0.125", got)
	}
	var g Gauge
	g.Add(3)
	g.Add(-5)
	if got := g.Value(); got != -2 {
		t.Fatalf("Gauge = %d, want -2", got)
	}
	g.Set(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("Gauge after Set = %d, want 9", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want NaN", q, got)
		}
	}
	if got := h.Min(); !math.IsInf(got, 1) {
		t.Fatalf("empty Min = %v, want +Inf", got)
	}
	if got := h.Max(); !math.IsInf(got, -1) {
		t.Fatalf("empty Max = %v, want -Inf", got)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1.7)
	// With one observation Min == Max == 1.7; every quantile must be
	// exactly the sample, not a bucket-bound interpolation.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1.7 {
			t.Fatalf("Quantile(%v) = %v, want the single sample 1.7", q, got)
		}
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(10)
	h.Observe(20)
	h.Observe(30)
	// Every sample is past the last bound: the overflow bucket has no
	// upper bound, so the only honest report is the observed max.
	for _, q := range []float64{0.5, 0.9, 1} {
		if got := h.Quantile(q); got != 30 {
			t.Fatalf("Quantile(%v) = %v, want observed max 30", q, got)
		}
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket le=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(25) // bucket le=30
	}
	if got := h.Quantile(0.25); got < 5 || got > 10 {
		t.Fatalf("Quantile(0.25) = %v, want within first bucket [5,10]", got)
	}
	if got := h.Quantile(0.9); got < 20 || got > 25 {
		t.Fatalf("Quantile(0.9) = %v, want within [20, max 25]", got)
	}
	if got, want := h.N(), int64(20); got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	if got, want := h.Sum(), float64(10*5+10*25); got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// Out-of-range q clamps instead of extrapolating.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("Quantile(-1) = %v, want clamp to Quantile(0) = %v", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v, want clamp to Quantile(1) = %v", got, h.Quantile(1))
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newHistogram with non-increasing bounds did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kind_clash_total")
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, "kind_clash_total") {
			t.Fatalf("panic %v does not name the clashing metric", v)
		}
	}()
	r.Gauge("kind_clash_total")
}

func TestRegistryMalformedNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("malformed metric name did not panic")
		}
	}()
	r.Counter(`bad name{x=unquoted}`)
}

func TestRegistryMergeCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("resumed_total").Add(7)
	r.MergeCounters(map[string]int64{
		"resumed_total": 100, // raises the live counter
		"fresh_total":   12,  // materializes a counter that didn't exist yet
		"bad name":      5,   // invalid name: skipped
	})
	if got := r.Counter("resumed_total").Value(); got != 100 {
		t.Fatalf("resumed_total = %d, want 100", got)
	}
	if got := r.Counter("fresh_total").Value(); got != 12 {
		t.Fatalf("fresh_total = %d, want 12", got)
	}
	vals := r.CounterValues()
	if _, ok := vals["bad name"]; ok {
		t.Fatal("invalid counter name leaked into the registry")
	}
}

func TestRegistryMergeSkipsWrongKind(t *testing.T) {
	r := NewRegistry()
	r.Gauge("depth")
	r.MergeCounters(map[string]int64{"depth": 55})
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("merge overwrote a non-counter metric: gauge = %d", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// creation races, hot-path updates, and exposition all at once. Run
// under -race this is the package's data-race certificate.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("conc_total").Inc()
				r.Counter(`conc_labeled_total{worker="a"}`).Inc()
				r.Gauge("conc_gauge").Set(int64(i))
				r.FloatCounter("conc_float_total").Add(0.5)
				r.Histogram("conc_hist", 1, 10, 100).Observe(float64(i % 200))
				if i%500 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(discard{})
					r.MergeCounters(map[string]int64{"conc_total": int64(i)})
				}
			}
		}()
	}
	wg.Wait()
	if got, want := r.Counter("conc_total").Value(), int64(workers*iters); got != want {
		t.Fatalf("conc_total = %d, want %d", got, want)
	}
	if got, want := r.Histogram("conc_hist").N(), int64(workers*iters); got != want {
		t.Fatalf("conc_hist N = %d, want %d", got, want)
	}
	if got, want := r.FloatCounter("conc_float_total").Value(), float64(workers*iters)*0.5; got != want {
		t.Fatalf("conc_float_total = %v, want %v", got, want)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
