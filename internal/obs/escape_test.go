package obs

import (
	"bytes"
	"fmt"
	"testing"
)

// hostileValues are label values chosen to break naive escaping: each
// contains a character that is structural in the text format (quote,
// backslash, newline, comma, closing brace) or has historically
// diverged between Go's %q escaping and the Prometheus wire encoding.
var hostileValues = []string{
	`back\slash`,
	`qu"ote`,
	"new\nline",
	`comma,inside`,
	`clos}ing`,
	`tab	and space`,
	`\"both\n`,
	`trailing\`,
}

func TestEscapeLabelValueRoundTrip(t *testing.T) {
	for _, v := range hostileValues {
		block := `{v="` + escapeLabelValue(v) + `"}`
		labels, rest, ok := scanLabelBlock(block)
		if !ok || rest != "" {
			t.Errorf("value %q: encoded block %q does not scan (ok=%v rest=%q)", v, block, ok, rest)
			continue
		}
		if len(labels) != 1 || labels[0].Value != v {
			t.Errorf("value %q round-tripped to %+v", v, labels)
		}
	}
}

// TestHostileLabelsTextJSONAgree is the regression test for the shared
// escaper: a registry holding hostile label values must render a text
// page the strict parser accepts, and /metrics.json must emit exactly
// the same series names the text page does.
func TestHostileLabelsTextJSONAgree(t *testing.T) {
	r := NewRegistry()
	wantValue := map[string]float64{}
	for i, v := range hostileValues {
		name := fmt.Sprintf(`hostile_total{v="%s"}`, escapeLabelValue(v))
		r.Counter(name).Add(int64(i + 1))
		wantValue[canonicalName(name)] = float64(i + 1)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("hostile-label page does not parse: %v\npage:\n%s", err, buf.String())
	}
	if len(p.Samples) != len(hostileValues) {
		t.Fatalf("parsed %d samples, want %d\npage:\n%s", len(p.Samples), len(hostileValues), buf.String())
	}

	jsonNames := map[string]bool{}
	for _, pt := range r.Snapshot() {
		jsonNames[pt.Name] = true
	}
	for _, s := range p.Samples {
		want, ok := wantValue[s.Series]
		if !ok {
			t.Errorf("text series %q not among registered canonical names", s.Series)
			continue
		}
		if s.Value != want {
			t.Errorf("series %q = %g, want %g", s.Series, s.Value, want)
		}
		if !jsonNames[s.Series] {
			t.Errorf("text series %q missing from JSON snapshot names %v", s.Series, jsonNames)
		}
		// The parsed series must decode back to the original raw value.
		_, labels, ok := splitName(s.Series)
		if !ok || len(labels) != 1 {
			t.Errorf("series %q does not split", s.Series)
			continue
		}
		found := false
		for _, v := range hostileValues {
			if labels[0].Value == v {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("series %q decoded to unexpected value %q", s.Series, labels[0].Value)
		}
	}
}

// TestValidNameHostile pins which spellings the registry accepts: wire-
// escaped specials are valid, raw structural bytes are not.
func TestValidNameHostile(t *testing.T) {
	valid := []string{
		`m_total{v="a\\b"}`,
		`m_total{v="a\"b"}`,
		`m_total{v="a\nb"}`,
		`m_total{v="plain"}`,
	}
	for _, n := range valid {
		if !validName(n) {
			t.Errorf("validName(%q) = false, want true", n)
		}
	}
	invalid := []string{
		`m_total{v="a"b"}`,        // raw quote splits the value
		`m_total{v="a` + "\n" + `b"}`, // raw newline
		`m_total{v="a\qb"}`,       // unknown escape
		`m_total{v="unterminated}`,
		`m_total{v="a"}trailer`,
	}
	for _, n := range invalid {
		if validName(n) {
			t.Errorf("validName(%q) = true, want false", n)
		}
	}
}
